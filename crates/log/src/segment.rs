//! The on-disk segmented log format (out-of-core log store).
//!
//! A production debugger must open the log of a long run without
//! rescanning it. A log directory holds one append-only **segment
//! file** per (process, sequence-number) pair plus a tiny
//! `manifest.json`; each segment carries, in a CRC-guarded footer,
//! everything the structural queries need — entry/byte counts, a time
//! span, per-entry payload offsets, and a **digest** of its prelog and
//! postlog events. Opening a directory is therefore `mmap` + footer
//! decode: the global [`IntervalIndex`] is rebuilt from the digests by
//! the same stack-matching builder the in-memory scan uses, and no
//! entry is decoded until a replay actually needs that process's
//! payload (then it is decoded straight out of the mapped bytes).
//!
//! ## Segment layout
//!
//! ```text
//! ┌──────────────────────────────────────────────────────────────┐
//! │ header   "PPDS" ver  proc  seq  base_seq          (varints)  │
//! │ payload  v1: entry … entry       (binio tagged wire format)  │
//! │          v2: lzb frame … lzb frame   (whole entries per      │
//! │              frame; raw or compressed, checksummed)          │
//! │ footer   payload_crc:u32le                                   │
//! │          entry_count payload_len logical_bytes               │
//! │          counts[6] min_time max_time                         │
//! │          offsets (delta varints)  digest (pre/postlog events)│
//! │          v2: block table (uncomp_len stored_len per block)   │
//! │ trailer  footer_len:u32le  footer_crc:u32le  "PPDF"          │
//! └──────────────────────────────────────────────────────────────┘
//! ```
//!
//! **Version 1** stores the payload raw. **Version 2** splits the
//! payload into fixed-target blocks (~[`DEFAULT_BLOCK_BYTES`]
//! uncompressed, whole entries only) and frames each independently
//! with the vendored `lzb` compressor — either actually compressed or
//! through the raw escape, so incompressible data costs at most a few
//! framing bytes. The footer's block table maps uncompressed offsets
//! to file offsets; entry offsets stay *uncompressed*-relative, so a
//! range query binary-searches the table and decompresses exactly the
//! blocks it needs ([`SegmentedLog::entries_in_range`]), while bulk
//! paths (`verify`, preload) decompress segments in parallel over the
//! vendored work-stealing pool.
//!
//! Two CRC32s (IEEE) guard a segment, split so that open-time cost is
//! proportional to the *footer*, not the log: the trailer's
//! `footer_crc` covers the footer body and is checked when the
//! directory is opened (a corrupt index must never be trusted), while
//! the footer's `payload_crc` covers the header + stored payload and
//! is checked by [`SegmentedLog::verify`] — the same deferred-payload
//! split LSM stores use, so a gigabyte log opens without touching a
//! gigabyte of bytes.
//!
//! ## Live tails
//!
//! A segment without a valid trailer is **unsealed**. Since the writer
//! flushes sealed frames incrementally ([`SegmentWriter::flush`]), an
//! unsealed final segment is not garbage — it is the live tail of a
//! run that is still going (or was killed mid-flush). Open scans it
//! record-by-record (v1) or checksummed-frame-by-frame (v2) to the
//! last valid entry and serves the recovered prefix like any other
//! entries; the scan position is kept as a per-segment **high-water
//! mark** so [`SegmentedLog::refresh`] can cheaply re-open a directory
//! a still-running program is appending to: sealed segments are reused
//! by `(proc, seq)`, the tail scan resumes where it left off, and the
//! footer-built index is extended incrementally instead of rebuilt.
//! An unsealed segment that is *not* its process's last file is a hard
//! corruption error, as before.

use crate::binio::{self, BinError, Reader};
use crate::entry::LogEntry;
use crate::index::{IntervalIndex, StructEvent};
use crate::mmap::Mapping;
use crate::store::{LogStore, ProcessLog};
use ppd_lang::ProcId;
use serde::{Deserialize, Serialize};
use std::borrow::Cow;
use std::collections::HashMap;
use std::fmt;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

const SEG_MAGIC: &[u8; 4] = b"PPDS";
const FOOT_MAGIC: &[u8; 4] = b"PPDF";
/// The original raw-payload segment version.
pub const SEGMENT_VERSION_V1: u8 = 1;
/// Current segment version: block-framed payloads (raw or compressed).
pub const SEGMENT_VERSION: u8 = 2;
/// footer_len (4) + footer_crc (4) + "PPDF" (4).
const TRAILER_LEN: usize = 12;
/// Default payload capacity before a segment seals.
pub const DEFAULT_SEGMENT_BYTES: usize = 64 * 1024;
/// Target uncompressed bytes per v2 payload block. Effective block
/// size is `min(capacity, DEFAULT_BLOCK_BYTES)`.
pub const DEFAULT_BLOCK_BYTES: usize = 256 * 1024;
/// The directory manifest file name.
pub const MANIFEST_NAME: &str = "manifest.json";
/// Fixed entry-kind order used by footer count tables (the binio tag
/// order).
pub const KIND_NAMES: [&str; 6] = ["prelog", "postlog", "shared", "input", "receive", "element"];

// ---------------------------------------------------------------------
// CRC32 (IEEE 802.3, reflected) — the dependency set vendors no crc
// crate. Slice-by-8: eight const tables let the hot loop fold eight
// bytes per iteration, which matters because `verify` checksums whole
// payloads and `open` checksums every footer.
// ---------------------------------------------------------------------

const fn crc_tables() -> [[u32; 256]; 8] {
    let mut t = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        t[0][i] = c;
        i += 1;
    }
    let mut s = 1;
    while s < 8 {
        let mut i = 0;
        while i < 256 {
            t[s][i] = (t[s - 1][i] >> 8) ^ t[0][(t[s - 1][i] & 0xff) as usize];
            i += 1;
        }
        s += 1;
    }
    t
}

static CRC_TABLES: [[u32; 256]; 8] = crc_tables();

/// CRC32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let t = &CRC_TABLES;
    let mut c = !0u32;
    let mut chunks = bytes.chunks_exact(8);
    for ch in &mut chunks {
        let lo = u32::from_le_bytes([ch[0], ch[1], ch[2], ch[3]]) ^ c;
        let hi = u32::from_le_bytes([ch[4], ch[5], ch[6], ch[7]]);
        c = t[7][(lo & 0xff) as usize]
            ^ t[6][((lo >> 8) & 0xff) as usize]
            ^ t[5][((lo >> 16) & 0xff) as usize]
            ^ t[4][(lo >> 24) as usize]
            ^ t[3][(hi & 0xff) as usize]
            ^ t[2][((hi >> 8) & 0xff) as usize]
            ^ t[1][((hi >> 16) & 0xff) as usize]
            ^ t[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        c = t[0][((c ^ u32::from(b)) & 0xff) as usize] ^ (c >> 8);
    }
    !c
}

// ---------------------------------------------------------------------
// Errors, manifest, reports, formats
// ---------------------------------------------------------------------

/// A segmented-log failure.
#[derive(Debug)]
pub enum SegError {
    /// An underlying filesystem operation failed.
    Io {
        /// The path involved.
        path: PathBuf,
        /// The OS error.
        err: std::io::Error,
    },
    /// A sealed segment's bytes are structurally invalid (bad magic,
    /// CRC mismatch, inconsistent footer…).
    Corrupt {
        /// The offending segment file name.
        file: String,
        /// What exactly failed.
        detail: String,
    },
    /// Entry payload failed to decode ([`BinError`] carries the byte
    /// offset and segment context).
    Decode(BinError),
    /// The directory manifest is missing or malformed.
    Manifest(String),
}

impl fmt::Display for SegError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SegError::Io { path, err } => write!(f, "{}: {err}", path.display()),
            SegError::Corrupt { file, detail } => write!(f, "corrupt segment {file}: {detail}"),
            SegError::Decode(e) => write!(f, "segment payload: {e}"),
            SegError::Manifest(d) => write!(f, "log directory manifest: {d}"),
        }
    }
}

impl std::error::Error for SegError {}

impl From<BinError> for SegError {
    fn from(e: BinError) -> SegError {
        SegError::Decode(e)
    }
}

fn io_err(path: &Path, err: std::io::Error) -> SegError {
    SegError::Io { path: path.to_path_buf(), err }
}

/// The `manifest.json` of a log directory: enough to know the process
/// count (processes that logged nothing have no segment files).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Manifest {
    format: String,
    version: u8,
    processes: usize,
}

/// How [`SegmentWriter`] lays payload bytes on disk.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum SegmentFormat {
    /// Version-1 raw payloads (back-compat writer, mainly for tests).
    V1,
    /// Version-2 block framing through the raw escape: walkable,
    /// checksummed frames without the compression cost.
    #[default]
    V2Raw,
    /// Version-2 block framing with lzb compression.
    V2Compressed,
}

impl SegmentFormat {
    /// The header/manifest version byte this format writes.
    pub fn version(self) -> u8 {
        match self {
            SegmentFormat::V1 => SEGMENT_VERSION_V1,
            _ => SEGMENT_VERSION,
        }
    }

    /// Whether payload blocks go through the lzb matcher.
    pub fn compressed(self) -> bool {
        self == SegmentFormat::V2Compressed
    }
}

/// What a [`SegmentWriter`] (or [`LogStore::write_dir`]) produced.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SinkReport {
    /// Sealed segment files written.
    pub segments: u64,
    /// Total file bytes written (headers + payloads + footers).
    pub bytes: u64,
    /// Entries appended.
    pub entries: u64,
}

/// What `ppd log verify` / [`SegmentedLog::verify`] checked.
#[derive(Debug, Clone, Default)]
pub struct VerifyReport {
    /// Sealed segments whose CRC and payload decode were re-checked.
    pub segments: usize,
    /// Entries decoded and checked against footer metadata.
    pub entries: u64,
    /// Entries served from recovered unsealed tails (checksummed at
    /// scan time for v2, best-effort for v1 — not re-verified here).
    pub recovered: u64,
    /// Recovery warnings carried over from open (recovered or dropped
    /// unsealed tails).
    pub warnings: Vec<String>,
}

/// What [`SegmentedLog::refresh`] reused versus re-read.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RefreshStats {
    /// Sealed segments carried over from the previous open by
    /// `(proc, seq)` without re-reading their footers.
    pub segments_reused: usize,
    /// Segment files mapped and footer-parsed fresh.
    pub segments_parsed: usize,
    /// Unsealed tails whose scan resumed from the previous high-water
    /// mark instead of restarting at the payload start.
    pub tails_resumed: usize,
    /// Whether the interval index was extended from the previous one
    /// instead of scheduled for a full rebuild.
    pub index_extended: bool,
}

// ---------------------------------------------------------------------
// Segment metadata (parsed header + footer)
// ---------------------------------------------------------------------

/// A prelog/postlog digest event with a segment-local entry position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct DigestEvent {
    pub(crate) is_prelog: bool,
    /// Entry position within this segment.
    pub(crate) pos: u64,
    pub(crate) eblock: u32,
    pub(crate) instance: u64,
    pub(crate) time: u64,
}

/// One v2 payload block: where its uncompressed bytes fall in the
/// logical payload and where its stored frame falls in the file
/// (relative to the payload start).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockMeta {
    /// Uncompressed payload offset of the block's first byte.
    pub uncomp_off: u64,
    /// Uncompressed byte length.
    pub uncomp_len: u64,
    /// Stored frame offset, relative to the payload start.
    pub stored_off: u64,
    /// Stored frame length in the file.
    pub stored_len: u64,
}

/// Everything a segment's header and footer say about it — parsed
/// without touching the payload.
#[derive(Debug, Clone)]
pub struct SegmentMeta {
    /// File name within the log directory.
    pub file: String,
    /// Segment format version (1 = raw payload, 2 = framed blocks).
    pub version: u8,
    /// Owning process.
    pub proc: u32,
    /// Sequence number within the process (0-based, contiguous).
    pub seq: u64,
    /// Global entry index (within the process log) of this segment's
    /// first entry.
    pub base_seq: u64,
    /// Entries in the payload.
    pub entry_count: u64,
    /// Uncompressed payload byte length (equals the stored length for
    /// version 1).
    pub payload_len: u64,
    /// Stored payload byte length in the file.
    pub stored_len: u64,
    /// Sum of the entries' logical [`LogEntry::size_bytes`].
    pub logical_bytes: u64,
    /// Entry counts in [`KIND_NAMES`] order.
    pub counts: [u64; 6],
    /// Smallest entry time (0 when empty).
    pub min_time: u64,
    /// Largest entry time (0 when empty).
    pub max_time: u64,
    /// File offset where the payload begins.
    payload_start: usize,
    /// CRC32 of header + stored payload, stored in the footer and
    /// checked by [`SegmentedLog::verify`] (not at open).
    payload_crc: u32,
    /// Uncompressed-payload-relative byte offset of each entry.
    offsets: Vec<u64>,
    /// Prelog/postlog digest, in entry order.
    digest: Vec<DigestEvent>,
    /// v2 block table (empty for version 1).
    blocks: Vec<BlockMeta>,
}

impl SegmentMeta {
    /// File offset of the payload within the segment.
    pub fn payload_start(&self) -> usize {
        self.payload_start
    }

    /// Uncompressed-payload-relative byte offset of entry `i`.
    pub fn entry_offset(&self, i: usize) -> Option<u64> {
        self.offsets.get(i).copied()
    }

    /// The v2 block table (empty for version-1 segments).
    pub fn blocks(&self) -> &[BlockMeta] {
        &self.blocks
    }

    /// Number of stored payload blocks (0 for version-1 segments).
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }
}

/// The canonical segment file name for `(proc, seq)`.
pub fn segment_file_name(proc: u32, seq: u64) -> String {
    format!("p{proc:04}-s{seq:06}.seg")
}

/// Parses a segment file name back to `(proc, seq)`.
fn parse_file_name(name: &str) -> Option<(u32, u64)> {
    let rest = name.strip_prefix('p')?.strip_suffix(".seg")?;
    let (proc, seq) = rest.split_once("-s")?;
    Some((proc.parse().ok()?, seq.parse().ok()?))
}

/// Parses header + footer of one sealed segment. `Err(detail)` means
/// the bytes are not a sealed segment (the caller decides whether that
/// is a recoverable unsealed tail or hard corruption).
fn parse_segment(file: &str, bytes: &[u8]) -> Result<SegmentMeta, String> {
    if bytes.len() < SEG_MAGIC.len() + 1 + TRAILER_LEN {
        return Err(format!("file too short ({} bytes) to be a sealed segment", bytes.len()));
    }
    if &bytes[..4] != SEG_MAGIC {
        return Err("bad segment magic".into());
    }
    let version = bytes[4];
    if version != SEGMENT_VERSION_V1 && version != SEGMENT_VERSION {
        return Err(format!("unsupported segment version {version}"));
    }
    let trailer = &bytes[bytes.len() - TRAILER_LEN..];
    if &trailer[8..12] != FOOT_MAGIC {
        return Err("missing footer magic (unsealed segment)".into());
    }
    let footer_len = u32::from_le_bytes([trailer[0], trailer[1], trailer[2], trailer[3]]) as usize;
    let stored_crc = u32::from_le_bytes([trailer[4], trailer[5], trailer[6], trailer[7]]);
    let body_end = bytes.len() - TRAILER_LEN;
    let footer_start = body_end
        .checked_sub(footer_len)
        .filter(|&s| s > SEG_MAGIC.len())
        .ok_or_else(|| format!("footer length {footer_len} exceeds file"))?;
    if footer_len < 4 {
        return Err(format!("footer length {footer_len} too short for payload crc"));
    }
    // Open-time integrity covers exactly the bytes open relies on: the
    // footer body. The payload crc stored inside it is deferred to
    // `verify`, keeping open O(footer) instead of O(log).
    let actual_crc = crc32(&bytes[footer_start..body_end]);
    if actual_crc != stored_crc {
        return Err(format!(
            "footer crc mismatch (stored {stored_crc:#010x}, computed {actual_crc:#010x})"
        ));
    }
    let payload_crc = u32::from_le_bytes([
        bytes[footer_start],
        bytes[footer_start + 1],
        bytes[footer_start + 2],
        bytes[footer_start + 3],
    ]);
    let err_str = |e: BinError| format!("footer decode failed: {e}");
    // Header varints.
    let mut h = Reader::with_base(&bytes[5..footer_start], 5);
    let proc = h.varint().map_err(err_str)? as u32;
    let seq = h.varint().map_err(err_str)?;
    let base_seq = h.varint().map_err(err_str)?;
    let payload_start = h.offset();
    // Footer body (after the fixed-width payload crc).
    let mut r = Reader::with_base(&bytes[footer_start + 4..body_end], footer_start + 4);
    let entry_count = r.varint().map_err(err_str)?;
    let payload_len = r.varint().map_err(err_str)?;
    if version == SEGMENT_VERSION_V1 && payload_start + payload_len as usize != footer_start {
        return Err(format!(
            "payload length {payload_len} inconsistent with footer position {footer_start}"
        ));
    }
    let logical_bytes = r.varint().map_err(err_str)?;
    let mut counts = [0u64; 6];
    for c in &mut counts {
        *c = r.varint().map_err(err_str)?;
    }
    let min_time = r.varint().map_err(err_str)?;
    let max_time = r.varint().map_err(err_str)?;
    let n_offsets = r.varint().map_err(err_str)? as usize;
    if n_offsets as u64 != entry_count {
        return Err(format!("offset table has {n_offsets} entries, footer says {entry_count}"));
    }
    let mut offsets = Vec::with_capacity(n_offsets.min(1 << 20));
    let mut at = 0u64;
    for i in 0..n_offsets {
        let delta = r.varint().map_err(err_str)?;
        at = if i == 0 { delta } else { at + delta };
        offsets.push(at);
    }
    let n_digest = r.varint().map_err(err_str)? as usize;
    let mut digest = Vec::with_capacity(n_digest.min(1 << 20));
    let mut prev_pos = 0u64;
    for i in 0..n_digest {
        let is_prelog = r.byte().map_err(err_str)? != 0;
        let delta = r.varint().map_err(err_str)?;
        let pos = if i == 0 { delta } else { prev_pos + delta };
        prev_pos = pos;
        digest.push(DigestEvent {
            is_prelog,
            pos,
            eblock: r.varint().map_err(err_str)? as u32,
            instance: r.varint().map_err(err_str)?,
            time: r.varint().map_err(err_str)?,
        });
    }
    // v2: the block table maps uncompressed payload offsets to stored
    // frame offsets, so readers can seek without decompressing the
    // whole payload.
    let mut blocks = Vec::new();
    let stored_len = if version >= SEGMENT_VERSION {
        let n_blocks = r.varint().map_err(err_str)? as usize;
        let mut uoff = 0u64;
        let mut soff = 0u64;
        blocks.reserve(n_blocks.min(1 << 16));
        for _ in 0..n_blocks {
            let ulen = r.varint().map_err(err_str)?;
            let slen = r.varint().map_err(err_str)?;
            blocks.push(BlockMeta {
                uncomp_off: uoff,
                uncomp_len: ulen,
                stored_off: soff,
                stored_len: slen,
            });
            uoff += ulen;
            soff += slen;
        }
        if uoff != payload_len {
            return Err(format!(
                "block table uncompressed total {uoff} disagrees with payload length {payload_len}"
            ));
        }
        if payload_start + soff as usize != footer_start {
            return Err(format!(
                "block table stored total {soff} inconsistent with footer position {footer_start}"
            ));
        }
        soff
    } else {
        payload_len
    };
    if r.remaining() != 0 {
        return Err(format!("{} trailing bytes after footer body", r.remaining()));
    }
    Ok(SegmentMeta {
        file: file.to_string(),
        version,
        proc,
        seq,
        base_seq,
        entry_count,
        payload_len,
        stored_len,
        logical_bytes,
        counts,
        min_time,
        max_time,
        payload_start,
        payload_crc,
        offsets,
        digest,
        blocks,
    })
}

/// Which count slot (in [`KIND_NAMES`] order) an entry falls in.
fn kind_slot(e: &LogEntry) -> usize {
    match e {
        LogEntry::Prelog { .. } => 0,
        LogEntry::Postlog { .. } => 1,
        LogEntry::SharedSnapshot { .. } => 2,
        LogEntry::Input { .. } => 3,
        LogEntry::Receive { .. } => 4,
        LogEntry::ElementRead { .. } => 5,
    }
}

// ---------------------------------------------------------------------
// Writer (the runtime's streaming sink and `ppd log pack`)
// ---------------------------------------------------------------------

/// Per-process state of an in-progress segment.
#[derive(Debug, Default)]
struct ProcWriter {
    seq: u64,
    /// Global entry index of the current segment's first entry.
    base_seq: u64,
    /// Header + *stored* payload bytes accumulated so far (raw entries
    /// for v1, sealed lzb frames for v2).
    buf: Vec<u8>,
    /// v2: uncompressed entry bytes waiting to be framed as a block.
    block_buf: Vec<u8>,
    /// v2: sealed `(uncompressed_len, stored_len)` per block.
    blocks: Vec<(u64, u64)>,
    /// v2: uncompressed payload bytes already framed into `buf`.
    uncomp_len: u64,
    payload_start: usize,
    /// Bytes of `buf` already flushed to the segment file.
    flushed: usize,
    /// The open segment file, once anything has been flushed.
    file: Option<std::fs::File>,
    entries: u64,
    offsets: Vec<u64>,
    counts: [u64; 6],
    logical_bytes: u64,
    min_time: u64,
    max_time: u64,
    digest: Vec<DigestEvent>,
}

/// Streaming writer of a segmented log directory: entries are appended
/// one at a time (the runtime calls it from every log write), and a
/// segment is sealed — footer built, CRC stamped, file flushed — as
/// soon as its payload reaches capacity, **while the program is still
/// running**. In the v2 formats each segment's payload is framed into
/// blocks as it grows, and [`SegmentWriter::flush`] pushes the sealed
/// frames to disk so a live reader can recover them before the segment
/// seals. [`SegmentWriter::finish`] seals the partial tails and
/// (re)writes the manifest.
#[derive(Debug)]
pub struct SegmentWriter {
    dir: PathBuf,
    capacity: usize,
    /// Uncompressed bytes per v2 block.
    block_bytes: usize,
    format: SegmentFormat,
    procs: Vec<ProcWriter>,
    /// First I/O failure; once set, appends become no-ops so a full
    /// disk cannot take the traced program down with it.
    error: Option<String>,
    report: SinkReport,
}

impl SegmentWriter {
    /// Creates `dir` (if needed), writes the manifest, and prepares one
    /// stream per process, in the default [`SegmentFormat`]. `capacity`
    /// is the payload size at which a segment seals; 0 means
    /// [`DEFAULT_SEGMENT_BYTES`].
    ///
    /// # Errors
    ///
    /// Returns [`SegError::Io`] if the directory or manifest cannot be
    /// written.
    pub fn create(
        dir: &Path,
        processes: usize,
        capacity: usize,
    ) -> Result<SegmentWriter, SegError> {
        Self::create_with(dir, processes, capacity, SegmentFormat::default())
    }

    /// [`create`](Self::create) with an explicit payload format.
    ///
    /// # Errors
    ///
    /// As [`create`](Self::create).
    pub fn create_with(
        dir: &Path,
        processes: usize,
        capacity: usize,
        format: SegmentFormat,
    ) -> Result<SegmentWriter, SegError> {
        std::fs::create_dir_all(dir).map_err(|e| io_err(dir, e))?;
        let capacity = if capacity == 0 { DEFAULT_SEGMENT_BYTES } else { capacity };
        let mut w = SegmentWriter {
            dir: dir.to_path_buf(),
            capacity,
            block_bytes: capacity.clamp(1, DEFAULT_BLOCK_BYTES),
            format,
            procs: (0..processes).map(|_| ProcWriter::default()).collect(),
            error: None,
            report: SinkReport::default(),
        };
        w.write_manifest(processes)?;
        for p in 0..processes {
            w.begin_segment(p);
        }
        Ok(w)
    }

    /// Overrides the uncompressed block target (v2 formats only) —
    /// used by tests and benches to force multi-block segments.
    pub fn with_block_bytes(mut self, bytes: usize) -> SegmentWriter {
        self.block_bytes = bytes.max(1);
        self
    }

    fn write_manifest(&self, processes: usize) -> Result<(), SegError> {
        let manifest = Manifest {
            format: "ppd-segmented-log".to_string(),
            version: self.format.version(),
            processes,
        };
        let path = self.dir.join(MANIFEST_NAME);
        let json =
            serde_json::to_string(&manifest).map_err(|e| SegError::Manifest(e.to_string()))?;
        std::fs::write(&path, json).map_err(|e| io_err(&path, e))
    }

    /// Starts a fresh segment buffer for process `p` (header only).
    fn begin_segment(&mut self, p: usize) {
        let version = self.format.version();
        let pw = &mut self.procs[p];
        pw.buf.clear();
        pw.buf.extend_from_slice(SEG_MAGIC);
        pw.buf.push(version);
        binio::put_varint(&mut pw.buf, u64::from(p as u32));
        binio::put_varint(&mut pw.buf, pw.seq);
        binio::put_varint(&mut pw.buf, pw.base_seq);
        pw.payload_start = pw.buf.len();
        pw.block_buf.clear();
        pw.blocks.clear();
        pw.uncomp_len = 0;
        pw.flushed = 0;
        pw.file = None;
        pw.entries = 0;
        pw.offsets.clear();
        pw.counts = [0; 6];
        pw.logical_bytes = 0;
        pw.min_time = u64::MAX;
        pw.max_time = 0;
        pw.digest.clear();
    }

    /// Appends one entry to `proc`'s stream, sealing blocks and the
    /// segment as targets are reached. A no-op after the first I/O
    /// error.
    pub fn append(&mut self, proc: ProcId, e: &LogEntry) {
        if self.error.is_some() {
            return;
        }
        let v1 = self.format == SegmentFormat::V1;
        let capacity = self.capacity;
        let block_bytes = self.block_bytes;
        let p = proc.index();
        let pw = &mut self.procs[p];
        if v1 {
            pw.offsets.push((pw.buf.len() - pw.payload_start) as u64);
            binio::put_entry(&mut pw.buf, e);
        } else {
            pw.offsets.push(pw.uncomp_len + pw.block_buf.len() as u64);
            binio::put_entry(&mut pw.block_buf, e);
        }
        pw.counts[kind_slot(e)] += 1;
        pw.logical_bytes += e.size_bytes() as u64;
        let t = e.time();
        pw.min_time = pw.min_time.min(t);
        pw.max_time = pw.max_time.max(t);
        if let Some(ev) = StructEvent::of_entry(pw.entries as usize, e) {
            pw.digest.push(DigestEvent {
                is_prelog: ev.is_prelog,
                pos: ev.pos as u64,
                eblock: ev.eblock.0,
                instance: ev.instance,
                time: ev.time,
            });
        }
        pw.entries += 1;
        self.report.entries += 1;
        if v1 {
            if pw.buf.len() - pw.payload_start >= capacity {
                self.seal(p, false);
            }
        } else if pw.uncomp_len as usize + pw.block_buf.len() >= capacity {
            self.seal(p, false);
        } else if pw.block_buf.len() >= block_bytes {
            self.seal_block(p);
        }
    }

    /// v2: frames the pending uncompressed block into the stored
    /// buffer (compressed, or through the raw escape).
    fn seal_block(&mut self, p: usize) {
        let compress = self.format.compressed();
        let pw = &mut self.procs[p];
        if pw.block_buf.is_empty() {
            return;
        }
        let stored = if compress {
            lzb::compress_into(&pw.block_buf, &mut pw.buf)
        } else {
            lzb::frame_raw_into(&pw.block_buf, &mut pw.buf)
        };
        pw.blocks.push((pw.block_buf.len() as u64, stored as u64));
        pw.uncomp_len += pw.block_buf.len() as u64;
        pw.block_buf.clear();
    }

    /// Writes `buf` bytes beyond the flush high-water mark to the
    /// segment file, creating it on first use. Only called once the
    /// segment has entries, so a crash never leaves a header-only file.
    fn flush_buf(&mut self, p: usize) {
        if self.error.is_some() {
            return;
        }
        let name = segment_file_name(p as u32, self.procs[p].seq);
        let path = self.dir.join(&name);
        let pw = &mut self.procs[p];
        if pw.entries == 0 || pw.flushed == pw.buf.len() {
            return;
        }
        let res = (|| -> std::io::Result<()> {
            if pw.file.is_none() {
                pw.file = Some(std::fs::File::create(&path)?);
            }
            pw.file.as_mut().expect("file just created").write_all(&pw.buf[pw.flushed..])
        })();
        match res {
            Ok(()) => pw.flushed = pw.buf.len(),
            Err(e) => self.error = Some(format!("{}: {e}", path.display())),
        }
    }

    /// Flushes every process's stream: pending v2 blocks are framed
    /// and all sealed bytes are pushed to disk. After a flush, a
    /// concurrent [`SegmentedLog::open`] (or
    /// [`SegmentedLog::refresh`]) of the directory recovers every
    /// flushed entry from the unsealed live tails.
    pub fn flush(&mut self) {
        for p in 0..self.procs.len() {
            if self.format != SegmentFormat::V1 {
                self.seal_block(p);
            }
            self.flush_buf(p);
        }
    }

    /// Seals process `p`'s current segment to disk and starts the
    /// next. With `force`, an empty first segment is still written so
    /// every manifest-listed process owns at least one file (an empty
    /// directory entry is indistinguishable from data loss otherwise).
    fn seal(&mut self, p: usize, force: bool) {
        if self.format != SegmentFormat::V1 {
            self.seal_block(p);
        }
        if self.procs[p].entries == 0 && !(force && self.procs[p].seq == 0) {
            return;
        }
        let v1 = self.format == SegmentFormat::V1;
        let name = segment_file_name(p as u32, self.procs[p].seq);
        let path = self.dir.join(&name);
        let (tail, buf_len) = {
            let pw = &mut self.procs[p];
            if pw.min_time == u64::MAX {
                pw.min_time = 0;
            }
            let payload_len =
                if v1 { (pw.buf.len() - pw.payload_start) as u64 } else { pw.uncomp_len };
            let mut footer = Vec::new();
            // Payload crc first (fixed width): covers header + stored
            // payload, i.e. everything already in `pw.buf`.
            footer.extend_from_slice(&crc32(&pw.buf).to_le_bytes());
            binio::put_varint(&mut footer, pw.entries);
            binio::put_varint(&mut footer, payload_len);
            binio::put_varint(&mut footer, pw.logical_bytes);
            for c in pw.counts {
                binio::put_varint(&mut footer, c);
            }
            binio::put_varint(&mut footer, pw.min_time);
            binio::put_varint(&mut footer, pw.max_time);
            binio::put_varint(&mut footer, pw.offsets.len() as u64);
            let mut prev = 0u64;
            for (i, &off) in pw.offsets.iter().enumerate() {
                binio::put_varint(&mut footer, if i == 0 { off } else { off - prev });
                prev = off;
            }
            binio::put_varint(&mut footer, pw.digest.len() as u64);
            let mut prev_pos = 0u64;
            for (i, ev) in pw.digest.iter().enumerate() {
                footer.push(u8::from(ev.is_prelog));
                binio::put_varint(&mut footer, if i == 0 { ev.pos } else { ev.pos - prev_pos });
                prev_pos = ev.pos;
                binio::put_varint(&mut footer, u64::from(ev.eblock));
                binio::put_varint(&mut footer, ev.instance);
                binio::put_varint(&mut footer, ev.time);
            }
            if !v1 {
                binio::put_varint(&mut footer, pw.blocks.len() as u64);
                for &(ulen, slen) in &pw.blocks {
                    binio::put_varint(&mut footer, ulen);
                    binio::put_varint(&mut footer, slen);
                }
            }
            let footer_crc = crc32(&footer);
            let mut tail = footer;
            let footer_len = tail.len() as u32;
            tail.extend_from_slice(&footer_len.to_le_bytes());
            tail.extend_from_slice(&footer_crc.to_le_bytes());
            tail.extend_from_slice(FOOT_MAGIC);
            (tail, pw.buf.len())
        };
        if self.error.is_none() {
            let pw = &mut self.procs[p];
            let res = (|| -> std::io::Result<()> {
                if pw.file.is_none() {
                    pw.file = Some(std::fs::File::create(&path)?);
                }
                let f = pw.file.as_mut().expect("file just created");
                f.write_all(&pw.buf[pw.flushed..])?;
                f.write_all(&tail)
            })();
            match res {
                Ok(()) => {
                    let total = (buf_len + tail.len()) as u64;
                    self.report.segments += 1;
                    self.report.bytes += total;
                    ppd_obs::global().counter("log.segments_sealed").inc();
                    ppd_obs::global().counter("log.segment_bytes_written").add(total);
                }
                Err(e) => {
                    self.error = Some(format!("{}: {e}", path.display()));
                }
            }
        }
        let pw = &mut self.procs[p];
        pw.file = None;
        pw.seq += 1;
        pw.base_seq += pw.entries;
        self.begin_segment(p);
    }

    /// The first I/O failure, if any (appends were dropped from that
    /// point on).
    pub fn error(&self) -> Option<&str> {
        self.error.as_deref()
    }

    /// Seals every partial tail segment and returns the write report.
    /// Processes that logged nothing still get an (empty) segment 0 —
    /// [`SegmentedLog::open`] treats a manifest-listed process with no
    /// files as corruption.
    ///
    /// # Errors
    ///
    /// Returns [`SegError::Io`] if any write (including earlier,
    /// already-recorded failures) occurred.
    pub fn finish(mut self) -> Result<SinkReport, SegError> {
        for p in 0..self.procs.len() {
            self.seal(p, true);
        }
        match self.error.take() {
            Some(detail) => {
                Err(SegError::Io { path: self.dir.clone(), err: std::io::Error::other(detail) })
            }
            None => Ok(self.report),
        }
    }
}

/// Packs an in-memory store into `dir` as a segmented log in the
/// default format.
///
/// # Errors
///
/// Returns [`SegError::Io`] if the directory or a segment cannot be
/// written.
pub fn write_store(store: &LogStore, dir: &Path, capacity: usize) -> Result<SinkReport, SegError> {
    write_store_with(store, dir, capacity, SegmentFormat::default())
}

/// [`write_store`] with an explicit payload format (`ppd log pack
/// --compress`).
///
/// # Errors
///
/// As [`write_store`].
pub fn write_store_with(
    store: &LogStore,
    dir: &Path,
    capacity: usize,
    format: SegmentFormat,
) -> Result<SinkReport, SegError> {
    let mut span = ppd_obs::span("log", "segment_pack");
    span.arg("procs", store.process_count());
    span.arg("compress", u64::from(format.compressed()));
    let mut w = SegmentWriter::create_with(dir, store.process_count(), capacity, format)?;
    for p in 0..store.process_count() {
        let proc = ProcId(p as u32);
        for e in &store.log(proc).entries {
            w.append(proc, e);
        }
    }
    w.finish()
}

// ---------------------------------------------------------------------
// Live-tail recovery
// ---------------------------------------------------------------------

/// The recovered prefix of an unsealed tail segment: every entry that
/// could be read back from the flushed bytes, plus the scan's
/// high-water mark so a later [`SegmentedLog::refresh`] resumes
/// instead of rescanning.
#[derive(Debug, Clone)]
pub struct RecoveredTail {
    file: String,
    version: u8,
    base_seq: u64,
    entries: Vec<LogEntry>,
    digest: Vec<DigestEvent>,
    counts: [u64; 6],
    logical_bytes: u64,
    /// File offset just past the last fully recovered record (an entry
    /// boundary for v1, a frame boundary for v2).
    scanned_bytes: usize,
    /// File length at scan time — a cheap "did it grow" probe.
    file_len: u64,
    /// Why the segment failed to parse as sealed.
    detail: String,
}

impl RecoveredTail {
    /// The tail segment's file name.
    pub fn file(&self) -> &str {
        &self.file
    }

    /// Recovered entries, in log order.
    pub fn entries(&self) -> &[LogEntry] {
        &self.entries
    }

    /// Number of recovered entries.
    pub fn entry_count(&self) -> u64 {
        self.entries.len() as u64
    }

    /// Global entry index (within the process log) of the first
    /// recovered entry.
    pub fn base_seq(&self) -> u64 {
        self.base_seq
    }

    /// File offset just past the last fully recovered record — the
    /// high-water mark a refresh resumes from.
    pub fn scanned_bytes(&self) -> usize {
        self.scanned_bytes
    }

    /// Why the segment was unsealed (the parse failure detail).
    pub fn detail(&self) -> &str {
        &self.detail
    }

    fn push_entry(&mut self, e: LogEntry) {
        self.counts[kind_slot(&e)] += 1;
        self.logical_bytes += e.size_bytes() as u64;
        if let Some(ev) = StructEvent::of_entry(self.entries.len(), &e) {
            self.digest.push(DigestEvent {
                is_prelog: ev.is_prelog,
                pos: ev.pos as u64,
                eblock: ev.eblock.0,
                instance: ev.instance,
                time: ev.time,
            });
        }
        self.entries.push(e);
    }
}

/// Scans an unsealed tail segment record-by-record to the last valid
/// entry. `Err(why)` means the file cannot be trusted at all (bad
/// header, or it does not continue the sealed chain) and must be
/// dropped. `resume` restarts an earlier scan from its high-water mark
/// instead of the payload start.
fn scan_tail(
    file: &str,
    bytes: &[u8],
    expect_proc: u32,
    expect_seq: u64,
    expect_base: u64,
    resume: Option<&RecoveredTail>,
    unsealed_detail: &str,
) -> Result<RecoveredTail, String> {
    if bytes.len() < SEG_MAGIC.len() + 1 {
        return Err(format!("file too short ({} bytes) for a segment header", bytes.len()));
    }
    if &bytes[..4] != SEG_MAGIC {
        return Err("bad segment magic".into());
    }
    let version = bytes[4];
    if version != SEGMENT_VERSION_V1 && version != SEGMENT_VERSION {
        return Err(format!("unsupported segment version {version}"));
    }
    let hdr = |e: BinError| format!("header decode failed: {e}");
    let mut h = Reader::with_base(&bytes[5..], 5);
    let proc = h.varint().map_err(hdr)? as u32;
    let seq = h.varint().map_err(hdr)?;
    let base_seq = h.varint().map_err(hdr)?;
    if proc != expect_proc || seq != expect_seq || base_seq != expect_base {
        return Err(format!(
            "header (process {proc}, segment {seq}, base {base_seq}) does not continue the \
             sealed chain (expected process {expect_proc}, segment {expect_seq}, base \
             {expect_base})"
        ));
    }
    let payload_start = h.offset();
    let mut tail = match resume {
        Some(old)
            if old.file == file
                && old.version == version
                && old.scanned_bytes >= payload_start
                && old.scanned_bytes <= bytes.len() =>
        {
            old.clone()
        }
        _ => RecoveredTail {
            file: file.to_string(),
            version,
            base_seq,
            entries: Vec::new(),
            digest: Vec::new(),
            counts: [0; 6],
            logical_bytes: 0,
            scanned_bytes: payload_start,
            file_len: 0,
            detail: String::new(),
        },
    };
    tail.file_len = bytes.len() as u64;
    tail.detail = unsealed_detail.to_string();
    if version == SEGMENT_VERSION_V1 {
        // Raw entry stream: decode until the bytes stop making sense.
        // v1 has no frame checksums, so guard against the scan running
        // off the real entries into footer bytes that happen to decode:
        // logical times are nondecreasing within a process, and a
        // decoded "entry" that time-travels is garbage.
        let mut r = Reader::with_base(&bytes[tail.scanned_bytes..], tail.scanned_bytes);
        let mut last_time = tail.entries.last().map(LogEntry::time).unwrap_or(0);
        while r.remaining() > 0 {
            match binio::get_entry(&mut r) {
                Ok(e) if e.time() >= last_time => {
                    last_time = e.time();
                    tail.push_entry(e);
                    tail.scanned_bytes = r.offset();
                }
                _ => break,
            }
        }
    } else {
        // Framed stream: every frame is checksummed and holds whole
        // entries, so recovery is exact — walk frames until one is
        // truncated or fails its crc, decode each in full.
        let mut data = Vec::new();
        while tail.scanned_bytes < bytes.len() {
            let at = tail.scanned_bytes;
            data.clear();
            let Ok(consumed) = lzb::decompress_into(&bytes[at..], &mut data) else { break };
            let mut r = Reader::new(&data);
            let mut pending = Vec::new();
            let mut clean = true;
            while r.remaining() > 0 {
                match binio::get_entry(&mut r) {
                    Ok(e) => pending.push(e),
                    Err(_) => {
                        clean = false;
                        break;
                    }
                }
            }
            if !clean {
                break;
            }
            for e in pending {
                tail.push_entry(e);
            }
            tail.scanned_bytes = at + consumed;
        }
    }
    Ok(tail)
}

// ---------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------

/// One mapped, footer-verified segment.
#[derive(Debug)]
struct LoadedSegment {
    map: Mapping,
    meta: SegmentMeta,
}

/// An opened segmented log directory: every sealed segment mapped and
/// its footer verified, **no payload decoded**; unsealed live tails
/// scanned to their last valid entry. Per-process entry vectors
/// materialize lazily (and at most once) when a replay or raw-entry
/// query actually touches that process.
#[derive(Debug)]
pub struct SegmentedLog {
    dir: PathBuf,
    /// Per process: its sealed segments in sequence order. `Arc` so a
    /// [`refresh`](Self::refresh) can carry unchanged segments over
    /// without re-reading their footers.
    procs: Vec<Vec<Arc<LoadedSegment>>>,
    /// Per process: the recovered unsealed tail, if any.
    tails: Vec<Option<Arc<RecoveredTail>>>,
    warnings: Vec<String>,
    /// Lazily decoded per-process logs.
    decoded: Vec<OnceLock<ProcessLog>>,
    /// The footer-built interval index, cached after its first load.
    index_cache: OnceLock<Arc<IntervalIndex>>,
    /// How many entries have been decoded since open — the scan
    /// counter the no-full-rescan acceptance test asserts on.
    entries_decoded: AtomicU64,
    /// How many v2 payload blocks have been decompressed since open —
    /// the counter the block-seeking tests assert on.
    blocks_decompressed: AtomicU64,
    /// How many stored payload bytes have been read (mapped v1 slices
    /// or compressed v2 frames) since open.
    bytes_read: AtomicU64,
    /// Per process, per sealed segment: access-heatmap counters,
    /// parallel to `procs`.
    heat: Vec<Vec<SegHeat>>,
    /// Set when this log was produced by [`refresh`](Self::refresh).
    refreshed: Option<RefreshStats>,
}

/// Access counters for one sealed segment.
#[derive(Debug, Default)]
struct SegHeat {
    entries: AtomicU64,
    blocks: AtomicU64,
    bytes: AtomicU64,
}

/// One sealed segment's access-heatmap counters: how much of it this
/// session actually decoded. Segments never touched report all zeros —
/// on a large store the non-zero rows show exactly which parts a
/// debugging session paid for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeatRecord {
    /// Segment file name.
    pub file: String,
    /// Owning process.
    pub proc: u32,
    /// Segment sequence number within the process.
    pub seq: u64,
    /// Entries decoded from this segment since open.
    pub entries_decoded: u64,
    /// Compressed blocks inflated from this segment since open.
    pub blocks_inflated: u64,
    /// Stored payload bytes read from this segment since open.
    pub bytes_read: u64,
}

impl SegmentedLog {
    /// Opens a log directory: reads the manifest, maps every `.seg`
    /// file, and parses/CRC-checks footers only. An unsealed **final**
    /// segment of a process is scanned for recoverable entries (the
    /// live tail of a still-running or killed writer); an invalid
    /// segment anywhere else is an error.
    ///
    /// # Errors
    ///
    /// Returns [`SegError`] on I/O failure, a missing/bad manifest,
    /// non-tail corruption, or a manifest-listed process with no
    /// segment files at all.
    pub fn open(dir: &Path) -> Result<SegmentedLog, SegError> {
        let jobs = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        Self::open_with_jobs(dir, jobs)
    }

    /// [`open`](Self::open) with an explicit worker count: segments are
    /// mapped and their footers CRC-checked and parsed concurrently —
    /// the per-segment work is independent, and at multi-GB sizes the
    /// CRC pass dominates the open cost.
    ///
    /// # Errors
    ///
    /// As [`open`](Self::open).
    pub fn open_with_jobs(dir: &Path, jobs: usize) -> Result<SegmentedLog, SegError> {
        Self::open_inner(dir, jobs, None)
    }

    /// Re-opens this log's directory cheaply: sealed segments already
    /// loaded are reused by `(proc, seq)` (they are immutable once
    /// written), a previously scanned live tail resumes from its
    /// high-water mark, and — if the index was already built — it is
    /// extended with just the new digest events instead of rebuilt.
    /// Decoded entry caches are *not* carried over (they would need a
    /// deep clone); they re-materialize lazily as before.
    ///
    /// # Errors
    ///
    /// As [`open`](Self::open).
    pub fn refresh(&self) -> Result<SegmentedLog, SegError> {
        let jobs = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        Self::open_inner(&self.dir, jobs, Some(self))
    }

    fn open_inner(
        dir: &Path,
        jobs: usize,
        prior: Option<&SegmentedLog>,
    ) -> Result<SegmentedLog, SegError> {
        let mut span = ppd_obs::span("log", "segment_open");
        span.arg("jobs", jobs);
        span.arg("refresh", u64::from(prior.is_some()));
        let manifest_path = dir.join(MANIFEST_NAME);
        let manifest_json =
            std::fs::read_to_string(&manifest_path).map_err(|e| io_err(&manifest_path, e))?;
        let manifest: Manifest =
            serde_json::from_str(&manifest_json).map_err(|e| SegError::Manifest(e.to_string()))?;
        if manifest.format != "ppd-segmented-log" {
            return Err(SegError::Manifest(format!("unknown format `{}`", manifest.format)));
        }
        if manifest.version != SEGMENT_VERSION_V1 && manifest.version != SEGMENT_VERSION {
            return Err(SegError::Manifest(format!(
                "unsupported segmented-log version {}",
                manifest.version
            )));
        }
        let mut stats = RefreshStats::default();

        // Collect segment files as (proc, seq, name), sorted numerically.
        let mut files: Vec<(u32, u64, String)> = Vec::new();
        let rd = std::fs::read_dir(dir).map_err(|e| io_err(dir, e))?;
        for ent in rd {
            let ent = ent.map_err(|e| io_err(dir, e))?;
            let name = ent.file_name().to_string_lossy().into_owned();
            if let Some((proc, seq)) = parse_file_name(&name) {
                files.push((proc, seq, name));
            }
        }
        files.sort();

        // Sealed segments already loaded by a prior open are immutable
        // on disk; a refresh reuses them without re-reading a byte.
        let reuse: HashMap<(u32, u64), Arc<LoadedSegment>> = prior
            .map(|pl| {
                pl.procs
                    .iter()
                    .flatten()
                    .map(|s| ((s.meta.proc, s.meta.seq), Arc::clone(s)))
                    .collect()
            })
            .unwrap_or_default();

        // Map + parse every (new) segment concurrently: each file's CRC
        // check and footer decode is independent of the others.
        enum FileParse {
            Reused(Arc<LoadedSegment>),
            Sealed(Box<LoadedSegment>),
            Io(std::io::Error),
            Unsealed(Box<Mapping>, String),
        }
        let parse_one = |triple: &(u32, u64, String)| {
            let (proc, seq, name) = triple;
            if let Some(seg) = reuse.get(&(*proc, *seq)) {
                return FileParse::Reused(Arc::clone(seg));
            }
            let path = dir.join(name);
            match Mapping::open(&path) {
                Err(e) => FileParse::Io(e),
                Ok(map) => match parse_segment(name, &map) {
                    Ok(meta) => FileParse::Sealed(Box::new(LoadedSegment { map, meta })),
                    Err(detail) => FileParse::Unsealed(Box::new(map), detail),
                },
            }
        };
        let parsed: Vec<FileParse> = if jobs <= 1 || files.len() <= 1 {
            files.iter().map(parse_one).collect()
        } else {
            use rayon::prelude::*;
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(jobs.min(files.len()))
                .build()
                .expect("thread pool build is infallible");
            pool.install(|| files.par_iter().map(parse_one).collect())
        };

        let mut procs: Vec<Vec<Arc<LoadedSegment>>> =
            (0..manifest.processes).map(|_| Vec::new()).collect();
        let mut pending_tails: Vec<Option<(String, Mapping, String)>> =
            (0..manifest.processes).map(|_| None).collect();
        let mut warnings = Vec::new();
        for (i, ((proc, seq, name), outcome)) in files.iter().zip(parsed).enumerate() {
            let is_proc_tail = files.get(i + 1).map(|f| f.0) != Some(*proc);
            if *proc as usize >= manifest.processes {
                return Err(SegError::Corrupt {
                    file: name.clone(),
                    detail: format!(
                        "process {proc} out of range (manifest has {})",
                        manifest.processes
                    ),
                });
            }
            match outcome {
                FileParse::Io(e) => return Err(io_err(&dir.join(name), e)),
                FileParse::Reused(seg) => {
                    stats.segments_reused += 1;
                    procs[*proc as usize].push(seg);
                }
                FileParse::Sealed(seg) => {
                    stats.segments_parsed += 1;
                    if seg.meta.proc != *proc || seg.meta.seq != *seq {
                        return Err(SegError::Corrupt {
                            file: name.clone(),
                            detail: format!(
                                "header says process {} segment {}, file name says process {proc} segment {seq}",
                                seg.meta.proc, seg.meta.seq
                            ),
                        });
                    }
                    procs[*proc as usize].push(Arc::from(seg));
                }
                FileParse::Unsealed(map, detail) if is_proc_tail => {
                    // The live tail (or the flush the writer died in):
                    // scanned for recoverable entries once the sealed
                    // chain below it is validated.
                    pending_tails[*proc as usize] = Some((name.clone(), *map, detail));
                }
                FileParse::Unsealed(_, detail) => {
                    return Err(SegError::Corrupt { file: name.clone(), detail })
                }
            }
        }

        // Per-process continuity: sequence numbers and base_seq chains.
        for (p, segs) in procs.iter().enumerate() {
            let mut expected_base = 0u64;
            for (k, seg) in segs.iter().enumerate() {
                if seg.meta.seq != k as u64 {
                    return Err(SegError::Corrupt {
                        file: seg.meta.file.clone(),
                        detail: format!(
                            "process {p} segment sequence gap: expected {k}, found {}",
                            seg.meta.seq
                        ),
                    });
                }
                if seg.meta.base_seq != expected_base {
                    return Err(SegError::Corrupt {
                        file: seg.meta.file.clone(),
                        detail: format!(
                            "base entry index {} does not continue previous segments ({expected_base})",
                            seg.meta.base_seq
                        ),
                    });
                }
                expected_base += seg.meta.entry_count;
            }
        }

        // Scan pending live tails now that the sealed chain (and hence
        // the expected seq/base of each tail) is validated.
        let mut tails: Vec<Option<Arc<RecoveredTail>>> =
            (0..manifest.processes).map(|_| None).collect();
        for (p, slot) in pending_tails.into_iter().enumerate() {
            let Some((name, map, detail)) = slot else { continue };
            let expect_seq = procs[p].len() as u64;
            let expect_base: u64 = procs[p].iter().map(|s| s.meta.entry_count).sum();
            let prior_tail = prior
                .and_then(|pl| pl.tails.get(p))
                .and_then(|t| t.as_ref())
                .filter(|t| t.file == name);
            if let Some(arc) = prior_tail {
                if arc.file_len == map.len() as u64 {
                    // Unchanged since the last scan — reuse verbatim.
                    warnings.push(format!(
                        "recovered {} entries from unsealed tail segment {name} of process {p}: {}",
                        arc.entries.len(),
                        arc.detail
                    ));
                    tails[p] = Some(Arc::clone(arc));
                    continue;
                }
                stats.tails_resumed += 1;
            }
            match scan_tail(
                &name,
                &map,
                p as u32,
                expect_seq,
                expect_base,
                prior_tail.map(|a| a.as_ref()),
                &detail,
            ) {
                Ok(tail) if !tail.entries.is_empty() => {
                    warnings.push(format!(
                        "recovered {} entries from unsealed tail segment {name} of process {p}: {detail}",
                        tail.entries.len()
                    ));
                    tails[p] = Some(Arc::new(tail));
                }
                Ok(_) => warnings.push(format!(
                    "dropped unsealed tail segment {name} of process {p}: no recoverable entries ({detail})"
                )),
                Err(why) => warnings.push(format!(
                    "dropped unsealed tail segment {name} of process {p}: {why}"
                )),
            }
        }

        // A manifest-listed process with no files at all is data loss,
        // not an empty log: the writer always seals at least (an empty)
        // segment 0 per process.
        for p in 0..manifest.processes {
            if procs[p].is_empty() && tails[p].is_none() {
                return Err(SegError::Corrupt {
                    file: segment_file_name(p as u32, 0),
                    detail: format!(
                        "process {p} has no segment files in {} (manifest lists {} processes)",
                        dir.display(),
                        manifest.processes
                    ),
                });
            }
        }

        let total_segments: usize = procs.iter().map(Vec::len).sum();
        span.arg("files", total_segments);
        span.arg("procs", manifest.processes);
        ppd_obs::global().counter("log.segments_opened").add(total_segments as u64);
        ppd_obs::flight::note_with(
            "log",
            "segment_open",
            format!("dir={} segments={total_segments} procs={}", dir.display(), manifest.processes),
        );
        for w in &warnings {
            ppd_obs::flight::note_with("log", "recovery", w.clone());
        }
        let heat =
            procs.iter().map(|segs| segs.iter().map(|_| SegHeat::default()).collect()).collect();
        let mut log = SegmentedLog {
            dir: dir.to_path_buf(),
            decoded: (0..manifest.processes).map(|_| OnceLock::new()).collect(),
            procs,
            tails,
            warnings,
            index_cache: OnceLock::new(),
            entries_decoded: AtomicU64::new(0),
            blocks_decompressed: AtomicU64::new(0),
            bytes_read: AtomicU64::new(0),
            heat,
            refreshed: None,
        };
        // Seed the index incrementally: everything the prior open had
        // indexed is still a prefix of this directory (segments are
        // append-only and recovery scans resume), so only digest
        // events at or beyond the old per-process totals are fed in.
        if let Some(prev) = prior {
            if let Some(old_idx) = prev.index_cache.get() {
                let old_totals: Vec<u64> =
                    (0..prev.procs.len()).map(|p| prev.proc_total_entries(p)).collect();
                let ext = log.extend_index(old_idx, &old_totals);
                let _ = log.index_cache.set(Arc::new(ext));
                stats.index_extended = true;
            }
            log.refreshed = Some(stats);
        }
        Ok(log)
    }

    /// The directory this log was opened from.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of processes (from the manifest).
    pub fn process_count(&self) -> usize {
        self.procs.len()
    }

    /// Recovery warnings produced at open (recovered or dropped
    /// unsealed tails).
    pub fn warnings(&self) -> &[String] {
        &self.warnings
    }

    /// Sealed segment metadata, per process, in sequence order.
    pub fn segments(&self, proc: ProcId) -> impl Iterator<Item = &SegmentMeta> {
        self.procs[proc.index()].iter().map(|s| &s.meta)
    }

    /// The recovered unsealed tail of `proc`, if open found one.
    pub fn recovered_tail(&self, proc: ProcId) -> Option<&RecoveredTail> {
        self.tails[proc.index()].as_deref()
    }

    /// Entries recovered from unsealed tails, across all processes.
    pub fn recovered_entries(&self) -> u64 {
        self.tails.iter().flatten().map(|t| t.entries.len() as u64).sum()
    }

    /// What [`refresh`](Self::refresh) reused, when this log came from
    /// a refresh.
    pub fn refresh_stats(&self) -> Option<&RefreshStats> {
        self.refreshed.as_ref()
    }

    fn proc_total_entries(&self, p: usize) -> u64 {
        self.procs[p].iter().map(|s| s.meta.entry_count).sum::<u64>()
            + self.tails[p].as_ref().map_or(0, |t| t.entries.len() as u64)
    }

    /// Total entries (sealed + recovered tails), from footers alone.
    pub fn total_entries(&self) -> u64 {
        (0..self.procs.len()).map(|p| self.proc_total_entries(p)).sum()
    }

    /// Total logical log bytes (sum of [`LogEntry::size_bytes`]), from
    /// footers alone.
    pub fn total_logical_bytes(&self) -> u64 {
        self.procs.iter().flatten().map(|s| s.meta.logical_bytes).sum::<u64>()
            + self.tails.iter().flatten().map(|t| t.logical_bytes).sum::<u64>()
    }

    /// Total on-disk file bytes across sealed segments and tails.
    pub fn total_file_bytes(&self) -> u64 {
        self.procs.iter().flatten().map(|s| s.map.len() as u64).sum::<u64>()
            + self.tails.iter().flatten().map(|t| t.file_len).sum::<u64>()
    }

    /// Total *uncompressed* payload bytes across sealed segments.
    pub fn total_payload_bytes(&self) -> u64 {
        self.procs.iter().flatten().map(|s| s.meta.payload_len).sum()
    }

    /// Total *stored* payload bytes across sealed segments — compare
    /// with [`total_payload_bytes`](Self::total_payload_bytes) for the
    /// directory-wide compression ratio.
    pub fn total_stored_bytes(&self) -> u64 {
        self.procs.iter().flatten().map(|s| s.meta.stored_len).sum()
    }

    /// Entry counts in [`KIND_NAMES`] order, from footers alone.
    pub fn counts_by_kind(&self) -> [u64; 6] {
        let mut counts = [0u64; 6];
        for s in self.procs.iter().flatten() {
            for (slot, c) in s.meta.counts.iter().enumerate() {
                counts[slot] += c;
            }
        }
        for t in self.tails.iter().flatten() {
            for (slot, c) in t.counts.iter().enumerate() {
                counts[slot] += c;
            }
        }
        counts
    }

    /// How many entries have been decoded from sealed payloads since
    /// open. Stays 0 across open + index load + structural queries —
    /// that is the "no full rescan" guarantee, and the acceptance test
    /// asserts exactly this. (Tail entries were decoded by the
    /// recovery scan at open and are not re-counted.)
    pub fn entries_decoded(&self) -> u64 {
        self.entries_decoded.load(Ordering::Relaxed)
    }

    /// How many v2 payload blocks have been decompressed since open.
    pub fn blocks_decompressed(&self) -> u64 {
        self.blocks_decompressed.load(Ordering::Relaxed)
    }

    /// Stored payload bytes read since open (mapped v1 slices and
    /// compressed v2 frames actually consumed).
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read.load(Ordering::Relaxed)
    }

    /// The per-segment access heatmap: one record per sealed segment
    /// (all processes, sequence order) with the entries / blocks /
    /// bytes this session has decoded from it. Untouched segments
    /// report zeros.
    pub fn access_heatmap(&self) -> Vec<HeatRecord> {
        self.procs
            .iter()
            .zip(&self.heat)
            .flat_map(|(segs, heats)| {
                segs.iter().zip(heats).map(|(seg, h)| HeatRecord {
                    file: seg.meta.file.clone(),
                    proc: seg.meta.proc,
                    seq: seg.meta.seq,
                    entries_decoded: h.entries.load(Ordering::Relaxed),
                    blocks_inflated: h.blocks.load(Ordering::Relaxed),
                    bytes_read: h.bytes.load(Ordering::Relaxed),
                })
            })
            .collect()
    }

    /// Records a read of `entries` / `blocks` / `bytes` against one
    /// segment's heatmap slot and the store-wide + global counters.
    /// (`entries_decoded` totals are bumped by the callers, which also
    /// count tail entries.)
    fn note_read(&self, seg: &LoadedSegment, entries: u64, blocks: u64, bytes: u64) {
        let h = &self.heat[seg.meta.proc as usize][seg.meta.seq as usize];
        h.entries.fetch_add(entries, Ordering::Relaxed);
        h.blocks.fetch_add(blocks, Ordering::Relaxed);
        h.bytes.fetch_add(bytes, Ordering::Relaxed);
        self.blocks_decompressed.fetch_add(blocks, Ordering::Relaxed);
        self.bytes_read.fetch_add(bytes, Ordering::Relaxed);
        if blocks > 0 {
            ppd_obs::global().counter("log.segment_blocks_inflated").add(blocks);
        }
        if bytes > 0 {
            ppd_obs::global().counter("log.segment_bytes_read").add(bytes);
        }
    }

    /// Whether every mapped segment is backed by a real `mmap` (as
    /// opposed to the heap-read fallback).
    pub fn fully_mapped(&self) -> bool {
        self.procs.iter().flatten().all(|s| s.map.is_mapped())
    }

    /// The footer-built interval index, cached after the first load.
    pub fn index(&self) -> Arc<IntervalIndex> {
        Arc::clone(self.index_cache.get_or_init(|| Arc::new(self.index_from_footers())))
    }

    fn digest_event(seg_base: u64, ev: &DigestEvent) -> StructEvent {
        StructEvent {
            pos: (seg_base + ev.pos) as usize,
            is_prelog: ev.is_prelog,
            eblock: ppd_analysis::EBlockId(ev.eblock),
            instance: ev.instance,
            time: ev.time,
        }
    }

    /// The interval index, rebuilt from footer digests (sealed
    /// segments *and* recovered tails) — no payload bytes are touched.
    /// Identical to what a full entry scan would build, because both
    /// feed the same stack-matching builder.
    pub fn index_from_footers(&self) -> IntervalIndex {
        // Streamed straight out of the decoded footers — at millions of
        // intervals, materializing the events first costs more than the
        // index build itself.
        let streams = (0..self.procs.len())
            .map(|p| {
                let hint: usize =
                    self.procs[p].iter().map(|seg| seg.meta.digest.len()).sum::<usize>()
                        + self.tails[p].as_ref().map_or(0, |t| t.digest.len());
                let sealed = self.procs[p].iter().flat_map(|seg| {
                    seg.meta.digest.iter().map(move |ev| Self::digest_event(seg.meta.base_seq, ev))
                });
                let tail = self.tails[p].as_deref().into_iter().flat_map(|t| {
                    t.digest.iter().map(move |ev| Self::digest_event(t.base_seq, ev))
                });
                (ProcId(p as u32), hint, sealed.chain(tail))
            })
            .collect();
        IntervalIndex::build_from_events(streams)
    }

    /// Extends a previous open's index with only the digest events at
    /// or beyond that open's per-process entry totals — the refresh
    /// fast path. The open-interval stacks saved in the old index
    /// resume exactly where the prior build stopped.
    fn extend_index(&self, old: &IntervalIndex, old_totals: &[u64]) -> IntervalIndex {
        let streams = (0..self.procs.len())
            .map(|p| {
                let skip = old_totals.get(p).copied().unwrap_or(0) as usize;
                let hint: usize =
                    self.procs[p].iter().map(|seg| seg.meta.digest.len()).sum::<usize>()
                        + self.tails[p].as_ref().map_or(0, |t| t.digest.len());
                let sealed = self.procs[p].iter().flat_map(|seg| {
                    seg.meta.digest.iter().map(move |ev| Self::digest_event(seg.meta.base_seq, ev))
                });
                let tail = self.tails[p].as_deref().into_iter().flat_map(|t| {
                    t.digest.iter().map(move |ev| Self::digest_event(t.base_seq, ev))
                });
                (ProcId(p as u32), hint, sealed.chain(tail).filter(move |ev| ev.pos >= skip))
            })
            .collect();
        old.extend_from_events(streams)
    }

    /// The uncompressed payload of one sealed segment: borrowed
    /// straight from the mapping for v1, decompressed block-by-block
    /// for v2.
    fn segment_payload<'a>(&self, seg: &'a LoadedSegment) -> Result<Cow<'a, [u8]>, SegError> {
        if seg.meta.version == SEGMENT_VERSION_V1 {
            let end = seg.meta.payload_start + seg.meta.payload_len as usize;
            self.note_read(seg, 0, 0, seg.meta.payload_len);
            return Ok(Cow::Borrowed(&seg.map[seg.meta.payload_start..end]));
        }
        let mut out = Vec::with_capacity(seg.meta.payload_len as usize);
        let mut at = seg.meta.payload_start;
        for (i, b) in seg.meta.blocks.iter().enumerate() {
            let n = lzb::decompress_into(&seg.map[at..], &mut out).map_err(|e| {
                SegError::Corrupt { file: seg.meta.file.clone(), detail: format!("block {i}: {e}") }
            })?;
            if n != b.stored_len as usize || out.len() as u64 != b.uncomp_off + b.uncomp_len {
                return Err(SegError::Corrupt {
                    file: seg.meta.file.clone(),
                    detail: format!("block {i} sizes disagree with the footer block table"),
                });
            }
            at += n;
        }
        self.note_read(seg, 0, seg.meta.blocks.len() as u64, seg.meta.stored_len);
        Ok(Cow::Owned(out))
    }

    /// Decodes one process's payloads into an entry vector, straight
    /// from the mapped (v1) or block-decompressed (v2) bytes, with the
    /// recovered tail appended.
    fn try_decode_proc(&self, proc: ProcId) -> Result<ProcessLog, SegError> {
        let mut span = ppd_obs::span("log", "segment_decode");
        span.arg("proc", proc.index());
        let mut entries = Vec::new();
        for seg in &self.procs[proc.index()] {
            let payload = self.segment_payload(seg)?;
            let mut r = Reader::new(&payload);
            for _ in 0..seg.meta.entry_count {
                let e = binio::get_entry(&mut r)
                    .map_err(|err| SegError::Decode(err.with_context(seg.meta.file.clone())))?;
                entries.push(e);
            }
            self.note_read(seg, seg.meta.entry_count, 0, 0);
        }
        let sealed = entries.len();
        if let Some(t) = &self.tails[proc.index()] {
            entries.extend(t.entries.iter().cloned());
        }
        span.arg("entries", entries.len());
        self.entries_decoded.fetch_add(sealed as u64, Ordering::Relaxed);
        ppd_obs::global().counter("log.segment_entries_decoded").add(sealed as u64);
        Ok(ProcessLog { entries })
    }

    /// The decoded log of one process, materialized on first use and
    /// cached. Panics on a decode failure *behind* a valid CRC — that
    /// would be a writer bug, not an I/O accident; `verify()` reports
    /// such states gracefully instead.
    pub fn process_log(&self, proc: ProcId) -> &ProcessLog {
        self.decoded[proc.index()].get_or_init(|| {
            self.try_decode_proc(proc)
                .unwrap_or_else(|e| panic!("segment payload decode failed after CRC pass: {e}"))
        })
    }

    /// Decodes the half-open global entry range `[start, end)` of one
    /// process **without** materializing the whole log: for v2
    /// segments only the blocks covering the range are decompressed
    /// (binary search over the footer block table), for v1 the mapped
    /// bytes are sliced by the footer offsets; the recovered tail is
    /// served from memory.
    ///
    /// # Errors
    ///
    /// Returns [`SegError`] if a covering block fails its checksum or
    /// an entry fails to decode.
    pub fn entries_in_range(
        &self,
        proc: ProcId,
        start: u64,
        end: u64,
    ) -> Result<Vec<LogEntry>, SegError> {
        let p = proc.index();
        let mut out = Vec::new();
        if end <= start {
            return Ok(out);
        }
        let mut from_disk = 0u64;
        for seg in &self.procs[p] {
            let base = seg.meta.base_seq;
            let count = seg.meta.entry_count;
            if count == 0 || base + count <= start {
                continue;
            }
            if base >= end {
                break;
            }
            let lo = start.max(base) - base;
            let hi = end.min(base + count) - base;
            let from_off = seg.meta.offsets[lo as usize];
            let to_off = seg.meta.offsets.get(hi as usize).copied().unwrap_or(seg.meta.payload_len);
            let decode_err =
                |err: BinError| SegError::Decode(err.with_context(seg.meta.file.clone()));
            if seg.meta.version == SEGMENT_VERSION_V1 {
                let s = seg.meta.payload_start + from_off as usize;
                let e = seg.meta.payload_start + to_off as usize;
                let mut r = Reader::new(&seg.map[s..e]);
                for _ in lo..hi {
                    out.push(binio::get_entry(&mut r).map_err(decode_err)?);
                }
                self.note_read(seg, hi - lo, 0, to_off - from_off);
            } else {
                let blocks = seg.meta.blocks();
                let first = blocks.partition_point(|b| b.uncomp_off + b.uncomp_len <= from_off);
                let mut data = Vec::new();
                let start_at = seg.meta.payload_start + blocks[first].stored_off as usize;
                let mut at = start_at;
                let mut k = first;
                while k < blocks.len() && blocks[k].uncomp_off < to_off {
                    let n = lzb::decompress_into(&seg.map[at..], &mut data).map_err(|e| {
                        SegError::Corrupt {
                            file: seg.meta.file.clone(),
                            detail: format!("block {k}: {e}"),
                        }
                    })?;
                    at += n;
                    k += 1;
                }
                self.note_read(seg, hi - lo, (k - first) as u64, (at - start_at) as u64);
                let rel = (from_off - blocks[first].uncomp_off) as usize;
                let rel_end = (to_off - blocks[first].uncomp_off) as usize;
                let mut r = Reader::new(&data[rel..rel_end]);
                for _ in lo..hi {
                    out.push(binio::get_entry(&mut r).map_err(decode_err)?);
                }
            }
            from_disk += hi - lo;
        }
        if let Some(t) = &self.tails[p] {
            let base = t.base_seq;
            let count = t.entries.len() as u64;
            if count > 0 && base < end && base + count > start {
                let lo = (start.max(base) - base) as usize;
                let hi = (end.min(base + count) - base) as usize;
                out.extend(t.entries[lo..hi].iter().cloned());
            }
        }
        self.entries_decoded.fetch_add(from_disk, Ordering::Relaxed);
        ppd_obs::global().counter("log.segment_entries_decoded").add(from_disk);
        Ok(out)
    }

    /// Decodes every process's payload concurrently on a work-stealing
    /// pool of `jobs` threads (the `from_binary_par` analogue for
    /// segment directories). Idempotent.
    pub fn preload(&self, jobs: usize) {
        if jobs <= 1 || self.procs.len() <= 1 {
            for p in 0..self.procs.len() {
                self.process_log(ProcId(p as u32));
            }
            return;
        }
        use rayon::prelude::*;
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(jobs)
            .build()
            .expect("thread pool build is infallible");
        let procs: Vec<ProcId> = (0..self.procs.len()).map(|p| ProcId(p as u32)).collect();
        let _: Vec<()> = pool.install(|| {
            procs
                .par_iter()
                .map(|&p| {
                    self.process_log(p);
                })
                .collect()
        });
    }

    /// Full integrity check of one segment; returns its entry count.
    fn verify_segment(&self, seg: &LoadedSegment) -> Result<u64, SegError> {
        let corrupt = |detail: String| SegError::Corrupt { file: seg.meta.file.clone(), detail };
        // The payload crc covers header + *stored* payload — checked
        // first so a flipped bit is pinned to the checksum, whether it
        // lands in a raw v1 payload or inside a compressed frame.
        let stored_end = seg.meta.payload_start + seg.meta.stored_len as usize;
        let actual_crc = crc32(&seg.map[..stored_end]);
        if actual_crc != seg.meta.payload_crc {
            return Err(corrupt(format!(
                "payload crc mismatch (stored {:#010x}, computed {actual_crc:#010x})",
                seg.meta.payload_crc
            )));
        }
        let payload = self.segment_payload(seg)?;
        if payload.len() as u64 != seg.meta.payload_len {
            return Err(corrupt(format!(
                "decoded payload is {} bytes, footer says {}",
                payload.len(),
                seg.meta.payload_len
            )));
        }
        let mut r = Reader::new(&payload);
        let mut digest = seg.meta.digest.iter();
        let mut entries = 0u64;
        for i in 0..seg.meta.entry_count {
            let at = r.offset() as u64;
            if seg.meta.offsets.get(i as usize) != Some(&at) {
                return Err(corrupt(format!(
                    "entry {i} starts at payload offset {at}, footer says {:?}",
                    seg.meta.offsets.get(i as usize)
                )));
            }
            let e = binio::get_entry(&mut r)
                .map_err(|err| SegError::Decode(err.with_context(seg.meta.file.clone())))?;
            if e.time() < seg.meta.min_time || e.time() > seg.meta.max_time {
                return Err(corrupt(format!(
                    "entry {i} time {} outside footer span [{}, {}]",
                    e.time(),
                    seg.meta.min_time,
                    seg.meta.max_time
                )));
            }
            if let Some(ev) = StructEvent::of_entry(i as usize, &e) {
                let expected = DigestEvent {
                    is_prelog: ev.is_prelog,
                    pos: i,
                    eblock: ev.eblock.0,
                    instance: ev.instance,
                    time: ev.time,
                };
                if digest.next() != Some(&expected) {
                    return Err(corrupt(format!("digest disagrees with decoded entry {i}")));
                }
            }
            entries += 1;
        }
        if r.remaining() != 0 {
            return Err(corrupt(format!(
                "{} payload bytes beyond the footer's entry count",
                r.remaining()
            )));
        }
        if digest.next().is_some() {
            return Err(corrupt("digest has events beyond the payload".to_string()));
        }
        Ok(entries)
    }

    /// Full integrity check: checks every segment's payload CRC (open
    /// only checks footer CRCs), decompresses and decodes every
    /// payload, and cross-checks footer metadata (entry counts, offset
    /// tables, block tables, digests, time spans) against the decoded
    /// entries.
    ///
    /// # Errors
    ///
    /// Returns the first inconsistency found (in file order).
    pub fn verify(&self) -> Result<VerifyReport, SegError> {
        let jobs = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        self.verify_with_jobs(jobs)
    }

    /// [`verify`](Self::verify) over an explicit worker count: the
    /// per-segment CRC + block decompression + decode passes are
    /// independent, so they run concurrently on the vendored
    /// work-stealing pool.
    ///
    /// # Errors
    ///
    /// As [`verify`](Self::verify).
    pub fn verify_with_jobs(&self, jobs: usize) -> Result<VerifyReport, SegError> {
        let segs: Vec<&Arc<LoadedSegment>> = self.procs.iter().flatten().collect();
        let results: Vec<Result<u64, SegError>> = if jobs <= 1 || segs.len() <= 1 {
            segs.iter().map(|s| self.verify_segment(s)).collect()
        } else {
            use rayon::prelude::*;
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(jobs.min(segs.len()))
                .build()
                .expect("thread pool build is infallible");
            pool.install(|| segs.par_iter().map(|s| self.verify_segment(s)).collect())
        };
        let mut report = VerifyReport {
            segments: segs.len(),
            entries: 0,
            recovered: self.recovered_entries(),
            warnings: self.warnings.clone(),
        };
        for r in results {
            report.entries += r?;
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppd_analysis::EBlockId;
    use ppd_lang::{Value, VarId};

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("ppd-segment-tests").join(name);
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn prelog(b: u32, i: u64, t: u64) -> LogEntry {
        LogEntry::Prelog { eblock: EBlockId(b), instance: i, values: vec![], time: t }
    }

    fn postlog(b: u32, i: u64, t: u64) -> LogEntry {
        LogEntry::Postlog {
            eblock: EBlockId(b),
            instance: i,
            values: vec![(VarId(0), Value::Int(t as i64))],
            ret: None,
            time: t,
        }
    }

    /// Two processes, nested and open intervals, enough entries to
    /// force several segments at a small capacity.
    fn sample_store(rounds: u64) -> LogStore {
        let mut s = LogStore::new(2);
        let mut t = 0;
        for i in 0..rounds {
            t += 1;
            s.push(ProcId(0), prelog(0, i, t));
            t += 1;
            s.push(ProcId(0), LogEntry::Input { value: -(i as i64), time: t });
            t += 1;
            s.push(ProcId(0), prelog(1, i, t));
            t += 1;
            s.push(ProcId(0), postlog(1, i, t));
            t += 1;
            s.push(ProcId(0), postlog(0, i, t));
            t += 1;
            s.push(ProcId(1), LogEntry::Receive { value: i as i64, time: t });
            t += 1;
            s.push(ProcId(1), prelog(2, i, t));
        }
        s
    }

    /// The entries of `s` round-trip byte-identically through a
    /// directory written in `format`.
    fn assert_round_trip(s: &LogStore, dir: &Path, capacity: usize, format: SegmentFormat) {
        let report = write_store_with(s, dir, capacity, format).unwrap();
        assert_eq!(report.entries, s.total_entries() as u64);
        let seg = SegmentedLog::open(dir).unwrap();
        assert!(seg.warnings().is_empty(), "{:?}", seg.warnings());
        for p in 0..s.process_count() {
            let pid = ProcId(p as u32);
            assert_eq!(seg.process_log(pid).entries, s.log(pid).entries, "{format:?}");
        }
        seg.verify().unwrap();
    }

    #[test]
    fn crc32_known_vector() {
        // The classic IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn tiny_capacity_round_trips_across_many_segments() {
        let dir = tmp_dir("many-segments");
        let s = sample_store(40);
        let report = write_store(&s, &dir, 64).unwrap();
        assert!(report.segments > 4, "capacity 64 must split: {report:?}");
        assert_eq!(report.entries, s.total_entries() as u64);
        let seg = SegmentedLog::open(&dir).unwrap();
        assert!(seg.warnings().is_empty());
        for p in 0..2 {
            let pid = ProcId(p);
            assert_eq!(seg.process_log(pid).entries, s.log(pid).entries);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn every_format_round_trips() {
        let s = sample_store(25);
        for (name, format) in [
            ("rt-v1", SegmentFormat::V1),
            ("rt-v2raw", SegmentFormat::V2Raw),
            ("rt-v2z", SegmentFormat::V2Compressed),
        ] {
            let dir = tmp_dir(name);
            assert_round_trip(&s, &dir, 256, format);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn v1_segments_have_no_blocks_v2_do() {
        let s = sample_store(10);
        let d1 = tmp_dir("fmt-v1");
        write_store_with(&s, &d1, 512, SegmentFormat::V1).unwrap();
        let l1 = SegmentedLog::open(&d1).unwrap();
        assert!(l1.segments(ProcId(0)).all(|m| m.version == 1 && m.block_count() == 0));
        assert_eq!(l1.total_stored_bytes(), l1.total_payload_bytes());
        let d2 = tmp_dir("fmt-v2");
        write_store_with(&s, &d2, 512, SegmentFormat::V2Raw).unwrap();
        let l2 = SegmentedLog::open(&d2).unwrap();
        assert!(l2.segments(ProcId(0)).all(|m| m.version == 2 && m.block_count() > 0));
        let _ = std::fs::remove_dir_all(&d1);
        let _ = std::fs::remove_dir_all(&d2);
    }

    #[test]
    fn compression_shrinks_stored_payload() {
        // A value-carrying workload shaped like the paper's §5.5 logs:
        // each interval snapshots the same USED set, and most variable
        // values are unchanged between consecutive iterations.  These
        // entries dominate real log volume and compress well; require a
        // real ratio, not just "no expansion".
        let mut s = LogStore::new(1);
        for i in 0..2000u64 {
            let used: Vec<(VarId, Value)> =
                (0..8).map(|v| (VarId(v), Value::Int(1_000 + v as i64))).collect();
            s.push(
                ProcId(0),
                LogEntry::Prelog {
                    eblock: EBlockId(7),
                    instance: i,
                    values: used.clone(),
                    time: 2 * i + 1,
                },
            );
            s.push(
                ProcId(0),
                LogEntry::Postlog {
                    eblock: EBlockId(7),
                    instance: i,
                    values: used,
                    ret: Some(Value::Int(0)),
                    time: 2 * i + 2,
                },
            );
        }
        let draw = tmp_dir("ratio-raw");
        let dz = tmp_dir("ratio-z");
        write_store_with(&s, &draw, 1 << 20, SegmentFormat::V2Raw).unwrap();
        write_store_with(&s, &dz, 1 << 20, SegmentFormat::V2Compressed).unwrap();
        let raw = SegmentedLog::open(&draw).unwrap();
        let z = SegmentedLog::open(&dz).unwrap();
        assert_eq!(raw.total_payload_bytes(), z.total_payload_bytes());
        assert!(
            z.total_stored_bytes() * 2 <= raw.total_stored_bytes(),
            "expected >=2x payload compression, got {} -> {}",
            raw.total_stored_bytes(),
            z.total_stored_bytes()
        );
        assert_eq!(z.process_log(ProcId(0)).entries, s.log(ProcId(0)).entries);
        z.verify().unwrap();
        let _ = std::fs::remove_dir_all(&draw);
        let _ = std::fs::remove_dir_all(&dz);
    }

    #[test]
    fn open_and_index_decode_nothing() {
        let dir = tmp_dir("no-rescan");
        let s = sample_store(20);
        write_store(&s, &dir, 256).unwrap();
        let seg = SegmentedLog::open(&dir).unwrap();
        let idx = seg.index();
        assert_eq!(seg.entries_decoded(), 0, "open + index must not decode entries");
        assert_eq!(seg.blocks_decompressed(), 0, "open + index must not decompress blocks");
        // The footer-built index equals the full-scan rebuild.
        let scan = s.index();
        for p in 0..2 {
            let pid = ProcId(p);
            assert_eq!(idx.intervals(pid), scan.intervals(pid));
            assert_eq!(idx.open_intervals(pid), scan.open_intervals(pid));
            assert_eq!(idx.top_level(pid), scan.top_level(pid));
        }
        // Touching a payload does decode — and only that process.
        let n0 = seg.process_log(ProcId(0)).entries.len() as u64;
        assert_eq!(seg.entries_decoded(), n0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn footer_stats_match_store() {
        let dir = tmp_dir("footer-stats");
        let s = sample_store(10);
        write_store(&s, &dir, 512).unwrap();
        let seg = SegmentedLog::open(&dir).unwrap();
        assert_eq!(seg.total_entries(), s.total_entries() as u64);
        assert_eq!(seg.total_logical_bytes(), s.total_bytes() as u64);
        assert_eq!(seg.entries_decoded(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn footer_bit_flip_is_hard_corruption_at_open() {
        let dir = tmp_dir("bit-flip-footer");
        write_store(&sample_store(40), &dir, 64).unwrap();
        // Flip one footer byte of process 0's first (non-tail) segment:
        // the footer crc check at open must refuse it.
        let victim = dir.join(segment_file_name(0, 0));
        let mut bytes = std::fs::read(&victim).unwrap();
        let at = bytes.len() - TRAILER_LEN - 2;
        bytes[at] ^= 0x40;
        std::fs::write(&victim, &bytes).unwrap();
        match SegmentedLog::open(&dir) {
            Err(SegError::Corrupt { file, detail }) => {
                assert_eq!(file, segment_file_name(0, 0), "error names the segment");
                assert!(detail.contains("footer crc mismatch"), "{detail}");
            }
            other => panic!("expected corruption error, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn payload_bit_flip_opens_but_fails_verify() {
        let dir = tmp_dir("bit-flip-payload");
        write_store(&sample_store(40), &dir, 64).unwrap();
        // Flip one payload byte: open only checks footers (that is the
        // whole point of the crc split), so the store opens — and
        // `verify` pins the damage to the payload crc.
        let victim = dir.join(segment_file_name(0, 0));
        let mut bytes = std::fs::read(&victim).unwrap();
        bytes[SEG_MAGIC.len() + 8] ^= 0x40;
        std::fs::write(&victim, &bytes).unwrap();
        let seg = SegmentedLog::open(&dir).expect("payload damage must not block open");
        match seg.verify() {
            Err(SegError::Corrupt { file, detail }) => {
                assert_eq!(file, segment_file_name(0, 0), "error names the segment");
                assert!(detail.contains("payload crc mismatch"), "{detail}");
            }
            other => panic!("expected corruption error, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_tail_recovers_a_prefix_with_warning() {
        for (name, format) in [
            ("truncated-tail-v1", SegmentFormat::V1),
            ("truncated-tail-v2", SegmentFormat::V2Raw),
            ("truncated-tail-v2z", SegmentFormat::V2Compressed),
        ] {
            let dir = tmp_dir(name);
            let s = sample_store(40);
            write_store_with(&s, &dir, 64, format).unwrap();
            // Truncate process 1's last segment mid-payload, as if the
            // writer died during the flush: cut strictly inside the
            // stored payload so at least one entry is unrecoverable.
            let (last_seq, cut) = {
                let probe = SegmentedLog::open(&dir).unwrap();
                let meta = probe.segments(ProcId(1)).last().unwrap();
                (meta.seq, meta.payload_start() + meta.stored_len as usize / 2)
            };
            let victim = dir.join(segment_file_name(1, last_seq));
            let bytes = std::fs::read(&victim).unwrap();
            std::fs::write(&victim, &bytes[..cut]).unwrap();
            let seg = SegmentedLog::open(&dir).expect("tail truncation must be recoverable");
            assert_eq!(seg.warnings().len(), 1, "{format:?}: {:?}", seg.warnings());
            assert!(
                seg.warnings()[0].contains(&segment_file_name(1, last_seq)),
                "{:?}",
                seg.warnings()
            );
            // The surviving prefix still decodes and is a strict
            // prefix of the original log.
            let got = &seg.process_log(ProcId(1)).entries;
            let full = &s.log(ProcId(1)).entries;
            assert!(got.len() < full.len(), "{format:?} must lose at least one entry");
            assert_eq!(got.as_slice(), &full[..got.len()], "{format:?}");
            // Process 0 is untouched.
            assert_eq!(seg.process_log(ProcId(0)).entries, s.log(ProcId(0)).entries);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn live_tail_is_recovered_and_indexed() {
        let dir = tmp_dir("live-tail");
        let s = sample_store(12);
        // Big capacity: nothing seals, everything lives in the tails.
        let mut w =
            SegmentWriter::create_with(&dir, 2, 1 << 20, SegmentFormat::V2Compressed).unwrap();
        for p in 0..2 {
            let pid = ProcId(p);
            for e in &s.log(pid).entries {
                w.append(pid, e);
            }
        }
        w.flush();
        // The writer is still alive — open the directory anyway.
        let seg = SegmentedLog::open(&dir).expect("live tail must open");
        assert_eq!(seg.warnings().len(), 2, "{:?}", seg.warnings());
        assert!(seg.warnings()[0].contains("recovered"), "{:?}", seg.warnings());
        assert_eq!(seg.recovered_entries(), s.total_entries() as u64);
        for p in 0..2 {
            let pid = ProcId(p);
            assert_eq!(seg.process_log(pid).entries, s.log(pid).entries);
            assert_eq!(seg.index().intervals(pid), s.index().intervals(pid));
        }
        // Sealing turns the tails into ordinary segments.
        w.finish().unwrap();
        let sealed = SegmentedLog::open(&dir).unwrap();
        assert!(sealed.warnings().is_empty(), "{:?}", sealed.warnings());
        assert_eq!(sealed.recovered_entries(), 0);
        assert_eq!(sealed.total_entries(), s.total_entries() as u64);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn refresh_resumes_tails_and_extends_index() {
        let dir = tmp_dir("refresh");
        let s = sample_store(30);
        let half: Vec<Vec<LogEntry>> = (0..2).map(|p| s.log(ProcId(p)).entries.clone()).collect();
        let mut w = SegmentWriter::create_with(&dir, 2, 256, SegmentFormat::V2Compressed).unwrap();
        for (p, entries) in half.iter().enumerate() {
            for e in &entries[..entries.len() / 2] {
                w.append(ProcId(p as u32), e);
            }
        }
        w.flush();
        let first = SegmentedLog::open(&dir).unwrap();
        let _ = first.index(); // prime the cache so refresh can extend it
        let n_first = first.total_entries();
        assert!(n_first > 0);
        // The program keeps running: append the rest and flush again.
        for (p, entries) in half.iter().enumerate() {
            for e in &entries[entries.len() / 2..] {
                w.append(ProcId(p as u32), e);
            }
        }
        w.flush();
        let second = first.refresh().unwrap();
        let stats = *second.refresh_stats().unwrap();
        assert!(stats.segments_reused > 0, "{stats:?}");
        assert!(stats.index_extended, "{stats:?}");
        assert_eq!(second.total_entries(), s.total_entries() as u64);
        // The incrementally extended index equals a cold rebuild.
        let cold = SegmentedLog::open(&dir).unwrap();
        for p in 0..2 {
            let pid = ProcId(p);
            assert_eq!(second.index().intervals(pid), cold.index_from_footers().intervals(pid));
            assert_eq!(second.index().open_intervals(pid), s.index().open_intervals(pid));
            assert_eq!(second.process_log(pid).entries, s.log(pid).entries);
        }
        drop(w);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn range_query_decompresses_only_covering_blocks() {
        let dir = tmp_dir("range-blocks");
        let s = sample_store(200);
        // One huge segment per process, tiny blocks: a narrow range
        // must not decompress the whole payload.
        let mut w = SegmentWriter::create_with(&dir, 2, 1 << 22, SegmentFormat::V2Compressed)
            .unwrap()
            .with_block_bytes(512);
        for p in 0..2 {
            let pid = ProcId(p);
            for e in &s.log(pid).entries {
                w.append(pid, e);
            }
        }
        w.finish().unwrap();
        let seg = SegmentedLog::open(&dir).unwrap();
        let total_blocks: usize = seg.segments(ProcId(0)).map(|m| m.block_count()).sum();
        assert!(total_blocks > 4, "block target 512 must split: {total_blocks}");
        let got = seg.entries_in_range(ProcId(0), 10, 20).unwrap();
        assert_eq!(got.as_slice(), &s.log(ProcId(0)).entries[10..20]);
        assert!(
            (seg.blocks_decompressed() as usize) < total_blocks,
            "a 10-entry range must not decompress all {total_blocks} blocks"
        );
        // Ranges spanning segment/tail boundaries still agree.
        let all = seg.entries_in_range(ProcId(1), 0, seg.proc_total_entries(1)).unwrap();
        assert_eq!(all, s.log(ProcId(1)).entries);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_process_gets_an_empty_segment() {
        let dir = tmp_dir("empty-proc");
        let mut s = LogStore::new(2);
        s.push(ProcId(0), prelog(0, 0, 1));
        s.push(ProcId(0), postlog(0, 0, 2));
        write_store(&s, &dir, 0).unwrap();
        assert!(dir.join(segment_file_name(1, 0)).exists(), "empty process still owns a file");
        let seg = SegmentedLog::open(&dir).unwrap();
        assert!(seg.process_log(ProcId(1)).entries.is_empty());
        assert_eq!(seg.total_entries(), 2);
        seg.verify().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn zero_segment_process_is_a_positioned_error() {
        let dir = tmp_dir("zero-seg");
        write_store(&sample_store(5), &dir, 0).unwrap();
        // Delete every segment of process 1; the manifest still lists
        // it, so open must refuse with an error naming the process.
        for ent in std::fs::read_dir(&dir).unwrap() {
            let name = ent.as_ref().unwrap().file_name().to_string_lossy().into_owned();
            if name.starts_with("p0001") {
                std::fs::remove_file(ent.unwrap().path()).unwrap();
            }
        }
        match SegmentedLog::open(&dir) {
            Err(SegError::Corrupt { file, detail }) => {
                assert_eq!(file, segment_file_name(1, 0));
                assert!(detail.contains("process 1 has no segment files"), "{detail}");
            }
            other => panic!("expected a positioned corruption error, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn verify_checks_payload_against_footer() {
        let dir = tmp_dir("verify-good");
        let s = sample_store(15);
        write_store(&s, &dir, 128).unwrap();
        let seg = SegmentedLog::open(&dir).unwrap();
        let report = seg.verify().unwrap();
        assert_eq!(report.entries, s.total_entries() as u64);
        assert!(report.segments > 0);
        assert!(report.warnings.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_manifest_is_an_error() {
        let dir = tmp_dir("no-manifest");
        std::fs::create_dir_all(&dir).unwrap();
        assert!(matches!(SegmentedLog::open(&dir), Err(SegError::Io { .. })));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn segment_file_names_parse_back() {
        assert_eq!(parse_file_name(&segment_file_name(7, 42)), Some((7, 42)));
        assert_eq!(parse_file_name("manifest.json"), None);
        assert_eq!(parse_file_name("p0007.seg"), None);
    }
}

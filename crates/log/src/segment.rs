//! The on-disk segmented log format (out-of-core log store).
//!
//! A production debugger must open the log of a long run without
//! rescanning it. A log directory holds one append-only **segment
//! file** per (process, sequence-number) pair plus a tiny
//! `manifest.json`; each segment carries, in a CRC-guarded footer,
//! everything the structural queries need — entry/byte counts, a time
//! span, per-entry payload offsets, and a **digest** of its prelog and
//! postlog events. Opening a directory is therefore `mmap` + footer
//! decode: the global [`IntervalIndex`] is rebuilt from the digests by
//! the same stack-matching builder the in-memory scan uses, and no
//! entry is decoded until a replay actually needs that process's
//! payload (then it is decoded straight out of the mapped bytes).
//!
//! ## Segment layout (version 1)
//!
//! ```text
//! ┌──────────────────────────────────────────────────────────────┐
//! │ header   "PPDS" ver=1  proc  seq  base_seq        (varints)  │
//! │ payload  entry … entry            (binio tagged wire format) │
//! │ footer   payload_crc:u32le                                   │
//! │          entry_count payload_len logical_bytes               │
//! │          counts[6] min_time max_time                         │
//! │          offsets (delta varints)  digest (pre/postlog events)│
//! │ trailer  footer_len:u32le  footer_crc:u32le  "PPDF"          │
//! └──────────────────────────────────────────────────────────────┘
//! ```
//!
//! Two CRC32s (IEEE) guard a segment, split so that open-time cost is
//! proportional to the *footer*, not the log: the trailer's
//! `footer_crc` covers the footer body and is checked when the
//! directory is opened (a corrupt index must never be trusted), while
//! the footer's `payload_crc` covers the header + payload and is
//! checked by [`SegmentedLog::verify`] — the same deferred-payload
//! split LSM stores use, so a gigabyte log opens without touching a
//! gigabyte of bytes. A segment without a valid trailer is
//! **unsealed**: if it is the last segment of its process it is
//! dropped with a warning (the writer died mid-flush —
//! truncated-tail recovery), anywhere else it is a hard corruption
//! error.

use crate::binio::{self, BinError, Reader};
use crate::entry::LogEntry;
use crate::index::{IntervalIndex, StructEvent};
use crate::mmap::Mapping;
use crate::store::{LogStore, ProcessLog};
use ppd_lang::ProcId;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

const SEG_MAGIC: &[u8; 4] = b"PPDS";
const FOOT_MAGIC: &[u8; 4] = b"PPDF";
/// Version byte written into (and accepted from) segment headers.
pub const SEGMENT_VERSION: u8 = 1;
/// footer_len (4) + footer_crc (4) + "PPDF" (4).
const TRAILER_LEN: usize = 12;
/// Default payload capacity before a segment seals.
pub const DEFAULT_SEGMENT_BYTES: usize = 64 * 1024;
/// The directory manifest file name.
pub const MANIFEST_NAME: &str = "manifest.json";
/// Fixed entry-kind order used by footer count tables (the binio tag
/// order).
pub const KIND_NAMES: [&str; 6] = ["prelog", "postlog", "shared", "input", "receive", "element"];

// ---------------------------------------------------------------------
// CRC32 (IEEE 802.3, reflected) — the dependency set vendors no crc
// crate. Slice-by-8: eight const tables let the hot loop fold eight
// bytes per iteration, which matters because `verify` checksums whole
// payloads and `open` checksums every footer.
// ---------------------------------------------------------------------

const fn crc_tables() -> [[u32; 256]; 8] {
    let mut t = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        t[0][i] = c;
        i += 1;
    }
    let mut s = 1;
    while s < 8 {
        let mut i = 0;
        while i < 256 {
            t[s][i] = (t[s - 1][i] >> 8) ^ t[0][(t[s - 1][i] & 0xff) as usize];
            i += 1;
        }
        s += 1;
    }
    t
}

static CRC_TABLES: [[u32; 256]; 8] = crc_tables();

/// CRC32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let t = &CRC_TABLES;
    let mut c = !0u32;
    let mut chunks = bytes.chunks_exact(8);
    for ch in &mut chunks {
        let lo = u32::from_le_bytes([ch[0], ch[1], ch[2], ch[3]]) ^ c;
        let hi = u32::from_le_bytes([ch[4], ch[5], ch[6], ch[7]]);
        c = t[7][(lo & 0xff) as usize]
            ^ t[6][((lo >> 8) & 0xff) as usize]
            ^ t[5][((lo >> 16) & 0xff) as usize]
            ^ t[4][(lo >> 24) as usize]
            ^ t[3][(hi & 0xff) as usize]
            ^ t[2][((hi >> 8) & 0xff) as usize]
            ^ t[1][((hi >> 16) & 0xff) as usize]
            ^ t[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        c = t[0][((c ^ u32::from(b)) & 0xff) as usize] ^ (c >> 8);
    }
    !c
}

// ---------------------------------------------------------------------
// Errors, manifest, reports
// ---------------------------------------------------------------------

/// A segmented-log failure.
#[derive(Debug)]
pub enum SegError {
    /// An underlying filesystem operation failed.
    Io {
        /// The path involved.
        path: PathBuf,
        /// The OS error.
        err: std::io::Error,
    },
    /// A sealed segment's bytes are structurally invalid (bad magic,
    /// CRC mismatch, inconsistent footer…).
    Corrupt {
        /// The offending segment file name.
        file: String,
        /// What exactly failed.
        detail: String,
    },
    /// Entry payload failed to decode ([`BinError`] carries the byte
    /// offset and segment context).
    Decode(BinError),
    /// The directory manifest is missing or malformed.
    Manifest(String),
}

impl fmt::Display for SegError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SegError::Io { path, err } => write!(f, "{}: {err}", path.display()),
            SegError::Corrupt { file, detail } => write!(f, "corrupt segment {file}: {detail}"),
            SegError::Decode(e) => write!(f, "segment payload: {e}"),
            SegError::Manifest(d) => write!(f, "log directory manifest: {d}"),
        }
    }
}

impl std::error::Error for SegError {}

impl From<BinError> for SegError {
    fn from(e: BinError) -> SegError {
        SegError::Decode(e)
    }
}

fn io_err(path: &Path, err: std::io::Error) -> SegError {
    SegError::Io { path: path.to_path_buf(), err }
}

/// The `manifest.json` of a log directory: enough to know the process
/// count (processes that logged nothing have no segment files).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Manifest {
    format: String,
    version: u8,
    processes: usize,
}

/// What a [`SegmentWriter`] (or [`LogStore::write_dir`]) produced.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SinkReport {
    /// Sealed segment files written.
    pub segments: u64,
    /// Total file bytes written (headers + payloads + footers).
    pub bytes: u64,
    /// Entries appended.
    pub entries: u64,
}

/// What `ppd log verify` / [`SegmentedLog::verify`] checked.
#[derive(Debug, Clone, Default)]
pub struct VerifyReport {
    /// Sealed segments whose CRC and payload decode were re-checked.
    pub segments: usize,
    /// Entries decoded and checked against footer metadata.
    pub entries: u64,
    /// Recovery warnings carried over from open (dropped unsealed
    /// tails).
    pub warnings: Vec<String>,
}

// ---------------------------------------------------------------------
// Segment metadata (parsed header + footer)
// ---------------------------------------------------------------------

/// A prelog/postlog digest event with a segment-local entry position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct DigestEvent {
    pub(crate) is_prelog: bool,
    /// Entry position within this segment.
    pub(crate) pos: u64,
    pub(crate) eblock: u32,
    pub(crate) instance: u64,
    pub(crate) time: u64,
}

/// Everything a segment's header and footer say about it — parsed
/// without touching the payload.
#[derive(Debug, Clone)]
pub struct SegmentMeta {
    /// File name within the log directory.
    pub file: String,
    /// Owning process.
    pub proc: u32,
    /// Sequence number within the process (0-based, contiguous).
    pub seq: u64,
    /// Global entry index (within the process log) of this segment's
    /// first entry.
    pub base_seq: u64,
    /// Entries in the payload.
    pub entry_count: u64,
    /// Payload byte length.
    pub payload_len: u64,
    /// Sum of the entries' logical [`LogEntry::size_bytes`].
    pub logical_bytes: u64,
    /// Entry counts in [`KIND_NAMES`] order.
    pub counts: [u64; 6],
    /// Smallest entry time (0 when empty).
    pub min_time: u64,
    /// Largest entry time (0 when empty).
    pub max_time: u64,
    /// File offset where the payload begins.
    payload_start: usize,
    /// CRC32 of header + payload, stored in the footer and checked by
    /// [`SegmentedLog::verify`] (not at open).
    payload_crc: u32,
    /// Payload-relative byte offset of each entry.
    offsets: Vec<u64>,
    /// Prelog/postlog digest, in entry order.
    digest: Vec<DigestEvent>,
}

impl SegmentMeta {
    /// File offset of the payload within the segment.
    pub fn payload_start(&self) -> usize {
        self.payload_start
    }

    /// Payload-relative byte offset of entry `i`.
    pub fn entry_offset(&self, i: usize) -> Option<u64> {
        self.offsets.get(i).copied()
    }
}

/// The canonical segment file name for `(proc, seq)`.
pub fn segment_file_name(proc: u32, seq: u64) -> String {
    format!("p{proc:04}-s{seq:06}.seg")
}

/// Parses a segment file name back to `(proc, seq)`.
fn parse_file_name(name: &str) -> Option<(u32, u64)> {
    let rest = name.strip_prefix('p')?.strip_suffix(".seg")?;
    let (proc, seq) = rest.split_once("-s")?;
    Some((proc.parse().ok()?, seq.parse().ok()?))
}

/// Parses header + footer of one sealed segment. `Err(detail)` means
/// the bytes are not a sealed segment (the caller decides whether that
/// is a recoverable truncated tail or hard corruption).
fn parse_segment(file: &str, bytes: &[u8]) -> Result<SegmentMeta, String> {
    if bytes.len() < SEG_MAGIC.len() + 1 + TRAILER_LEN {
        return Err(format!("file too short ({} bytes) to be a sealed segment", bytes.len()));
    }
    if &bytes[..4] != SEG_MAGIC {
        return Err("bad segment magic".into());
    }
    if bytes[4] != SEGMENT_VERSION {
        return Err(format!("unsupported segment version {}", bytes[4]));
    }
    let trailer = &bytes[bytes.len() - TRAILER_LEN..];
    if &trailer[8..12] != FOOT_MAGIC {
        return Err("missing footer magic (unsealed segment)".into());
    }
    let footer_len = u32::from_le_bytes([trailer[0], trailer[1], trailer[2], trailer[3]]) as usize;
    let stored_crc = u32::from_le_bytes([trailer[4], trailer[5], trailer[6], trailer[7]]);
    let body_end = bytes.len() - TRAILER_LEN;
    let footer_start = body_end
        .checked_sub(footer_len)
        .filter(|&s| s > SEG_MAGIC.len())
        .ok_or_else(|| format!("footer length {footer_len} exceeds file"))?;
    if footer_len < 4 {
        return Err(format!("footer length {footer_len} too short for payload crc"));
    }
    // Open-time integrity covers exactly the bytes open relies on: the
    // footer body. The payload crc stored inside it is deferred to
    // `verify`, keeping open O(footer) instead of O(log).
    let actual_crc = crc32(&bytes[footer_start..body_end]);
    if actual_crc != stored_crc {
        return Err(format!(
            "footer crc mismatch (stored {stored_crc:#010x}, computed {actual_crc:#010x})"
        ));
    }
    let payload_crc = u32::from_le_bytes([
        bytes[footer_start],
        bytes[footer_start + 1],
        bytes[footer_start + 2],
        bytes[footer_start + 3],
    ]);
    let err_str = |e: BinError| format!("footer decode failed: {e}");
    // Header varints.
    let mut h = Reader::with_base(&bytes[5..footer_start], 5);
    let proc = h.varint().map_err(err_str)? as u32;
    let seq = h.varint().map_err(err_str)?;
    let base_seq = h.varint().map_err(err_str)?;
    let payload_start = h.offset();
    // Footer body (after the fixed-width payload crc).
    let mut r = Reader::with_base(&bytes[footer_start + 4..body_end], footer_start + 4);
    let entry_count = r.varint().map_err(err_str)?;
    let payload_len = r.varint().map_err(err_str)?;
    if payload_start + payload_len as usize != footer_start {
        return Err(format!(
            "payload length {payload_len} inconsistent with footer position {footer_start}"
        ));
    }
    let logical_bytes = r.varint().map_err(err_str)?;
    let mut counts = [0u64; 6];
    for c in &mut counts {
        *c = r.varint().map_err(err_str)?;
    }
    let min_time = r.varint().map_err(err_str)?;
    let max_time = r.varint().map_err(err_str)?;
    let n_offsets = r.varint().map_err(err_str)? as usize;
    if n_offsets as u64 != entry_count {
        return Err(format!("offset table has {n_offsets} entries, footer says {entry_count}"));
    }
    let mut offsets = Vec::with_capacity(n_offsets.min(1 << 20));
    let mut at = 0u64;
    for i in 0..n_offsets {
        let delta = r.varint().map_err(err_str)?;
        at = if i == 0 { delta } else { at + delta };
        offsets.push(at);
    }
    let n_digest = r.varint().map_err(err_str)? as usize;
    let mut digest = Vec::with_capacity(n_digest.min(1 << 20));
    let mut prev_pos = 0u64;
    for i in 0..n_digest {
        let is_prelog = r.byte().map_err(err_str)? != 0;
        let delta = r.varint().map_err(err_str)?;
        let pos = if i == 0 { delta } else { prev_pos + delta };
        prev_pos = pos;
        digest.push(DigestEvent {
            is_prelog,
            pos,
            eblock: r.varint().map_err(err_str)? as u32,
            instance: r.varint().map_err(err_str)?,
            time: r.varint().map_err(err_str)?,
        });
    }
    if r.remaining() != 0 {
        return Err(format!("{} trailing bytes after footer body", r.remaining()));
    }
    Ok(SegmentMeta {
        file: file.to_string(),
        proc,
        seq,
        base_seq,
        entry_count,
        payload_len,
        logical_bytes,
        counts,
        min_time,
        max_time,
        payload_start,
        payload_crc,
        offsets,
        digest,
    })
}

/// Which count slot (in [`KIND_NAMES`] order) an entry falls in.
fn kind_slot(e: &LogEntry) -> usize {
    match e {
        LogEntry::Prelog { .. } => 0,
        LogEntry::Postlog { .. } => 1,
        LogEntry::SharedSnapshot { .. } => 2,
        LogEntry::Input { .. } => 3,
        LogEntry::Receive { .. } => 4,
        LogEntry::ElementRead { .. } => 5,
    }
}

// ---------------------------------------------------------------------
// Writer (the runtime's streaming sink and `ppd log pack`)
// ---------------------------------------------------------------------

/// Per-process state of an in-progress segment.
#[derive(Debug, Default)]
struct ProcWriter {
    seq: u64,
    /// Global entry index of the current segment's first entry.
    base_seq: u64,
    /// Header + payload bytes accumulated so far.
    buf: Vec<u8>,
    payload_start: usize,
    entries: u64,
    offsets: Vec<u64>,
    counts: [u64; 6],
    logical_bytes: u64,
    min_time: u64,
    max_time: u64,
    digest: Vec<DigestEvent>,
}

/// Streaming writer of a segmented log directory: entries are appended
/// one at a time (the runtime calls it from every log write), and a
/// segment is sealed — footer built, CRC stamped, file flushed — as
/// soon as its payload reaches capacity, **while the program is still
/// running**. [`SegmentWriter::finish`] seals the partial tails and
/// (re)writes the manifest.
#[derive(Debug)]
pub struct SegmentWriter {
    dir: PathBuf,
    capacity: usize,
    procs: Vec<ProcWriter>,
    /// First I/O failure; once set, appends become no-ops so a full
    /// disk cannot take the traced program down with it.
    error: Option<String>,
    report: SinkReport,
}

impl SegmentWriter {
    /// Creates `dir` (if needed), writes the manifest, and prepares one
    /// stream per process. `capacity` is the payload size at which a
    /// segment seals; 0 means [`DEFAULT_SEGMENT_BYTES`].
    ///
    /// # Errors
    ///
    /// Returns [`SegError::Io`] if the directory or manifest cannot be
    /// written.
    pub fn create(
        dir: &Path,
        processes: usize,
        capacity: usize,
    ) -> Result<SegmentWriter, SegError> {
        std::fs::create_dir_all(dir).map_err(|e| io_err(dir, e))?;
        let capacity = if capacity == 0 { DEFAULT_SEGMENT_BYTES } else { capacity };
        let mut w = SegmentWriter {
            dir: dir.to_path_buf(),
            capacity,
            procs: (0..processes).map(|_| ProcWriter::default()).collect(),
            error: None,
            report: SinkReport::default(),
        };
        w.write_manifest(processes)?;
        for p in 0..processes {
            w.begin_segment(p);
        }
        Ok(w)
    }

    fn write_manifest(&self, processes: usize) -> Result<(), SegError> {
        let manifest = Manifest {
            format: "ppd-segmented-log".to_string(),
            version: SEGMENT_VERSION,
            processes,
        };
        let path = self.dir.join(MANIFEST_NAME);
        let json =
            serde_json::to_string(&manifest).map_err(|e| SegError::Manifest(e.to_string()))?;
        std::fs::write(&path, json).map_err(|e| io_err(&path, e))
    }

    /// Starts a fresh segment buffer for process `p` (header only).
    fn begin_segment(&mut self, p: usize) {
        let pw = &mut self.procs[p];
        pw.buf.clear();
        pw.buf.extend_from_slice(SEG_MAGIC);
        pw.buf.push(SEGMENT_VERSION);
        binio::put_varint(&mut pw.buf, u64::from(p as u32));
        binio::put_varint(&mut pw.buf, pw.seq);
        binio::put_varint(&mut pw.buf, pw.base_seq);
        pw.payload_start = pw.buf.len();
        pw.entries = 0;
        pw.offsets.clear();
        pw.counts = [0; 6];
        pw.logical_bytes = 0;
        pw.min_time = u64::MAX;
        pw.max_time = 0;
        pw.digest.clear();
    }

    /// Appends one entry to `proc`'s stream, sealing the segment if it
    /// reaches capacity. A no-op after the first I/O error.
    pub fn append(&mut self, proc: ProcId, e: &LogEntry) {
        if self.error.is_some() {
            return;
        }
        let capacity = self.capacity;
        let pw = &mut self.procs[proc.index()];
        pw.offsets.push((pw.buf.len() - pw.payload_start) as u64);
        binio::put_entry(&mut pw.buf, e);
        pw.counts[kind_slot(e)] += 1;
        pw.logical_bytes += e.size_bytes() as u64;
        let t = e.time();
        pw.min_time = pw.min_time.min(t);
        pw.max_time = pw.max_time.max(t);
        if let Some(ev) = StructEvent::of_entry(pw.entries as usize, e) {
            pw.digest.push(DigestEvent {
                is_prelog: ev.is_prelog,
                pos: ev.pos as u64,
                eblock: ev.eblock.0,
                instance: ev.instance,
                time: ev.time,
            });
        }
        pw.entries += 1;
        self.report.entries += 1;
        if pw.buf.len() - pw.payload_start >= capacity {
            self.seal(proc.index());
        }
    }

    /// Seals process `p`'s current segment to disk and starts the next.
    fn seal(&mut self, p: usize) {
        if self.procs[p].entries == 0 {
            return;
        }
        let file_bytes = {
            let pw = &mut self.procs[p];
            let mut footer = Vec::new();
            // Payload crc first (fixed width): covers header + payload,
            // i.e. everything already in `pw.buf`.
            footer.extend_from_slice(&crc32(&pw.buf).to_le_bytes());
            binio::put_varint(&mut footer, pw.entries);
            binio::put_varint(&mut footer, (pw.buf.len() - pw.payload_start) as u64);
            binio::put_varint(&mut footer, pw.logical_bytes);
            for c in pw.counts {
                binio::put_varint(&mut footer, c);
            }
            binio::put_varint(&mut footer, pw.min_time);
            binio::put_varint(&mut footer, pw.max_time);
            binio::put_varint(&mut footer, pw.offsets.len() as u64);
            let mut prev = 0u64;
            for (i, &off) in pw.offsets.iter().enumerate() {
                binio::put_varint(&mut footer, if i == 0 { off } else { off - prev });
                prev = off;
            }
            binio::put_varint(&mut footer, pw.digest.len() as u64);
            let mut prev_pos = 0u64;
            for (i, ev) in pw.digest.iter().enumerate() {
                footer.push(u8::from(ev.is_prelog));
                binio::put_varint(&mut footer, if i == 0 { ev.pos } else { ev.pos - prev_pos });
                prev_pos = ev.pos;
                binio::put_varint(&mut footer, u64::from(ev.eblock));
                binio::put_varint(&mut footer, ev.instance);
                binio::put_varint(&mut footer, ev.time);
            }
            let footer_crc = crc32(&footer);
            let mut bytes = std::mem::take(&mut pw.buf);
            bytes.extend_from_slice(&footer);
            bytes.extend_from_slice(&(footer.len() as u32).to_le_bytes());
            bytes.extend_from_slice(&footer_crc.to_le_bytes());
            bytes.extend_from_slice(FOOT_MAGIC);
            bytes
        };
        let name = segment_file_name(p as u32, self.procs[p].seq);
        let path = self.dir.join(&name);
        match std::fs::write(&path, &file_bytes) {
            Ok(()) => {
                self.report.segments += 1;
                self.report.bytes += file_bytes.len() as u64;
                ppd_obs::global().counter("log.segments_sealed").inc();
                ppd_obs::global().counter("log.segment_bytes_written").add(file_bytes.len() as u64);
            }
            Err(e) => {
                self.error = Some(format!("{}: {e}", path.display()));
            }
        }
        let pw = &mut self.procs[p];
        pw.seq += 1;
        pw.base_seq += pw.entries;
        self.begin_segment(p);
    }

    /// The first I/O failure, if any (appends were dropped from that
    /// point on).
    pub fn error(&self) -> Option<&str> {
        self.error.as_deref()
    }

    /// Seals every partial tail segment and returns the write report.
    ///
    /// # Errors
    ///
    /// Returns [`SegError::Io`] if any write (including earlier,
    /// already-recorded failures) occurred.
    pub fn finish(mut self) -> Result<SinkReport, SegError> {
        for p in 0..self.procs.len() {
            self.seal(p);
        }
        match self.error.take() {
            Some(detail) => {
                Err(SegError::Io { path: self.dir.clone(), err: std::io::Error::other(detail) })
            }
            None => Ok(self.report),
        }
    }
}

/// Packs an in-memory store into `dir` as a segmented log.
///
/// # Errors
///
/// Returns [`SegError::Io`] if the directory or a segment cannot be
/// written.
pub fn write_store(store: &LogStore, dir: &Path, capacity: usize) -> Result<SinkReport, SegError> {
    let mut span = ppd_obs::span("log", "segment_pack");
    span.arg("procs", store.process_count());
    let mut w = SegmentWriter::create(dir, store.process_count(), capacity)?;
    for p in 0..store.process_count() {
        let proc = ProcId(p as u32);
        for e in &store.log(proc).entries {
            w.append(proc, e);
        }
    }
    w.finish()
}

// ---------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------

/// One mapped, footer-verified segment.
#[derive(Debug)]
struct LoadedSegment {
    map: Mapping,
    meta: SegmentMeta,
}

/// An opened segmented log directory: every segment mapped and its
/// footer verified, **no payload decoded**. Per-process entry vectors
/// materialize lazily (and at most once) when a replay or raw-entry
/// query actually touches that process.
#[derive(Debug)]
pub struct SegmentedLog {
    dir: PathBuf,
    /// Per process: its sealed segments in sequence order.
    procs: Vec<Vec<LoadedSegment>>,
    warnings: Vec<String>,
    /// Lazily decoded per-process logs.
    decoded: Vec<OnceLock<ProcessLog>>,
    /// The footer-built interval index, cached after its first load.
    index_cache: OnceLock<Arc<IntervalIndex>>,
    /// How many entries have been decoded since open — the scan
    /// counter the no-full-rescan acceptance test asserts on.
    entries_decoded: AtomicU64,
}

impl SegmentedLog {
    /// Opens a log directory: reads the manifest, maps every `.seg`
    /// file, and parses/CRC-checks footers only. An unsealed **final**
    /// segment of a process is dropped with a warning (the writer died
    /// mid-flush); an invalid segment anywhere else is an error.
    ///
    /// # Errors
    ///
    /// Returns [`SegError`] on I/O failure, a missing/bad manifest, or
    /// non-tail corruption.
    pub fn open(dir: &Path) -> Result<SegmentedLog, SegError> {
        let jobs = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        Self::open_with_jobs(dir, jobs)
    }

    /// [`open`](Self::open) with an explicit worker count: segments are
    /// mapped and their footers CRC-checked and parsed concurrently —
    /// the per-segment work is independent, and at multi-GB sizes the
    /// CRC pass dominates the open cost.
    ///
    /// # Errors
    ///
    /// As [`open`](Self::open).
    pub fn open_with_jobs(dir: &Path, jobs: usize) -> Result<SegmentedLog, SegError> {
        let mut span = ppd_obs::span("log", "segment_open");
        span.arg("jobs", jobs);
        let manifest_path = dir.join(MANIFEST_NAME);
        let manifest_json =
            std::fs::read_to_string(&manifest_path).map_err(|e| io_err(&manifest_path, e))?;
        let manifest: Manifest =
            serde_json::from_str(&manifest_json).map_err(|e| SegError::Manifest(e.to_string()))?;
        if manifest.format != "ppd-segmented-log" {
            return Err(SegError::Manifest(format!("unknown format `{}`", manifest.format)));
        }
        if manifest.version != SEGMENT_VERSION {
            return Err(SegError::Manifest(format!(
                "unsupported segmented-log version {}",
                manifest.version
            )));
        }

        // Collect segment files as (proc, seq, name), sorted numerically.
        let mut files: Vec<(u32, u64, String)> = Vec::new();
        let rd = std::fs::read_dir(dir).map_err(|e| io_err(dir, e))?;
        for ent in rd {
            let ent = ent.map_err(|e| io_err(dir, e))?;
            let name = ent.file_name().to_string_lossy().into_owned();
            if let Some((proc, seq)) = parse_file_name(&name) {
                files.push((proc, seq, name));
            }
        }
        files.sort();

        // Map + parse every segment concurrently: each file's CRC check
        // and footer decode is independent of the others.
        enum FileParse {
            Sealed(Box<(Mapping, SegmentMeta)>),
            Io(std::io::Error),
            Unsealed(String),
        }
        let parse_one = |name: &String| {
            let path = dir.join(name);
            match Mapping::open(&path) {
                Err(e) => FileParse::Io(e),
                Ok(map) => match parse_segment(name, &map) {
                    Ok(meta) => FileParse::Sealed(Box::new((map, meta))),
                    Err(detail) => FileParse::Unsealed(detail),
                },
            }
        };
        let names: Vec<String> = files.iter().map(|(_, _, name)| name.clone()).collect();
        let parsed: Vec<FileParse> = if jobs <= 1 || names.len() <= 1 {
            names.iter().map(parse_one).collect()
        } else {
            use rayon::prelude::*;
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(jobs.min(names.len()))
                .build()
                .expect("thread pool build is infallible");
            pool.install(|| names.par_iter().map(parse_one).collect())
        };

        let mut procs: Vec<Vec<LoadedSegment>> =
            (0..manifest.processes).map(|_| Vec::new()).collect();
        let mut warnings = Vec::new();
        for (i, ((proc, seq, name), outcome)) in files.iter().zip(parsed).enumerate() {
            let is_proc_tail = files.get(i + 1).map(|f| f.0) != Some(*proc);
            match outcome {
                FileParse::Io(e) => return Err(io_err(&dir.join(name), e)),
                FileParse::Sealed(boxed) => {
                    let (map, meta) = *boxed;
                    if meta.proc != *proc || meta.seq != *seq {
                        return Err(SegError::Corrupt {
                            file: name.clone(),
                            detail: format!(
                                "header says process {} segment {}, file name says process {proc} segment {seq}",
                                meta.proc, meta.seq
                            ),
                        });
                    }
                    let slot = procs.get_mut(*proc as usize).ok_or_else(|| SegError::Corrupt {
                        file: name.clone(),
                        detail: format!(
                            "process {proc} out of range (manifest has {})",
                            manifest.processes
                        ),
                    })?;
                    slot.push(LoadedSegment { map, meta });
                }
                FileParse::Unsealed(detail) if is_proc_tail => {
                    // Truncated-tail recovery: the run was killed while
                    // this segment was being flushed. Everything sealed
                    // before it is intact.
                    warnings.push(format!(
                        "dropped unsealed tail segment {name} of process {proc}: {detail}"
                    ));
                }
                FileParse::Unsealed(detail) => {
                    return Err(SegError::Corrupt { file: name.clone(), detail })
                }
            }
        }

        // Per-process continuity: sequence numbers and base_seq chains.
        for (p, segs) in procs.iter().enumerate() {
            let mut expected_base = 0u64;
            for (k, seg) in segs.iter().enumerate() {
                if seg.meta.seq != k as u64 {
                    return Err(SegError::Corrupt {
                        file: seg.meta.file.clone(),
                        detail: format!(
                            "process {p} segment sequence gap: expected {k}, found {}",
                            seg.meta.seq
                        ),
                    });
                }
                if seg.meta.base_seq != expected_base {
                    return Err(SegError::Corrupt {
                        file: seg.meta.file.clone(),
                        detail: format!(
                            "base entry index {} does not continue previous segments ({expected_base})",
                            seg.meta.base_seq
                        ),
                    });
                }
                expected_base += seg.meta.entry_count;
            }
        }

        let total_segments: usize = procs.iter().map(Vec::len).sum();
        span.arg("files", total_segments);
        span.arg("procs", manifest.processes);
        ppd_obs::global().counter("log.segments_opened").add(total_segments as u64);
        Ok(SegmentedLog {
            dir: dir.to_path_buf(),
            decoded: (0..manifest.processes).map(|_| OnceLock::new()).collect(),
            procs,
            warnings,
            index_cache: OnceLock::new(),
            entries_decoded: AtomicU64::new(0),
        })
    }

    /// The directory this log was opened from.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of processes (from the manifest).
    pub fn process_count(&self) -> usize {
        self.procs.len()
    }

    /// Recovery warnings produced at open (dropped unsealed tails).
    pub fn warnings(&self) -> &[String] {
        &self.warnings
    }

    /// Sealed segment metadata, per process, in sequence order.
    pub fn segments(&self, proc: ProcId) -> impl Iterator<Item = &SegmentMeta> {
        self.procs[proc.index()].iter().map(|s| &s.meta)
    }

    /// Total entries, from footers alone.
    pub fn total_entries(&self) -> u64 {
        self.procs.iter().flatten().map(|s| s.meta.entry_count).sum()
    }

    /// Total logical log bytes (sum of [`LogEntry::size_bytes`]), from
    /// footers alone.
    pub fn total_logical_bytes(&self) -> u64 {
        self.procs.iter().flatten().map(|s| s.meta.logical_bytes).sum()
    }

    /// Total on-disk file bytes across sealed segments.
    pub fn total_file_bytes(&self) -> u64 {
        self.procs.iter().flatten().map(|s| s.map.len() as u64).sum()
    }

    /// Entry counts in [`KIND_NAMES`] order, from footers alone.
    pub fn counts_by_kind(&self) -> [u64; 6] {
        let mut counts = [0u64; 6];
        for s in self.procs.iter().flatten() {
            for (slot, c) in s.meta.counts.iter().enumerate() {
                counts[slot] += c;
            }
        }
        counts
    }

    /// How many entries have been decoded from payloads since open.
    /// Stays 0 across open + index load + structural queries — that is
    /// the "no full rescan" guarantee, and the acceptance test asserts
    /// exactly this.
    pub fn entries_decoded(&self) -> u64 {
        self.entries_decoded.load(Ordering::Relaxed)
    }

    /// Whether every mapped segment is backed by a real `mmap` (as
    /// opposed to the heap-read fallback).
    pub fn fully_mapped(&self) -> bool {
        self.procs.iter().flatten().all(|s| s.map.is_mapped())
    }

    /// The footer-built interval index, cached after the first load.
    pub fn index(&self) -> Arc<IntervalIndex> {
        Arc::clone(self.index_cache.get_or_init(|| Arc::new(self.index_from_footers())))
    }

    /// The interval index, rebuilt from footer digests — no payload
    /// bytes are touched. Identical to what a full entry scan would
    /// build, because both feed the same stack-matching builder.
    pub fn index_from_footers(&self) -> IntervalIndex {
        // Streamed straight out of the decoded footers — at millions of
        // intervals, materializing the events first costs more than the
        // index build itself.
        let streams = (0..self.procs.len())
            .map(|p| {
                let hint: usize = self.procs[p].iter().map(|seg| seg.meta.digest.len()).sum();
                let events = self.procs[p].iter().flat_map(|seg| {
                    seg.meta.digest.iter().map(|ev| StructEvent {
                        pos: (seg.meta.base_seq + ev.pos) as usize,
                        is_prelog: ev.is_prelog,
                        eblock: ppd_analysis::EBlockId(ev.eblock),
                        instance: ev.instance,
                        time: ev.time,
                    })
                });
                (ProcId(p as u32), hint, events)
            })
            .collect();
        IntervalIndex::build_from_events(streams)
    }

    /// Decodes one process's payloads into an entry vector, straight
    /// from the mapped bytes.
    fn try_decode_proc(&self, proc: ProcId) -> Result<ProcessLog, SegError> {
        let mut span = ppd_obs::span("log", "segment_decode");
        span.arg("proc", proc.index());
        let mut entries = Vec::new();
        for seg in &self.procs[proc.index()] {
            let payload_end = seg.meta.payload_start + seg.meta.payload_len as usize;
            let payload = &seg.map[seg.meta.payload_start..payload_end];
            let mut r = Reader::with_base(payload, seg.meta.payload_start);
            for _ in 0..seg.meta.entry_count {
                let e = binio::get_entry(&mut r)
                    .map_err(|err| SegError::Decode(err.with_context(seg.meta.file.clone())))?;
                entries.push(e);
            }
        }
        span.arg("entries", entries.len());
        self.entries_decoded.fetch_add(entries.len() as u64, Ordering::Relaxed);
        ppd_obs::global().counter("log.segment_entries_decoded").add(entries.len() as u64);
        Ok(ProcessLog { entries })
    }

    /// The decoded log of one process, materialized on first use and
    /// cached. Panics on a decode failure *behind* a valid CRC — that
    /// would be a writer bug, not an I/O accident; `verify()` reports
    /// such states gracefully instead.
    pub fn process_log(&self, proc: ProcId) -> &ProcessLog {
        self.decoded[proc.index()].get_or_init(|| {
            self.try_decode_proc(proc)
                .unwrap_or_else(|e| panic!("segment payload decode failed after CRC pass: {e}"))
        })
    }

    /// Decodes every process's payload concurrently on a work-stealing
    /// pool of `jobs` threads (the `from_binary_par` analogue for
    /// segment directories). Idempotent.
    pub fn preload(&self, jobs: usize) {
        if jobs <= 1 || self.procs.len() <= 1 {
            for p in 0..self.procs.len() {
                self.process_log(ProcId(p as u32));
            }
            return;
        }
        use rayon::prelude::*;
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(jobs)
            .build()
            .expect("thread pool build is infallible");
        let procs: Vec<ProcId> = (0..self.procs.len()).map(|p| ProcId(p as u32)).collect();
        let _: Vec<()> = pool.install(|| {
            procs
                .par_iter()
                .map(|&p| {
                    self.process_log(p);
                })
                .collect()
        });
    }

    /// Full integrity check: checks every segment's payload CRC (open
    /// only checks footer CRCs), decodes every payload, and
    /// cross-checks footer metadata (entry counts, offset tables,
    /// digests, time spans) against the decoded entries.
    ///
    /// # Errors
    ///
    /// Returns the first inconsistency found.
    pub fn verify(&self) -> Result<VerifyReport, SegError> {
        let mut report = VerifyReport {
            segments: self.procs.iter().map(Vec::len).sum(),
            entries: 0,
            warnings: self.warnings.clone(),
        };
        for segs in &self.procs {
            for seg in segs {
                let corrupt =
                    |detail: String| SegError::Corrupt { file: seg.meta.file.clone(), detail };
                let payload_end = seg.meta.payload_start + seg.meta.payload_len as usize;
                let actual_crc = crc32(&seg.map[..payload_end]);
                if actual_crc != seg.meta.payload_crc {
                    return Err(corrupt(format!(
                        "payload crc mismatch (stored {:#010x}, computed {actual_crc:#010x})",
                        seg.meta.payload_crc
                    )));
                }
                let payload = &seg.map[seg.meta.payload_start..payload_end];
                let mut r = Reader::with_base(payload, seg.meta.payload_start);
                let mut digest = seg.meta.digest.iter();
                for i in 0..seg.meta.entry_count {
                    let at = (r.offset() - seg.meta.payload_start) as u64;
                    if seg.meta.offsets.get(i as usize) != Some(&at) {
                        return Err(corrupt(format!(
                            "entry {i} starts at payload offset {at}, footer says {:?}",
                            seg.meta.offsets.get(i as usize)
                        )));
                    }
                    let e = binio::get_entry(&mut r)
                        .map_err(|err| SegError::Decode(err.with_context(seg.meta.file.clone())))?;
                    if e.time() < seg.meta.min_time || e.time() > seg.meta.max_time {
                        return Err(corrupt(format!(
                            "entry {i} time {} outside footer span [{}, {}]",
                            e.time(),
                            seg.meta.min_time,
                            seg.meta.max_time
                        )));
                    }
                    if let Some(ev) = StructEvent::of_entry(i as usize, &e) {
                        let expected = DigestEvent {
                            is_prelog: ev.is_prelog,
                            pos: i,
                            eblock: ev.eblock.0,
                            instance: ev.instance,
                            time: ev.time,
                        };
                        if digest.next() != Some(&expected) {
                            return Err(corrupt(format!(
                                "digest disagrees with decoded entry {i}"
                            )));
                        }
                    }
                    report.entries += 1;
                }
                if r.remaining() != 0 {
                    return Err(corrupt(format!(
                        "{} payload bytes beyond the footer's entry count",
                        r.remaining()
                    )));
                }
                if digest.next().is_some() {
                    return Err(corrupt("digest has events beyond the payload".to_string()));
                }
            }
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppd_analysis::EBlockId;
    use ppd_lang::{Value, VarId};

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("ppd-segment-tests").join(name);
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn prelog(b: u32, i: u64, t: u64) -> LogEntry {
        LogEntry::Prelog { eblock: EBlockId(b), instance: i, values: vec![], time: t }
    }

    fn postlog(b: u32, i: u64, t: u64) -> LogEntry {
        LogEntry::Postlog {
            eblock: EBlockId(b),
            instance: i,
            values: vec![(VarId(0), Value::Int(t as i64))],
            ret: None,
            time: t,
        }
    }

    /// Two processes, nested and open intervals, enough entries to
    /// force several segments at a small capacity.
    fn sample_store(rounds: u64) -> LogStore {
        let mut s = LogStore::new(2);
        let mut t = 0;
        for i in 0..rounds {
            t += 1;
            s.push(ProcId(0), prelog(0, i, t));
            t += 1;
            s.push(ProcId(0), LogEntry::Input { value: -(i as i64), time: t });
            t += 1;
            s.push(ProcId(0), prelog(1, i, t));
            t += 1;
            s.push(ProcId(0), postlog(1, i, t));
            t += 1;
            s.push(ProcId(0), postlog(0, i, t));
            t += 1;
            s.push(ProcId(1), LogEntry::Receive { value: i as i64, time: t });
            t += 1;
            s.push(ProcId(1), prelog(2, i, t));
        }
        s
    }

    #[test]
    fn crc32_known_vector() {
        // The classic IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn tiny_capacity_round_trips_across_many_segments() {
        let dir = tmp_dir("many-segments");
        let s = sample_store(40);
        let report = write_store(&s, &dir, 64).unwrap();
        assert!(report.segments > 4, "capacity 64 must split: {report:?}");
        assert_eq!(report.entries, s.total_entries() as u64);
        let seg = SegmentedLog::open(&dir).unwrap();
        assert!(seg.warnings().is_empty());
        for p in 0..2 {
            let pid = ProcId(p);
            assert_eq!(seg.process_log(pid).entries, s.log(pid).entries);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_and_index_decode_nothing() {
        let dir = tmp_dir("no-rescan");
        let s = sample_store(20);
        write_store(&s, &dir, 256).unwrap();
        let seg = SegmentedLog::open(&dir).unwrap();
        let idx = seg.index();
        assert_eq!(seg.entries_decoded(), 0, "open + index must not decode entries");
        // The footer-built index equals the full-scan rebuild.
        let scan = s.index();
        for p in 0..2 {
            let pid = ProcId(p);
            assert_eq!(idx.intervals(pid), scan.intervals(pid));
            assert_eq!(idx.open_intervals(pid), scan.open_intervals(pid));
            assert_eq!(idx.top_level(pid), scan.top_level(pid));
        }
        // Touching a payload does decode — and only that process.
        let n0 = seg.process_log(ProcId(0)).entries.len() as u64;
        assert_eq!(seg.entries_decoded(), n0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn footer_stats_match_store() {
        let dir = tmp_dir("footer-stats");
        let s = sample_store(10);
        write_store(&s, &dir, 512).unwrap();
        let seg = SegmentedLog::open(&dir).unwrap();
        assert_eq!(seg.total_entries(), s.total_entries() as u64);
        assert_eq!(seg.total_logical_bytes(), s.total_bytes() as u64);
        assert_eq!(seg.entries_decoded(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn footer_bit_flip_is_hard_corruption_at_open() {
        let dir = tmp_dir("bit-flip-footer");
        write_store(&sample_store(40), &dir, 64).unwrap();
        // Flip one footer byte of process 0's first (non-tail) segment:
        // the footer crc check at open must refuse it.
        let victim = dir.join(segment_file_name(0, 0));
        let mut bytes = std::fs::read(&victim).unwrap();
        let at = bytes.len() - TRAILER_LEN - 2;
        bytes[at] ^= 0x40;
        std::fs::write(&victim, &bytes).unwrap();
        match SegmentedLog::open(&dir) {
            Err(SegError::Corrupt { file, detail }) => {
                assert_eq!(file, segment_file_name(0, 0), "error names the segment");
                assert!(detail.contains("footer crc mismatch"), "{detail}");
            }
            other => panic!("expected corruption error, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn payload_bit_flip_opens_but_fails_verify() {
        let dir = tmp_dir("bit-flip-payload");
        write_store(&sample_store(40), &dir, 64).unwrap();
        // Flip one payload byte: open only checks footers (that is the
        // whole point of the crc split), so the store opens — and
        // `verify` pins the damage to the payload crc.
        let victim = dir.join(segment_file_name(0, 0));
        let mut bytes = std::fs::read(&victim).unwrap();
        bytes[SEG_MAGIC.len() + 8] ^= 0x40;
        std::fs::write(&victim, &bytes).unwrap();
        let seg = SegmentedLog::open(&dir).expect("payload damage must not block open");
        match seg.verify() {
            Err(SegError::Corrupt { file, detail }) => {
                assert_eq!(file, segment_file_name(0, 0), "error names the segment");
                assert!(detail.contains("payload crc mismatch"), "{detail}");
            }
            other => panic!("expected corruption error, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_tail_recovers_with_warning() {
        let dir = tmp_dir("truncated-tail");
        let s = sample_store(40);
        write_store(&s, &dir, 64).unwrap();
        // Truncate process 1's last segment mid-file, as if the writer
        // died during the flush.
        let last_seq =
            SegmentedLog::open(&dir).unwrap().segments(ProcId(1)).map(|m| m.seq).max().unwrap();
        let victim = dir.join(segment_file_name(1, last_seq));
        let bytes = std::fs::read(&victim).unwrap();
        std::fs::write(&victim, &bytes[..bytes.len() / 2]).unwrap();
        let seg = SegmentedLog::open(&dir).expect("tail truncation must be recoverable");
        assert_eq!(seg.warnings().len(), 1);
        assert!(
            seg.warnings()[0].contains(&segment_file_name(1, last_seq)),
            "{:?}",
            seg.warnings()
        );
        // The surviving prefix still decodes and is a prefix of the
        // original log.
        let got = &seg.process_log(ProcId(1)).entries;
        let full = &s.log(ProcId(1)).entries;
        assert!(got.len() < full.len());
        assert_eq!(got.as_slice(), &full[..got.len()]);
        // Process 0 is untouched.
        assert_eq!(seg.process_log(ProcId(0)).entries, s.log(ProcId(0)).entries);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn verify_checks_payload_against_footer() {
        let dir = tmp_dir("verify-good");
        let s = sample_store(15);
        write_store(&s, &dir, 128).unwrap();
        let seg = SegmentedLog::open(&dir).unwrap();
        let report = seg.verify().unwrap();
        assert_eq!(report.entries, s.total_entries() as u64);
        assert!(report.segments > 0);
        assert!(report.warnings.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_manifest_is_an_error() {
        let dir = tmp_dir("no-manifest");
        std::fs::create_dir_all(&dir).unwrap();
        assert!(matches!(SegmentedLog::open(&dir), Err(SegError::Io { .. })));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn segment_file_names_parse_back() {
        assert_eq!(parse_file_name(&segment_file_name(7, 42)), Some((7, 42)));
        assert_eq!(parse_file_name("manifest.json"), None);
        assert_eq!(parse_file_name("p0007.seg"), None);
    }
}

//! Read-only file mappings for the segmented log reader.
//!
//! Opening a multi-GB log must not copy it into the heap: segment
//! payloads are decoded directly out of the page cache. The workspace
//! vendors no `libc`/`memmap2`, so on Linux the `mmap`/`munmap` system
//! calls are issued directly; everywhere else (and whenever the map
//! fails) [`Mapping::open`] degrades to reading the file into an owned
//! buffer, which keeps every caller correct if slower.

use std::fs::File;
use std::io::{self, Read};
use std::path::Path;

/// The bytes of one file, either memory-mapped (`PROT_READ`,
/// `MAP_PRIVATE`) or, on the fallback path, read into the heap.
pub struct Mapping {
    repr: Repr,
}

enum Repr {
    /// A live read-only mapping; unmapped on drop.
    #[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
    Mapped { ptr: *const u8, len: usize },
    /// Owned copy of the file (empty files, non-Linux hosts, map failures).
    Heap(Vec<u8>),
}

// SAFETY: a `Mapped` region is private and read-only for its whole
// lifetime — no writer exists, so sharing the pointer across threads is
// no different from sharing a `&[u8]`.
unsafe impl Send for Mapping {}
unsafe impl Sync for Mapping {}

impl Mapping {
    /// Maps `path` read-only, falling back to an in-heap read when
    /// mapping is unavailable. Empty files yield an empty slice without
    /// touching `mmap` (zero-length maps are an `EINVAL`).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the file cannot be opened or
    /// (on the fallback path) read.
    pub fn open(path: &Path) -> io::Result<Mapping> {
        let mut file = File::open(path)?;
        let len = file.metadata()?.len() as usize;
        if len == 0 {
            return Ok(Mapping { repr: Repr::Heap(Vec::new()) });
        }
        #[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
        {
            use std::os::unix::io::AsRawFd;
            if let Some(ptr) = sys::mmap_readonly(file.as_raw_fd(), len) {
                return Ok(Mapping { repr: Repr::Mapped { ptr, len } });
            }
        }
        let mut buf = Vec::with_capacity(len);
        file.read_to_end(&mut buf)?;
        Ok(Mapping { repr: Repr::Heap(buf) })
    }

    /// The mapped (or read) bytes.
    pub fn bytes(&self) -> &[u8] {
        match &self.repr {
            #[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
            Repr::Mapped { ptr, len } => {
                // SAFETY: the mapping stays valid until drop and is never
                // written through.
                unsafe { std::slice::from_raw_parts(*ptr, *len) }
            }
            Repr::Heap(v) => v,
        }
    }

    /// Whether the bytes live in a real `mmap` region (false on the
    /// heap-read fallback). Tests use this to assert the zero-copy path
    /// is actually taken on Linux.
    pub fn is_mapped(&self) -> bool {
        match &self.repr {
            #[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
            Repr::Mapped { .. } => true,
            Repr::Heap(_) => false,
        }
    }
}

impl std::ops::Deref for Mapping {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.bytes()
    }
}

impl std::fmt::Debug for Mapping {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mapping")
            .field("len", &self.bytes().len())
            .field("mapped", &self.is_mapped())
            .finish()
    }
}

impl Drop for Mapping {
    fn drop(&mut self) {
        #[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
        if let Repr::Mapped { ptr, len } = self.repr {
            // SAFETY: `ptr`/`len` came from a successful mmap and are
            // unmapped exactly once.
            unsafe { sys::munmap(ptr, len) };
        }
    }
}

/// Raw `mmap(2)`/`munmap(2)` via inline-syscall stubs. The vendored
/// dependency set has no `libc`, so the two calls the mapping needs are
/// issued directly with the Linux syscall ABI.
#[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
mod sys {
    const PROT_READ: usize = 1;
    const MAP_PRIVATE: usize = 2;

    #[cfg(target_arch = "x86_64")]
    const SYS_MMAP: usize = 9;
    #[cfg(target_arch = "x86_64")]
    const SYS_MUNMAP: usize = 11;
    #[cfg(target_arch = "aarch64")]
    const SYS_MMAP: usize = 222;
    #[cfg(target_arch = "aarch64")]
    const SYS_MUNMAP: usize = 215;

    #[cfg(target_arch = "x86_64")]
    unsafe fn syscall6(
        nr: usize,
        a: usize,
        b: usize,
        c: usize,
        d: usize,
        e: usize,
        f: usize,
    ) -> isize {
        let ret: isize;
        unsafe {
            std::arch::asm!(
                "syscall",
                inlateout("rax") nr as isize => ret,
                in("rdi") a,
                in("rsi") b,
                in("rdx") c,
                in("r10") d,
                in("r8") e,
                in("r9") f,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        ret
    }

    #[cfg(target_arch = "aarch64")]
    unsafe fn syscall6(
        nr: usize,
        a: usize,
        b: usize,
        c: usize,
        d: usize,
        e: usize,
        f: usize,
    ) -> isize {
        let ret: isize;
        unsafe {
            std::arch::asm!(
                "svc #0",
                in("x8") nr,
                inlateout("x0") a => ret,
                in("x1") b,
                in("x2") c,
                in("x3") d,
                in("x4") e,
                in("x5") f,
                options(nostack),
            );
        }
        ret
    }

    /// Maps `len` bytes of `fd` read-only/private; `None` on any kernel
    /// error (the caller falls back to a heap read).
    pub(super) fn mmap_readonly(fd: i32, len: usize) -> Option<*const u8> {
        // SAFETY: arguments follow the mmap(2) contract; the fd is open
        // and owned by the caller for the duration of the call.
        let ret = unsafe { syscall6(SYS_MMAP, 0, len, PROT_READ, MAP_PRIVATE, fd as usize, 0) };
        // Kernel errors come back as -errno in [-4095, -1].
        if (-4095..0).contains(&ret) {
            None
        } else {
            Some(ret as *const u8)
        }
    }

    /// Releases a mapping produced by [`mmap_readonly`].
    ///
    /// # Safety
    ///
    /// `ptr`/`len` must be exactly the values a successful
    /// [`mmap_readonly`] returned, unmapped at most once.
    pub(super) unsafe fn munmap(ptr: *const u8, len: usize) {
        unsafe {
            syscall6(SYS_MUNMAP, ptr as usize, len, 0, 0, 0, 0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_file(name: &str, bytes: &[u8]) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("ppd-mmap-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, bytes).unwrap();
        path
    }

    #[test]
    fn maps_file_contents() {
        let path = tmp_file("basic.bin", b"segmented logs");
        let m = Mapping::open(&path).unwrap();
        assert_eq!(&*m, b"segmented logs");
        #[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
        assert!(m.is_mapped(), "expected the real mmap path on Linux");
    }

    #[test]
    fn empty_file_yields_empty_slice() {
        let path = tmp_file("empty.bin", b"");
        let m = Mapping::open(&path).unwrap();
        assert!(m.is_empty());
        assert!(!m.is_mapped());
    }

    #[test]
    fn missing_file_is_an_io_error() {
        assert!(Mapping::open(Path::new("/nonexistent/ppd.seg")).is_err());
    }

    #[test]
    fn large_mapping_survives_scan() {
        let data: Vec<u8> = (0..1 << 20).map(|i| (i % 251) as u8).collect();
        let path = tmp_file("large.bin", &data);
        let m = Mapping::open(&path).unwrap();
        assert_eq!(m.len(), data.len());
        assert_eq!(m.iter().map(|&b| b as u64).sum::<u64>(), data.iter().map(|&b| b as u64).sum());
    }
}

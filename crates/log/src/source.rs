//! The [`LogSource`] abstraction: one query surface over in-memory and
//! on-disk logs.
//!
//! The Controller, the replay engine, and the race scan only ever ask a
//! log two kinds of questions: *structural* ones (intervals, nesting,
//! covering spans — all answered by the [`IntervalIndex`]) and
//! *payload* ones (the raw entry slice a replay consumes). `LogSource`
//! captures exactly that surface, so an in-memory [`LogStore`] and a
//! mapped [`SegmentedLog`] are interchangeable: the structural methods
//! are provided once, in terms of `index()`, and therefore cannot
//! diverge between backends.

use crate::entry::LogEntry;
use crate::index::IntervalIndex;
use crate::segment::SegmentedLog;
use crate::store::{IntervalRef, LogStore};
use ppd_analysis::EBlockId;
use ppd_lang::ProcId;
use std::sync::Arc;

/// A queryable log of one execution, independent of where the bytes
/// live.
pub trait LogSource {
    /// Number of process logs.
    fn process_count(&self) -> usize;

    /// The entries of one process, materializing them if the backend
    /// is on-disk.
    fn entries(&self, proc: ProcId) -> &[LogEntry];

    /// The interval index (cached by the backend).
    fn index(&self) -> Arc<IntervalIndex>;

    /// Total entry count — overridden by backends that know it without
    /// materializing anything.
    fn total_entries(&self) -> usize {
        (0..self.process_count()).map(|p| self.entries(ProcId(p as u32)).len()).sum()
    }

    // ----- structural queries, provided uniformly via the index -----

    /// All log intervals of `proc`, in prelog order (§5.1).
    fn intervals(&self, proc: ProcId) -> Vec<IntervalRef> {
        self.index().intervals(proc)
    }

    /// The intervals of `proc` still open at the halt, innermost last
    /// (§5.3).
    fn open_intervals(&self, proc: ProcId) -> Vec<IntervalRef> {
        self.index().open_intervals(proc)
    }

    /// O(1) lookup of one dynamic e-block execution.
    fn find_interval(&self, proc: ProcId, eblock: EBlockId, instance: u64) -> Option<IntervalRef> {
        self.index().find(proc, eblock, instance)
    }

    /// The latest interval of `proc`/`eblock` covering logical time `t`
    /// (§5.6).
    fn interval_covering(&self, proc: ProcId, eblock: EBlockId, t: u64) -> Option<IntervalRef> {
        self.index().interval_covering(proc, eblock, t)
    }
}

impl LogSource for LogStore {
    fn process_count(&self) -> usize {
        LogStore::process_count(self)
    }

    fn entries(&self, proc: ProcId) -> &[LogEntry] {
        &self.log(proc).entries
    }

    fn index(&self) -> Arc<IntervalIndex> {
        LogStore::index(self)
    }

    fn total_entries(&self) -> usize {
        LogStore::total_entries(self)
    }
}

impl LogSource for SegmentedLog {
    fn process_count(&self) -> usize {
        SegmentedLog::process_count(self)
    }

    fn entries(&self, proc: ProcId) -> &[LogEntry] {
        &self.process_log(proc).entries
    }

    fn index(&self) -> Arc<IntervalIndex> {
        SegmentedLog::index(self)
    }

    fn total_entries(&self) -> usize {
        SegmentedLog::total_entries(self) as usize
    }
}

//! The persistent log-interval index (§5.1, Figure 5.1/5.2).
//!
//! The Controller's debugging phase asks the same structural questions
//! over and over: *which intervals does this process have*, *which are
//! still open*, *which intervals nest directly inside this one*, *which
//! interval covers logical time t*. Answering each of those by rescanning
//! the raw entry stream is quadratic in the log length; the
//! [`IntervalIndex`] answers all of them from tables built in one pass.
//!
//! The build is a single forward scan per process with a stack of open
//! intervals: a prelog pushes a new interval whose *parent* is the stack
//! top (the nesting links of Figure 5.2), a postlog closes the matching
//! stack entry. Whatever remains on the stack when the log ends is the
//! open-interval chain the Controller starts debugging from (§5.3).

use crate::entry::LogEntry;
use crate::store::{IntervalRef, LogStore};
use ppd_analysis::EBlockId;
use ppd_lang::ProcId;
use std::collections::HashMap;

/// One structural event of a process log: a prelog or postlog together
/// with its entry position and logical time. The stack-matching index
/// build consumes these — extracted either from the raw entry stream or
/// from the digests persisted in segment footers
/// ([`crate::segment::SegmentMeta`]), so both paths share one builder
/// and cannot disagree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct StructEvent {
    /// Entry position within the process log.
    pub pos: usize,
    /// `true` for a prelog, `false` for a postlog.
    pub is_prelog: bool,
    /// The e-block.
    pub eblock: EBlockId,
    /// The per-process instance number.
    pub instance: u64,
    /// Logical time of the entry.
    pub time: u64,
}

impl StructEvent {
    /// The structural event of `entry` at position `pos`, if it is a
    /// prelog or postlog (other entry kinds carry no interval
    /// structure).
    pub(crate) fn of_entry(pos: usize, entry: &LogEntry) -> Option<StructEvent> {
        match entry {
            LogEntry::Prelog { eblock, instance, time, .. } => Some(StructEvent {
                pos,
                is_prelog: true,
                eblock: *eblock,
                instance: *instance,
                time: *time,
            }),
            LogEntry::Postlog { eblock, instance, time, .. } => Some(StructEvent {
                pos,
                is_prelog: false,
                eblock: *eblock,
                instance: *instance,
                time: *time,
            }),
            _ => None,
        }
    }
}

/// Per-interval index record: the interval itself plus its nesting links
/// and time span.
#[derive(Debug, Clone)]
struct IndexedInterval {
    /// The interval, exactly as [`LogStore::intervals`] would report it.
    interval: IntervalRef,
    /// Index (into the same process's interval list) of the directly
    /// enclosing interval, if any.
    parent: Option<usize>,
    /// Indices of the directly nested intervals, in log order.
    children: Vec<usize>,
    /// Logical time of the prelog.
    start_time: u64,
    /// Logical time of the postlog (`u64::MAX` while open).
    end_time: u64,
}

/// Multiply-rotate hasher (rustc's FxHash scheme). `by_key` takes one
/// insert per interval — millions when a large store's index is rebuilt
/// from segment footers — and the default SipHash dominates that build,
/// while HashDoS resistance buys nothing against our own log files.
#[derive(Default)]
struct FxHasher(u64);

impl std::hash::Hasher for FxHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.mix(u64::from(b));
        }
    }
    fn write_u32(&mut self, v: u32) {
        self.mix(u64::from(v));
    }
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

impl FxHasher {
    fn mix(&mut self, v: u64) {
        self.0 = (self.0.rotate_left(5) ^ v).wrapping_mul(0x517c_c1b7_2722_0a95);
    }
}

type FxMap<K, V> = HashMap<K, V, std::hash::BuildHasherDefault<FxHasher>>;

/// The index of one process's log.
#[derive(Debug, Clone, Default)]
struct ProcIndex {
    /// All intervals in prelog order (outer before nested — Figure 5.1).
    intervals: Vec<IndexedInterval>,
    /// `(eblock, instance)` → position in `intervals`.
    by_key: FxMap<(EBlockId, u64), usize>,
    /// Positions of intervals with no postlog, outermost first.
    open: Vec<usize>,
    /// Positions of the unnested (top-level) intervals, in log order.
    top_level: Vec<usize>,
}

/// A whole-execution interval index: every process's intervals, their
/// nesting structure, and `(eblock, instance)` lookup tables, built in a
/// single pass over each log.
#[derive(Debug, Clone, Default)]
pub struct IntervalIndex {
    procs: Vec<ProcIndex>,
}

impl IntervalIndex {
    /// Builds the index for every process of `store` — one O(entries)
    /// pass per log.
    pub fn build(store: &LogStore) -> IntervalIndex {
        let mut span = ppd_obs::span("log", "index_build");
        span.arg("procs", store.process_count());
        let procs = (0..store.process_count())
            .map(|p| {
                let proc = ProcId(p as u32);
                Self::build_proc(proc, &store.log(proc).entries)
            })
            .collect();
        IntervalIndex { procs }
    }

    /// [`IntervalIndex::build`] sharded by process across a
    /// work-stealing pool: each process's log is an independent
    /// single-pass stack matching, so the per-process tables build
    /// concurrently and are merged in process order — the result is
    /// identical to the sequential build.
    pub fn build_par(store: &LogStore, jobs: usize) -> IntervalIndex {
        if jobs <= 1 || store.process_count() <= 1 {
            return Self::build(store);
        }
        let mut span = ppd_obs::span("log", "index_build_par");
        span.arg("procs", store.process_count());
        span.arg("jobs", jobs);
        use rayon::prelude::*;
        let procs_in: Vec<ProcId> = (0..store.process_count()).map(|p| ProcId(p as u32)).collect();
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(jobs)
            .build()
            .expect("thread pool build is infallible");
        let procs = pool.install(|| {
            procs_in
                .par_iter()
                .map(|&proc| Self::build_proc(proc, &store.log(proc).entries))
                .collect()
        });
        IntervalIndex { procs }
    }

    fn build_proc(proc: ProcId, entries: &[LogEntry]) -> ProcIndex {
        Self::build_proc_events(
            proc,
            entries.iter().enumerate().filter_map(|(pos, e)| StructEvent::of_entry(pos, e)),
        )
    }

    /// Builds one process's index from its structural-event stream —
    /// the single shared implementation behind both the raw-entry scan
    /// and the footer-digest load.
    fn build_proc_events(proc: ProcId, events: impl IntoIterator<Item = StructEvent>) -> ProcIndex {
        let events = events.into_iter();
        let hint = events.size_hint().0;
        Self::build_proc_events_hinted(proc, events, hint)
    }

    /// [`Self::build_proc_events`] with an explicit event-count hint,
    /// for streams (like chained segment digests) whose iterators
    /// cannot report their length.
    fn build_proc_events_hinted(
        proc: ProcId,
        events: impl IntoIterator<Item = StructEvent>,
        hint: usize,
    ) -> ProcIndex {
        let mut idx = ProcIndex::default();
        // Every prelog becomes one interval; a paired stream is half
        // prelogs, so this reserve is exact for complete logs.
        let guess = hint / 2 + 1;
        idx.intervals.reserve(guess);
        idx.by_key.reserve(guess);
        // Stack of positions (into `idx.intervals`) of currently open
        // intervals; the top is the innermost.
        let mut stack: Vec<usize> = Vec::new();
        Self::feed_events(&mut idx, proc, &mut stack, events);
        // Whatever is still on the stack was open at the halt,
        // outermost first (§5.3 starts from the innermost = last).
        idx.open = stack;
        idx
    }

    /// The single stack-matching event loop shared by the full build
    /// and the incremental extension: feeds `events` into `idx`,
    /// pushing prelogs onto (and popping postlogs off) `stack`.
    fn feed_events(
        idx: &mut ProcIndex,
        proc: ProcId,
        stack: &mut Vec<usize>,
        events: impl IntoIterator<Item = StructEvent>,
    ) {
        for ev in events {
            if ev.is_prelog {
                let slot = idx.intervals.len();
                let parent = stack.last().copied();
                idx.intervals.push(IndexedInterval {
                    interval: IntervalRef {
                        proc,
                        eblock: ev.eblock,
                        instance: ev.instance,
                        prelog_pos: ev.pos,
                        postlog_pos: None,
                    },
                    parent,
                    children: Vec::new(),
                    start_time: ev.time,
                    end_time: u64::MAX,
                });
                match parent {
                    Some(p) => idx.intervals[p].children.push(slot),
                    None => idx.top_level.push(slot),
                }
                idx.by_key.insert((ev.eblock, ev.instance), slot);
                stack.push(slot);
            } else {
                // Intervals nest, so the matching prelog is normally
                // the stack top; search downward anyway so a corrupt
                // log degrades to unmatched intervals instead of a
                // mis-paired index.
                let found = stack.iter().rposition(|&slot| {
                    let iv = &idx.intervals[slot].interval;
                    iv.eblock == ev.eblock && iv.instance == ev.instance
                });
                if let Some(depth) = found {
                    let slot = stack.remove(depth);
                    idx.intervals[slot].interval.postlog_pos = Some(ev.pos);
                    idx.intervals[slot].end_time = ev.time;
                }
            }
        }
    }

    /// Builds the whole-execution index from per-process
    /// structural-event streams — how a [`crate::segment::SegmentedLog`]
    /// turns its footer digests into the same index a full entry scan
    /// would produce, without decoding a single entry.
    pub(crate) fn build_from_events<I>(streams: Vec<(ProcId, usize, I)>) -> IntervalIndex
    where
        I: IntoIterator<Item = StructEvent>,
    {
        let mut span = ppd_obs::span("log", "index_from_digests");
        span.arg("procs", streams.len());
        IntervalIndex {
            procs: streams
                .into_iter()
                .map(|(proc, hint, events)| Self::build_proc_events_hinted(proc, events, hint))
                .collect(),
        }
    }

    /// A copy of this index extended with new structural events — the
    /// incremental path behind [`crate::segment::SegmentedLog::refresh`].
    /// Each process's saved open-interval list *is* the stack-matching
    /// state at the point its last build stopped (the stack is stored
    /// verbatim at the end of the feed loop), so extension resumes that
    /// stack and feeds only the events beyond the old log length. The
    /// result is identical to rebuilding from the full event stream,
    /// because both run the same feed loop over the same total
    /// sequence.
    pub(crate) fn extend_from_events<I>(&self, streams: Vec<(ProcId, usize, I)>) -> IntervalIndex
    where
        I: IntoIterator<Item = StructEvent>,
    {
        let mut span = ppd_obs::span("log", "index_extend");
        span.arg("procs", streams.len());
        let mut procs: Vec<ProcIndex> = self.procs.clone();
        for (proc, hint, events) in streams {
            let p = proc.index();
            if p >= procs.len() {
                procs.resize_with(p + 1, ProcIndex::default);
            }
            let idx = &mut procs[p];
            idx.intervals.reserve(hint / 2 + 1);
            // Resume the matching stack exactly where the prior build
            // halted.
            let mut stack = std::mem::take(&mut idx.open);
            Self::feed_events(idx, proc, &mut stack, events);
            idx.open = stack;
        }
        IntervalIndex { procs }
    }

    /// Number of indexed processes.
    pub fn process_count(&self) -> usize {
        self.procs.len()
    }

    /// All intervals of `proc` in prelog order (outer intervals appear
    /// before the intervals nested inside them — Figure 5.1/5.2).
    pub fn intervals(&self, proc: ProcId) -> Vec<IntervalRef> {
        self.procs[proc.index()].intervals.iter().map(|i| i.interval).collect()
    }

    /// Total interval count for `proc` without materializing the list.
    pub fn interval_count(&self, proc: ProcId) -> usize {
        self.procs[proc.index()].intervals.len()
    }

    /// The intervals of `proc` still open when execution stopped —
    /// innermost last (§5.3).
    pub fn open_intervals(&self, proc: ProcId) -> Vec<IntervalRef> {
        let p = &self.procs[proc.index()];
        p.open.iter().map(|&i| p.intervals[i].interval).collect()
    }

    /// The top-level (unnested) intervals of `proc`, in log order.
    pub fn top_level(&self, proc: ProcId) -> Vec<IntervalRef> {
        let p = &self.procs[proc.index()];
        p.top_level.iter().map(|&i| p.intervals[i].interval).collect()
    }

    /// O(1) lookup of a specific dynamic e-block execution.
    pub fn find(&self, proc: ProcId, eblock: EBlockId, instance: u64) -> Option<IntervalRef> {
        let p = &self.procs[proc.index()];
        p.by_key.get(&(eblock, instance)).map(|&i| p.intervals[i].interval)
    }

    /// The direct child intervals of `parent`, in log order — the
    /// nesting structure of Figure 5.2.
    pub fn direct_children(&self, parent: IntervalRef) -> Vec<IntervalRef> {
        let p = &self.procs[parent.proc.index()];
        match p.by_key.get(&(parent.eblock, parent.instance)) {
            Some(&slot) => {
                p.intervals[slot].children.iter().map(|&c| p.intervals[c].interval).collect()
            }
            None => Vec::new(),
        }
    }

    /// The directly enclosing interval of `child`, if any.
    pub fn parent_of(&self, child: IntervalRef) -> Option<IntervalRef> {
        let p = &self.procs[child.proc.index()];
        let slot = *p.by_key.get(&(child.eblock, child.instance))?;
        p.intervals[slot].parent.map(|pp| p.intervals[pp].interval)
    }

    /// The latest interval of `proc` with e-block `eblock` whose time
    /// span covers logical time `t` (§5.6's cross-process lookup).
    pub fn interval_covering(&self, proc: ProcId, eblock: EBlockId, t: u64) -> Option<IntervalRef> {
        self.procs[proc.index()]
            .intervals
            .iter()
            .rev()
            .find(|i| i.interval.eblock == eblock && i.start_time <= t && t <= i.end_time)
            .map(|i| i.interval)
    }

    /// The latest (hence innermost among overlapping candidates) interval
    /// of `proc` whose `[start, end]` time span overlaps `[lo, hi]` — how
    /// the Controller locates the writer's interval for a cross-process
    /// dependence or race explanation (§5.6, §6.3).
    pub fn covering_window(&self, proc: ProcId, lo: u64, hi: u64) -> Option<IntervalRef> {
        self.procs[proc.index()]
            .intervals
            .iter()
            .rev()
            .find(|i| i.start_time <= hi && i.end_time >= lo)
            .map(|i| i.interval)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppd_lang::{Value, VarId};

    fn prelog(b: u32, i: u64, t: u64) -> LogEntry {
        LogEntry::Prelog { eblock: EBlockId(b), instance: i, values: vec![], time: t }
    }

    fn postlog(b: u32, i: u64, t: u64) -> LogEntry {
        LogEntry::Postlog {
            eblock: EBlockId(b),
            instance: i,
            values: vec![(VarId(0), Value::Int(t as i64))],
            ret: None,
            time: t,
        }
    }

    /// Figure 5.2: SubJ's interval contains SubK's.
    fn fig52_store() -> LogStore {
        let mut s = LogStore::new(1);
        let p = ProcId(0);
        s.push(p, prelog(0, 0, 1));
        s.push(p, prelog(1, 0, 2));
        s.push(p, postlog(1, 0, 3));
        s.push(p, postlog(0, 0, 4));
        s
    }

    #[test]
    fn index_agrees_with_store_scan() {
        let s = fig52_store();
        let idx = IntervalIndex::build(&s);
        assert_eq!(idx.intervals(ProcId(0)), s.intervals(ProcId(0)));
    }

    #[test]
    fn fig52_nesting_links() {
        let s = fig52_store();
        let idx = IntervalIndex::build(&s);
        let ivs = idx.intervals(ProcId(0));
        // Outer (SubJ) before inner (SubK) — Figure 5.1 ordering.
        assert_eq!(ivs[0].eblock, EBlockId(0));
        assert_eq!(ivs[1].eblock, EBlockId(1));
        // Parent/child links mirror Figure 5.2.
        assert_eq!(idx.direct_children(ivs[0]), vec![ivs[1]]);
        assert_eq!(idx.parent_of(ivs[1]), Some(ivs[0]));
        assert_eq!(idx.parent_of(ivs[0]), None);
        assert_eq!(idx.top_level(ProcId(0)), vec![ivs[0]]);
        // O(1) lookup.
        assert_eq!(idx.find(ProcId(0), EBlockId(1), 0), Some(ivs[1]));
        assert_eq!(idx.find(ProcId(0), EBlockId(7), 0), None);
    }

    #[test]
    fn open_intervals_after_breakpoint_halt() {
        // Fig 5.1 shape at a halt: Main and the nested SubK interval both
        // lack postlogs; the innermost open interval is last (§5.3).
        let mut s = LogStore::new(1);
        let p = ProcId(0);
        s.push(p, prelog(0, 0, 1));
        s.push(p, prelog(1, 0, 2));
        s.push(p, postlog(1, 0, 3));
        s.push(p, prelog(2, 0, 4)); // halted inside EBlock 2
        let idx = IntervalIndex::build(&s);
        let open = idx.open_intervals(p);
        assert_eq!(open.len(), 2);
        assert_eq!(open[0].eblock, EBlockId(0), "outermost first");
        assert_eq!(open.last().unwrap().eblock, EBlockId(2), "innermost last");
        assert_eq!(open, s.open_intervals(p));
    }

    #[test]
    fn recursive_instances_nest_by_instance() {
        let mut s = LogStore::new(1);
        let p = ProcId(0);
        s.push(p, prelog(0, 0, 1));
        s.push(p, prelog(0, 1, 2)); // recursive call, same e-block
        s.push(p, postlog(0, 1, 3));
        s.push(p, postlog(0, 0, 4));
        let idx = IntervalIndex::build(&s);
        let outer = idx.find(p, EBlockId(0), 0).unwrap();
        let inner = idx.find(p, EBlockId(0), 1).unwrap();
        assert_eq!(outer.postlog_pos, Some(3));
        assert_eq!(inner.postlog_pos, Some(2));
        assert_eq!(idx.parent_of(inner), Some(outer));
        assert_eq!(idx.direct_children(outer), vec![inner]);
    }

    #[test]
    fn grandchildren_are_not_direct_children() {
        let mut s = LogStore::new(1);
        let p = ProcId(0);
        s.push(p, prelog(0, 0, 1));
        s.push(p, prelog(1, 0, 2));
        s.push(p, prelog(2, 0, 3));
        s.push(p, postlog(2, 0, 4));
        s.push(p, postlog(1, 0, 5));
        s.push(p, prelog(2, 1, 6)); // second child of EBlock 1? no — of 0
        s.push(p, postlog(2, 1, 7));
        s.push(p, postlog(0, 0, 8));
        let idx = IntervalIndex::build(&s);
        let root = idx.find(p, EBlockId(0), 0).unwrap();
        let kids = idx.direct_children(root);
        assert_eq!(kids.len(), 2);
        assert_eq!(kids[0].eblock, EBlockId(1));
        assert_eq!(kids[1].eblock, EBlockId(2));
        assert_eq!(kids[1].instance, 1);
        // The grandchild hangs off EBlock 1, not the root.
        let mid = idx.find(p, EBlockId(1), 0).unwrap();
        assert_eq!(idx.direct_children(mid), vec![idx.find(p, EBlockId(2), 0).unwrap()]);
    }

    #[test]
    fn covering_queries_use_time_spans() {
        let s = fig52_store();
        let idx = IntervalIndex::build(&s);
        let iv = idx.interval_covering(ProcId(0), EBlockId(0), 2).unwrap();
        assert_eq!(iv.eblock, EBlockId(0));
        assert!(idx.interval_covering(ProcId(0), EBlockId(1), 9).is_none());
        // Window overlap picks the innermost (latest) candidate.
        let w = idx.covering_window(ProcId(0), 2, 3).unwrap();
        assert_eq!(w.eblock, EBlockId(1));
        assert!(idx.covering_window(ProcId(0), 9, 10).is_none());
    }
}

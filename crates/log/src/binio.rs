//! Compact binary encoding of a [`LogStore`].
//!
//! The JSON format is convenient for inspection, but its byte count says
//! nothing about what the paper's object code would actually write to
//! disk. This module defines a dense format — one-byte entry tags,
//! LEB128 varints, zigzag-encoded integers — so experiment E2 can report
//! honest log volume, and round-trips exactly with the JSON encoding.
//!
//! Layout: `"PPDL"` magic, a format-version byte, the process count,
//! then each process's entry list. Every integer is an unsigned LEB128
//! varint; signed values are zigzag-mapped first.

use crate::entry::LogEntry;
use crate::store::LogStore;
use ppd_analysis::EBlockId;
use ppd_lang::{ProcId, StmtId, Value, VarId};
use std::fmt;

const MAGIC: &[u8; 4] = b"PPDL";
const VERSION: u8 = 1;

const TAG_PRELOG: u8 = 0;
const TAG_POSTLOG: u8 = 1;
const TAG_SHARED: u8 = 2;
const TAG_INPUT: u8 = 3;
const TAG_RECEIVE: u8 = 4;
const TAG_ELEMENT: u8 = 5;

const VAL_INT: u8 = 0;
const VAL_ARRAY: u8 = 1;

/// A binary decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BinError {
    /// The input does not start with the `PPDL` magic.
    BadMagic,
    /// The format version byte is not one this build understands.
    BadVersion(u8),
    /// An entry or value tag byte was not recognized.
    BadTag(u8),
    /// The input ended mid-record.
    UnexpectedEof,
}

impl fmt::Display for BinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BinError::BadMagic => write!(f, "not a PPDL binary log (bad magic)"),
            BinError::BadVersion(v) => write!(f, "unsupported binary log version {v}"),
            BinError::BadTag(t) => write!(f, "unknown record tag {t}"),
            BinError::UnexpectedEof => write!(f, "truncated binary log"),
        }
    }
}

impl std::error::Error for BinError {}

// ---------------------------------------------------------------------
// Primitive writers/readers
// ---------------------------------------------------------------------

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn put_signed(out: &mut Vec<u8>, v: i64) {
    // Zigzag: small magnitudes of either sign stay short.
    put_varint(out, ((v << 1) ^ (v >> 63)) as u64);
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn byte(&mut self) -> Result<u8, BinError> {
        let b = *self.bytes.get(self.pos).ok_or(BinError::UnexpectedEof)?;
        self.pos += 1;
        Ok(b)
    }

    fn varint(&mut self) -> Result<u64, BinError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.byte()?;
            v |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift >= 64 {
                return Err(BinError::BadTag(b));
            }
        }
    }

    fn signed(&mut self) -> Result<i64, BinError> {
        let v = self.varint()?;
        Ok(((v >> 1) as i64) ^ -((v & 1) as i64))
    }
}

// ---------------------------------------------------------------------
// Values and entries
// ---------------------------------------------------------------------

fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Int(n) => {
            out.push(VAL_INT);
            put_signed(out, *n);
        }
        Value::Array(a) => {
            out.push(VAL_ARRAY);
            put_varint(out, a.len() as u64);
            for &n in a {
                put_signed(out, n);
            }
        }
    }
}

fn get_value(r: &mut Reader<'_>) -> Result<Value, BinError> {
    match r.byte()? {
        VAL_INT => Ok(Value::Int(r.signed()?)),
        VAL_ARRAY => {
            let len = r.varint()? as usize;
            let mut a = Vec::with_capacity(len.min(1 << 16));
            for _ in 0..len {
                a.push(r.signed()?);
            }
            Ok(Value::Array(a))
        }
        t => Err(BinError::BadTag(t)),
    }
}

fn put_values(out: &mut Vec<u8>, vs: &[(VarId, Value)]) {
    put_varint(out, vs.len() as u64);
    for (var, value) in vs {
        put_varint(out, u64::from(var.0));
        put_value(out, value);
    }
}

fn get_values(r: &mut Reader<'_>) -> Result<Vec<(VarId, Value)>, BinError> {
    let len = r.varint()? as usize;
    let mut vs = Vec::with_capacity(len.min(1 << 16));
    for _ in 0..len {
        let var = VarId(r.varint()? as u32);
        vs.push((var, get_value(r)?));
    }
    Ok(vs)
}

fn put_entry(out: &mut Vec<u8>, e: &LogEntry) {
    match e {
        LogEntry::Prelog { eblock, instance, values, time } => {
            out.push(TAG_PRELOG);
            put_varint(out, u64::from(eblock.0));
            put_varint(out, *instance);
            put_values(out, values);
            put_varint(out, *time);
        }
        LogEntry::Postlog { eblock, instance, values, ret, time } => {
            out.push(TAG_POSTLOG);
            put_varint(out, u64::from(eblock.0));
            put_varint(out, *instance);
            put_values(out, values);
            match ret {
                Some(v) => {
                    out.push(1);
                    put_value(out, v);
                }
                None => out.push(0),
            }
            put_varint(out, *time);
        }
        LogEntry::SharedSnapshot { at, values, time } => {
            out.push(TAG_SHARED);
            match at {
                Some(stmt) => {
                    out.push(1);
                    put_varint(out, u64::from(stmt.0));
                }
                None => out.push(0),
            }
            put_values(out, values);
            put_varint(out, *time);
        }
        LogEntry::Input { value, time } => {
            out.push(TAG_INPUT);
            put_signed(out, *value);
            put_varint(out, *time);
        }
        LogEntry::Receive { value, time } => {
            out.push(TAG_RECEIVE);
            put_signed(out, *value);
            put_varint(out, *time);
        }
        LogEntry::ElementRead { value, time } => {
            out.push(TAG_ELEMENT);
            put_signed(out, *value);
            put_varint(out, *time);
        }
    }
}

fn get_entry(r: &mut Reader<'_>) -> Result<LogEntry, BinError> {
    match r.byte()? {
        TAG_PRELOG => Ok(LogEntry::Prelog {
            eblock: EBlockId(r.varint()? as u32),
            instance: r.varint()?,
            values: get_values(r)?,
            time: r.varint()?,
        }),
        TAG_POSTLOG => Ok(LogEntry::Postlog {
            eblock: EBlockId(r.varint()? as u32),
            instance: r.varint()?,
            values: get_values(r)?,
            ret: match r.byte()? {
                0 => None,
                _ => Some(get_value(r)?),
            },
            time: r.varint()?,
        }),
        TAG_SHARED => Ok(LogEntry::SharedSnapshot {
            at: match r.byte()? {
                0 => None,
                _ => Some(StmtId(r.varint()? as u32)),
            },
            values: get_values(r)?,
            time: r.varint()?,
        }),
        TAG_INPUT => Ok(LogEntry::Input { value: r.signed()?, time: r.varint()? }),
        TAG_RECEIVE => Ok(LogEntry::Receive { value: r.signed()?, time: r.varint()? }),
        TAG_ELEMENT => Ok(LogEntry::ElementRead { value: r.signed()?, time: r.varint()? }),
        t => Err(BinError::BadTag(t)),
    }
}

// ---------------------------------------------------------------------
// Store framing
// ---------------------------------------------------------------------

/// Encodes a whole store.
pub fn encode(store: &LogStore) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.push(VERSION);
    put_varint(&mut out, store.process_count() as u64);
    for p in 0..store.process_count() {
        let entries = &store.log(ProcId(p as u32)).entries;
        put_varint(&mut out, entries.len() as u64);
        for e in entries {
            put_entry(&mut out, e);
        }
    }
    out
}

/// Decodes a store.
///
/// # Errors
///
/// Returns a [`BinError`] on malformed input.
pub fn decode(bytes: &[u8]) -> Result<LogStore, BinError> {
    let mut r = Reader { bytes, pos: 0 };
    for &m in MAGIC {
        if r.byte()? != m {
            return Err(BinError::BadMagic);
        }
    }
    match r.byte()? {
        VERSION => {}
        v => return Err(BinError::BadVersion(v)),
    }
    let procs = r.varint()? as usize;
    let mut store = LogStore::new(procs);
    for p in 0..procs {
        let n = r.varint()? as usize;
        for _ in 0..n {
            store.push(ProcId(p as u32), get_entry(&mut r)?);
        }
    }
    Ok(store)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_store() -> LogStore {
        let mut s = LogStore::new(2);
        s.push(
            ProcId(0),
            LogEntry::Prelog {
                eblock: EBlockId(0),
                instance: 0,
                values: vec![(VarId(0), Value::Int(-7)), (VarId(3), Value::Array(vec![1, -2, 3]))],
                time: 1,
            },
        );
        s.push(ProcId(0), LogEntry::Input { value: i64::MIN, time: 2 });
        s.push(
            ProcId(0),
            LogEntry::SharedSnapshot {
                at: Some(StmtId(9)),
                values: vec![(VarId(1), Value::Int(0))],
                time: 3,
            },
        );
        s.push(
            ProcId(0),
            LogEntry::Postlog {
                eblock: EBlockId(0),
                instance: 0,
                values: vec![(VarId(2), Value::Int(1 << 40))],
                ret: Some(Value::Int(-1)),
                time: 4,
            },
        );
        s.push(ProcId(1), LogEntry::Receive { value: 99, time: 5 });
        s.push(ProcId(1), LogEntry::ElementRead { value: -99, time: 6 });
        s.push(ProcId(1), LogEntry::SharedSnapshot { at: None, values: vec![], time: 7 });
        s
    }

    #[test]
    fn binary_round_trip_preserves_every_entry() {
        let s = sample_store();
        let bytes = encode(&s);
        let back = decode(&bytes).expect("decodes");
        assert_eq!(back.process_count(), s.process_count());
        for p in 0..s.process_count() {
            let pid = ProcId(p as u32);
            assert_eq!(back.log(pid).entries, s.log(pid).entries);
        }
    }

    #[test]
    fn binary_is_denser_than_json() {
        let s = sample_store();
        assert!(encode(&s).len() < s.to_json().unwrap().len());
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(decode(b"nope").unwrap_err(), BinError::BadMagic);
        assert_eq!(decode(b"PPDL").unwrap_err(), BinError::UnexpectedEof);
        assert_eq!(decode(b"PPDL\x09").unwrap_err(), BinError::BadVersion(9));
        let mut ok = encode(&sample_store());
        ok.truncate(ok.len() - 1);
        assert_eq!(decode(&ok).unwrap_err(), BinError::UnexpectedEof);
    }
}

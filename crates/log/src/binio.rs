//! Compact binary encoding of a [`LogStore`].
//!
//! The JSON format is convenient for inspection, but its byte count says
//! nothing about what the paper's object code would actually write to
//! disk. This module defines a dense format — one-byte entry tags,
//! LEB128 varints, zigzag-encoded integers — so experiment E2 can report
//! honest log volume, and round-trips exactly with the JSON encoding.
//! The same entry codec is the payload format of the segmented on-disk
//! log ([`crate::segment`]).
//!
//! Layout: `"PPDL"` magic, a format-version byte, the process count,
//! then each process's entry list. Every integer is an unsigned LEB128
//! varint; signed values are zigzag-mapped first.
//!
//! Version 2 (current) prefixes each process's entry blob with its
//! **byte length**, so a decoder can locate every process's records
//! without parsing its predecessors' — that's what lets
//! [`decode_par`] fan per-process decoding out across a thread pool.
//! Version 1 streams (no length prefixes) still decode, sequentially.

use crate::entry::LogEntry;
use crate::store::LogStore;
use ppd_analysis::EBlockId;
use ppd_lang::{ProcId, StmtId, Value, VarId};
use std::fmt;

const MAGIC: &[u8; 4] = b"PPDL";
/// The version written by [`encode`]: per-process length-prefixed
/// frames enabling parallel decode.
const VERSION: u8 = 2;
/// Oldest version [`decode`] still reads (unframed, sequential only).
const VERSION_UNFRAMED: u8 = 1;

const TAG_PRELOG: u8 = 0;
const TAG_POSTLOG: u8 = 1;
const TAG_SHARED: u8 = 2;
const TAG_INPUT: u8 = 3;
const TAG_RECEIVE: u8 = 4;
const TAG_ELEMENT: u8 = 5;

const VAL_INT: u8 = 0;
const VAL_ARRAY: u8 = 1;

/// What went wrong while decoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinErrorKind {
    /// The input does not start with the `PPDL` magic.
    BadMagic,
    /// The format version byte is not one this build understands.
    BadVersion(u8),
    /// An entry or value tag byte was not recognized.
    BadTag(u8),
    /// The input ended mid-record.
    UnexpectedEof,
}

/// A binary decoding failure: the failure kind, the absolute byte
/// offset in the decoded input where it was detected, and — when the
/// failing bytes belong to a per-process frame or an on-disk segment —
/// which one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinError {
    /// The failure itself.
    pub kind: BinErrorKind,
    /// Absolute byte offset (into the full input blob or segment file)
    /// at which decoding failed.
    pub offset: usize,
    /// Enclosing container, e.g. `process 2 frame` or a segment file
    /// name, when known.
    pub context: Option<String>,
}

impl BinError {
    pub(crate) fn new(kind: BinErrorKind, offset: usize) -> BinError {
        BinError { kind, offset, context: None }
    }

    /// Attaches (or replaces) the container context.
    pub(crate) fn with_context(mut self, context: impl Into<String>) -> BinError {
        self.context = Some(context.into());
        self
    }
}

impl fmt::Display for BinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            BinErrorKind::BadMagic => write!(f, "not a PPDL binary log (bad magic)")?,
            BinErrorKind::BadVersion(v) => write!(f, "unsupported binary log version {v}")?,
            BinErrorKind::BadTag(t) => write!(f, "unknown record tag {t}")?,
            BinErrorKind::UnexpectedEof => write!(f, "truncated binary log")?,
        }
        write!(f, " at byte {}", self.offset)?;
        if let Some(ctx) = &self.context {
            write!(f, " in {ctx}")?;
        }
        Ok(())
    }
}

impl std::error::Error for BinError {}

// ---------------------------------------------------------------------
// Primitive writers/readers (shared with the segment codec)
// ---------------------------------------------------------------------

pub(crate) fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

pub(crate) fn put_signed(out: &mut Vec<u8>, v: i64) {
    // Zigzag: small magnitudes of either sign stay short.
    put_varint(out, ((v << 1) ^ (v >> 63)) as u64);
}

/// A bounds-checked byte reader that knows its absolute position inside
/// the containing blob or file, so every error carries a real offset.
pub(crate) struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// Absolute offset of `bytes[0]` within the containing input.
    base: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Reader<'a> {
        Reader { bytes, pos: 0, base: 0 }
    }

    /// A reader over a slice that starts `base` bytes into the
    /// containing input (error offsets stay absolute).
    pub(crate) fn with_base(bytes: &'a [u8], base: usize) -> Reader<'a> {
        Reader { bytes, pos: 0, base }
    }

    /// Absolute offset of the next unread byte.
    pub(crate) fn offset(&self) -> usize {
        self.base + self.pos
    }

    /// Bytes remaining.
    pub(crate) fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn err(&self, kind: BinErrorKind) -> BinError {
        BinError::new(kind, self.offset())
    }

    pub(crate) fn byte(&mut self) -> Result<u8, BinError> {
        let b = *self.bytes.get(self.pos).ok_or_else(|| self.err(BinErrorKind::UnexpectedEof))?;
        self.pos += 1;
        Ok(b)
    }

    pub(crate) fn varint(&mut self) -> Result<u64, BinError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let at = self.offset();
            let b = self.byte()?;
            if shift >= 64 {
                return Err(BinError::new(BinErrorKind::BadTag(b), at));
            }
            v |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    pub(crate) fn signed(&mut self) -> Result<i64, BinError> {
        let v = self.varint()?;
        Ok(((v >> 1) as i64) ^ -((v & 1) as i64))
    }
}

// ---------------------------------------------------------------------
// Values and entries
// ---------------------------------------------------------------------

fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Int(n) => {
            out.push(VAL_INT);
            put_signed(out, *n);
        }
        Value::Array(a) => {
            out.push(VAL_ARRAY);
            put_varint(out, a.len() as u64);
            for &n in a {
                put_signed(out, n);
            }
        }
    }
}

fn get_value(r: &mut Reader<'_>) -> Result<Value, BinError> {
    let at = r.offset();
    match r.byte()? {
        VAL_INT => Ok(Value::Int(r.signed()?)),
        VAL_ARRAY => {
            let len = r.varint()? as usize;
            let mut a = Vec::with_capacity(len.min(1 << 16));
            for _ in 0..len {
                a.push(r.signed()?);
            }
            Ok(Value::Array(a))
        }
        t => Err(BinError::new(BinErrorKind::BadTag(t), at)),
    }
}

fn put_values(out: &mut Vec<u8>, vs: &[(VarId, Value)]) {
    put_varint(out, vs.len() as u64);
    for (var, value) in vs {
        put_varint(out, u64::from(var.0));
        put_value(out, value);
    }
}

fn get_values(r: &mut Reader<'_>) -> Result<Vec<(VarId, Value)>, BinError> {
    let len = r.varint()? as usize;
    let mut vs = Vec::with_capacity(len.min(1 << 16));
    for _ in 0..len {
        let var = VarId(r.varint()? as u32);
        vs.push((var, get_value(r)?));
    }
    Ok(vs)
}

/// Appends one entry in the tagged wire format. Shared by the whole-store
/// encoding and the segment writer.
pub(crate) fn put_entry(out: &mut Vec<u8>, e: &LogEntry) {
    match e {
        LogEntry::Prelog { eblock, instance, values, time } => {
            out.push(TAG_PRELOG);
            put_varint(out, u64::from(eblock.0));
            put_varint(out, *instance);
            put_values(out, values);
            put_varint(out, *time);
        }
        LogEntry::Postlog { eblock, instance, values, ret, time } => {
            out.push(TAG_POSTLOG);
            put_varint(out, u64::from(eblock.0));
            put_varint(out, *instance);
            put_values(out, values);
            match ret {
                Some(v) => {
                    out.push(1);
                    put_value(out, v);
                }
                None => out.push(0),
            }
            put_varint(out, *time);
        }
        LogEntry::SharedSnapshot { at, values, time } => {
            out.push(TAG_SHARED);
            match at {
                Some(stmt) => {
                    out.push(1);
                    put_varint(out, u64::from(stmt.0));
                }
                None => out.push(0),
            }
            put_values(out, values);
            put_varint(out, *time);
        }
        LogEntry::Input { value, time } => {
            out.push(TAG_INPUT);
            put_signed(out, *value);
            put_varint(out, *time);
        }
        LogEntry::Receive { value, time } => {
            out.push(TAG_RECEIVE);
            put_signed(out, *value);
            put_varint(out, *time);
        }
        LogEntry::ElementRead { value, time } => {
            out.push(TAG_ELEMENT);
            put_signed(out, *value);
            put_varint(out, *time);
        }
    }
}

/// Reads one entry in the tagged wire format.
pub(crate) fn get_entry(r: &mut Reader<'_>) -> Result<LogEntry, BinError> {
    let at = r.offset();
    match r.byte()? {
        TAG_PRELOG => Ok(LogEntry::Prelog {
            eblock: EBlockId(r.varint()? as u32),
            instance: r.varint()?,
            values: get_values(r)?,
            time: r.varint()?,
        }),
        TAG_POSTLOG => Ok(LogEntry::Postlog {
            eblock: EBlockId(r.varint()? as u32),
            instance: r.varint()?,
            values: get_values(r)?,
            ret: match r.byte()? {
                0 => None,
                _ => Some(get_value(r)?),
            },
            time: r.varint()?,
        }),
        TAG_SHARED => Ok(LogEntry::SharedSnapshot {
            at: match r.byte()? {
                0 => None,
                _ => Some(StmtId(r.varint()? as u32)),
            },
            values: get_values(r)?,
            time: r.varint()?,
        }),
        TAG_INPUT => Ok(LogEntry::Input { value: r.signed()?, time: r.varint()? }),
        TAG_RECEIVE => Ok(LogEntry::Receive { value: r.signed()?, time: r.varint()? }),
        TAG_ELEMENT => Ok(LogEntry::ElementRead { value: r.signed()?, time: r.varint()? }),
        t => Err(BinError::new(BinErrorKind::BadTag(t), at)),
    }
}

// ---------------------------------------------------------------------
// Store framing
// ---------------------------------------------------------------------

/// Encodes a whole store (version 2: length-prefixed process frames).
pub fn encode(store: &LogStore) -> Vec<u8> {
    let mut span = ppd_obs::span("log", "encode");
    span.arg("procs", store.process_count());
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.push(VERSION);
    put_varint(&mut out, store.process_count() as u64);
    let mut frame = Vec::new();
    for p in 0..store.process_count() {
        let entries = &store.log(ProcId(p as u32)).entries;
        frame.clear();
        for e in entries {
            put_entry(&mut frame, e);
        }
        put_varint(&mut out, entries.len() as u64);
        put_varint(&mut out, frame.len() as u64);
        out.extend_from_slice(&frame);
    }
    out
}

/// Decodes a store (sequentially; reads versions 1 and 2).
///
/// # Errors
///
/// Returns a [`BinError`] on malformed input, carrying the absolute
/// byte offset of the failure and, for version-2 inputs, which process
/// frame it fell in.
pub fn decode(bytes: &[u8]) -> Result<LogStore, BinError> {
    decode_with_jobs(bytes, 1)
}

/// Decodes a store, fanning per-process frames out across a
/// work-stealing pool of `jobs` threads. Version-2 inputs decode in
/// parallel; version-1 inputs (no frame lengths) fall back to the
/// sequential path. The result is identical to [`decode`] — frames are
/// independent and reassembled in process order.
///
/// # Errors
///
/// Returns the first (by process order) [`BinError`] on malformed
/// input.
pub fn decode_par(bytes: &[u8], jobs: usize) -> Result<LogStore, BinError> {
    decode_with_jobs(bytes, jobs)
}

fn decode_with_jobs(bytes: &[u8], jobs: usize) -> Result<LogStore, BinError> {
    let mut span = ppd_obs::span("log", "decode");
    span.arg("bytes", bytes.len());
    span.arg("jobs", jobs);
    let mut r = Reader::new(bytes);
    for &m in MAGIC {
        let at = r.offset();
        if r.byte()? != m {
            return Err(BinError::new(BinErrorKind::BadMagic, at));
        }
    }
    let at = r.offset();
    let version = match r.byte()? {
        v @ (VERSION_UNFRAMED | VERSION) => v,
        v => return Err(BinError::new(BinErrorKind::BadVersion(v), at)),
    };
    let procs = r.varint()? as usize;

    if version == VERSION_UNFRAMED {
        // v1: entries stream back to back; only a sequential scan can
        // find the process boundaries.
        let mut store = LogStore::new(procs);
        for p in 0..procs {
            let n = r.varint()? as usize;
            for _ in 0..n {
                let e = get_entry(&mut r)
                    .map_err(|err| err.with_context(format!("process {p} entries")))?;
                store.push(ProcId(p as u32), e);
            }
        }
        return Ok(store);
    }

    // v2: slice out each process's frame first…
    let mut frames: Vec<(usize, usize, usize, &[u8])> = Vec::with_capacity(procs);
    for p in 0..procs {
        let n = r.varint()? as usize;
        let len = r.varint()? as usize;
        let start = r.offset();
        let end = start.checked_add(len).ok_or_else(|| {
            BinError::new(BinErrorKind::UnexpectedEof, start)
                .with_context(format!("process {p} frame header"))
        })?;
        let frame = bytes.get(start..end).ok_or_else(|| {
            BinError::new(BinErrorKind::UnexpectedEof, bytes.len())
                .with_context(format!("process {p} frame"))
        })?;
        r = Reader::with_base(&bytes[end..], end);
        frames.push((p, n, start, frame));
    }
    // …then decode the frames, concurrently when asked to.
    let decoded: Vec<Result<Vec<LogEntry>, BinError>> = if jobs <= 1 || procs <= 1 {
        frames.iter().map(|&(p, n, base, frame)| decode_frame(frame, n, base, p)).collect()
    } else {
        use rayon::prelude::*;
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(jobs)
            .build()
            .expect("thread pool build is infallible");
        pool.install(|| {
            frames.par_iter().map(|&(p, n, base, frame)| decode_frame(frame, n, base, p)).collect()
        })
    };
    let mut store = LogStore::new(procs);
    for (p, entries) in decoded.into_iter().enumerate() {
        for e in entries? {
            store.push(ProcId(p as u32), e);
        }
    }
    Ok(store)
}

/// Decodes one process frame. `base` is the frame's absolute byte
/// offset and `proc` its process number; both flow into any error.
fn decode_frame(
    frame: &[u8],
    count: usize,
    base: usize,
    proc: usize,
) -> Result<Vec<LogEntry>, BinError> {
    let mut r = Reader::with_base(frame, base);
    let mut entries = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        entries
            .push(get_entry(&mut r).map_err(|e| e.with_context(format!("process {proc} frame")))?);
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_store() -> LogStore {
        let mut s = LogStore::new(2);
        s.push(
            ProcId(0),
            LogEntry::Prelog {
                eblock: EBlockId(0),
                instance: 0,
                values: vec![(VarId(0), Value::Int(-7)), (VarId(3), Value::Array(vec![1, -2, 3]))],
                time: 1,
            },
        );
        s.push(ProcId(0), LogEntry::Input { value: i64::MIN, time: 2 });
        s.push(
            ProcId(0),
            LogEntry::SharedSnapshot {
                at: Some(StmtId(9)),
                values: vec![(VarId(1), Value::Int(0))],
                time: 3,
            },
        );
        s.push(
            ProcId(0),
            LogEntry::Postlog {
                eblock: EBlockId(0),
                instance: 0,
                values: vec![(VarId(2), Value::Int(1 << 40))],
                ret: Some(Value::Int(-1)),
                time: 4,
            },
        );
        s.push(ProcId(1), LogEntry::Receive { value: 99, time: 5 });
        s.push(ProcId(1), LogEntry::ElementRead { value: -99, time: 6 });
        s.push(ProcId(1), LogEntry::SharedSnapshot { at: None, values: vec![], time: 7 });
        s
    }

    #[test]
    fn binary_round_trip_preserves_every_entry() {
        let s = sample_store();
        let bytes = encode(&s);
        let back = decode(&bytes).expect("decodes");
        assert_eq!(back.process_count(), s.process_count());
        for p in 0..s.process_count() {
            let pid = ProcId(p as u32);
            assert_eq!(back.log(pid).entries, s.log(pid).entries);
        }
    }

    #[test]
    fn binary_is_denser_than_json() {
        let s = sample_store();
        assert!(encode(&s).len() < s.to_json().unwrap().len());
    }

    /// Encodes in the retired v1 framing (entry streams with no byte
    /// lengths) so compatibility stays covered.
    fn encode_v1(store: &LogStore) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.push(VERSION_UNFRAMED);
        put_varint(&mut out, store.process_count() as u64);
        for p in 0..store.process_count() {
            let entries = &store.log(ProcId(p as u32)).entries;
            put_varint(&mut out, entries.len() as u64);
            for e in entries {
                put_entry(&mut out, e);
            }
        }
        out
    }

    fn stores_equal(a: &LogStore, b: &LogStore) {
        assert_eq!(a.process_count(), b.process_count());
        for p in 0..a.process_count() {
            let pid = ProcId(p as u32);
            assert_eq!(a.log(pid).entries, b.log(pid).entries);
        }
    }

    #[test]
    fn v1_streams_still_decode() {
        let s = sample_store();
        let v1 = encode_v1(&s);
        stores_equal(&decode(&v1).expect("v1 decodes"), &s);
        // The parallel entry point degrades to the sequential path.
        stores_equal(&decode_par(&v1, 8).expect("v1 decodes in par API"), &s);
    }

    #[test]
    fn parallel_decode_matches_sequential() {
        let s = sample_store();
        let bytes = encode(&s);
        for jobs in [1, 2, 8] {
            stores_equal(&decode_par(&bytes, jobs).expect("decodes"), &s);
        }
    }

    #[test]
    fn truncated_frame_is_rejected() {
        let mut bytes = encode(&sample_store());
        bytes.truncate(bytes.len() - 1);
        let err = decode_par(&bytes, 4).unwrap_err();
        assert_eq!(err.kind, BinErrorKind::UnexpectedEof);
        assert_eq!(err.offset, bytes.len(), "offset names the truncation point");
        assert_eq!(err.context.as_deref(), Some("process 1 frame"));
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(decode(b"nope").unwrap_err().kind, BinErrorKind::BadMagic);
        assert_eq!(decode(b"nope").unwrap_err().offset, 0);
        assert_eq!(decode(b"PPDL").unwrap_err().kind, BinErrorKind::UnexpectedEof);
        assert_eq!(decode(b"PPDL\x09").unwrap_err().kind, BinErrorKind::BadVersion(9));
        assert_eq!(decode(b"PPDL\x09").unwrap_err().offset, 4);
        let mut ok = encode(&sample_store());
        ok.truncate(ok.len() - 1);
        assert_eq!(decode(&ok).unwrap_err().kind, BinErrorKind::UnexpectedEof);
    }

    /// Finds the absolute byte offset where process `proc`'s v2 frame
    /// payload begins, by walking the framing exactly as the decoder
    /// does.
    fn frame_start(bytes: &[u8], proc: usize) -> usize {
        let mut r = Reader::new(bytes);
        for _ in 0..5 {
            r.byte().unwrap(); // magic + version
        }
        let procs = r.varint().unwrap() as usize;
        assert!(proc < procs);
        let mut start = 0;
        for p in 0..=proc {
            r.varint().unwrap(); // entry count
            let len = r.varint().unwrap() as usize;
            start = r.offset();
            if p < proc {
                r = Reader::with_base(&bytes[start + len..], start + len);
            }
        }
        start
    }

    #[test]
    fn bit_flipped_entry_reports_offset_and_frame() {
        let s = sample_store();
        let mut bytes = encode(&s);
        // Corrupt the first entry tag of process 1's frame.
        let at = frame_start(&bytes, 1);
        bytes[at] ^= 0xE0;
        let err = decode(&bytes).unwrap_err();
        assert_eq!(err.kind, BinErrorKind::BadTag(TAG_RECEIVE ^ 0xE0));
        assert_eq!(err.offset, at, "error pinpoints the flipped byte");
        assert_eq!(err.context.as_deref(), Some("process 1 frame"));
        let msg = err.to_string();
        assert!(msg.contains(&format!("at byte {at}")), "{msg}");
        assert!(msg.contains("process 1 frame"), "{msg}");
        // The parallel path reports the same error.
        assert_eq!(decode_par(&bytes, 4).unwrap_err(), err);
    }
}

//! # ppd-log — the incremental-tracing log model
//!
//! "The cornerstone of the need-to-generate concept is to generate a
//! small amount of information, called a log, during execution and fill
//! incrementally, during the interactive portion of the debugging
//! session, the gap between the information gathered in the log and the
//! information needed to do the flowback analysis" (§3.1).
//!
//! This crate defines the log records ([`LogEntry`]), the per-process
//! log files and whole-execution [`LogStore`] (§5.6), the log-interval
//! index ([`IntervalRef`] / [`IntervalIndex`], §5.1) and the
//! [`LogCursor`] that e-block replay consumes entries from — including
//! the nested-interval postlog substitution of §5.2 / Figure 5.2. The
//! [`IntervalIndex`] is built once per execution by a single-pass stack
//! matching of prelog/postlog pairs and serves all interval queries in
//! O(1) amortized time; [`binio`] adds a compact binary serialization
//! next to the JSON one.
//!
//! For out-of-core logs, [`segment`] defines an append-only segmented
//! on-disk format whose CRC-guarded footers carry counts, offsets and a
//! structural digest: [`SegmentedLog`] opens a directory by `mmap` +
//! footer decode (no full rescan — the [`IntervalIndex`] rebuilds from
//! digests), and decodes a process's entries lazily from the mapped
//! bytes. [`LogSource`] is the common query surface over both backings.
//!
//! ## Example
//!
//! ```
//! use ppd_log::{LogEntry, LogStore};
//! use ppd_analysis::EBlockId;
//! use ppd_lang::ProcId;
//!
//! let mut store = LogStore::new(1);
//! store.push(ProcId(0), LogEntry::Prelog {
//!     eblock: EBlockId(0), instance: 0, values: vec![], time: 0,
//! });
//! assert_eq!(store.open_intervals(ProcId(0)).len(), 1);
//! ```

#![warn(missing_docs)]

pub mod binio;
pub mod entry;
pub mod index;
pub mod mmap;
pub mod segment;
pub mod source;
pub mod store;

pub use binio::{BinError, BinErrorKind};
pub use entry::LogEntry;
pub use index::IntervalIndex;
pub use segment::{
    BlockMeta, HeatRecord, RecoveredTail, RefreshStats, SegError, SegmentFormat, SegmentMeta,
    SegmentWriter, SegmentedLog, SinkReport, VerifyReport, DEFAULT_BLOCK_BYTES,
    DEFAULT_SEGMENT_BYTES,
};
pub use source::LogSource;
pub use store::{IntervalRef, LogCursor, LogStore, ProcessLog};

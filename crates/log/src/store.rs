//! Per-process log files and the whole-execution log store (§5.6).
//!
//! "There is one log file for each process of a parallel program." The
//! [`LogStore`] owns every process's log; the Controller navigates it via
//! [`IntervalRef`]s — the log intervals `I_i` of §5.1 — and a
//! [`LogCursor`] that the replayer consumes entries from in order.
//!
//! A store has two backings behind one API: a plain in-memory entry
//! vector per process (what the runtime fills during execution), or a
//! mapped on-disk [`SegmentedLog`] opened from a `--log-dir` directory.
//! On the segmented backing, structural queries are answered from
//! footer metadata alone, and a process's entries are decoded from the
//! mapped bytes only when first touched.

use crate::entry::LogEntry;
use crate::index::IntervalIndex;
use crate::segment::{RefreshStats, SegError, SegmentFormat, SegmentedLog, SinkReport, KIND_NAMES};
use ppd_analysis::EBlockId;
use ppd_lang::ProcId;
use serde::{Content, DeError, Deserialize, Serialize};
use std::path::Path;
use std::sync::{Arc, OnceLock};

/// The log of one process.
#[derive(Debug, Clone, Default, Serialize, Deserialize, PartialEq)]
pub struct ProcessLog {
    /// Entries in chronological order.
    pub entries: Vec<LogEntry>,
}

impl ProcessLog {
    /// Total byte size of the log.
    pub fn size_bytes(&self) -> usize {
        self.entries.iter().map(LogEntry::size_bytes).sum()
    }
}

/// A log interval `I_i` (§5.1): one dynamic e-block execution, from its
/// prelog to its postlog (or to the halt, if the postlog was never
/// written).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntervalRef {
    /// The owning process.
    pub proc: ProcId,
    /// The e-block executed.
    pub eblock: EBlockId,
    /// The per-process instance number.
    pub instance: u64,
    /// Index of the prelog entry in the process log.
    pub prelog_pos: usize,
    /// Index of the matching postlog, or `None` if execution halted
    /// inside the interval.
    pub postlog_pos: Option<usize>,
}

/// Where a store's bytes live.
#[derive(Debug)]
enum Repr {
    /// Plain per-process entry vectors (the runtime's write path).
    Mem(Vec<ProcessLog>),
    /// A mapped segment directory; entries decode lazily per process.
    Seg(Arc<SegmentedLog>),
}

/// All logs of one execution.
#[derive(Debug)]
pub struct LogStore {
    repr: Repr,
    /// The interval index, built lazily on first structural query and
    /// invalidated by [`LogStore::push`]. Never serialized: it is a pure
    /// function of the entries.
    index: OnceLock<Arc<IntervalIndex>>,
}

impl Default for LogStore {
    fn default() -> LogStore {
        LogStore::new(0)
    }
}

impl Clone for LogStore {
    fn clone(&self) -> LogStore {
        // Share the already-built index if there is one; both copies are
        // views over identical entries until one of them pushes.
        let index = OnceLock::new();
        if let Some(i) = self.index.get() {
            let _ = index.set(Arc::clone(i));
        }
        let repr = match &self.repr {
            Repr::Mem(logs) => Repr::Mem(logs.clone()),
            Repr::Seg(seg) => Repr::Seg(Arc::clone(seg)),
        };
        LogStore { repr, index }
    }
}

impl Serialize for LogStore {
    fn to_content(&self) -> Content {
        // The JSON shape predates the segmented backing: always
        // `{"logs": [...]}`, materializing on-disk processes as needed.
        let logs: Vec<Content> =
            (0..self.process_count()).map(|p| self.log(ProcId(p as u32)).to_content()).collect();
        Content::Map(vec![(Content::str_key("logs"), Content::Seq(logs))])
    }
}

impl Deserialize for LogStore {
    fn from_content(c: &Content) -> Result<LogStore, DeError> {
        let entries = c.as_map().ok_or_else(|| DeError::msg("expected map for LogStore"))?;
        let logs: Vec<ProcessLog> = serde::field(entries, "logs", "LogStore")?;
        Ok(LogStore { repr: Repr::Mem(logs), index: OnceLock::new() })
    }
}

impl LogStore {
    /// A store for `processes` processes.
    pub fn new(processes: usize) -> LogStore {
        LogStore { repr: Repr::Mem(vec![ProcessLog::default(); processes]), index: OnceLock::new() }
    }

    /// Opens a store over a segmented log directory: segments are
    /// mapped and footers decoded, but **no entry payload is touched**
    /// until a query needs it.
    ///
    /// # Errors
    ///
    /// Returns a [`SegError`] on I/O failure, a bad manifest, or
    /// non-tail corruption (an unsealed tail segment is dropped with a
    /// warning instead — see [`LogStore::recovery_warnings`]).
    pub fn open_dir(dir: &Path) -> Result<LogStore, SegError> {
        let seg = SegmentedLog::open(dir)?;
        Ok(LogStore { repr: Repr::Seg(Arc::new(seg)), index: OnceLock::new() })
    }

    /// Packs this store's entries into `dir` as a segmented log
    /// (`segment_bytes` = payload capacity per segment; 0 for the
    /// default).
    ///
    /// # Errors
    ///
    /// Returns [`SegError::Io`] if the directory or a segment cannot
    /// be written.
    pub fn write_dir(&self, dir: &Path, segment_bytes: usize) -> Result<SinkReport, SegError> {
        crate::segment::write_store(self, dir, segment_bytes)
    }

    /// [`write_dir`](Self::write_dir) with an explicit payload format
    /// (`ppd log pack --compress` writes
    /// [`SegmentFormat::V2Compressed`]).
    ///
    /// # Errors
    ///
    /// As [`write_dir`](Self::write_dir).
    pub fn write_dir_with(
        &self,
        dir: &Path,
        segment_bytes: usize,
        format: SegmentFormat,
    ) -> Result<SinkReport, SegError> {
        crate::segment::write_store_with(self, dir, segment_bytes, format)
    }

    /// Re-opens a segment-backed store's directory in place — cheap when
    /// a still-running program has appended since the last open: sealed
    /// segments are reused by `(proc, seq)`, a previously recovered live
    /// tail resumes scanning from its high-water mark, and a cached
    /// interval index is extended with only the new events. A no-op for
    /// in-memory stores (returns `None`).
    ///
    /// # Errors
    ///
    /// As [`open_dir`](Self::open_dir).
    pub fn refresh(&mut self) -> Result<Option<RefreshStats>, SegError> {
        let Repr::Seg(seg) = &self.repr else { return Ok(None) };
        let fresh = seg.refresh()?;
        let stats = fresh.refresh_stats().copied();
        self.repr = Repr::Seg(Arc::new(fresh));
        self.index.take();
        Ok(stats)
    }

    /// The segmented backing, if this store was opened from a log
    /// directory.
    pub fn segmented(&self) -> Option<&Arc<SegmentedLog>> {
        match &self.repr {
            Repr::Seg(seg) => Some(seg),
            Repr::Mem(_) => None,
        }
    }

    /// Whether this store reads from a mapped segment directory.
    pub fn is_segmented(&self) -> bool {
        matches!(self.repr, Repr::Seg(_))
    }

    /// Recovery warnings from opening the log directory (empty for
    /// in-memory stores).
    pub fn recovery_warnings(&self) -> &[String] {
        match &self.repr {
            Repr::Seg(seg) => seg.warnings(),
            Repr::Mem(_) => &[],
        }
    }

    /// The per-segment access heatmap (empty for in-memory stores):
    /// what this session has decoded from each sealed segment. See
    /// [`SegmentedLog::access_heatmap`].
    pub fn access_heatmap(&self) -> Vec<crate::segment::HeatRecord> {
        match &self.repr {
            Repr::Seg(seg) => seg.access_heatmap(),
            Repr::Mem(_) => Vec::new(),
        }
    }

    /// Decodes every process eagerly, concurrently across `jobs`
    /// threads — the segment-directory analogue of
    /// [`from_binary_par`](Self::from_binary_par). A no-op for
    /// in-memory stores.
    pub fn preload(&self, jobs: usize) {
        if let Repr::Seg(seg) = &self.repr {
            seg.preload(jobs);
        }
    }

    /// The in-memory entry vectors, converting a segment-backed store
    /// by materializing every process first.
    fn logs_mut(&mut self) -> &mut Vec<ProcessLog> {
        if let Repr::Seg(seg) = &self.repr {
            let logs = (0..seg.process_count())
                .map(|p| seg.process_log(ProcId(p as u32)).clone())
                .collect();
            self.repr = Repr::Mem(logs);
        }
        match &mut self.repr {
            Repr::Mem(logs) => logs,
            Repr::Seg(_) => unreachable!("just materialized"),
        }
    }

    /// Appends an entry to a process's log, invalidating the cached
    /// interval index. On a segment-backed store this materializes
    /// every process into memory first (the write path is for live
    /// executions, which always start from [`LogStore::new`]).
    pub fn push(&mut self, proc: ProcId, entry: LogEntry) {
        self.index.take();
        self.logs_mut()[proc.index()].entries.push(entry);
    }

    /// The interval index over the current entries (§5.1). Built once
    /// and cached; every structural query
    /// ([`intervals`](Self::intervals), [`open_intervals`](Self::open_intervals),
    /// [`find_interval`](Self::find_interval), nesting links) is a view
    /// over it. In-memory stores build it by a single entry scan per
    /// process; segment-backed stores load it from footer digests
    /// without decoding any entry.
    pub fn index(&self) -> Arc<IntervalIndex> {
        Arc::clone(self.index.get_or_init(|| match &self.repr {
            Repr::Mem(_) => Arc::new(IntervalIndex::build(self)),
            Repr::Seg(seg) => seg.index(),
        }))
    }

    /// Like [`index`](Self::index), but a cold in-memory build is
    /// sharded by process across `jobs` worker threads. The cached
    /// result (and any already-cached one) is identical to the
    /// sequential build. Segment-backed stores load from footers
    /// either way.
    pub fn index_par(&self, jobs: usize) -> Arc<IntervalIndex> {
        Arc::clone(self.index.get_or_init(|| match &self.repr {
            Repr::Mem(_) => Arc::new(IntervalIndex::build_par(self, jobs)),
            Repr::Seg(seg) => seg.index(),
        }))
    }

    /// The log of one process (decoded from mapped segments on first
    /// touch, for segment-backed stores).
    pub fn log(&self, proc: ProcId) -> &ProcessLog {
        match &self.repr {
            Repr::Mem(logs) => &logs[proc.index()],
            Repr::Seg(seg) => seg.process_log(proc),
        }
    }

    /// Number of process logs.
    pub fn process_count(&self) -> usize {
        match &self.repr {
            Repr::Mem(logs) => logs.len(),
            Repr::Seg(seg) => seg.process_count(),
        }
    }

    /// Total log volume in bytes across all processes (experiment E2).
    /// Answered from footers alone on the segmented backing.
    pub fn total_bytes(&self) -> usize {
        match &self.repr {
            Repr::Mem(logs) => logs.iter().map(ProcessLog::size_bytes).sum(),
            Repr::Seg(seg) => seg.total_logical_bytes() as usize,
        }
    }

    /// Total entry count. Answered from footers alone on the segmented
    /// backing.
    pub fn total_entries(&self) -> usize {
        match &self.repr {
            Repr::Mem(logs) => logs.iter().map(|l| l.entries.len()).sum(),
            Repr::Seg(seg) => seg.total_entries() as usize,
        }
    }

    /// Entry counts by kind, for the statistics tables, in the fixed
    /// wire-tag order of [`KIND_NAMES`] with zero-count kinds omitted —
    /// identical across backings (footers answer it without a decode).
    pub fn counts_by_kind(&self) -> Vec<(&'static str, usize)> {
        let counts: [u64; 6] = match &self.repr {
            Repr::Mem(logs) => {
                let mut counts = [0u64; 6];
                for log in logs {
                    for e in &log.entries {
                        let slot = KIND_NAMES
                            .iter()
                            .position(|&k| k == e.kind_name())
                            .expect("every entry kind is named");
                        counts[slot] += 1;
                    }
                }
                counts
            }
            Repr::Seg(seg) => seg.counts_by_kind(),
        };
        KIND_NAMES
            .iter()
            .zip(counts)
            .filter(|&(_, c)| c > 0)
            .map(|(&name, c)| (name, c as usize))
            .collect()
    }

    /// All log intervals of `proc`, in prelog order (outer intervals
    /// appear before the intervals nested inside them — Figure 5.1/5.2).
    ///
    /// A view over the cached [`IntervalIndex`]: the prelog/postlog
    /// pairing is done once, by single-pass stack matching, instead of a
    /// forward postlog search per prelog.
    pub fn intervals(&self, proc: ProcId) -> Vec<IntervalRef> {
        self.index().intervals(proc)
    }

    /// The intervals of `proc` still open when execution stopped —
    /// innermost last. The Controller starts debugging from the last
    /// prelog whose postlog has not yet been generated (§5.3).
    pub fn open_intervals(&self, proc: ProcId) -> Vec<IntervalRef> {
        self.index().open_intervals(proc)
    }

    /// Finds a specific interval — an O(1) table lookup.
    pub fn find_interval(
        &self,
        proc: ProcId,
        eblock: EBlockId,
        instance: u64,
    ) -> Option<IntervalRef> {
        self.index().find(proc, eblock, instance)
    }

    /// The interval (of any process) whose span covers logical time `t`
    /// and whose e-block is `eblock` — how the Controller locates "the
    /// log interval of the second process" for cross-process dependences
    /// (§5.6).
    pub fn interval_covering(&self, proc: ProcId, eblock: EBlockId, t: u64) -> Option<IntervalRef> {
        self.index().interval_covering(proc, eblock, t)
    }

    /// A cursor positioned immediately after `interval`'s prelog, for
    /// replay to consume.
    pub fn cursor_at(&self, interval: IntervalRef) -> LogCursor<'_> {
        LogCursor { entries: &self.log(interval.proc).entries, pos: interval.prelog_pos + 1 }
    }

    /// The prelog entry of an interval.
    pub fn prelog_of(&self, interval: IntervalRef) -> &LogEntry {
        &self.log(interval.proc).entries[interval.prelog_pos]
    }

    /// The postlog entry of an interval, if complete.
    pub fn postlog_of(&self, interval: IntervalRef) -> Option<&LogEntry> {
        interval.postlog_pos.map(|p| &self.log(interval.proc).entries[p])
    }

    /// Serializes the store to JSON (the on-disk log-file format).
    ///
    /// # Errors
    ///
    /// Returns a serialization error if any value fails to encode.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string(self)
    }

    /// Loads a store from JSON.
    ///
    /// # Errors
    ///
    /// Returns a deserialization error on malformed input.
    pub fn from_json(json: &str) -> Result<LogStore, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Serializes the store in the compact binary log format — the honest
    /// on-disk byte count for experiment E2, typically several times
    /// smaller than the JSON encoding.
    pub fn to_binary(&self) -> Vec<u8> {
        crate::binio::encode(self)
    }

    /// Loads a store from the compact binary format.
    ///
    /// # Errors
    ///
    /// Returns a [`BinError`](crate::binio::BinError) — carrying the
    /// byte offset and process-frame context of the failure — on a bad
    /// magic number, unknown version/tag, or truncated input.
    pub fn from_binary(bytes: &[u8]) -> Result<LogStore, crate::binio::BinError> {
        crate::binio::decode(bytes)
    }

    /// Loads a store from the compact binary format, decoding the
    /// per-process frames across `jobs` worker threads. Identical
    /// result to [`from_binary`](Self::from_binary).
    ///
    /// # Errors
    ///
    /// Returns a [`BinError`](crate::binio::BinError) on a bad magic
    /// number, unknown version/tag, or truncated input.
    pub fn from_binary_par(bytes: &[u8], jobs: usize) -> Result<LogStore, crate::binio::BinError> {
        crate::binio::decode_par(bytes, jobs)
    }
}

/// A forward-only reader over one process's log, used by e-block replay
/// to consume shared snapshots, inputs, receives and nested postlogs in
/// the order they were recorded.
#[derive(Debug, Clone)]
pub struct LogCursor<'a> {
    entries: &'a [LogEntry],
    pos: usize,
}

impl<'a> LogCursor<'a> {
    /// The next entry without consuming it.
    pub fn peek(&self) -> Option<&'a LogEntry> {
        self.entries.get(self.pos)
    }

    /// Consumes and returns the next entry.
    pub fn next_entry(&mut self) -> Option<&'a LogEntry> {
        let e = self.entries.get(self.pos)?;
        self.pos += 1;
        Some(e)
    }

    /// Consumes entries until (and including) the next entry matching
    /// `pred`; returns it, or `None` if the log ends first.
    pub fn seek(&mut self, pred: impl Fn(&LogEntry) -> bool) -> Option<&'a LogEntry> {
        while let Some(e) = self.entries.get(self.pos) {
            self.pos += 1;
            if pred(e) {
                return Some(e);
            }
        }
        None
    }

    /// Skips a whole nested interval: assuming the next relevant entries
    /// contain `Prelog(eblock=b)` for some instance, consumes through its
    /// matching postlog and returns that postlog (§5.2's substitution).
    /// Handles arbitrarily deep nesting inside.
    pub fn skip_nested_interval(&mut self, eblock: EBlockId) -> Option<&'a LogEntry> {
        // Find the nested interval's prelog.
        let instance = loop {
            let e = self.entries.get(self.pos)?;
            self.pos += 1;
            if let LogEntry::Prelog { eblock: b, instance, .. } = e {
                if *b == eblock {
                    break *instance;
                }
            }
        };
        // Consume to the matching postlog (same block id and instance).
        self.seek(|e| {
            matches!(e, LogEntry::Postlog { eblock: b, instance: i, .. }
                     if *b == eblock && *i == instance)
        })
    }

    /// Current position (for diagnostics).
    pub fn position(&self) -> usize {
        self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppd_lang::{Value, VarId};

    fn prelog(b: u32, i: u64, t: u64) -> LogEntry {
        LogEntry::Prelog { eblock: EBlockId(b), instance: i, values: vec![], time: t }
    }

    fn postlog(b: u32, i: u64, t: u64) -> LogEntry {
        LogEntry::Postlog {
            eblock: EBlockId(b),
            instance: i,
            values: vec![(VarId(0), Value::Int(t as i64))],
            ret: None,
            time: t,
        }
    }

    /// The nesting of Figure 5.2: SubJ's interval I_j contains SubK's
    /// I_{j+1}.
    fn fig52_store() -> LogStore {
        let mut s = LogStore::new(1);
        let p = ProcId(0);
        s.push(p, prelog(0, 0, 1)); // SubJ prelog at t1
        s.push(p, prelog(1, 0, 2)); // SubK prelog at t2 (nested)
        s.push(p, postlog(1, 0, 3)); // SubK postlog at t3
        s.push(p, postlog(0, 0, 4)); // SubJ postlog at t4
        s
    }

    #[test]
    fn intervals_pair_prelogs_and_postlogs() {
        let s = fig52_store();
        let ivs = s.intervals(ProcId(0));
        assert_eq!(ivs.len(), 2);
        assert_eq!(ivs[0].eblock, EBlockId(0));
        assert_eq!(ivs[0].prelog_pos, 0);
        assert_eq!(ivs[0].postlog_pos, Some(3));
        assert_eq!(ivs[1].eblock, EBlockId(1));
        assert_eq!(ivs[1].postlog_pos, Some(2));
    }

    #[test]
    fn open_intervals_at_halt() {
        let mut s = LogStore::new(1);
        let p = ProcId(0);
        s.push(p, prelog(0, 0, 1));
        s.push(p, prelog(1, 0, 2));
        // halt: neither postlog written
        let open = s.open_intervals(p);
        assert_eq!(open.len(), 2);
        // Innermost (last prelog without postlog) is the SubK interval.
        assert_eq!(open.last().unwrap().eblock, EBlockId(1));
    }

    #[test]
    fn recursive_instances_disambiguated() {
        let mut s = LogStore::new(1);
        let p = ProcId(0);
        s.push(p, prelog(0, 0, 1));
        s.push(p, prelog(0, 1, 2)); // recursive nested call, same block
        s.push(p, postlog(0, 1, 3));
        s.push(p, postlog(0, 0, 4));
        let outer = s.find_interval(p, EBlockId(0), 0).unwrap();
        let inner = s.find_interval(p, EBlockId(0), 1).unwrap();
        assert_eq!(outer.postlog_pos, Some(3));
        assert_eq!(inner.postlog_pos, Some(2));
    }

    #[test]
    fn cursor_skips_nested_interval() {
        let s = fig52_store();
        let outer = s.find_interval(ProcId(0), EBlockId(0), 0).unwrap();
        let mut cur = s.cursor_at(outer);
        let post = cur.skip_nested_interval(EBlockId(1)).unwrap();
        assert!(matches!(post, LogEntry::Postlog { eblock: EBlockId(1), .. }));
        // Next entry is SubJ's own postlog.
        assert!(matches!(cur.next_entry(), Some(LogEntry::Postlog { eblock: EBlockId(0), .. })));
    }

    #[test]
    fn cursor_skips_deeply_nested_intervals() {
        let mut s = LogStore::new(1);
        let p = ProcId(0);
        s.push(p, prelog(0, 0, 1));
        s.push(p, prelog(1, 0, 2));
        s.push(p, prelog(2, 0, 3)); // grandchild
        s.push(p, postlog(2, 0, 4));
        s.push(p, postlog(1, 0, 5));
        s.push(p, postlog(0, 0, 6));
        let outer = s.find_interval(p, EBlockId(0), 0).unwrap();
        let mut cur = s.cursor_at(outer);
        let post = cur.skip_nested_interval(EBlockId(1)).unwrap();
        assert_eq!(post.time(), 5);
    }

    #[test]
    fn interval_covering_time() {
        let s = fig52_store();
        let iv = s.interval_covering(ProcId(0), EBlockId(0), 2).unwrap();
        assert_eq!(iv.eblock, EBlockId(0));
        assert!(s.interval_covering(ProcId(0), EBlockId(1), 9).is_none());
    }

    #[test]
    fn store_serde_round_trip() {
        let s = fig52_store();
        let json = s.to_json().unwrap();
        let back = LogStore::from_json(&json).unwrap();
        assert_eq!(back.total_entries(), 4);
        assert_eq!(back.total_bytes(), s.total_bytes());
    }

    #[test]
    fn counts_by_kind() {
        let s = fig52_store();
        let counts = s.counts_by_kind();
        assert!(counts.contains(&("prelog", 2)));
        assert!(counts.contains(&("postlog", 2)));
        // Fixed wire-tag order, zero-count kinds omitted.
        assert_eq!(counts, vec![("prelog", 2), ("postlog", 2)]);
    }

    #[test]
    fn dir_round_trip_preserves_entries_and_index() {
        let dir = std::env::temp_dir().join("ppd-store-dir-roundtrip");
        let _ = std::fs::remove_dir_all(&dir);
        let s = fig52_store();
        let report = s.write_dir(&dir, 0).unwrap();
        assert_eq!(report.entries, 4);
        let back = LogStore::open_dir(&dir).unwrap();
        assert!(back.is_segmented());
        assert_eq!(back.total_entries(), 4);
        assert_eq!(back.total_bytes(), s.total_bytes());
        assert_eq!(back.counts_by_kind(), s.counts_by_kind());
        assert_eq!(back.intervals(ProcId(0)), s.intervals(ProcId(0)));
        assert_eq!(back.log(ProcId(0)).entries, s.log(ProcId(0)).entries);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn push_on_segment_backed_store_materializes() {
        let dir = std::env::temp_dir().join("ppd-store-dir-push");
        let _ = std::fs::remove_dir_all(&dir);
        fig52_store().write_dir(&dir, 0).unwrap();
        let mut back = LogStore::open_dir(&dir).unwrap();
        back.push(ProcId(0), prelog(7, 0, 9));
        assert!(!back.is_segmented());
        assert_eq!(back.total_entries(), 5);
        assert_eq!(back.open_intervals(ProcId(0)).last().unwrap().eblock, EBlockId(7));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! Per-process log files and the whole-execution log store (§5.6).
//!
//! "There is one log file for each process of a parallel program." The
//! [`LogStore`] owns every process's log; the Controller navigates it via
//! [`IntervalRef`]s — the log intervals `I_i` of §5.1 — and a
//! [`LogCursor`] that the replayer consumes entries from in order.

use crate::entry::LogEntry;
use crate::index::IntervalIndex;
use ppd_analysis::EBlockId;
use ppd_lang::ProcId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

/// The log of one process.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ProcessLog {
    /// Entries in chronological order.
    pub entries: Vec<LogEntry>,
}

impl ProcessLog {
    /// Total byte size of the log.
    pub fn size_bytes(&self) -> usize {
        self.entries.iter().map(LogEntry::size_bytes).sum()
    }
}

/// A log interval `I_i` (§5.1): one dynamic e-block execution, from its
/// prelog to its postlog (or to the halt, if the postlog was never
/// written).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntervalRef {
    /// The owning process.
    pub proc: ProcId,
    /// The e-block executed.
    pub eblock: EBlockId,
    /// The per-process instance number.
    pub instance: u64,
    /// Index of the prelog entry in the process log.
    pub prelog_pos: usize,
    /// Index of the matching postlog, or `None` if execution halted
    /// inside the interval.
    pub postlog_pos: Option<usize>,
}

/// All logs of one execution.
#[derive(Debug, Default, Serialize, Deserialize)]
pub struct LogStore {
    logs: Vec<ProcessLog>,
    /// The interval index, built lazily on first structural query and
    /// invalidated by [`LogStore::push`]. Never serialized: it is a pure
    /// function of `logs`.
    #[serde(skip)]
    index: OnceLock<Arc<IntervalIndex>>,
}

impl Clone for LogStore {
    fn clone(&self) -> LogStore {
        // Share the already-built index if there is one; both copies are
        // views over identical entries until one of them pushes.
        let index = OnceLock::new();
        if let Some(i) = self.index.get() {
            let _ = index.set(Arc::clone(i));
        }
        LogStore { logs: self.logs.clone(), index }
    }
}

impl LogStore {
    /// A store for `processes` processes.
    pub fn new(processes: usize) -> LogStore {
        LogStore { logs: vec![ProcessLog::default(); processes], index: OnceLock::new() }
    }

    /// Appends an entry to a process's log, invalidating the cached
    /// interval index.
    pub fn push(&mut self, proc: ProcId, entry: LogEntry) {
        self.index.take();
        self.logs[proc.index()].entries.push(entry);
    }

    /// The interval index over the current entries (§5.1). Built once in
    /// a single pass per process and cached; every structural query
    /// ([`intervals`](Self::intervals), [`open_intervals`](Self::open_intervals),
    /// [`find_interval`](Self::find_interval), nesting links) is a view
    /// over it.
    pub fn index(&self) -> Arc<IntervalIndex> {
        Arc::clone(self.index.get_or_init(|| Arc::new(IntervalIndex::build(self))))
    }

    /// Like [`index`](Self::index), but a cold build is sharded by
    /// process across `jobs` worker threads. The cached result (and any
    /// already-cached one) is identical to the sequential build.
    pub fn index_par(&self, jobs: usize) -> Arc<IntervalIndex> {
        Arc::clone(self.index.get_or_init(|| Arc::new(IntervalIndex::build_par(self, jobs))))
    }

    /// The log of one process.
    pub fn log(&self, proc: ProcId) -> &ProcessLog {
        &self.logs[proc.index()]
    }

    /// Number of process logs.
    pub fn process_count(&self) -> usize {
        self.logs.len()
    }

    /// Total log volume in bytes across all processes (experiment E2).
    pub fn total_bytes(&self) -> usize {
        self.logs.iter().map(ProcessLog::size_bytes).sum()
    }

    /// Total entry count.
    pub fn total_entries(&self) -> usize {
        self.logs.iter().map(|l| l.entries.len()).sum()
    }

    /// Entry counts by kind, for the statistics tables. First-seen order
    /// is preserved; the per-kind lookup is a map, not a linear scan.
    pub fn counts_by_kind(&self) -> Vec<(&'static str, usize)> {
        let mut counts: Vec<(&'static str, usize)> = Vec::new();
        let mut slot: HashMap<&'static str, usize> = HashMap::new();
        for log in &self.logs {
            for e in &log.entries {
                let name = e.kind_name();
                match slot.get(name) {
                    Some(&i) => counts[i].1 += 1,
                    None => {
                        slot.insert(name, counts.len());
                        counts.push((name, 1));
                    }
                }
            }
        }
        counts
    }

    /// All log intervals of `proc`, in prelog order (outer intervals
    /// appear before the intervals nested inside them — Figure 5.1/5.2).
    ///
    /// A view over the cached [`IntervalIndex`]: the prelog/postlog
    /// pairing is done once, by single-pass stack matching, instead of a
    /// forward postlog search per prelog.
    pub fn intervals(&self, proc: ProcId) -> Vec<IntervalRef> {
        self.index().intervals(proc)
    }

    /// The intervals of `proc` still open when execution stopped —
    /// innermost last. The Controller starts debugging from the last
    /// prelog whose postlog has not yet been generated (§5.3).
    pub fn open_intervals(&self, proc: ProcId) -> Vec<IntervalRef> {
        self.index().open_intervals(proc)
    }

    /// Finds a specific interval — an O(1) table lookup.
    pub fn find_interval(
        &self,
        proc: ProcId,
        eblock: EBlockId,
        instance: u64,
    ) -> Option<IntervalRef> {
        self.index().find(proc, eblock, instance)
    }

    /// The interval (of any process) whose span covers logical time `t`
    /// and whose e-block is `eblock` — how the Controller locates "the
    /// log interval of the second process" for cross-process dependences
    /// (§5.6).
    pub fn interval_covering(&self, proc: ProcId, eblock: EBlockId, t: u64) -> Option<IntervalRef> {
        self.index().interval_covering(proc, eblock, t)
    }

    /// A cursor positioned immediately after `interval`'s prelog, for
    /// replay to consume.
    pub fn cursor_at(&self, interval: IntervalRef) -> LogCursor<'_> {
        LogCursor {
            entries: &self.logs[interval.proc.index()].entries,
            pos: interval.prelog_pos + 1,
        }
    }

    /// The prelog entry of an interval.
    pub fn prelog_of(&self, interval: IntervalRef) -> &LogEntry {
        &self.logs[interval.proc.index()].entries[interval.prelog_pos]
    }

    /// The postlog entry of an interval, if complete.
    pub fn postlog_of(&self, interval: IntervalRef) -> Option<&LogEntry> {
        interval.postlog_pos.map(|p| &self.logs[interval.proc.index()].entries[p])
    }

    /// Serializes the store to JSON (the on-disk log-file format).
    ///
    /// # Errors
    ///
    /// Returns a serialization error if any value fails to encode.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string(self)
    }

    /// Loads a store from JSON.
    ///
    /// # Errors
    ///
    /// Returns a deserialization error on malformed input.
    pub fn from_json(json: &str) -> Result<LogStore, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Serializes the store in the compact binary log format — the honest
    /// on-disk byte count for experiment E2, typically several times
    /// smaller than the JSON encoding.
    pub fn to_binary(&self) -> Vec<u8> {
        crate::binio::encode(self)
    }

    /// Loads a store from the compact binary format.
    ///
    /// # Errors
    ///
    /// Returns a [`BinError`](crate::binio::BinError) on a bad magic
    /// number, unknown version/tag, or truncated input.
    pub fn from_binary(bytes: &[u8]) -> Result<LogStore, crate::binio::BinError> {
        crate::binio::decode(bytes)
    }

    /// Loads a store from the compact binary format, decoding the
    /// per-process frames across `jobs` worker threads. Identical
    /// result to [`from_binary`](Self::from_binary).
    ///
    /// # Errors
    ///
    /// Returns a [`BinError`](crate::binio::BinError) on a bad magic
    /// number, unknown version/tag, or truncated input.
    pub fn from_binary_par(bytes: &[u8], jobs: usize) -> Result<LogStore, crate::binio::BinError> {
        crate::binio::decode_par(bytes, jobs)
    }
}

/// A forward-only reader over one process's log, used by e-block replay
/// to consume shared snapshots, inputs, receives and nested postlogs in
/// the order they were recorded.
#[derive(Debug, Clone)]
pub struct LogCursor<'a> {
    entries: &'a [LogEntry],
    pos: usize,
}

impl<'a> LogCursor<'a> {
    /// The next entry without consuming it.
    pub fn peek(&self) -> Option<&'a LogEntry> {
        self.entries.get(self.pos)
    }

    /// Consumes and returns the next entry.
    pub fn next_entry(&mut self) -> Option<&'a LogEntry> {
        let e = self.entries.get(self.pos)?;
        self.pos += 1;
        Some(e)
    }

    /// Consumes entries until (and including) the next entry matching
    /// `pred`; returns it, or `None` if the log ends first.
    pub fn seek(&mut self, pred: impl Fn(&LogEntry) -> bool) -> Option<&'a LogEntry> {
        while let Some(e) = self.entries.get(self.pos) {
            self.pos += 1;
            if pred(e) {
                return Some(e);
            }
        }
        None
    }

    /// Skips a whole nested interval: assuming the next relevant entries
    /// contain `Prelog(eblock=b)` for some instance, consumes through its
    /// matching postlog and returns that postlog (§5.2's substitution).
    /// Handles arbitrarily deep nesting inside.
    pub fn skip_nested_interval(&mut self, eblock: EBlockId) -> Option<&'a LogEntry> {
        // Find the nested interval's prelog.
        let instance = loop {
            let e = self.entries.get(self.pos)?;
            self.pos += 1;
            if let LogEntry::Prelog { eblock: b, instance, .. } = e {
                if *b == eblock {
                    break *instance;
                }
            }
        };
        // Consume to the matching postlog (same block id and instance).
        self.seek(|e| {
            matches!(e, LogEntry::Postlog { eblock: b, instance: i, .. }
                     if *b == eblock && *i == instance)
        })
    }

    /// Current position (for diagnostics).
    pub fn position(&self) -> usize {
        self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppd_lang::{Value, VarId};

    fn prelog(b: u32, i: u64, t: u64) -> LogEntry {
        LogEntry::Prelog { eblock: EBlockId(b), instance: i, values: vec![], time: t }
    }

    fn postlog(b: u32, i: u64, t: u64) -> LogEntry {
        LogEntry::Postlog {
            eblock: EBlockId(b),
            instance: i,
            values: vec![(VarId(0), Value::Int(t as i64))],
            ret: None,
            time: t,
        }
    }

    /// The nesting of Figure 5.2: SubJ's interval I_j contains SubK's
    /// I_{j+1}.
    fn fig52_store() -> LogStore {
        let mut s = LogStore::new(1);
        let p = ProcId(0);
        s.push(p, prelog(0, 0, 1)); // SubJ prelog at t1
        s.push(p, prelog(1, 0, 2)); // SubK prelog at t2 (nested)
        s.push(p, postlog(1, 0, 3)); // SubK postlog at t3
        s.push(p, postlog(0, 0, 4)); // SubJ postlog at t4
        s
    }

    #[test]
    fn intervals_pair_prelogs_and_postlogs() {
        let s = fig52_store();
        let ivs = s.intervals(ProcId(0));
        assert_eq!(ivs.len(), 2);
        assert_eq!(ivs[0].eblock, EBlockId(0));
        assert_eq!(ivs[0].prelog_pos, 0);
        assert_eq!(ivs[0].postlog_pos, Some(3));
        assert_eq!(ivs[1].eblock, EBlockId(1));
        assert_eq!(ivs[1].postlog_pos, Some(2));
    }

    #[test]
    fn open_intervals_at_halt() {
        let mut s = LogStore::new(1);
        let p = ProcId(0);
        s.push(p, prelog(0, 0, 1));
        s.push(p, prelog(1, 0, 2));
        // halt: neither postlog written
        let open = s.open_intervals(p);
        assert_eq!(open.len(), 2);
        // Innermost (last prelog without postlog) is the SubK interval.
        assert_eq!(open.last().unwrap().eblock, EBlockId(1));
    }

    #[test]
    fn recursive_instances_disambiguated() {
        let mut s = LogStore::new(1);
        let p = ProcId(0);
        s.push(p, prelog(0, 0, 1));
        s.push(p, prelog(0, 1, 2)); // recursive nested call, same block
        s.push(p, postlog(0, 1, 3));
        s.push(p, postlog(0, 0, 4));
        let outer = s.find_interval(p, EBlockId(0), 0).unwrap();
        let inner = s.find_interval(p, EBlockId(0), 1).unwrap();
        assert_eq!(outer.postlog_pos, Some(3));
        assert_eq!(inner.postlog_pos, Some(2));
    }

    #[test]
    fn cursor_skips_nested_interval() {
        let s = fig52_store();
        let outer = s.find_interval(ProcId(0), EBlockId(0), 0).unwrap();
        let mut cur = s.cursor_at(outer);
        let post = cur.skip_nested_interval(EBlockId(1)).unwrap();
        assert!(matches!(post, LogEntry::Postlog { eblock: EBlockId(1), .. }));
        // Next entry is SubJ's own postlog.
        assert!(matches!(cur.next_entry(), Some(LogEntry::Postlog { eblock: EBlockId(0), .. })));
    }

    #[test]
    fn cursor_skips_deeply_nested_intervals() {
        let mut s = LogStore::new(1);
        let p = ProcId(0);
        s.push(p, prelog(0, 0, 1));
        s.push(p, prelog(1, 0, 2));
        s.push(p, prelog(2, 0, 3)); // grandchild
        s.push(p, postlog(2, 0, 4));
        s.push(p, postlog(1, 0, 5));
        s.push(p, postlog(0, 0, 6));
        let outer = s.find_interval(p, EBlockId(0), 0).unwrap();
        let mut cur = s.cursor_at(outer);
        let post = cur.skip_nested_interval(EBlockId(1)).unwrap();
        assert_eq!(post.time(), 5);
    }

    #[test]
    fn interval_covering_time() {
        let s = fig52_store();
        let iv = s.interval_covering(ProcId(0), EBlockId(0), 2).unwrap();
        assert_eq!(iv.eblock, EBlockId(0));
        assert!(s.interval_covering(ProcId(0), EBlockId(1), 9).is_none());
    }

    #[test]
    fn store_serde_round_trip() {
        let s = fig52_store();
        let json = s.to_json().unwrap();
        let back = LogStore::from_json(&json).unwrap();
        assert_eq!(back.total_entries(), 4);
        assert_eq!(back.total_bytes(), s.total_bytes());
    }

    #[test]
    fn counts_by_kind() {
        let s = fig52_store();
        let counts = s.counts_by_kind();
        assert!(counts.contains(&("prelog", 2)));
        assert!(counts.contains(&("postlog", 2)));
    }
}

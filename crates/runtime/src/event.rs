//! Trace events and tracer hooks.
//!
//! The "emulation package" (§5.3) is this same interpreter run in a mode
//! that "generates a trace of every useful event". Events flow into a
//! [`Tracer`]; the debugging phase's dynamic-graph builder consumes them,
//! and the benchmark harness counts them (experiment E2 compares full
//! trace volume against log volume).

use ppd_analysis::EBlockId;
use ppd_lang::{FuncId, ProcId, StmtId, VarId};
use serde::{Deserialize, Serialize};

/// A memory cell: a scalar variable or one array element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CellRef {
    /// The variable.
    pub var: VarId,
    /// The element index for arrays.
    pub index: Option<usize>,
}

impl CellRef {
    /// A scalar cell.
    pub fn scalar(var: VarId) -> CellRef {
        CellRef { var, index: None }
    }

    /// An array element cell.
    pub fn element(var: VarId, index: usize) -> CellRef {
        CellRef { var, index: Some(index) }
    }
}

/// Where a value consumed by an event came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReadSource {
    /// A read of a memory cell.
    Cell(CellRef),
    /// The result of a completed call; `call_seq` is the `seq` of the
    /// corresponding `CallEnter` event (the `%0` of §4.2).
    CallResult {
        /// Sequence number of the call's `CallEnter` event.
        call_seq: u64,
    },
    /// A value that arrived from outside the process: program input or a
    /// message payload. Cross-process dependences are recovered through
    /// the parallel dynamic graph, not through the trace.
    External,
}

/// The kind of synchronization operation an event describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SyncKind {
    /// Semaphore wait.
    P,
    /// Semaphore signal.
    V,
    /// Lock acquire.
    Lock,
    /// Lock release.
    Unlock,
    /// Blocking send.
    Send,
    /// Non-blocking send.
    ASend,
    /// Receive.
    Recv,
    /// Rendezvous call.
    Rendezvous,
    /// Rendezvous accept.
    Accept,
}

/// What a trace event describes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EventKind {
    /// A value was assigned (or a declaration initialized).
    Assign,
    /// A control predicate was evaluated.
    Predicate {
        /// Whether the true branch was taken.
        taken: bool,
    },
    /// A function call began; arguments and per-argument read fan-in.
    CallEnter {
        /// The callee.
        func: FuncId,
        /// Evaluated argument values with the reads that produced each.
        args: Vec<(i64, Vec<ReadSource>)>,
        /// Whether the call was *substituted* from a logged postlog
        /// instead of executed (§5.2) — the resulting sub-graph node is
        /// unexpanded.
        substituted: bool,
    },
    /// A function call completed.
    CallExit {
        /// The callee.
        func: FuncId,
        /// Its return value, if any.
        ret: Option<i64>,
    },
    /// A `return` statement executed.
    Return,
    /// `print` produced output.
    Print,
    /// An `assert` passed.
    AssertPass,
    /// An `assert` failed — the externally visible failure (§1).
    AssertFail,
    /// A synchronization operation.
    Sync {
        /// Which operation.
        kind: SyncKind,
    },
    /// During replay, a loop with its own e-block was skipped and its
    /// postlog applied (§5.4) — an unexpanded sub-graph node.
    LoopSubstituted {
        /// The loop's e-block.
        eblock: EBlockId,
    },
    /// The statement failed. The event's `reads` are the cells consumed
    /// before the failure — the immediate suspects flowback starts from.
    Failure {
        /// Human-readable description of the failure.
        message: String,
    },
}

/// One trace event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// The process that produced the event.
    pub proc: ProcId,
    /// The statement being executed.
    pub stmt: StmtId,
    /// Global sequence number (logical time).
    pub seq: u64,
    /// The event kind.
    pub kind: EventKind,
    /// The reads that fed the event, in evaluation order.
    pub reads: Vec<ReadSource>,
    /// The cell written, if the event wrote one.
    pub write: Option<(CellRef, i64)>,
    /// The headline value: assigned value, predicate result (0/1),
    /// printed value, sent/received payload, return value.
    pub value: Option<i64>,
}

impl TraceEvent {
    /// Approximate trace-record size in bytes, the E2 currency.
    pub fn size_bytes(&self) -> usize {
        24 + 12 * self.reads.len()
            + if self.write.is_some() { 16 } else { 0 }
            + match &self.kind {
                EventKind::CallEnter { args, .. } => {
                    args.iter().map(|(_, rs)| 12 + 12 * rs.len()).sum()
                }
                _ => 0,
            }
    }
}

/// A sink for trace events.
pub trait Tracer {
    /// Called once per event, in global execution order.
    fn event(&mut self, event: &TraceEvent);
}

/// Discards everything — the uninstrumented baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullTracer;

impl Tracer for NullTracer {
    fn event(&mut self, _event: &TraceEvent) {}
}

/// Stores every event — the emulation package's full trace.
#[derive(Debug, Clone, Default)]
pub struct VecTracer {
    /// The recorded events.
    pub events: Vec<TraceEvent>,
}

impl VecTracer {
    /// Drops recorded events but keeps the allocation, so one tracer can
    /// serve many replays as a reusable sink.
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// Takes the recorded events, leaving the tracer empty (allocation
    /// handed to the caller).
    pub fn take(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events)
    }
}

impl Tracer for VecTracer {
    fn event(&mut self, event: &TraceEvent) {
        self.events.push(event.clone());
    }
}

/// Counts events and bytes without storing them — used to measure what a
/// trace-everything debugger *would* have written (experiment E2).
#[derive(Debug, Clone, Copy, Default)]
pub struct CountingTracer {
    /// Number of events seen.
    pub events: u64,
    /// Total estimated bytes.
    pub bytes: u64,
}

impl Tracer for CountingTracer {
    fn event(&mut self, event: &TraceEvent) {
        self.events += 1;
        self.bytes += event.size_bytes() as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TraceEvent {
        TraceEvent {
            proc: ProcId(0),
            stmt: StmtId(1),
            seq: 9,
            kind: EventKind::Assign,
            reads: vec![ReadSource::Cell(CellRef::scalar(VarId(0)))],
            write: Some((CellRef::scalar(VarId(1)), 5)),
            value: Some(5),
        }
    }

    #[test]
    fn vec_tracer_stores() {
        let mut t = VecTracer::default();
        t.event(&sample());
        t.event(&sample());
        assert_eq!(t.events.len(), 2);
    }

    #[test]
    fn counting_tracer_counts() {
        let mut t = CountingTracer::default();
        t.event(&sample());
        assert_eq!(t.events, 1);
        assert_eq!(t.bytes, sample().size_bytes() as u64);
        assert_eq!(sample().size_bytes(), 24 + 12 + 16);
    }

    #[test]
    fn call_enter_size_includes_args() {
        let e = TraceEvent {
            kind: EventKind::CallEnter {
                func: FuncId(0),
                args: vec![(1, vec![ReadSource::External]), (2, vec![])],
                substituted: false,
            },
            reads: vec![],
            write: None,
            value: None,
            proc: ProcId(0),
            stmt: StmtId(0),
            seq: 0,
        };
        assert_eq!(e.size_bytes(), 24 + (12 + 12) + 12);
    }

    #[test]
    fn cell_constructors() {
        assert_eq!(CellRef::scalar(VarId(3)).index, None);
        assert_eq!(CellRef::element(VarId(3), 7).index, Some(7));
    }
}

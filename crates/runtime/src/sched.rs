//! Process schedulers for the simulated shared-memory multiprocessor.
//!
//! The scheduler decides which runnable process executes the next step.
//! Every execution is reproducible from `(program, inputs, SchedulerSpec)`
//! — the stand-in for the paper's "same input as originally fed to the
//! program" (§5.1). Varying the seed models the *non-reproducibility* of
//! real parallel programs ("scheduling delays", §2) that motivates
//! logging in the first place.

use ppd_lang::ProcId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A reproducible scheduler specification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum SchedulerSpec {
    /// Rotate fairly among runnable processes.
    #[default]
    RoundRobin,
    /// Uniform random choice from a seeded generator.
    Random {
        /// The seed; same seed ⇒ same interleaving.
        seed: u64,
    },
    /// Always run the lowest-numbered runnable process — an adversarial
    /// schedule that starves late processes and provokes deadlocks in
    /// programs like the dining philosophers.
    PreferLowest,
    /// Always run the highest-numbered runnable process.
    PreferHighest,
    /// Run each process to completion (or block) before switching —
    /// the coarsest interleaving.
    RunToBlock,
}

impl SchedulerSpec {
    /// Instantiates the scheduler.
    pub fn build(self) -> Scheduler {
        let state = match self {
            SchedulerSpec::Random { seed } => State::Random(StdRng::seed_from_u64(seed)),
            SchedulerSpec::RoundRobin => State::RoundRobin { next: 0 },
            SchedulerSpec::PreferLowest => State::Lowest,
            SchedulerSpec::PreferHighest => State::Highest,
            SchedulerSpec::RunToBlock => State::Sticky { current: None },
        };
        Scheduler { state }
    }
}

/// A scheduler instance with its mutable state.
#[derive(Debug, Clone)]
pub struct Scheduler {
    state: State,
}

#[derive(Debug, Clone)]
#[allow(clippy::large_enum_variant)] // StdRng dwarfs the others; one scheduler per machine
enum State {
    RoundRobin { next: usize },
    Random(StdRng),
    Lowest,
    Highest,
    Sticky { current: Option<ProcId> },
}

impl Scheduler {
    /// Picks one of the runnable processes.
    ///
    /// # Panics
    ///
    /// Panics if `runnable` is empty — the machine must detect deadlock
    /// before asking.
    pub fn pick(&mut self, runnable: &[ProcId]) -> ProcId {
        assert!(!runnable.is_empty(), "scheduler invoked with no runnable process");
        match &mut self.state {
            State::RoundRobin { next } => {
                // Find the first runnable process at or after the cursor.
                let chosen =
                    runnable.iter().copied().find(|p| p.index() >= *next).unwrap_or(runnable[0]);
                *next = chosen.index() + 1;
                chosen
            }
            State::Random(rng) => runnable[rng.gen_range(0..runnable.len())],
            State::Lowest => runnable[0],
            State::Highest => *runnable.last().expect("nonempty"),
            State::Sticky { current } => {
                if let Some(c) = current {
                    if runnable.contains(c) {
                        return *c;
                    }
                }
                let chosen = runnable[0];
                *current = Some(chosen);
                chosen
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn procs(ids: &[u32]) -> Vec<ProcId> {
        ids.iter().map(|&i| ProcId(i)).collect()
    }

    #[test]
    fn round_robin_rotates() {
        let mut s = SchedulerSpec::RoundRobin.build();
        let r = procs(&[0, 1, 2]);
        let picks: Vec<u32> = (0..6).map(|_| s.pick(&r).0).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn round_robin_skips_blocked() {
        let mut s = SchedulerSpec::RoundRobin.build();
        assert_eq!(s.pick(&procs(&[0, 2])).0, 0);
        assert_eq!(s.pick(&procs(&[0, 2])).0, 2);
        assert_eq!(s.pick(&procs(&[0, 2])).0, 0);
    }

    #[test]
    fn random_is_reproducible() {
        let r = procs(&[0, 1, 2, 3]);
        let run = |seed| {
            let mut s = SchedulerSpec::Random { seed }.build();
            (0..32).map(|_| s.pick(&r).0).collect::<Vec<u32>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different seeds should differ");
    }

    #[test]
    fn lowest_and_highest() {
        let r = procs(&[1, 3, 5]);
        assert_eq!(SchedulerSpec::PreferLowest.build().pick(&r).0, 1);
        assert_eq!(SchedulerSpec::PreferHighest.build().pick(&r).0, 5);
    }

    #[test]
    fn sticky_runs_to_block() {
        let mut s = SchedulerSpec::RunToBlock.build();
        assert_eq!(s.pick(&procs(&[0, 1])).0, 0);
        assert_eq!(s.pick(&procs(&[0, 1])).0, 0);
        // 0 blocks; switches to 1 and sticks.
        assert_eq!(s.pick(&procs(&[1])).0, 1);
        assert_eq!(s.pick(&procs(&[0, 1])).0, 1);
    }

    #[test]
    #[should_panic(expected = "no runnable process")]
    fn empty_runnable_panics() {
        SchedulerSpec::RoundRobin.build().pick(&[]);
    }
}

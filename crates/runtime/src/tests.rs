//! Runtime test-suite: interpreter semantics, scheduling, synchronization,
//! logging, and replay fidelity (the §5.1 reproducibility contract).

#![allow(clippy::field_reassign_with_default)]

use crate::error::Outcome;
use crate::event::{EventKind, NullTracer, ReadSource, TraceEvent, VecTracer};
use crate::machine::{ExecConfig, ExecResult, Machine, NestedCalls};
use crate::sched::SchedulerSpec;
use ppd_analysis::{Analyses, EBlockPlan, EBlockStrategy};
use ppd_lang::{compile, ProcId, ResolvedProgram};
use ppd_log::LogStore;

struct Setup {
    rp: ResolvedProgram,
    analyses: Analyses,
}

fn setup(src: &str) -> Setup {
    let rp = compile(src).expect("test program compiles");
    let analyses = Analyses::run(&rp);
    Setup { rp, analyses }
}

fn run_with(s: &Setup, config: ExecConfig) -> ExecResult {
    Machine::new(&s.rp, &s.analyses, None, config).run(&mut NullTracer)
}

fn run(s: &Setup) -> ExecResult {
    run_with(s, ExecConfig::default())
}

fn outputs(r: &ExecResult) -> Vec<i64> {
    r.output.iter().map(|&(_, v)| v).collect()
}

// ---------------------------------------------------------------------
// Sequential semantics
// ---------------------------------------------------------------------

#[test]
fn arithmetic_and_precedence() {
    let s = setup("process M { print(2 + 3 * 4); print((2 + 3) * 4); print(10 / 3); print(10 % 3); print(0 - 7); }");
    let r = run(&s);
    assert!(r.outcome.is_success());
    assert_eq!(outputs(&r), vec![14, 20, 3, 1, -7]);
}

#[test]
fn comparisons_and_logic() {
    let s = setup(
        "process M { print(1 < 2); print(2 <= 1); print(3 == 3); print(3 != 3); \
         print(1 && 2); print(0 || 5); print(!0); print(!9); }",
    );
    assert_eq!(outputs(&run(&s)), vec![1, 0, 1, 0, 1, 1, 1, 0]);
}

#[test]
fn short_circuit_skips_rhs() {
    // Division by zero on the rhs must not trigger when short-circuited.
    let s = setup("process M { int z = 0; print(0 && (1 / z)); print(1 || (1 / z)); }");
    let r = run(&s);
    assert!(r.outcome.is_success(), "{:?}", r.outcome);
    assert_eq!(outputs(&r), vec![0, 1]);
}

#[test]
fn if_else_chains() {
    let s = setup(
        "process M { int x = 5; \
         if (x > 10) { print(1); } else if (x > 3) { print(2); } else { print(3); } }",
    );
    assert_eq!(outputs(&run(&s)), vec![2]);
}

#[test]
fn while_and_for_loops() {
    let s = setup(
        "process M { int s = 0; int i = 1; while (i <= 5) { s = s + i; i = i + 1; } print(s); \
         int t = 0; int j; for (j = 0; j < 4; j = j + 1) { t = t + j; } print(t); }",
    );
    assert_eq!(outputs(&run(&s)), vec![15, 6]);
}

#[test]
fn for_without_cond_exits_via_return() {
    let s =
        setup("process M { int i = 0; for (;;) { i = i + 1; if (i == 3) { print(i); return; } } }");
    assert_eq!(outputs(&run(&s)), vec![3]);
}

#[test]
fn functions_and_recursion() {
    let s = setup(
        "int fact(int n) { if (n <= 1) { return 1; } return n * fact(n - 1); } \
         int fib(int n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); } \
         process M { print(fact(5)); print(fib(10)); }",
    );
    assert_eq!(outputs(&run(&s)), vec![120, 55]);
}

#[test]
fn void_function_call_statement() {
    let s =
        setup("shared int g; void bump() { g = g + 1; } process M { bump(); bump(); print(g); }");
    assert_eq!(outputs(&run(&s)), vec![2]);
}

#[test]
fn arrays_and_quicksort() {
    let s = setup(ppd_lang::corpus::QUICKSORT.source);
    let r = run(&s);
    assert!(r.outcome.is_success(), "{:?}", r.outcome);
    assert_eq!(outputs(&r), vec![1]);
}

#[test]
fn fig41_computes() {
    let s = setup(ppd_lang::corpus::FIG_4_1.source);
    // a=5 b=3 c=2: d = (5+3+2) - 5*3 = -5; sq = sqrt(5) = 2; a = 7.
    let mut cfg = ExecConfig::default();
    cfg.inputs = vec![vec![5, 3, 2]];
    let r = run_with(&s, cfg);
    assert!(r.outcome.is_success(), "{:?}", r.outcome);
    assert_eq!(outputs(&r), vec![7]);
}

#[test]
fn matmul_kernel() {
    let s = setup(ppd_lang::corpus::MATMUL.source);
    let r = run(&s);
    assert!(r.outcome.is_success());
    assert_eq!(r.output.len(), 1);
}

#[test]
fn input_stream_consumed_in_order() {
    let s = setup("process M { print(input()); print(input() * 2); }");
    let mut cfg = ExecConfig::default();
    cfg.inputs = vec![vec![7, 9]];
    assert_eq!(outputs(&run_with(&s, cfg)), vec![7, 18]);
}

#[test]
fn block_scoped_redeclaration() {
    let s =
        setup("process M { int i; for (i = 0; i < 2; i = i + 1) { int t = i * 10; print(t); } }");
    assert_eq!(outputs(&run(&s)), vec![0, 10]);
}

// ---------------------------------------------------------------------
// Failures
// ---------------------------------------------------------------------

#[test]
fn divide_by_zero_fails() {
    let s = setup("process M { int z = 0; print(1 / z); }");
    let r = run(&s);
    assert!(
        matches!(&r.outcome, Outcome::Failed { error, .. }
                 if *error == crate::RuntimeError::DivideByZero),
        "{:?}",
        r.outcome
    );
}

#[test]
fn assert_failure_reports_statement() {
    let s = setup("process M { int x = 2; assert(x == 3); }");
    let r = run(&s);
    let Outcome::Failed { error, .. } = &r.outcome else {
        panic!("expected failure: {:?}", r.outcome)
    };
    assert_eq!(*error, crate::RuntimeError::AssertFailed);
}

#[test]
fn index_out_of_bounds_fails() {
    let s = setup("shared int a[3]; process M { print(a[5]); }");
    assert!(matches!(
        run(&s).outcome,
        Outcome::Failed { error: crate::RuntimeError::IndexOutOfBounds { index: 5, len: 3 }, .. }
    ));
}

#[test]
fn negative_index_fails() {
    let s = setup("shared int a[3]; process M { a[0 - 1] = 5; }");
    assert!(matches!(
        run(&s).outcome,
        Outcome::Failed { error: crate::RuntimeError::IndexOutOfBounds { index: -1, .. }, .. }
    ));
}

#[test]
fn input_exhausted_fails() {
    let s = setup("process M { print(input()); }");
    assert!(matches!(
        run(&s).outcome,
        Outcome::Failed { error: crate::RuntimeError::InputExhausted, .. }
    ));
}

#[test]
fn step_limit_catches_infinite_loop() {
    let s = setup("process M { for (;;) { } }");
    let mut cfg = ExecConfig::default();
    cfg.max_steps = 10_000;
    assert_eq!(run_with(&s, cfg).outcome, Outcome::StepLimit);
}

#[test]
fn flowback_demo_fails_with_divide_by_zero() {
    let s = setup(ppd_lang::corpus::FLOWBACK_DEMO.source);
    let mut cfg = ExecConfig::default();
    cfg.inputs = vec![vec![42, 10]];
    let r = run_with(&s, cfg);
    assert!(matches!(r.outcome, Outcome::Failed { error: crate::RuntimeError::DivideByZero, .. }));
}

// ---------------------------------------------------------------------
// Parallel semantics and scheduling
// ---------------------------------------------------------------------

#[test]
fn producer_consumer_totals() {
    let s = setup(ppd_lang::corpus::PRODUCER_CONSUMER.source);
    for spec in [
        SchedulerSpec::RoundRobin,
        SchedulerSpec::Random { seed: 1 },
        SchedulerSpec::Random { seed: 99 },
        SchedulerSpec::RunToBlock,
    ] {
        let mut cfg = ExecConfig::default();
        cfg.scheduler = spec;
        let r = run_with(&s, cfg);
        assert!(r.outcome.is_success(), "{spec:?}: {:?}", r.outcome);
        // 1+2+...+8 = 36 regardless of interleaving (race-free).
        assert_eq!(outputs(&r), vec![36], "{spec:?}");
    }
}

#[test]
fn bank_assertion_holds_under_many_schedules() {
    let s = setup(ppd_lang::corpus::BANK.source);
    for seed in 0..10 {
        let mut cfg = ExecConfig::default();
        cfg.scheduler = SchedulerSpec::Random { seed };
        let r = run_with(&s, cfg);
        assert!(r.outcome.is_success(), "seed {seed}: {:?}", r.outcome);
        assert_eq!(outputs(&r), vec![400], "seed {seed}");
    }
}

#[test]
fn token_ring_deterministic() {
    let s = setup(ppd_lang::corpus::TOKEN_RING.source);
    let r = run(&s);
    assert!(r.outcome.is_success());
    assert_eq!(outputs(&r), vec![3]);
}

#[test]
fn rendezvous_server_sums_clients() {
    let s = setup(ppd_lang::corpus::RENDEZVOUS_SERVER.source);
    for seed in 0..6 {
        let mut cfg = ExecConfig::default();
        cfg.scheduler = SchedulerSpec::Random { seed };
        let r = run_with(&s, cfg);
        assert!(r.outcome.is_success(), "seed {seed}: {:?}", r.outcome);
        assert_eq!(outputs(&r), vec![42], "seed {seed}");
    }
}

#[test]
fn blocking_send_blocks_until_receipt() {
    // The sender's print must happen-after the receive event.
    let s = setup(
        "process S { send(R, 5); print(1); } \
         process R { int i = 0; while (i < 3) { i = i + 1; } int m; recv(m); print(m); }",
    );
    let mut tracer = VecTracer::default();
    let r = Machine::new(&s.rp, &s.analyses, None, ExecConfig::default()).run(&mut tracer);
    assert!(r.outcome.is_success());
    let recv_seq = tracer
        .events
        .iter()
        .find(|e| matches!(e.kind, EventKind::Sync { kind: crate::SyncKind::Recv }))
        .map(|e| e.seq)
        .expect("recv event");
    let sender_print_seq = tracer
        .events
        .iter()
        .find(|e| e.proc == ProcId(0) && matches!(e.kind, EventKind::Print))
        .map(|e| e.seq)
        .expect("sender print");
    assert!(recv_seq < sender_print_seq, "sender resumed before receipt");
    // And the graph has both the message and the unblock edge.
    let g = r.pgraph.expect("graph");
    assert_eq!(g.sync_edges().len(), 2);
}

#[test]
fn asend_does_not_block() {
    let s = setup("process S { asend(R, 5); print(1); } process R { int m; recv(m); print(m); }");
    let r = run(&s);
    assert!(r.outcome.is_success());
    assert_eq!(outputs(&r).len(), 2);
}

#[test]
fn philosophers_deadlock_detected() {
    let s = setup(ppd_lang::corpus::DINING_PHILOSOPHERS.source);
    // Fine-grained round-robin interleaving drives both philosophers to
    // grab their first fork, then deadlock.
    let r = run(&s);
    let Outcome::Deadlock { blocked } = &r.outcome else {
        panic!("expected deadlock, got {:?}", r.outcome)
    };
    assert_eq!(blocked.len(), 2);
}

#[test]
fn philosophers_complete_run_to_block() {
    let s = setup(ppd_lang::corpus::DINING_PHILOSOPHERS.source);
    let mut cfg = ExecConfig::default();
    cfg.scheduler = SchedulerSpec::RunToBlock;
    let r = run_with(&s, cfg);
    assert!(r.outcome.is_success(), "{:?}", r.outcome);
}

#[test]
fn same_seed_same_execution() {
    let s = setup(ppd_lang::corpus::PRODUCER_CONSUMER_RACY.source);
    let run_seed = |seed| {
        let mut cfg = ExecConfig::default();
        cfg.scheduler = SchedulerSpec::Random { seed };
        let r = run_with(&s, cfg);
        (outputs(&r), r.steps, r.events)
    };
    assert_eq!(run_seed(3), run_seed(3));
}

#[test]
fn racy_counter_varies_across_seeds() {
    // The unprotected counter can end at different values under
    // different interleavings — the non-reproducibility that motivates
    // the paper (§2).
    let s = setup(ppd_lang::corpus::PRODUCER_CONSUMER_RACY.source);
    let mut seen = std::collections::HashSet::new();
    for seed in 0..40 {
        let mut cfg = ExecConfig::default();
        cfg.scheduler = SchedulerSpec::Random { seed };
        let r = run_with(&s, cfg);
        assert!(r.outcome.is_success(), "seed {seed}: {:?}", r.outcome);
        seen.insert(outputs(&r));
    }
    assert!(seen.len() > 1, "expected schedule-dependent results, got {seen:?}");
}

// ---------------------------------------------------------------------
// Parallel dynamic graph construction
// ---------------------------------------------------------------------

#[test]
fn fig61_graph_and_races_from_execution() {
    let s = setup(ppd_lang::corpus::FIG_6_1.source);
    let r = run(&s);
    assert!(r.outcome.is_success(), "{:?}", r.outcome);
    let g = r.pgraph.expect("graph requested");
    // The message produced a sync edge pair (send->recv, recv->unblock).
    assert_eq!(g.sync_edges().len(), 2);
    let ord = ppd_graph::VectorClocks::compute(&g);
    let races = ppd_graph::detect_races_indexed(&g, &ord);
    assert_eq!(races.len(), 2, "{races:?}");
}

#[test]
fn locked_bank_is_race_free() {
    let s = setup(ppd_lang::corpus::BANK.source);
    for seed in 0..5 {
        let mut cfg = ExecConfig::default();
        cfg.scheduler = SchedulerSpec::Random { seed };
        let r = run_with(&s, cfg);
        let g = r.pgraph.expect("graph");
        let ord = ppd_graph::VectorClocks::compute(&g);
        assert!(
            ppd_graph::is_race_free(&g, &ord),
            "seed {seed}: {:?}",
            ppd_graph::detect_races_indexed(&g, &ord)
        );
    }
}

#[test]
fn racy_bank_races_detected() {
    let s = setup(ppd_lang::corpus::BANK_RACY.source);
    let r = run(&s);
    let g = r.pgraph.expect("graph");
    let ord = ppd_graph::VectorClocks::compute(&g);
    let races = ppd_graph::detect_races_indexed(&g, &ord);
    assert!(!races.is_empty());
}

#[test]
fn semaphore_edges_order_critical_sections() {
    let s = setup(
        "shared int x; sem m = 1; \
         process A { p(m); x = x + 1; v(m); } \
         process B { p(m); x = x + 1; v(m); }",
    );
    for seed in 0..8 {
        let mut cfg = ExecConfig::default();
        cfg.scheduler = SchedulerSpec::Random { seed };
        let r = run_with(&s, cfg);
        assert!(r.outcome.is_success());
        let g = r.pgraph.expect("graph");
        let ord = ppd_graph::VectorClocks::compute(&g);
        assert!(ppd_graph::is_race_free(&g, &ord), "seed {seed}");
    }
}

// ---------------------------------------------------------------------
// Logging (object code) and replay (emulation package)
// ---------------------------------------------------------------------

struct Instrumented {
    rp: ResolvedProgram,
    analyses: Analyses,
    plan: EBlockPlan,
}

fn instrumented(src: &str, strategy: EBlockStrategy) -> Instrumented {
    let rp = compile(src).expect("compiles");
    let analyses = Analyses::run(&rp);
    let plan = analyses.eblock_plan(&rp, strategy);
    Instrumented { rp, analyses, plan }
}

fn run_logged(i: &Instrumented, cfg: ExecConfig) -> (ExecResult, LogStore, Vec<TraceEvent>) {
    let mut tracer = VecTracer::default();
    let machine = Machine::new(&i.rp, &i.analyses, Some(&i.plan), cfg);
    let mut r = machine.run(&mut tracer);
    let logs = r.logs.take().expect("logging enabled");
    (r, logs, tracer.events)
}

#[test]
fn logs_have_matched_intervals_on_success() {
    let i = instrumented(ppd_lang::corpus::QUICKSORT.source, EBlockStrategy::per_subroutine());
    let (r, logs, _) = run_logged(&i, ExecConfig::default());
    assert!(r.outcome.is_success());
    for p in 0..i.rp.procs.len() {
        let pid = ProcId(p as u32);
        assert!(logs.open_intervals(pid).is_empty(), "no dangling prelogs");
        for iv in logs.intervals(pid) {
            assert!(iv.postlog_pos.is_some());
        }
    }
    // Recursion gave qsort_range many intervals.
    assert!(logs.intervals(ProcId(0)).len() > 10);
}

#[test]
fn halted_execution_leaves_open_intervals() {
    let i = instrumented(ppd_lang::corpus::FLOWBACK_DEMO.source, EBlockStrategy::per_subroutine());
    let mut cfg = ExecConfig::default();
    cfg.inputs = vec![vec![42, 10]];
    let (r, logs, _) = run_logged(&i, cfg);
    assert!(r.outcome.is_failure());
    let open = logs.open_intervals(ProcId(0));
    assert_eq!(open.len(), 1, "Main's interval is open at the failure");
}

/// Normalized event: (stmt, kind, value, write) with sequence numbers
/// stripped (clocks differ between original run and replay).
type NormalizedEvent = (u32, String, Option<i64>, Option<(u32, Option<usize>, i64)>);

/// Normalized view of an event for replay-fidelity comparison.
fn normalize(e: &TraceEvent) -> NormalizedEvent {
    let kind = match &e.kind {
        EventKind::CallEnter { func, args, .. } => {
            // Per-arg values matter; read provenance seq does not.
            format!("call{}({:?})", func.0, args.iter().map(|(v, _)| *v).collect::<Vec<_>>())
        }
        other => format!("{other:?}"),
    };
    let write = e.write.map(|(c, v)| (c.var.0, c.index, v));
    (e.stmt.0, kind, e.value, write)
}

/// The §5.1 contract: replaying an e-block from its prelog, with the same
/// logged inputs, reproduces exactly the events of the original interval.
fn assert_replay_fidelity(src: &str, inputs: Vec<Vec<i64>>, strategy: EBlockStrategy) {
    let i = instrumented(src, strategy);
    let mut cfg = ExecConfig::default();
    cfg.inputs = inputs;
    let (r, logs, original) = run_logged(&i, cfg);
    let failed = r.outcome.is_failure();

    for p in 0..i.rp.procs.len() {
        let pid = ProcId(p as u32);
        for interval in logs.intervals(pid) {
            // Replay with full expansion and compare against the original
            // events that fall inside the interval.
            let start = logs.prelog_of(interval).time();
            let end = logs.postlog_of(interval).map(|e| e.time()).unwrap_or(u64::MAX);
            let machine = Machine::new_replay(
                &i.rp,
                &i.analyses,
                &i.plan,
                &logs,
                interval,
                NestedCalls::Expand,
                1_000_000,
            );
            let mut tracer = VecTracer::default();
            let rep = machine.run_replay(&mut tracer);
            if !failed {
                assert!(
                    rep.outcome.is_success(),
                    "interval {:?} replay failed: {:?}",
                    interval,
                    rep.outcome
                );
            }
            let expected: Vec<_> = original
                .iter()
                .filter(|e| e.proc == pid && e.seq > start && e.seq < end)
                .map(normalize)
                .collect();
            let got: Vec<_> = tracer.events.iter().map(normalize).collect();
            assert_eq!(got, expected, "interval {interval:?} of process {pid} diverged");
        }
    }
}

#[test]
fn replay_fidelity_sequential() {
    assert_replay_fidelity(
        "shared int out; \
         int square(int x) { return x * x; } \
         process Main { int a = input(); int b = square(a) + 1; out = b; print(out); }",
        vec![vec![6]],
        EBlockStrategy::per_subroutine(),
    );
}

#[test]
fn replay_fidelity_recursion() {
    assert_replay_fidelity(
        ppd_lang::corpus::QUICKSORT.source,
        vec![],
        EBlockStrategy::per_subroutine(),
    );
}

#[test]
fn replay_fidelity_fig41() {
    assert_replay_fidelity(
        ppd_lang::corpus::FIG_4_1.source,
        vec![vec![5, 3, 2]],
        EBlockStrategy::per_subroutine(),
    );
}

#[test]
fn replay_fidelity_message_passing() {
    assert_replay_fidelity(
        ppd_lang::corpus::TOKEN_RING.source,
        vec![],
        EBlockStrategy::per_subroutine(),
    );
}

#[test]
fn replay_fidelity_synchronized_shared_state() {
    assert_replay_fidelity(
        ppd_lang::corpus::PRODUCER_CONSUMER.source,
        vec![],
        EBlockStrategy::per_subroutine(),
    );
}

#[test]
fn replay_fidelity_bank() {
    assert_replay_fidelity(ppd_lang::corpus::BANK.source, vec![], EBlockStrategy::per_subroutine());
}

#[test]
fn replay_fidelity_rendezvous() {
    assert_replay_fidelity(
        ppd_lang::corpus::RENDEZVOUS_SERVER.source,
        vec![],
        EBlockStrategy::per_subroutine(),
    );
}

#[test]
fn replay_fidelity_with_loop_eblocks() {
    assert_replay_fidelity(
        &ppd_lang::corpus::gen_loop_heavy(12),
        vec![],
        EBlockStrategy::with_loops(3),
    );
}

#[test]
fn replay_fidelity_with_chunked_bodies() {
    assert_replay_fidelity(
        "shared int out; process Main { int a = 1; int b = a + 1; int c = b * 2; \
         int d = c - a; int e = d * d; out = e; print(out); }",
        vec![],
        EBlockStrategy::with_split(2),
    );
}

#[test]
fn replay_fidelity_with_merged_leaves() {
    assert_replay_fidelity(
        "shared int out; \
         int tiny(int x) { return x + 1; } \
         int mid(int x) { int r = tiny(x) * 2; return r; } \
         process Main { out = mid(4); print(out); }",
        vec![],
        EBlockStrategy::with_leaf_merge(2),
    );
}

#[test]
fn replay_reproduces_failure() {
    let i = instrumented(ppd_lang::corpus::FLOWBACK_DEMO.source, EBlockStrategy::per_subroutine());
    let mut cfg = ExecConfig::default();
    cfg.inputs = vec![vec![42, 10]];
    let (r, logs, _) = run_logged(&i, cfg);
    let Outcome::Failed { stmt, error, .. } = r.outcome else { panic!() };
    let interval = logs.open_intervals(ProcId(0))[0];
    let machine = Machine::new_replay(
        &i.rp,
        &i.analyses,
        &i.plan,
        &logs,
        interval,
        NestedCalls::Substitute,
        1_000_000,
    );
    let mut tracer = VecTracer::default();
    let rep = machine.run_replay(&mut tracer);
    let Outcome::Failed { stmt: rstmt, error: rerror, .. } = rep.outcome else {
        panic!("replay should reproduce the failure, got {:?}", rep.outcome)
    };
    assert_eq!(stmt, rstmt);
    assert_eq!(error, rerror);
}

#[test]
fn substitution_skips_callee_events() {
    let i = instrumented(
        "shared int out; \
         int work(int x) { int a = x * 2; int b = a + 3; return b; } \
         process Main { out = work(5); print(out); }",
        EBlockStrategy::per_subroutine(),
    );
    let (r, logs, _) = run_logged(&i, ExecConfig::default());
    assert!(r.outcome.is_success());
    let main_interval = logs
        .intervals(ProcId(0))
        .into_iter()
        .find(|iv| {
            matches!(
                i.plan.eblock(iv.eblock).region,
                ppd_analysis::Region::Body(ppd_lang::BodyId::Proc(_))
            )
        })
        .expect("Main interval");
    let machine = Machine::new_replay(
        &i.rp,
        &i.analyses,
        &i.plan,
        &logs,
        main_interval,
        NestedCalls::Substitute,
        1_000_000,
    );
    let mut tracer = VecTracer::default();
    let rep = machine.run_replay(&mut tracer);
    assert!(rep.outcome.is_success());
    // The callee's internal assignments are absent; the call appears as
    // one substituted CallEnter with the correct return value.
    let calls: Vec<_> = tracer
        .events
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::CallEnter { substituted, .. } => Some(*substituted),
            _ => None,
        })
        .collect();
    assert_eq!(calls, vec![true]);
    let exit_ret: Vec<_> = tracer
        .events
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::CallExit { ret, .. } => Some(*ret),
            _ => None,
        })
        .collect();
    assert_eq!(exit_ret, vec![Some(13)]);
    // And the substituted result still feeds the assignment.
    let assign = tracer
        .events
        .iter()
        .find(|e| matches!(e.kind, EventKind::Assign) && e.value == Some(13))
        .expect("out = work(5)");
    assert!(assign.reads.iter().any(|r| matches!(r, ReadSource::CallResult { .. })));
}

#[test]
fn shared_snapshot_restores_cross_process_values() {
    // P2's write to g lands between P1's two critical sections; replaying
    // P1's interval must observe it via the snapshot at p(s).
    let i = instrumented(
        "shared int g; shared int out; sem s = 0; \
         process P1 { p(s); out = g + 1; print(out); } \
         process P2 { g = 41; v(s); }",
        EBlockStrategy::per_subroutine(),
    );
    let (r, logs, original) = run_logged(&i, ExecConfig::default());
    assert!(r.outcome.is_success());
    assert_eq!(r.output, vec![(ProcId(0), 42)]);
    let interval = logs.intervals(ProcId(0))[0];
    let machine = Machine::new_replay(
        &i.rp,
        &i.analyses,
        &i.plan,
        &logs,
        interval,
        NestedCalls::Substitute,
        100_000,
    );
    let mut tracer = VecTracer::default();
    let rep = machine.run_replay(&mut tracer);
    assert!(rep.outcome.is_success());
    let assigns: Vec<_> = tracer
        .events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Assign))
        .map(normalize)
        .collect();
    let expected: Vec<_> = original
        .iter()
        .filter(|e| e.proc == ProcId(0) && matches!(e.kind, EventKind::Assign))
        .map(normalize)
        .collect();
    assert_eq!(assigns, expected);
    assert_eq!(rep.output, vec![(ProcId(0), 42)]);
}

#[test]
fn log_volume_far_below_trace_volume() {
    // Leaf merging (§5.4) keeps the hot tiny function out of the log;
    // the whole run then logs only Main's interval.
    let i =
        instrumented(&ppd_lang::corpus::gen_loop_heavy(200), EBlockStrategy::with_leaf_merge(10));
    let mut tracer = crate::event::CountingTracer::default();
    let machine = Machine::new(&i.rp, &i.analyses, Some(&i.plan), ExecConfig::default());
    let r = machine.run(&mut tracer);
    assert!(r.outcome.is_success());
    let log_bytes = r.logs.expect("logs").total_bytes() as u64;
    assert!(
        log_bytes * 10 < tracer.bytes,
        "log {log_bytes}B should be far below trace {}B",
        tracer.bytes
    );
}

#[test]
fn loop_substitution_event_emitted() {
    let i = instrumented(&ppd_lang::corpus::gen_loop_heavy(20), EBlockStrategy::with_loops(3));
    let (r, logs, _) = run_logged(&i, ExecConfig::default());
    assert!(r.outcome.is_success());
    // Replay Main's body with substitution: the loop is skipped.
    let body_interval = logs
        .intervals(ProcId(0))
        .into_iter()
        .find(|iv| matches!(i.plan.eblock(iv.eblock).region, ppd_analysis::Region::Body(_)))
        .expect("body interval");
    let machine = Machine::new_replay(
        &i.rp,
        &i.analyses,
        &i.plan,
        &logs,
        body_interval,
        NestedCalls::Substitute,
        1_000_000,
    );
    let mut tracer = VecTracer::default();
    let rep = machine.run_replay(&mut tracer);
    assert!(rep.outcome.is_success(), "{:?}", rep.outcome);
    assert!(tracer.events.iter().any(|e| matches!(e.kind, EventKind::LoopSubstituted { .. })));
    // The final print still sees the right value.
    let original_out = outputs(&r);
    assert_eq!(rep.output.iter().map(|&(_, v)| v).collect::<Vec<_>>(), original_out);
}

#[test]
fn replay_loop_interval_directly() {
    let i = instrumented(&ppd_lang::corpus::gen_loop_heavy(20), EBlockStrategy::with_loops(3));
    let (r, logs, original) = run_logged(&i, ExecConfig::default());
    assert!(r.outcome.is_success());
    let loop_interval = logs
        .intervals(ProcId(0))
        .into_iter()
        .find(|iv| matches!(i.plan.eblock(iv.eblock).region, ppd_analysis::Region::Loop { .. }))
        .expect("loop interval");
    let start = logs.prelog_of(loop_interval).time();
    let end = logs.postlog_of(loop_interval).unwrap().time();
    let machine = Machine::new_replay(
        &i.rp,
        &i.analyses,
        &i.plan,
        &logs,
        loop_interval,
        NestedCalls::Expand,
        1_000_000,
    );
    let mut tracer = VecTracer::default();
    let rep = machine.run_replay(&mut tracer);
    assert!(rep.outcome.is_success(), "{:?}", rep.outcome);
    let expected: Vec<_> =
        original.iter().filter(|e| e.seq > start && e.seq < end).map(normalize).collect();
    let got: Vec<_> = tracer.events.iter().map(normalize).collect();
    assert_eq!(got, expected);
}

#[test]
fn replay_fidelity_split_function_bodies() {
    // split(2) chunks `partition` and `Main` alike; chunk intervals of
    // *function* bodies must replay from their prelogs too.
    assert_replay_fidelity(
        ppd_lang::corpus::QUICKSORT.source,
        vec![],
        EBlockStrategy::with_split(2),
    );
}

#[test]
fn replay_fidelity_combined_strategies() {
    let strategy = EBlockStrategy {
        loop_eblocks: Some(3),
        split_large: Some(3),
        merge_leaves: Some(4),
        ..EBlockStrategy::per_subroutine()
    };
    assert_replay_fidelity(&ppd_lang::corpus::gen_loop_heavy(15), vec![], strategy);
    assert_replay_fidelity(ppd_lang::corpus::BANK.source, vec![], strategy);
}

#[test]
fn replay_fidelity_readers_writers() {
    assert_replay_fidelity(
        ppd_lang::corpus::READERS_WRITERS.source,
        vec![],
        EBlockStrategy::per_subroutine(),
    );
}

#[test]
fn replay_fidelity_pipeline_and_parallel_sum() {
    assert_replay_fidelity(
        ppd_lang::corpus::PIPELINE.source,
        vec![],
        EBlockStrategy::per_subroutine(),
    );
    assert_replay_fidelity(
        ppd_lang::corpus::PARALLEL_SUM.source,
        vec![],
        EBlockStrategy::with_leaf_merge(12),
    );
}

#[test]
fn deep_recursion_does_not_blow_the_stack() {
    let s = setup(&ppd_lang::corpus::gen_deep_calls(400));
    let mut cfg = ExecConfig::default();
    cfg.inputs = vec![vec![3]];
    cfg.max_steps = 10_000_000;
    let r = run_with(&s, cfg);
    assert!(r.outcome.is_success(), "{:?}", r.outcome);
}

#[test]
fn send_to_self_delivers() {
    let s = setup("process M { asend(M, 7); int x; recv(x); print(x); }");
    let r = run(&s);
    assert!(r.outcome.is_success(), "{:?}", r.outcome);
    assert_eq!(outputs(&r), vec![7]);
}

#[test]
fn blocking_send_to_self_deadlocks() {
    let s = setup("process M { send(M, 7); int x; recv(x); print(x); }");
    let r = run(&s);
    assert!(r.outcome.is_deadlock(), "{:?}", r.outcome);
}

#[test]
fn accept_loop_server() {
    let s = setup(
        "shared int total; \
         process Server { int i; for (i = 0; i < 3; i = i + 1) { \
            accept (x) { total = total + x; } } print(total); } \
         process C1 { rendezvous(Server, 1); } \
         process C2 { rendezvous(Server, 2); } \
         process C3 { rendezvous(Server, 3); }",
    );
    for seed in 0..6 {
        let mut cfg = ExecConfig::default();
        cfg.scheduler = SchedulerSpec::Random { seed };
        let r = run_with(&s, cfg);
        assert!(r.outcome.is_success(), "seed {seed}: {:?}", r.outcome);
        assert_eq!(outputs(&r), vec![6], "seed {seed}");
    }
}

#[test]
fn chunked_body_with_top_level_control_flow() {
    // Chunk boundaries fall between top-level statements including an
    // `if` and a `while`; outputs and fidelity must be unaffected.
    assert_replay_fidelity(
        "shared int out; process Main { \
           int a = input(); \
           int b = a * 2; \
           if (b > 4) { b = b - 1; } \
           int c = 0; \
           while (c < b) { c = c + 2; } \
           out = c; \
           print(out); }",
        vec![vec![5]],
        EBlockStrategy::with_split(2),
    );
}

// ---------------------------------------------------------------------
// §7 "record all uses" — element-granular array logging
// ---------------------------------------------------------------------

#[test]
fn replay_fidelity_element_logged_arrays() {
    let strategy = EBlockStrategy::per_subroutine().with_element_logged_arrays();
    assert_replay_fidelity(ppd_lang::corpus::QUICKSORT.source, vec![], strategy);
    assert_replay_fidelity(ppd_lang::corpus::BANK.source, vec![], strategy);
    assert_replay_fidelity(ppd_lang::corpus::PRODUCER_CONSUMER.source, vec![], strategy);
    assert_replay_fidelity(ppd_lang::corpus::FIG_4_1.source, vec![vec![5, 3, 2]], strategy);
}

#[test]
fn element_logging_shrinks_recursive_array_logs() {
    let whole = instrumented(ppd_lang::corpus::QUICKSORT.source, EBlockStrategy::per_subroutine());
    let element = instrumented(
        ppd_lang::corpus::QUICKSORT.source,
        EBlockStrategy::per_subroutine().with_element_logged_arrays(),
    );
    let (rw, lw, _) = run_logged(&whole, ExecConfig::default());
    let (re, le, _) = run_logged(&element, ExecConfig::default());
    assert!(rw.outcome.is_success() && re.outcome.is_success());
    let (bytes_whole, bytes_element) = (lw.total_bytes(), le.total_bytes());
    assert!(
        bytes_element * 2 < bytes_whole,
        "element logging should cut quicksort logs at least 2x: {bytes_whole} vs {bytes_element}"
    );
    // And element entries exist.
    assert!(le.counts_by_kind().iter().any(|&(k, n)| k == "element" && n > 0));
}

#[test]
fn element_logging_prelogs_exclude_arrays() {
    let i = instrumented(
        "shared int a[64]; shared int out; \
         int touch(int k) { return a[k] + 1; } \
         process Main { a[3] = 9; out = touch(3); print(out); }",
        EBlockStrategy::per_subroutine().with_element_logged_arrays(),
    );
    let (r, logs, _) = run_logged(&i, ExecConfig::default());
    assert!(r.outcome.is_success());
    // No prelog/postlog carries the 64-element array: every value entry
    // is scalar-sized.
    for p in 0..i.rp.procs.len() {
        for e in &logs.log(ProcId(p as u32)).entries {
            assert!(e.size_bytes() < 100, "oversized entry: {e:?}");
        }
    }
}

// ---------------------------------------------------------------------
// Typed channels (chan declarations, chan parameters)
// ---------------------------------------------------------------------

#[test]
fn channel_send_recv_is_fifo() {
    let s = setup(
        "chan q; \
         process P { send(q, 7); send(q, 8); } \
         process C { int a; int b; recv(q, a); recv(q, b); print(a); print(b); }",
    );
    let r = run(&s);
    assert!(r.outcome.is_success(), "{:?}", r.outcome);
    assert_eq!(outputs(&r), vec![7, 8]);
}

#[test]
fn channel_through_parameter() {
    // The channel id flows through the `chan` parameter binding.
    let s = setup(
        "chan q; \
         void produce(chan c, int n) { int i; for (i = 0; i < n; i = i + 1) { asend(c, i); } } \
         process P { produce(q, 3); } \
         process C { int x; int sum = 0; int i; \
                     for (i = 0; i < 3; i = i + 1) { recv(q, x); sum = sum + x; } print(sum); }",
    );
    let r = run(&s);
    assert!(r.outcome.is_success(), "{:?}", r.outcome);
    assert_eq!(outputs(&r), vec![3]);
}

#[test]
fn channel_recv_into_array_element() {
    let s = setup(
        "chan q; shared int a[2]; \
         process P { asend(q, 5); asend(q, 6); } \
         process C { int i; for (i = 0; i < 2; i = i + 1) { recv(q, a[i]); } print(a[0] + a[1]); }",
    );
    let r = run(&s);
    assert!(r.outcome.is_success(), "{:?}", r.outcome);
    assert_eq!(outputs(&r), vec![11]);
}

#[test]
fn blocking_channel_send_blocks_until_receipt() {
    // Same contract as process-addressed sends: the sender's print must
    // happen-after the receive, via the recv → unblock ack edge.
    let s = setup(
        "chan q; \
         process S { send(q, 5); print(1); } \
         process C { int i = 0; while (i < 3) { i = i + 1; } int m; recv(q, m); print(m); }",
    );
    let mut tracer = VecTracer::default();
    let r = Machine::new(&s.rp, &s.analyses, None, ExecConfig::default()).run(&mut tracer);
    assert!(r.outcome.is_success(), "{:?}", r.outcome);
    let recv_seq = tracer
        .events
        .iter()
        .find(|e| matches!(e.kind, EventKind::Sync { kind: crate::SyncKind::Recv }))
        .map(|e| e.seq)
        .expect("recv event");
    let sender_print_seq = tracer
        .events
        .iter()
        .find(|e| e.proc == ProcId(0) && matches!(e.kind, EventKind::Print))
        .map(|e| e.seq)
        .expect("sender print");
    assert!(recv_seq < sender_print_seq, "sender resumed before receipt");
    let g = r.pgraph.expect("graph");
    assert_eq!(g.sync_edges().len(), 2, "message + unblock edges");
}

#[test]
fn recv_on_silent_channel_deadlocks() {
    let s = setup("chan q; process C { int x; recv(q, x); print(x); } process P { print(0); }");
    let r = run(&s);
    let Outcome::Deadlock { blocked } = &r.outcome else {
        panic!("expected deadlock, got {:?}", r.outcome)
    };
    assert_eq!(blocked.len(), 1);
    let crate::error::BlockReason::AwaitChannel(c) = blocked[0].1 else {
        panic!("expected AwaitChannel, got {:?}", blocked[0].1)
    };
    assert_eq!(s.rp.chan_name(c), "q");
}

#[test]
fn replay_fidelity_channels() {
    assert_replay_fidelity(
        "chan q; \
         void pump(chan c) { send(c, 11); send(c, 22); } \
         process P { pump(q); print(0); } \
         process C { int a; recv(q, a); int b; recv(q, b); print(a + b); }",
        vec![],
        EBlockStrategy::per_subroutine(),
    );
}

//! Runtime failures — the paper's "externally visible symptoms" (§1)
//! that trigger a debugging session.

use ppd_lang::{ProcId, StmtId};
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// A failure during program execution.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RuntimeError {
    /// Division by zero.
    DivideByZero,
    /// Remainder by zero.
    RemainderByZero,
    /// Array index out of bounds.
    IndexOutOfBounds {
        /// The offending index.
        index: i64,
        /// The array length.
        len: usize,
    },
    /// An `assert` evaluated to zero.
    AssertFailed,
    /// `input()` was called but the input stream was exhausted.
    InputExhausted,
    /// A local variable was read before its declaration executed
    /// (possible only via replay of a mid-body region with an
    /// incomplete prelog — indicates a plan bug).
    UninitializedLocal,
    /// A `chan` parameter held a value that names no channel. The
    /// resolver and `ppd check` rule this out for well-formed programs;
    /// it can only arise from a corrupted binding.
    InvalidChannel(i64),
    /// Replay needed a log entry that was not found where expected.
    LogMismatch(String),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::DivideByZero => write!(f, "division by zero"),
            RuntimeError::RemainderByZero => write!(f, "remainder by zero"),
            RuntimeError::IndexOutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for array of length {len}")
            }
            RuntimeError::AssertFailed => write!(f, "assertion failed"),
            RuntimeError::InputExhausted => write!(f, "input stream exhausted"),
            RuntimeError::UninitializedLocal => write!(f, "read of uninitialized local"),
            RuntimeError::InvalidChannel(v) => {
                write!(f, "value {v} does not name a channel")
            }
            RuntimeError::LogMismatch(m) => write!(f, "log mismatch during replay: {m}"),
        }
    }
}

impl Error for RuntimeError {}

/// Why a process is blocked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BlockReason {
    /// Waiting in a semaphore's queue.
    Semaphore(ppd_lang::SemId),
    /// Waiting for a lock.
    LockWait(ppd_lang::SemId),
    /// Waiting for a message to arrive.
    AwaitMessage,
    /// Waiting for a message on a specific channel.
    AwaitChannel(ppd_lang::ChanId),
    /// A blocking send waiting for its receiver.
    AwaitDelivery,
    /// A rendezvous caller waiting for accept (or the accept body).
    AwaitRendezvous,
    /// An `accept` waiting for a caller.
    AwaitRendezvousCall,
}

impl fmt::Display for BlockReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlockReason::Semaphore(s) => write!(f, "waiting on semaphore {s}"),
            BlockReason::LockWait(s) => write!(f, "waiting on lock {s}"),
            BlockReason::AwaitMessage => write!(f, "waiting for a message"),
            BlockReason::AwaitChannel(c) => write!(f, "waiting on channel {}", c.0),
            BlockReason::AwaitDelivery => write!(f, "blocking send awaiting receiver"),
            BlockReason::AwaitRendezvous => write!(f, "rendezvous call awaiting completion"),
            BlockReason::AwaitRendezvousCall => write!(f, "accept awaiting a caller"),
        }
    }
}

/// How an execution ended.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Outcome {
    /// Every process ran to completion.
    Completed,
    /// A process failed; all processes were halted (§5.7's timely halt).
    Failed {
        /// The failing process.
        proc: ProcId,
        /// The failing statement.
        stmt: StmtId,
        /// What went wrong.
        error: RuntimeError,
    },
    /// No process could make progress.
    Deadlock {
        /// Each blocked process, why it is blocked, and the statement it
        /// is blocked at (for replaying exactly up to the block point).
        blocked: Vec<(ProcId, BlockReason, StmtId)>,
    },
    /// The step budget was exhausted (runaway loop guard).
    StepLimit,
    /// Execution halted at a breakpoint — the paper's "user
    /// intervention" halt (§3.2.2, \[24\]): all processes stop in a
    /// timely fashion and the debugging phase can begin.
    Breakpoint {
        /// The process that hit the breakpoint.
        proc: ProcId,
        /// The statement about to execute.
        stmt: StmtId,
    },
}

impl Outcome {
    /// Whether the execution completed without failure.
    pub fn is_success(&self) -> bool {
        matches!(self, Outcome::Completed)
    }

    /// Whether the program halted due to an error — the condition that
    /// starts the debugging phase.
    pub fn is_failure(&self) -> bool {
        matches!(self, Outcome::Failed { .. })
    }

    /// Whether the execution deadlocked.
    pub fn is_deadlock(&self) -> bool {
        matches!(self, Outcome::Deadlock { .. })
    }

    /// Whether execution stopped at a breakpoint.
    pub fn is_breakpoint(&self) -> bool {
        matches!(self, Outcome::Breakpoint { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(RuntimeError::DivideByZero.to_string(), "division by zero");
        let e = RuntimeError::IndexOutOfBounds { index: -1, len: 4 };
        assert!(e.to_string().contains("-1"));
        assert!(BlockReason::AwaitMessage.to_string().contains("message"));
    }

    #[test]
    fn outcome_predicates() {
        assert!(Outcome::Completed.is_success());
        let f =
            Outcome::Failed { proc: ProcId(0), stmt: StmtId(0), error: RuntimeError::AssertFailed };
        assert!(f.is_failure());
        assert!(!f.is_success());
        assert!(Outcome::Deadlock { blocked: vec![] }.is_deadlock());
    }
}

//! The execution substrate: a deterministic multi-process interpreter
//! simulating the paper's shared-memory multiprocessor.
//!
//! One [`Machine`] plays all three of the paper's runtime roles:
//!
//! - **object code** (§3.2.2/§5.3): normal mode with a logging plan —
//!   executes all processes under a scheduler, emitting prelogs,
//!   postlogs, shared-variable snapshots and external-value records,
//!   and building the parallel dynamic graph;
//! - **uninstrumented program**: normal mode without a plan — the
//!   baseline for the overhead experiment E1;
//! - **emulation package** (§5.3): replay mode — re-executes a single
//!   e-block from its prelog, generating a full trace of every event,
//!   consuming logged external values and substituting nested e-blocks'
//!   postlogs (§5.2).
//!
//! Execution is an explicit task machine: each scheduler step runs one
//! micro-task (evaluate a sub-expression, dispatch a statement, ...), so
//! processes interleave at fine grain and can block anywhere — including
//! inside nested function calls holding locks.

use crate::error::{BlockReason, Outcome, RuntimeError};
use crate::event::{CellRef, EventKind, ReadSource, SyncKind, TraceEvent, Tracer};
use crate::sched::{Scheduler, SchedulerSpec};
use ppd_analysis::{Analyses, EBlockId, EBlockPlan, Region, VarSet, VarSetRepr};
use ppd_graph::parallel::{ParallelGraph, SyncEdgeLabel, SyncNodeId, SyncNodeKind};
use ppd_lang::ast::*;
use ppd_lang::{BodyId, CellMap, ChanId, ChanRef, FuncId, ProcId, ResolvedProgram, Value, VarId};
use ppd_log::{IntervalRef, LogCursor, LogEntry, LogStore};
use std::collections::{HashMap, VecDeque};
use std::time::Instant;

/// Configuration for a normal (execution-phase) run.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Scheduling policy.
    pub scheduler: SchedulerSpec,
    /// Per-process input streams (indexed by `ProcId`; missing = empty).
    pub inputs: Vec<Vec<i64>>,
    /// Step budget (guards runaway loops).
    pub max_steps: u64,
    /// Whether to build the parallel dynamic graph during execution.
    pub build_parallel_graph: bool,
    /// Statements that halt the whole execution when about to run —
    /// the paper's user-intervention halt (\[24\], §3.2.2). Every process
    /// stops, leaving open log intervals for the debugging phase.
    pub breakpoints: Vec<ppd_lang::StmtId>,
    /// Meter the instrumented object code: attribute wall time and
    /// bytes to every prelog/postlog/snapshot write, per e-block (the
    /// §7 overhead meter). Off by default — metering itself reads the
    /// clock twice per log write, which would perturb the very
    /// measurements experiment E1 makes.
    pub meter_logging: bool,
    /// Stream logs to a segmented on-disk store in this directory while
    /// the program runs: every log write is teed into a
    /// [`ppd_log::SegmentWriter`], which seals and flushes full
    /// segments during execution. `None` (the default) keeps logs
    /// purely in memory. Only meaningful when a plan is supplied.
    pub log_dir: Option<std::path::PathBuf>,
    /// Segment capacity in payload bytes for [`log_dir`](Self::log_dir)
    /// streaming; `0` uses [`ppd_log::DEFAULT_SEGMENT_BYTES`].
    pub segment_bytes: usize,
    /// Compress streamed segment payloads block-by-block as they are
    /// sealed ([`ppd_log::SegmentFormat::V2Compressed`]); off writes
    /// raw-escape v2 frames. Only meaningful with
    /// [`log_dir`](Self::log_dir).
    pub compress: bool,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            scheduler: SchedulerSpec::RoundRobin,
            inputs: Vec::new(),
            max_steps: 2_000_000,
            build_parallel_graph: true,
            breakpoints: Vec::new(),
            meter_logging: false,
            log_dir: None,
            segment_bytes: 0,
            compress: false,
        }
    }
}

/// Logging cost attributed to one e-block by the §7 overhead meter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EBlockLogCost {
    /// Prelogs written for this e-block.
    pub prelog_count: u64,
    /// Bytes those prelogs occupy in the log.
    pub prelog_bytes: u64,
    /// Wall time spent capturing and writing them, in nanoseconds.
    pub prelog_ns: u64,
    /// Postlogs written for this e-block.
    pub postlog_count: u64,
    /// Bytes those postlogs occupy in the log.
    pub postlog_bytes: u64,
    /// Wall time spent capturing and writing them, in nanoseconds.
    pub postlog_ns: u64,
}

/// Per-e-block attribution of the instrumented object code's logging
/// cost (prelog vs. postlog bytes and time), filled in when
/// [`ExecConfig::meter_logging`] is set.
#[derive(Debug, Clone, Default)]
pub struct LogMeter {
    /// Cost per e-block.
    pub per_eblock: HashMap<EBlockId, EBlockLogCost>,
    /// Shared-snapshot writes (§5.5), not attributable to one e-block.
    pub snapshot_count: u64,
    /// Bytes those snapshots occupy.
    pub snapshot_bytes: u64,
    /// Wall time spent writing them, in nanoseconds.
    pub snapshot_ns: u64,
}

impl LogMeter {
    /// Total nanoseconds spent in logging instrumentation.
    pub fn total_ns(&self) -> u64 {
        self.snapshot_ns + self.per_eblock.values().map(|c| c.prelog_ns + c.postlog_ns).sum::<u64>()
    }

    /// Total bytes written to the logs.
    pub fn total_bytes(&self) -> u64 {
        self.snapshot_bytes
            + self.per_eblock.values().map(|c| c.prelog_bytes + c.postlog_bytes).sum::<u64>()
    }

    /// Total log records written.
    pub fn total_count(&self) -> u64 {
        self.snapshot_count
            + self.per_eblock.values().map(|c| c.prelog_count + c.postlog_count).sum::<u64>()
    }

    fn note_prelog(&mut self, eb: EBlockId, bytes: u64, ns: u64) {
        let c = self.per_eblock.entry(eb).or_default();
        c.prelog_count += 1;
        c.prelog_bytes += bytes;
        c.prelog_ns += ns;
    }

    fn note_postlog(&mut self, eb: EBlockId, bytes: u64, ns: u64) {
        let c = self.per_eblock.entry(eb).or_default();
        c.postlog_count += 1;
        c.postlog_bytes += bytes;
        c.postlog_ns += ns;
    }

    fn note_snapshot(&mut self, bytes: u64, ns: u64) {
        self.snapshot_count += 1;
        self.snapshot_bytes += bytes;
        self.snapshot_ns += ns;
    }
}

/// Result of a normal run.
#[derive(Debug)]
pub struct ExecResult {
    /// How execution ended.
    pub outcome: Outcome,
    /// `print` output in emission order.
    pub output: Vec<(ProcId, i64)>,
    /// The logs, if a plan was supplied.
    pub logs: Option<LogStore>,
    /// The parallel dynamic graph, if requested.
    pub pgraph: Option<ParallelGraph>,
    /// Scheduler steps consumed.
    pub steps: u64,
    /// Trace events emitted (even if the tracer discarded them).
    pub events: u64,
    /// Per-e-block logging cost, when [`ExecConfig::meter_logging`] was
    /// set (and a plan was supplied).
    pub log_meter: Option<LogMeter>,
    /// What the streaming sink wrote, when [`ExecConfig::log_dir`] was
    /// set and the sink finished cleanly.
    pub sink_report: Option<ppd_log::SinkReport>,
    /// The first error the streaming sink hit, if any: the run itself
    /// still completes (in-memory logs stay authoritative), but the
    /// on-disk store is incomplete and must not be trusted.
    pub sink_error: Option<String>,
}

/// Result of an e-block replay.
#[derive(Debug)]
pub struct ReplayResult {
    /// How the replay ended (`Completed`, or the original `Failed`).
    pub outcome: Outcome,
    /// Output produced during the replayed interval.
    pub output: Vec<(ProcId, i64)>,
    /// Steps consumed.
    pub steps: u64,
    /// Log entries read from the interval's cursor, counting the prelog
    /// restored at construction — the replay's scan cost.
    pub log_entries_consumed: u64,
}

/// How replay treats calls to functions that have their own e-blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NestedCalls {
    /// Substitute the logged postlog (§5.2): the call becomes an
    /// unexpanded sub-graph node.
    Substitute,
    /// Execute the callee inline, producing its full trace too.
    Expand,
}

// ---------------------------------------------------------------------
// Internal structures
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Task<'p> {
    Block { stmts: &'p [Stmt], next: usize },
    Stmt(&'p Stmt),
    Eval(&'p Expr),
    AssignAfter { stmt: &'p Stmt, target: &'p LValue },
    DeclAssign { stmt: &'p Stmt, var: VarId },
    IfAfter { stmt: &'p Stmt },
    WhileLoop { stmt: &'p Stmt },
    WhileAfter { stmt: &'p Stmt },
    ForCheck { stmt: &'p Stmt },
    ForAfter { stmt: &'p Stmt },
    ReturnAfter { stmt: &'p Stmt },
    ReturnVoid { stmt: &'p Stmt },
    PrintAfter { stmt: &'p Stmt },
    AssertAfter { stmt: &'p Stmt },
    ExprStmtAfter,
    BinAfter { op: BinOp },
    ShortCircuit { op: BinOp, rhs: &'p Expr },
    NormBool,
    UnAfter { op: UnOp },
    IndexAfter { expr: &'p Expr, var: VarId },
    ArgMark,
    CallAfter { expr: &'p Expr, func: FuncId, argc: usize },
    SendAfter { stmt: &'p Stmt, to: ProcId, blocking: bool },
    RecvAfter { stmt: &'p Stmt, target: &'p LValue, has_index: bool },
    ChanSendAfter { stmt: &'p Stmt, chan: ChanRef, blocking: bool },
    ChanRecvAfter { stmt: &'p Stmt, chan: ChanRef, target: &'p LValue, has_index: bool },
    RendezvousAfter { stmt: &'p Stmt, callee: ProcId },
    AcceptEnd { caller: ProcId, caller_stmt: Option<ppd_lang::StmtId> },
    CloseLoopInterval { eblock: EBlockId, instance: u64 },
    SemWait { stmt: &'p Stmt, sem: ppd_lang::SemId, lock: bool },
    AcceptWait { stmt: &'p Stmt },
}

#[derive(Debug)]
struct Frame<'p> {
    body: BodyId,
    func: Option<FuncId>,
    locals: HashMap<VarId, Value>,
    tasks: Vec<Task<'p>>,
    values: Vec<i64>,
    pending_reads: Vec<ReadSource>,
    arg_marks: Vec<usize>,
    /// Logging intervals opened in this frame, innermost last.
    open_intervals: Vec<(EBlockId, u64)>,
    /// The statement currently being executed (for event attribution).
    current_stmt: Option<&'p Stmt>,
    /// Sequence number of this frame's CallEnter event.
    call_seq: u64,
}

impl<'p> Frame<'p> {
    fn new(body: BodyId, func: Option<FuncId>, call_seq: u64) -> Frame<'p> {
        Frame {
            body,
            func,
            locals: HashMap::new(),
            tasks: Vec::new(),
            values: Vec::new(),
            pending_reads: Vec::new(),
            arg_marks: Vec::new(),
            open_intervals: Vec::new(),
            current_stmt: None,
            call_seq,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Runnable,
    Blocked(BlockReason),
    Done,
}

#[derive(Debug)]
struct ProcState<'p> {
    id: ProcId,
    frames: Vec<Frame<'p>>,
    status: Status,
}

#[derive(Debug, Clone)]
struct Message {
    value: i64,
    sender: ProcId,
    send_node: Option<SyncNodeId>,
    blocking: bool,
    /// The send statement — the key of the sender's post-unblock
    /// synchronization-unit snapshot.
    send_stmt: ppd_lang::StmtId,
}

#[derive(Debug, Clone)]
struct RdvCall {
    caller: ProcId,
    value: i64,
    call_node: Option<SyncNodeId>,
    call_stmt: ppd_lang::StmtId,
}

#[derive(Debug, Clone)]
struct SemState {
    count: i64,
    /// The V that took the count 0→1, eligible to pair with the next P
    /// (§6.2.1), cleared by any subsequent operation on the semaphore.
    pending_v: Option<(ProcId, SyncNodeId)>,
}

struct ReplayState<'p> {
    cursor: LogCursor<'p>,
    nested: NestedCalls,
    /// "What-if" replay (§5.7): shared snapshots are not re-applied, so
    /// user modifications survive; use with [`NestedCalls::Expand`].
    what_if: bool,
}

/// The interpreter.
pub struct Machine<'p> {
    rp: &'p ResolvedProgram,
    analyses: &'p Analyses,
    plan: Option<&'p EBlockPlan>,
    procs: Vec<ProcState<'p>>,
    shared: Vec<Value>,
    sems: Vec<SemState>,
    mailboxes: Vec<VecDeque<Message>>,
    chan_queues: Vec<VecDeque<Message>>,
    rdv_queues: Vec<VecDeque<RdvCall>>,
    scheduler: Scheduler,
    inputs: Vec<(Vec<i64>, usize)>,
    output: Vec<(ProcId, i64)>,
    pgraph: Option<ParallelGraph>,
    logs: Option<LogStore>,
    eb_counters: Vec<HashMap<EBlockId, u64>>,
    replay: Option<ReplayState<'p>>,
    /// When replaying a loop region, the loop statement itself (so it is
    /// executed rather than substituted).
    replay_root: Option<ppd_lang::StmtId>,
    breakpoints: Vec<ppd_lang::StmtId>,
    hit_breakpoint: Option<(ProcId, ppd_lang::StmtId)>,
    /// Element-granular cell layout: the parallel graph records array
    /// accesses per element so race scans can distinguish `a[0]` from
    /// `a[1]`.
    cells: CellMap,
    clock: u64,
    steps: u64,
    max_steps: u64,
    events: u64,
    log_meter: Option<LogMeter>,
    /// Streaming segment sink (§5.6 out-of-core logs): log writes are
    /// teed here when [`ExecConfig::log_dir`] is set.
    sink: Option<ppd_log::SegmentWriter>,
    sink_error: Option<String>,
}

impl<'p> Machine<'p> {
    /// Builds a machine for a normal execution-phase run. Pass
    /// `plan: Some(..)` to run as instrumented object code that writes
    /// logs; `None` for the uninstrumented baseline.
    pub fn new(
        rp: &'p ResolvedProgram,
        analyses: &'p Analyses,
        plan: Option<&'p EBlockPlan>,
        config: ExecConfig,
    ) -> Machine<'p> {
        let nprocs = rp.procs.len();
        let breakpoints = config.breakpoints.clone();
        let mut inputs: Vec<(Vec<i64>, usize)> =
            config.inputs.into_iter().map(|v| (v, 0)).collect();
        inputs.resize(nprocs, (Vec::new(), 0));
        let mut sink = None;
        let mut sink_error = None;
        if let (Some(dir), true) = (config.log_dir.as_deref(), plan.is_some()) {
            let format = if config.compress {
                ppd_log::SegmentFormat::V2Compressed
            } else {
                ppd_log::SegmentFormat::default()
            };
            match ppd_log::SegmentWriter::create_with(dir, nprocs, config.segment_bytes, format) {
                Ok(w) => sink = Some(w),
                Err(e) => {
                    let err = format!("cannot create log sink: {e}");
                    ppd_obs::flight::note_with("runtime", "sink_error", err.clone());
                    sink_error = Some(err);
                }
            }
        }
        let cells = CellMap::new(rp);
        let mut m = Machine {
            rp,
            analyses,
            plan,
            procs: Vec::new(),
            shared: init_shared(rp),
            sems: init_sems(rp),
            mailboxes: vec![VecDeque::new(); nprocs],
            chan_queues: vec![VecDeque::new(); rp.chans.len()],
            rdv_queues: vec![VecDeque::new(); nprocs],
            scheduler: config.scheduler.build(),
            inputs,
            output: Vec::new(),
            pgraph: config
                .build_parallel_graph
                .then(|| ParallelGraph::with_cells(cells.total(), cells.table())),
            cells,
            logs: plan.map(|_| LogStore::new(nprocs)),
            eb_counters: vec![HashMap::new(); nprocs],
            replay: None,
            replay_root: None,
            breakpoints,
            hit_breakpoint: None,
            clock: 0,
            steps: 0,
            max_steps: config.max_steps,
            events: 0,
            log_meter: (config.meter_logging && plan.is_some()).then(LogMeter::default),
            sink,
            sink_error,
        };
        for i in 0..nprocs {
            let pid = ProcId(i as u32);
            let body = BodyId::Proc(pid);
            let mut frame = Frame::new(body, None, 0);
            let block = rp.body_block(body);
            frame.tasks.push(Task::Block { stmts: &block.stmts, next: 0 });
            m.procs.push(ProcState { id: pid, frames: vec![frame], status: Status::Runnable });
            let t = m.tick();
            if let Some(g) = m.pgraph.as_mut() {
                g.start_process(pid, t);
            }
            m.open_body_interval(pid);
        }
        m
    }

    /// Builds a machine that replays one logged e-block interval (the
    /// emulation package, §5.3).
    ///
    /// # Panics
    ///
    /// Panics if the interval's e-block is not in `plan`.
    pub fn new_replay(
        rp: &'p ResolvedProgram,
        analyses: &'p Analyses,
        plan: &'p EBlockPlan,
        store: &'p LogStore,
        interval: IntervalRef,
        nested: NestedCalls,
        max_steps: u64,
    ) -> Machine<'p> {
        Self::new_replay_until(rp, analyses, plan, store, interval, nested, max_steps, None)
    }

    /// Like [`new_replay`](Self::new_replay) but halts cleanly when
    /// `stop_at` is about to execute — used to replay an interval that
    /// was open at a breakpoint or deadlock, stopping exactly where the
    /// original execution did.
    #[allow(clippy::too_many_arguments)]
    pub fn new_replay_until(
        rp: &'p ResolvedProgram,
        analyses: &'p Analyses,
        plan: &'p EBlockPlan,
        store: &'p LogStore,
        interval: IntervalRef,
        nested: NestedCalls,
        max_steps: u64,
        stop_at: Option<ppd_lang::StmtId>,
    ) -> Machine<'p> {
        let eb = plan.eblock(interval.eblock);
        let body = eb.region.body();
        let func = match body {
            BodyId::Func(f) => Some(f),
            BodyId::Proc(_) => None,
        };
        let stmt_index = build_stmt_index(rp);
        let mut replay_root = None;
        let mut frame = Frame::new(body, func, 0);
        match &eb.region {
            Region::Body(_) => {
                let block = rp.body_block(body);
                frame.tasks.push(Task::Block { stmts: &block.stmts, next: 0 });
            }
            Region::Loop { stmt, .. } => {
                let s = stmt_index[stmt];
                replay_root = Some(*stmt);
                frame.tasks.push(Task::Stmt(s));
            }
            Region::Chunk { body: b, index, stmts } => {
                let max = plan
                    .strategy
                    .split_large
                    .expect("chunk regions only exist under a split strategy");
                let top = &rp.body_block(*b).stmts;
                let start = index * max;
                let slice = &top[start..start + stmts.len()];
                frame.tasks.push(Task::Block { stmts: slice, next: 0 });
            }
        }

        let mut m = Machine {
            rp,
            analyses,
            plan: Some(plan),
            procs: vec![ProcState {
                id: interval.proc,
                frames: vec![frame],
                status: Status::Runnable,
            }],
            shared: init_shared(rp),
            sems: init_sems(rp),
            mailboxes: Vec::new(),
            chan_queues: Vec::new(),
            rdv_queues: Vec::new(),
            scheduler: SchedulerSpec::PreferLowest.build(),
            inputs: Vec::new(),
            output: Vec::new(),
            pgraph: None,
            cells: CellMap::new(rp),
            logs: None,
            eb_counters: Vec::new(),
            replay: Some(ReplayState { cursor: store.cursor_at(interval), nested, what_if: false }),
            replay_root,
            breakpoints: stop_at.into_iter().collect(),
            hit_breakpoint: None,
            clock: 0,
            steps: 0,
            max_steps,
            events: 0,
            log_meter: None,
            sink: None,
            sink_error: None,
        };
        // Restore the prelog: USED-set values at interval start (§5.1).
        if let LogEntry::Prelog { values, .. } = store.prelog_of(interval) {
            for (var, value) in values {
                m.restore_var(*var, value.clone());
            }
        }
        m
    }

    /// Overrides a variable's value before a replay runs — the paper's
    /// §5.7 experiment: "change the values of variables and re-start the
    /// program from the same point to see the effect".
    ///
    /// For shared variables, combine with [`Machine::set_what_if`] so the
    /// logged snapshots do not immediately overwrite the change.
    pub fn override_var(&mut self, var: VarId, value: Value) {
        self.restore_var(var, value);
    }

    /// Enables what-if replay: logged shared snapshots are skipped, so
    /// the replay evolves from the (possibly modified) restored state
    /// instead of faithfully tracking the original execution.
    pub fn set_what_if(&mut self, enabled: bool) {
        if let Some(r) = self.replay.as_mut() {
            r.what_if = enabled;
        }
    }

    fn restore_var(&mut self, var: VarId, value: Value) {
        if self.rp.is_shared(var) {
            self.shared[var.index()] = value;
        } else {
            let frame = self.procs[0].frames.last_mut().expect("replay machine has one frame");
            frame.locals.insert(var, value);
        }
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Writes one log record: teed into the streaming segment sink (if
    /// [`ExecConfig::log_dir`] was set) before landing in the in-memory
    /// store, so both backings see the identical entry sequence. A
    /// sink IO error disables the sink but never interrupts the run.
    fn log_append(&mut self, pid: ProcId, entry: LogEntry) {
        if let Some(sink) = self.sink.as_mut() {
            sink.append(pid, &entry);
        }
        if let Some(logs) = self.logs.as_mut() {
            logs.push(pid, entry);
        }
    }

    fn is_replay(&self) -> bool {
        self.replay.is_some()
    }

    /// Whether the plan uses §7 element-granular array logging.
    fn element_logged(&self) -> bool {
        self.plan.is_some_and(|p| p.strategy.element_logged_arrays)
    }

    // -----------------------------------------------------------------
    // Run loops
    // -----------------------------------------------------------------

    /// Runs a normal execution to completion, failure, deadlock or step
    /// limit.
    pub fn run(mut self, tracer: &mut dyn Tracer) -> ExecResult {
        debug_assert!(!self.is_replay());
        let mut span = ppd_obs::span("runtime", "execute");
        span.arg("logged", self.plan.is_some());
        let outcome = self.run_loop(tracer);
        span.arg("steps", self.steps);
        ppd_obs::flight::note_with(
            "runtime",
            "execute_done",
            format!("outcome={outcome:?} steps={}", self.steps),
        );
        let mut sink_report = None;
        let mut sink_error = self.sink_error;
        if let Some(sink) = self.sink {
            match sink.finish() {
                Ok(report) => sink_report = Some(report),
                Err(e) => sink_error = sink_error.or_else(|| Some(e.to_string())),
            }
        }
        if let Some(err) = &sink_error {
            ppd_obs::flight::note_with("runtime", "sink_error", err.clone());
        }
        ExecResult {
            outcome,
            output: self.output,
            logs: self.logs,
            pgraph: self.pgraph,
            steps: self.steps,
            events: self.events,
            log_meter: self.log_meter,
            sink_report,
            sink_error,
        }
    }

    /// Runs a replay to the end of its region.
    pub fn run_replay(mut self, tracer: &mut dyn Tracer) -> ReplayResult {
        debug_assert!(self.is_replay());
        let _span = ppd_obs::span("runtime", "run_replay");
        let start = self.replay.as_ref().map_or(0, |r| r.cursor.position());
        let outcome = self.run_loop(tracer);
        let end = self.replay.as_ref().map_or(start, |r| r.cursor.position());
        ReplayResult {
            outcome,
            output: self.output,
            steps: self.steps,
            log_entries_consumed: (end - start) as u64 + 1,
        }
    }

    fn run_loop(&mut self, tracer: &mut dyn Tracer) -> Outcome {
        loop {
            if let Some((proc, stmt)) = self.hit_breakpoint.take() {
                return Outcome::Breakpoint { proc, stmt };
            }
            if self.steps >= self.max_steps {
                return Outcome::StepLimit;
            }
            let runnable: Vec<ProcId> =
                self.procs.iter().filter(|p| p.status == Status::Runnable).map(|p| p.id).collect();
            if runnable.is_empty() {
                let blocked: Vec<(ProcId, BlockReason, ppd_lang::StmtId)> = self
                    .procs
                    .iter()
                    .filter_map(|p| match p.status {
                        Status::Blocked(r) => {
                            let stmt = p
                                .frames
                                .last()
                                .and_then(|f| f.current_stmt)
                                .map(|s| s.id)
                                .unwrap_or(ppd_lang::StmtId(0));
                            Some((p.id, r, stmt))
                        }
                        _ => None,
                    })
                    .collect();
                return if blocked.is_empty() {
                    Outcome::Completed
                } else {
                    Outcome::Deadlock { blocked }
                };
            }
            let pid = self.scheduler.pick(&runnable);
            self.steps += 1;
            if let Err(error) = self.step(pid, tracer) {
                let stmt = self
                    .proc(pid)
                    .frames
                    .last()
                    .and_then(|f| f.current_stmt)
                    .map(|s| s.id)
                    .unwrap_or(ppd_lang::StmtId(0));
                // Surface the failure as a trace event carrying the reads
                // accumulated so far — the starting point of flowback.
                self.emit(
                    pid,
                    stmt,
                    EventKind::Failure { message: error.to_string() },
                    None,
                    None,
                    tracer,
                );
                return Outcome::Failed { proc: pid, stmt, error };
            }
        }
    }

    fn proc(&self, pid: ProcId) -> &ProcState<'p> {
        self.procs.iter().find(|p| p.id == pid).expect("process exists")
    }

    fn proc_ix(&self, pid: ProcId) -> usize {
        self.procs.iter().position(|p| p.id == pid).expect("process exists")
    }

    fn frame_mut(&mut self, pid: ProcId) -> &mut Frame<'p> {
        let ix = self.proc_ix(pid);
        self.procs[ix].frames.last_mut().expect("process has a frame")
    }

    // -----------------------------------------------------------------
    // One step
    // -----------------------------------------------------------------

    fn step(&mut self, pid: ProcId, tracer: &mut dyn Tracer) -> Result<(), RuntimeError> {
        let ix = self.proc_ix(pid);
        let Some(task) = self.procs[ix].frames.last_mut().and_then(|f| f.tasks.pop()) else {
            // Frame exhausted: fell off the end of a body.
            return self.pop_frame(pid, None, tracer);
        };
        match task {
            Task::Block { stmts, next } => {
                if next < stmts.len() {
                    let frame = self.frame_mut(pid);
                    frame.tasks.push(Task::Block { stmts, next: next + 1 });
                    frame.tasks.push(Task::Stmt(&stmts[next]));
                }
                Ok(())
            }
            Task::Stmt(stmt) => self.dispatch_stmt(pid, stmt, tracer),
            Task::Eval(expr) => self.dispatch_expr(pid, expr, tracer),
            Task::AssignAfter { stmt, target } => {
                let value = self.pop_value(pid);
                let index = if target.index.is_some() { Some(self.pop_value(pid)) } else { None };
                let var = self.rp.expr_var[&target.id];
                let cell = self.write_var(pid, var, index, value)?;
                self.emit(
                    pid,
                    stmt.id,
                    EventKind::Assign,
                    Some((cell, value)),
                    Some(value),
                    tracer,
                );
                Ok(())
            }
            Task::DeclAssign { stmt, var } => {
                let value = self.pop_value(pid);
                self.frame_mut(pid).locals.insert(var, Value::Int(value));
                self.emit(
                    pid,
                    stmt.id,
                    EventKind::Assign,
                    Some((CellRef::scalar(var), value)),
                    Some(value),
                    tracer,
                );
                Ok(())
            }
            Task::IfAfter { stmt } => {
                let cond = self.pop_value(pid);
                self.emit(
                    pid,
                    stmt.id,
                    EventKind::Predicate { taken: cond != 0 },
                    None,
                    Some((cond != 0) as i64),
                    tracer,
                );
                let StmtKind::If { then_blk, else_blk, .. } = &stmt.kind else {
                    unreachable!("IfAfter on non-if");
                };
                let frame = self.frame_mut(pid);
                if cond != 0 {
                    frame.tasks.push(Task::Block { stmts: &then_blk.stmts, next: 0 });
                } else if let Some(e) = else_blk {
                    frame.tasks.push(Task::Block { stmts: &e.stmts, next: 0 });
                }
                Ok(())
            }
            Task::WhileLoop { stmt } => {
                let StmtKind::While { cond, .. } = &stmt.kind else {
                    unreachable!("WhileLoop on non-while");
                };
                let frame = self.frame_mut(pid);
                frame.tasks.push(Task::WhileAfter { stmt });
                frame.tasks.push(Task::Eval(cond));
                Ok(())
            }
            Task::WhileAfter { stmt } => {
                let cond = self.pop_value(pid);
                self.emit(
                    pid,
                    stmt.id,
                    EventKind::Predicate { taken: cond != 0 },
                    None,
                    Some((cond != 0) as i64),
                    tracer,
                );
                let StmtKind::While { body, .. } = &stmt.kind else {
                    unreachable!("WhileAfter on non-while");
                };
                if cond != 0 {
                    let frame = self.frame_mut(pid);
                    frame.tasks.push(Task::WhileLoop { stmt });
                    frame.tasks.push(Task::Block { stmts: &body.stmts, next: 0 });
                }
                Ok(())
            }
            Task::ForCheck { stmt } => {
                let StmtKind::For { cond, .. } = &stmt.kind else {
                    unreachable!("ForCheck on non-for");
                };
                let frame = self.frame_mut(pid);
                frame.tasks.push(Task::ForAfter { stmt });
                match cond {
                    Some(c) => frame.tasks.push(Task::Eval(c)),
                    None => frame.values.push(1),
                }
                Ok(())
            }
            Task::ForAfter { stmt } => {
                let cond = self.pop_value(pid);
                self.emit(
                    pid,
                    stmt.id,
                    EventKind::Predicate { taken: cond != 0 },
                    None,
                    Some((cond != 0) as i64),
                    tracer,
                );
                let StmtKind::For { step, body, .. } = &stmt.kind else {
                    unreachable!("ForAfter on non-for");
                };
                if cond != 0 {
                    let frame = self.frame_mut(pid);
                    frame.tasks.push(Task::ForCheck { stmt });
                    if let Some(s) = step {
                        frame.tasks.push(Task::Stmt(s));
                    }
                    frame.tasks.push(Task::Block { stmts: &body.stmts, next: 0 });
                }
                Ok(())
            }
            Task::ReturnAfter { stmt } => {
                let value = self.pop_value(pid);
                self.emit(pid, stmt.id, EventKind::Return, None, Some(value), tracer);
                self.pop_frame(pid, Some(value), tracer)
            }
            Task::ReturnVoid { stmt } => {
                self.emit(pid, stmt.id, EventKind::Return, None, None, tracer);
                self.pop_frame(pid, None, tracer)
            }
            Task::PrintAfter { stmt } => {
                let value = self.pop_value(pid);
                self.output.push((pid, value));
                self.emit(pid, stmt.id, EventKind::Print, None, Some(value), tracer);
                Ok(())
            }
            Task::AssertAfter { stmt } => {
                let value = self.pop_value(pid);
                if value != 0 {
                    self.emit(pid, stmt.id, EventKind::AssertPass, None, Some(1), tracer);
                    Ok(())
                } else {
                    // Leave the pending reads for the Failure event the
                    // run loop emits — they are flowback's starting set.
                    Err(RuntimeError::AssertFailed)
                }
            }
            Task::ExprStmtAfter => {
                let _ = self.pop_value(pid);
                // Discard the pending reads too: a bare call's value is
                // unused.
                self.frame_mut(pid).pending_reads.clear();
                Ok(())
            }
            Task::BinAfter { op } => {
                let r = self.pop_value(pid);
                let l = self.pop_value(pid);
                let v = apply_binop(op, l, r)?;
                self.frame_mut(pid).values.push(v);
                Ok(())
            }
            Task::ShortCircuit { op, rhs } => {
                let l = self.pop_value(pid);
                let frame = self.frame_mut(pid);
                match (op, l != 0) {
                    (BinOp::And, false) => frame.values.push(0),
                    (BinOp::Or, true) => frame.values.push(1),
                    _ => {
                        frame.tasks.push(Task::NormBool);
                        frame.tasks.push(Task::Eval(rhs));
                    }
                }
                Ok(())
            }
            Task::NormBool => {
                let v = self.pop_value(pid);
                self.frame_mut(pid).values.push((v != 0) as i64);
                Ok(())
            }
            Task::UnAfter { op } => {
                let v = self.pop_value(pid);
                let r = match op {
                    UnOp::Neg => v.wrapping_neg(),
                    UnOp::Not => (v == 0) as i64,
                };
                self.frame_mut(pid).values.push(r);
                Ok(())
            }
            Task::IndexAfter { expr, var } => {
                let index = self.pop_value(pid);
                let v = self.read_var(pid, var, Some(index))?;
                let _ = expr;
                self.frame_mut(pid).values.push(v);
                Ok(())
            }
            Task::ArgMark => {
                let frame = self.frame_mut(pid);
                let mark = frame.pending_reads.len();
                frame.arg_marks.push(mark);
                Ok(())
            }
            Task::CallAfter { expr, func, argc } => self.do_call(pid, expr, func, argc, tracer),
            Task::SendAfter { stmt, to, blocking } => self.do_send(pid, stmt, to, blocking, tracer),
            Task::RecvAfter { stmt, target, has_index } => {
                self.do_recv(pid, stmt, target, has_index, tracer)
            }
            Task::ChanSendAfter { stmt, chan, blocking } => {
                self.do_chan_send(pid, stmt, chan, blocking, tracer)
            }
            Task::ChanRecvAfter { stmt, chan, target, has_index } => {
                self.do_chan_recv(pid, stmt, chan, target, has_index, tracer)
            }
            Task::RendezvousAfter { stmt, callee } => self.do_rendezvous(pid, stmt, callee, tracer),
            Task::AcceptEnd { caller, caller_stmt } => {
                if !self.is_replay() {
                    let t = self.tick();
                    if let Some(g) = self.pgraph.as_mut() {
                        let e = g.sync_point(pid, SyncNodeKind::AcceptEnd, None, t);
                        let r = g.sync_point(caller, SyncNodeKind::RendezvousReturn, None, t);
                        g.add_sync_edge(e, r, SyncEdgeLabel::RendezvousExit);
                    }
                    let cix = self.proc_ix(caller);
                    self.procs[cix].status = Status::Runnable;
                    // The caller's unit resumes after the rendezvous.
                    if let Some(cs) = caller_stmt {
                        self.unit_snapshot_point(caller, Some(cs))?;
                    }
                }
                Ok(())
            }
            Task::CloseLoopInterval { eblock, instance } => {
                self.close_interval(pid, eblock, instance, None);
                Ok(())
            }
            Task::SemWait { stmt, sem, lock } => self.do_sem_wait(pid, stmt, sem, lock, tracer),
            Task::AcceptWait { stmt } => self.do_accept(pid, stmt, tracer),
        }
    }

    // -----------------------------------------------------------------
    // Statements
    // -----------------------------------------------------------------

    fn dispatch_stmt(
        &mut self,
        pid: ProcId,
        stmt: &'p Stmt,
        tracer: &mut dyn Tracer,
    ) -> Result<(), RuntimeError> {
        self.frame_mut(pid).current_stmt = Some(stmt);

        // User-intervention halt: stop before executing the statement.
        // In replay mode this is the Controller's stop-at marker, used to
        // halt the emulation package exactly where the original run did.
        if self.breakpoints.contains(&stmt.id) {
            self.hit_breakpoint = Some((pid, stmt.id));
            self.frame_mut(pid).tasks.push(Task::Stmt(stmt));
            return Ok(());
        }

        // Chunk boundary (§5.4 splitting): close the previous chunk,
        // open the next.
        if let Some(plan) = self.plan {
            if !self.is_replay() {
                if let Some(eb) = plan.chunk_starting_at(stmt.id) {
                    self.switch_chunk_interval(pid, eb);
                }
            }
        }

        // Synchronization-unit boundaries (§5.5) snapshot shared reads at
        // the *completion* of the boundary operation, never at dispatch:
        // a unit's reads happen after its sync op acquires (or after its
        // callee returns — the callee's own internal synchronization may
        // be what orders them), and other processes may legitimately
        // write shared variables in between. Sync statements snapshot in
        // their completion paths; call-bearing statements snapshot when
        // each call returns (see `pop_frame` and the substitution path).

        match &stmt.kind {
            StmtKind::Decl { size, init, .. } => {
                let var = self.rp.decl_var[&stmt.id];
                match (size, init) {
                    (Some(n), _) => {
                        self.frame_mut(pid).locals.insert(var, Value::Array(vec![0; *n]));
                        self.emit(pid, stmt.id, EventKind::Assign, None, None, tracer);
                        Ok(())
                    }
                    (None, Some(e)) => {
                        let frame = self.frame_mut(pid);
                        frame.tasks.push(Task::DeclAssign { stmt, var });
                        frame.tasks.push(Task::Eval(e));
                        Ok(())
                    }
                    (None, None) => {
                        self.frame_mut(pid).locals.insert(var, Value::Int(0));
                        self.emit(
                            pid,
                            stmt.id,
                            EventKind::Assign,
                            Some((CellRef::scalar(var), 0)),
                            Some(0),
                            tracer,
                        );
                        Ok(())
                    }
                }
            }
            StmtKind::Assign { target, value } => {
                let frame = self.frame_mut(pid);
                frame.tasks.push(Task::AssignAfter { stmt, target });
                frame.tasks.push(Task::Eval(value));
                if let Some(ix) = &target.index {
                    frame.tasks.push(Task::Eval(ix));
                }
                Ok(())
            }
            StmtKind::If { cond, .. } => {
                let frame = self.frame_mut(pid);
                frame.tasks.push(Task::IfAfter { stmt });
                frame.tasks.push(Task::Eval(cond));
                Ok(())
            }
            StmtKind::While { .. } => {
                if self.try_substitute_loop(pid, stmt, tracer)? {
                    return Ok(());
                }
                self.open_loop_interval(pid, stmt);
                self.frame_mut(pid).tasks.push(Task::WhileLoop { stmt });
                Ok(())
            }
            StmtKind::For { init, .. } => {
                if self.try_substitute_loop(pid, stmt, tracer)? {
                    return Ok(());
                }
                self.open_loop_interval(pid, stmt);
                let frame = self.frame_mut(pid);
                frame.tasks.push(Task::ForCheck { stmt });
                if let Some(i) = init {
                    frame.tasks.push(Task::Stmt(i));
                }
                Ok(())
            }
            StmtKind::Return(value) => {
                let frame = self.frame_mut(pid);
                match value {
                    Some(e) => {
                        frame.tasks.push(Task::ReturnAfter { stmt });
                        frame.tasks.push(Task::Eval(e));
                    }
                    None => frame.tasks.push(Task::ReturnVoid { stmt }),
                }
                Ok(())
            }
            StmtKind::ExprStmt(e) => {
                let frame = self.frame_mut(pid);
                frame.tasks.push(Task::ExprStmtAfter);
                frame.tasks.push(Task::Eval(e));
                Ok(())
            }
            StmtKind::Print(e) => {
                let frame = self.frame_mut(pid);
                frame.tasks.push(Task::PrintAfter { stmt });
                frame.tasks.push(Task::Eval(e));
                Ok(())
            }
            StmtKind::Assert(e) => {
                let frame = self.frame_mut(pid);
                frame.tasks.push(Task::AssertAfter { stmt });
                frame.tasks.push(Task::Eval(e));
                Ok(())
            }
            StmtKind::Sync(sync) => self.dispatch_sync(pid, stmt, sync, tracer),
        }
    }

    // -----------------------------------------------------------------
    // Synchronization (§6.2)
    // -----------------------------------------------------------------

    fn dispatch_sync(
        &mut self,
        pid: ProcId,
        stmt: &'p Stmt,
        sync: &'p SyncStmt,
        tracer: &mut dyn Tracer,
    ) -> Result<(), RuntimeError> {
        match sync {
            SyncStmt::P(_) | SyncStmt::Lock(_) => {
                let sem = self.rp.sem_ref[&stmt.id];
                let lock = matches!(sync, SyncStmt::Lock(_));
                if self.is_replay() {
                    let kind = if lock { SyncKind::Lock } else { SyncKind::P };
                    self.emit(pid, stmt.id, EventKind::Sync { kind }, None, None, tracer);
                    return self.consume_snapshot_inner(Some(stmt.id));
                }
                self.frame_mut(pid).tasks.push(Task::SemWait { stmt, sem, lock });
                Ok(())
            }
            SyncStmt::V(_) | SyncStmt::Unlock(_) => {
                let sem = self.rp.sem_ref[&stmt.id];
                let lock = matches!(sync, SyncStmt::Unlock(_));
                let kind = if lock { SyncKind::Unlock } else { SyncKind::V };
                if self.is_replay() {
                    self.emit(pid, stmt.id, EventKind::Sync { kind }, None, None, tracer);
                    return self.consume_snapshot_inner(Some(stmt.id));
                }
                self.do_v(pid, stmt, sem, lock);
                self.emit(pid, stmt.id, EventKind::Sync { kind }, None, None, tracer);
                self.unit_snapshot_point(pid, Some(stmt.id))
            }
            SyncStmt::Send { value, .. } | SyncStmt::ASend { value, .. } => {
                let blocking = matches!(sync, SyncStmt::Send { .. });
                let after = match self.rp.msg_target.get(&stmt.id) {
                    Some(&to) => Task::SendAfter { stmt, to, blocking },
                    None => {
                        let chan = self.rp.send_chan[&stmt.id];
                        Task::ChanSendAfter { stmt, chan, blocking }
                    }
                };
                let frame = self.frame_mut(pid);
                frame.tasks.push(after);
                frame.tasks.push(Task::Eval(value));
                Ok(())
            }
            SyncStmt::Recv { into, .. } => {
                let has_index = into.index.is_some();
                let after = match self.rp.recv_chan.get(&stmt.id) {
                    Some(&chan) => Task::ChanRecvAfter { stmt, chan, target: into, has_index },
                    None => Task::RecvAfter { stmt, target: into, has_index },
                };
                let frame = self.frame_mut(pid);
                frame.tasks.push(after);
                if let Some(ix) = &into.index {
                    frame.tasks.push(Task::Eval(ix));
                }
                Ok(())
            }
            SyncStmt::Rendezvous { value, .. } => {
                let callee = self.rp.msg_target[&stmt.id];
                let frame = self.frame_mut(pid);
                frame.tasks.push(Task::RendezvousAfter { stmt, callee });
                frame.tasks.push(Task::Eval(value));
                Ok(())
            }
            SyncStmt::Accept { .. } => {
                if self.is_replay() {
                    return self.do_accept_replay(pid, stmt, tracer);
                }
                self.frame_mut(pid).tasks.push(Task::AcceptWait { stmt });
                Ok(())
            }
        }
    }

    fn do_sem_wait(
        &mut self,
        pid: ProcId,
        stmt: &'p Stmt,
        sem: ppd_lang::SemId,
        lock: bool,
        tracer: &mut dyn Tracer,
    ) -> Result<(), RuntimeError> {
        let state = &mut self.sems[sem.index()];
        if state.count > 0 {
            state.count -= 1;
            let pending = state.pending_v.take();
            let t = self.tick();
            let kind = if lock { SyncNodeKind::Lock } else { SyncNodeKind::P };
            if let Some(g) = self.pgraph.as_mut() {
                let pnode = g.sync_point(pid, kind, Some(stmt.id), t);
                if let Some((vproc, vnode)) = pending {
                    if vproc != pid {
                        let label =
                            if lock { SyncEdgeLabel::Mutex } else { SyncEdgeLabel::Semaphore };
                        g.add_sync_edge(vnode, pnode, label);
                    }
                }
            }
            let ek = if lock { SyncKind::Lock } else { SyncKind::P };
            self.emit(pid, stmt.id, EventKind::Sync { kind: ek }, None, None, tracer);
            self.unit_snapshot_point(pid, Some(stmt.id))
        } else {
            // Re-arm and block; a future V wakes every waiter to retry.
            self.frame_mut(pid).tasks.push(Task::SemWait { stmt, sem, lock });
            let reason =
                if lock { BlockReason::LockWait(sem) } else { BlockReason::Semaphore(sem) };
            let ix = self.proc_ix(pid);
            self.procs[ix].status = Status::Blocked(reason);
            Ok(())
        }
    }

    fn do_v(&mut self, pid: ProcId, stmt: &'p Stmt, sem: ppd_lang::SemId, lock: bool) {
        let t = self.tick();
        let kind = if lock { SyncNodeKind::Unlock } else { SyncNodeKind::V };
        let vnode = self.pgraph.as_mut().map(|g| g.sync_point(pid, kind, Some(stmt.id), t));
        let state = &mut self.sems[sem.index()];
        state.count += 1;
        state.pending_v = if state.count == 1 { vnode.map(|n| (pid, n)) } else { None };
        // Wake all processes blocked on this semaphore to retry.
        for p in &mut self.procs {
            match p.status {
                Status::Blocked(BlockReason::Semaphore(s))
                | Status::Blocked(BlockReason::LockWait(s))
                    if s == sem =>
                {
                    p.status = Status::Runnable;
                }
                _ => {}
            }
        }
    }

    fn do_send(
        &mut self,
        pid: ProcId,
        stmt: &'p Stmt,
        to: ProcId,
        blocking: bool,
        tracer: &mut dyn Tracer,
    ) -> Result<(), RuntimeError> {
        let value = self.pop_value(pid);
        let kind = if blocking { SyncKind::Send } else { SyncKind::ASend };
        if self.is_replay() {
            self.emit(pid, stmt.id, EventKind::Sync { kind }, None, Some(value), tracer);
            return self.consume_snapshot_inner(Some(stmt.id));
        }
        let t = self.tick();
        let send_node =
            self.pgraph.as_mut().map(|g| g.sync_point(pid, SyncNodeKind::Send, Some(stmt.id), t));
        self.mailboxes[to.index()].push_back(Message {
            value,
            sender: pid,
            send_node,
            blocking,
            send_stmt: stmt.id,
        });
        self.emit(pid, stmt.id, EventKind::Sync { kind }, None, Some(value), tracer);
        if blocking {
            let ix = self.proc_ix(pid);
            self.procs[ix].status = Status::Blocked(BlockReason::AwaitDelivery);
        } else {
            self.unit_snapshot_point(pid, Some(stmt.id))?;
        }
        // Wake the receiver if it is waiting for mail.
        let rix = self.proc_ix(to);
        if self.procs[rix].status == Status::Blocked(BlockReason::AwaitMessage) {
            self.procs[rix].status = Status::Runnable;
        }
        Ok(())
    }

    fn do_recv(
        &mut self,
        pid: ProcId,
        stmt: &'p Stmt,
        target: &'p LValue,
        has_index: bool,
        tracer: &mut dyn Tracer,
    ) -> Result<(), RuntimeError> {
        let value = if self.is_replay() {
            let replay = self.replay.as_mut().expect("replay mode");
            match replay.cursor.seek(|e| matches!(e, LogEntry::Receive { .. })) {
                Some(LogEntry::Receive { value, .. }) => *value,
                _ => {
                    return Err(RuntimeError::LogMismatch(
                        "expected a Receive entry for recv".into(),
                    ))
                }
            }
        } else {
            if self.mailboxes[pid.index()].is_empty() {
                let frame = self.frame_mut(pid);
                frame.tasks.push(Task::RecvAfter { stmt, target, has_index });
                let ix = self.proc_ix(pid);
                self.procs[ix].status = Status::Blocked(BlockReason::AwaitMessage);
                return Ok(());
            }
            let msg = self.mailboxes[pid.index()].pop_front().expect("checked");
            let t = self.tick();
            if let Some(g) = self.pgraph.as_mut() {
                let recv_node = g.sync_point(pid, SyncNodeKind::Recv, Some(stmt.id), t);
                if let Some(sn) = msg.send_node {
                    g.add_sync_edge(sn, recv_node, SyncEdgeLabel::Message);
                }
                if msg.blocking {
                    let un = g.sync_point(msg.sender, SyncNodeKind::Unblock, None, t);
                    g.add_sync_edge(recv_node, un, SyncEdgeLabel::SendUnblock);
                }
            }
            if msg.blocking {
                let six = self.proc_ix(msg.sender);
                self.procs[six].status = Status::Runnable;
                // The sender's unit resumes now; snapshot at unblock.
                self.unit_snapshot_point(msg.sender, Some(msg.send_stmt))?;
            }
            if self.logs.is_some() {
                let t2 = self.clock;
                self.log_append(pid, LogEntry::Receive { value: msg.value, time: t2 });
            }
            msg.value
        };
        let index = if has_index { Some(self.pop_value(pid)) } else { None };
        let var = self.rp.expr_var[&target.id];
        let cell = self.write_var(pid, var, index, value)?;
        self.frame_mut(pid).pending_reads.push(ReadSource::External);
        self.emit(
            pid,
            stmt.id,
            EventKind::Sync { kind: SyncKind::Recv },
            Some((cell, value)),
            Some(value),
            tracer,
        );
        if self.is_replay() {
            self.consume_snapshot_inner(Some(stmt.id))
        } else {
            self.unit_snapshot_point(pid, Some(stmt.id))
        }
    }

    /// The channel a reference names right now: direct for a channel
    /// literal, the current value of the binding for a `chan` parameter.
    fn resolve_chan(&self, pid: ProcId, cref: ChanRef) -> Result<ChanId, RuntimeError> {
        let raw = match cref {
            ChanRef::Static(c) => return Ok(c),
            ChanRef::Var(v) => {
                let ix = self.proc_ix(pid);
                let frame = self.procs[ix].frames.last().expect("frame");
                match frame.locals.get(&v) {
                    Some(Value::Int(n)) => *n,
                    Some(Value::Array(_)) => i64::MIN,
                    None => return Err(RuntimeError::UninitializedLocal),
                }
            }
        };
        if raw < 0 || raw as usize >= self.rp.chans.len() {
            return Err(RuntimeError::InvalidChannel(raw));
        }
        Ok(ChanId(raw as u32))
    }

    fn do_chan_send(
        &mut self,
        pid: ProcId,
        stmt: &'p Stmt,
        cref: ChanRef,
        blocking: bool,
        tracer: &mut dyn Tracer,
    ) -> Result<(), RuntimeError> {
        let value = self.pop_value(pid);
        let kind = if blocking { SyncKind::Send } else { SyncKind::ASend };
        if self.is_replay() {
            self.emit(pid, stmt.id, EventKind::Sync { kind }, None, Some(value), tracer);
            return self.consume_snapshot_inner(Some(stmt.id));
        }
        let chan = self.resolve_chan(pid, cref)?;
        let t = self.tick();
        let send_node =
            self.pgraph.as_mut().map(|g| g.sync_point(pid, SyncNodeKind::Send, Some(stmt.id), t));
        self.chan_queues[chan.index()].push_back(Message {
            value,
            sender: pid,
            send_node,
            blocking,
            send_stmt: stmt.id,
        });
        self.emit(pid, stmt.id, EventKind::Sync { kind }, None, Some(value), tracer);
        if blocking {
            let ix = self.proc_ix(pid);
            self.procs[ix].status = Status::Blocked(BlockReason::AwaitDelivery);
        } else {
            self.unit_snapshot_point(pid, Some(stmt.id))?;
        }
        // Wake every process waiting on this channel to retry its recv.
        for p in &mut self.procs {
            if p.status == Status::Blocked(BlockReason::AwaitChannel(chan)) {
                p.status = Status::Runnable;
            }
        }
        Ok(())
    }

    fn do_chan_recv(
        &mut self,
        pid: ProcId,
        stmt: &'p Stmt,
        cref: ChanRef,
        target: &'p LValue,
        has_index: bool,
        tracer: &mut dyn Tracer,
    ) -> Result<(), RuntimeError> {
        let value = if self.is_replay() {
            let replay = self.replay.as_mut().expect("replay mode");
            match replay.cursor.seek(|e| matches!(e, LogEntry::Receive { .. })) {
                Some(LogEntry::Receive { value, .. }) => *value,
                _ => {
                    return Err(RuntimeError::LogMismatch(
                        "expected a Receive entry for channel recv".into(),
                    ))
                }
            }
        } else {
            let chan = self.resolve_chan(pid, cref)?;
            if self.chan_queues[chan.index()].is_empty() {
                let frame = self.frame_mut(pid);
                frame.tasks.push(Task::ChanRecvAfter { stmt, chan: cref, target, has_index });
                let ix = self.proc_ix(pid);
                self.procs[ix].status = Status::Blocked(BlockReason::AwaitChannel(chan));
                return Ok(());
            }
            let msg = self.chan_queues[chan.index()].pop_front().expect("checked");
            let t = self.tick();
            if let Some(g) = self.pgraph.as_mut() {
                let recv_node = g.sync_point(pid, SyncNodeKind::Recv, Some(stmt.id), t);
                if let Some(sn) = msg.send_node {
                    g.add_sync_edge(sn, recv_node, SyncEdgeLabel::Message);
                }
                if msg.blocking {
                    let un = g.sync_point(msg.sender, SyncNodeKind::Unblock, None, t);
                    g.add_sync_edge(recv_node, un, SyncEdgeLabel::SendUnblock);
                }
            }
            if msg.blocking {
                let six = self.proc_ix(msg.sender);
                self.procs[six].status = Status::Runnable;
                // The sender's unit resumes now; snapshot at unblock.
                self.unit_snapshot_point(msg.sender, Some(msg.send_stmt))?;
            }
            if self.logs.is_some() {
                let t2 = self.clock;
                self.log_append(pid, LogEntry::Receive { value: msg.value, time: t2 });
            }
            msg.value
        };
        let index = if has_index { Some(self.pop_value(pid)) } else { None };
        let var = self.rp.expr_var[&target.id];
        let cell = self.write_var(pid, var, index, value)?;
        self.frame_mut(pid).pending_reads.push(ReadSource::External);
        self.emit(
            pid,
            stmt.id,
            EventKind::Sync { kind: SyncKind::Recv },
            Some((cell, value)),
            Some(value),
            tracer,
        );
        if self.is_replay() {
            self.consume_snapshot_inner(Some(stmt.id))
        } else {
            self.unit_snapshot_point(pid, Some(stmt.id))
        }
    }

    fn do_rendezvous(
        &mut self,
        pid: ProcId,
        stmt: &'p Stmt,
        callee: ProcId,
        tracer: &mut dyn Tracer,
    ) -> Result<(), RuntimeError> {
        let value = self.pop_value(pid);
        if self.is_replay() {
            self.emit(
                pid,
                stmt.id,
                EventKind::Sync { kind: SyncKind::Rendezvous },
                None,
                Some(value),
                tracer,
            );
            return self.consume_snapshot_inner(Some(stmt.id));
        }
        let t = self.tick();
        let call_node = self
            .pgraph
            .as_mut()
            .map(|g| g.sync_point(pid, SyncNodeKind::RendezvousCall, Some(stmt.id), t));
        self.rdv_queues[callee.index()].push_back(RdvCall {
            caller: pid,
            value,
            call_node,
            call_stmt: stmt.id,
        });
        self.emit(
            pid,
            stmt.id,
            EventKind::Sync { kind: SyncKind::Rendezvous },
            None,
            Some(value),
            tracer,
        );
        let ix = self.proc_ix(pid);
        self.procs[ix].status = Status::Blocked(BlockReason::AwaitRendezvous);
        let cix = self.proc_ix(callee);
        if self.procs[cix].status == Status::Blocked(BlockReason::AwaitRendezvousCall) {
            self.procs[cix].status = Status::Runnable;
        }
        Ok(())
    }

    fn do_accept(
        &mut self,
        pid: ProcId,
        stmt: &'p Stmt,
        tracer: &mut dyn Tracer,
    ) -> Result<(), RuntimeError> {
        let StmtKind::Sync(SyncStmt::Accept { body, param_expr, .. }) = &stmt.kind else {
            unreachable!("AcceptWait on non-accept");
        };
        if self.rdv_queues[pid.index()].is_empty() {
            self.frame_mut(pid).tasks.push(Task::AcceptWait { stmt });
            let ix = self.proc_ix(pid);
            self.procs[ix].status = Status::Blocked(BlockReason::AwaitRendezvousCall);
            return Ok(());
        }
        let call = self.rdv_queues[pid.index()].pop_front().expect("checked");
        let t = self.tick();
        if let Some(g) = self.pgraph.as_mut() {
            let accept_node = g.sync_point(pid, SyncNodeKind::Accept, Some(stmt.id), t);
            if let Some(cn) = call.call_node {
                g.add_sync_edge(cn, accept_node, SyncEdgeLabel::RendezvousEntry);
            }
        }
        if self.logs.is_some() {
            let t2 = self.clock;
            self.log_append(pid, LogEntry::Receive { value: call.value, time: t2 });
        }
        let var = self.rp.expr_var[param_expr];
        self.frame_mut(pid).locals.insert(var, Value::Int(call.value));
        self.frame_mut(pid).pending_reads.push(ReadSource::External);
        self.emit(
            pid,
            stmt.id,
            EventKind::Sync { kind: SyncKind::Accept },
            Some((CellRef::scalar(var), call.value)),
            Some(call.value),
            tracer,
        );
        self.unit_snapshot_point(pid, Some(stmt.id))?;
        let frame = self.frame_mut(pid);
        frame
            .tasks
            .push(Task::AcceptEnd { caller: call.caller, caller_stmt: Some(call.call_stmt) });
        frame.tasks.push(Task::Block { stmts: &body.stmts, next: 0 });
        Ok(())
    }

    fn do_accept_replay(
        &mut self,
        pid: ProcId,
        stmt: &'p Stmt,
        tracer: &mut dyn Tracer,
    ) -> Result<(), RuntimeError> {
        let StmtKind::Sync(SyncStmt::Accept { body, param_expr, .. }) = &stmt.kind else {
            unreachable!("accept replay on non-accept");
        };
        let replay = self.replay.as_mut().expect("replay mode");
        let value = match replay.cursor.seek(|e| matches!(e, LogEntry::Receive { .. })) {
            Some(LogEntry::Receive { value, .. }) => *value,
            _ => {
                return Err(RuntimeError::LogMismatch("expected a Receive entry for accept".into()))
            }
        };
        let var = self.rp.expr_var[param_expr];
        self.frame_mut(pid).locals.insert(var, Value::Int(value));
        self.frame_mut(pid).pending_reads.push(ReadSource::External);
        self.emit(
            pid,
            stmt.id,
            EventKind::Sync { kind: SyncKind::Accept },
            Some((CellRef::scalar(var), value)),
            Some(value),
            tracer,
        );
        self.consume_snapshot_inner(Some(stmt.id))?;
        let frame = self.frame_mut(pid);
        frame.tasks.push(Task::AcceptEnd { caller: pid, caller_stmt: None });
        frame.tasks.push(Task::Block { stmts: &body.stmts, next: 0 });
        Ok(())
    }

    // -----------------------------------------------------------------
    // Expressions
    // -----------------------------------------------------------------

    fn dispatch_expr(
        &mut self,
        pid: ProcId,
        expr: &'p Expr,
        _tracer: &mut dyn Tracer,
    ) -> Result<(), RuntimeError> {
        match &expr.kind {
            ExprKind::IntLit(n) => {
                self.frame_mut(pid).values.push(*n);
                Ok(())
            }
            ExprKind::BoolLit(b) => {
                self.frame_mut(pid).values.push(*b as i64);
                Ok(())
            }
            ExprKind::Var(_) => {
                // A channel name in argument position evaluates to the
                // channel's id — how `chan` parameters are passed.
                if let Some(&c) = self.rp.expr_chan.get(&expr.id) {
                    self.frame_mut(pid).values.push(c.index() as i64);
                    return Ok(());
                }
                let var = self.rp.expr_var[&expr.id];
                let v = self.read_var(pid, var, None)?;
                self.frame_mut(pid).values.push(v);
                Ok(())
            }
            ExprKind::Index(_, ix) => {
                let var = self.rp.expr_var[&expr.id];
                let frame = self.frame_mut(pid);
                frame.tasks.push(Task::IndexAfter { expr, var });
                frame.tasks.push(Task::Eval(ix));
                Ok(())
            }
            ExprKind::Unary(op, e) => {
                let frame = self.frame_mut(pid);
                frame.tasks.push(Task::UnAfter { op: *op });
                frame.tasks.push(Task::Eval(e));
                Ok(())
            }
            ExprKind::Binary(op, l, r) => {
                let frame = self.frame_mut(pid);
                match op {
                    BinOp::And | BinOp::Or => {
                        frame.tasks.push(Task::ShortCircuit { op: *op, rhs: r });
                        frame.tasks.push(Task::Eval(l));
                    }
                    _ => {
                        frame.tasks.push(Task::BinAfter { op: *op });
                        frame.tasks.push(Task::Eval(r));
                        frame.tasks.push(Task::Eval(l));
                    }
                }
                Ok(())
            }
            ExprKind::Call(_, args) => {
                let func = self.rp.call_target[&expr.id];
                let frame = self.frame_mut(pid);
                frame.tasks.push(Task::CallAfter { expr, func, argc: args.len() });
                for arg in args.iter().rev() {
                    frame.tasks.push(Task::ArgMark);
                    frame.tasks.push(Task::Eval(arg));
                }
                frame.tasks.push(Task::ArgMark); // base mark before arg 1
                Ok(())
            }
            ExprKind::Input => {
                let value = if self.is_replay() {
                    let replay = self.replay.as_mut().expect("replay mode");
                    match replay.cursor.seek(|e| matches!(e, LogEntry::Input { .. })) {
                        Some(LogEntry::Input { value, .. }) => *value,
                        _ => {
                            return Err(RuntimeError::LogMismatch(
                                "expected an Input entry for input()".into(),
                            ))
                        }
                    }
                } else {
                    let (stream, pos) = &mut self.inputs[pid.index()];
                    let Some(&v) = stream.get(*pos) else {
                        return Err(RuntimeError::InputExhausted);
                    };
                    *pos += 1;
                    if self.logs.is_some() {
                        let t = self.clock;
                        self.log_append(pid, LogEntry::Input { value: v, time: t });
                    }
                    v
                };
                let frame = self.frame_mut(pid);
                frame.pending_reads.push(ReadSource::External);
                frame.values.push(value);
                Ok(())
            }
        }
    }

    // -----------------------------------------------------------------
    // Calls and frames
    // -----------------------------------------------------------------

    fn do_call(
        &mut self,
        pid: ProcId,
        expr: &'p Expr,
        func: FuncId,
        argc: usize,
        tracer: &mut dyn Tracer,
    ) -> Result<(), RuntimeError> {
        let stmt_id = self
            .proc(pid)
            .frames
            .last()
            .and_then(|f| f.current_stmt)
            .map(|s| s.id)
            .unwrap_or(ppd_lang::StmtId(0));
        let _ = expr;

        // Gather argument values and per-argument reads.
        let (args_with_reads, call_reads) = {
            let frame = self.frame_mut(pid);
            let vals_start = frame.values.len() - argc;
            let arg_values: Vec<i64> = frame.values.split_off(vals_start);
            let marks_start = frame.arg_marks.len() - (argc + 1);
            let marks: Vec<usize> = frame.arg_marks.split_off(marks_start);
            let base = marks[0];
            let mut args_with_reads = Vec::with_capacity(argc);
            for (i, &v) in arg_values.iter().enumerate() {
                let lo = marks[i].min(frame.pending_reads.len());
                let hi = marks[i + 1].min(frame.pending_reads.len());
                args_with_reads.push((v, frame.pending_reads[lo..hi].to_vec()));
            }
            // The args' reads are consumed by the CallEnter event; reads
            // before the base mark stay pending for the enclosing event.
            let call_reads: Vec<ReadSource> =
                frame.pending_reads.split_off(base.min(frame.pending_reads.len()));
            (args_with_reads, call_reads)
        };

        // Substitution (§5.2): during replay, a callee with its own
        // e-block is not re-executed; its logged postlog is applied.
        let substitute = self.is_replay()
            && self.replay.as_ref().is_some_and(|r| r.nested == NestedCalls::Substitute)
            && self.plan.is_some_and(|p| p.body_eblock(BodyId::Func(func)).is_some());
        if substitute {
            let plan = self.plan.expect("checked");
            let eb = plan.body_eblock(BodyId::Func(func)).expect("checked");
            let replay = self.replay.as_mut().expect("replay mode");
            let Some(LogEntry::Postlog { values, ret, .. }) =
                replay.cursor.skip_nested_interval(eb)
            else {
                return Err(RuntimeError::LogMismatch(format!(
                    "missing nested interval for {}",
                    self.rp.func_name(func)
                )));
            };
            let values = values.clone();
            let ret_val = ret.as_ref().and_then(Value::as_int).unwrap_or(0);
            for (var, value) in values {
                if self.rp.is_shared(var) {
                    self.shared[var.index()] = value;
                }
            }
            let call_seq = self.emit_with(
                pid,
                stmt_id,
                EventKind::CallEnter { func, args: args_with_reads, substituted: true },
                None,
                None,
                call_reads,
                tracer,
            );
            self.emit_with(
                pid,
                stmt_id,
                EventKind::CallExit { func, ret: Some(ret_val) },
                None,
                Some(ret_val),
                Vec::new(),
                tracer,
            );
            let frame = self.frame_mut(pid);
            frame.values.push(ret_val);
            frame.pending_reads.push(ReadSource::CallResult { call_seq });
            self.boundary_snapshot_at_current_stmt(pid)?;
            return Ok(());
        }

        // Inline execution (normal mode, merged leaves, or expansion).
        let call_seq = self.emit_with(
            pid,
            stmt_id,
            EventKind::CallEnter { func, args: args_with_reads.clone(), substituted: false },
            None,
            None,
            call_reads,
            tracer,
        );
        let body = BodyId::Func(func);
        let mut frame = Frame::new(body, Some(func), call_seq);
        let params = self.rp.funcs[func.index()].params.clone();
        for (param, (v, _)) in params.iter().zip(&args_with_reads) {
            frame.locals.insert(*param, Value::Int(*v));
        }
        let block = &self.rp.func_decl(func).body;
        frame.tasks.push(Task::Block { stmts: &block.stmts, next: 0 });
        let ix = self.proc_ix(pid);
        self.procs[ix].frames.push(frame);
        self.open_body_interval(pid);
        Ok(())
    }

    fn pop_frame(
        &mut self,
        pid: ProcId,
        ret: Option<i64>,
        tracer: &mut dyn Tracer,
    ) -> Result<(), RuntimeError> {
        // Close any intervals still open in this frame, innermost first.
        let open: Vec<(EBlockId, u64)> = {
            let frame = self.frame_mut(pid);
            frame.open_intervals.drain(..).rev().collect()
        };
        for (eb, inst) in open {
            self.close_interval(pid, eb, inst, ret);
        }

        let ix = self.proc_ix(pid);
        let frame = self.procs[ix].frames.pop().expect("frame to pop");
        if self.procs[ix].frames.is_empty() {
            self.procs[ix].status = Status::Done;
            if !self.is_replay() {
                let t = self.tick();
                if let Some(g) = self.pgraph.as_mut() {
                    g.end_process(pid, t);
                }
            }
            return Ok(());
        }
        // Function return into the caller.
        let func = frame.func.expect("nested frames are function frames");
        let stmt_id = self.procs[ix]
            .frames
            .last()
            .and_then(|f| f.current_stmt)
            .map(|s| s.id)
            .unwrap_or(ppd_lang::StmtId(0));
        let ret_value =
            if self.rp.funcs[func.index()].returns_value { Some(ret.unwrap_or(0)) } else { ret };
        self.emit_with(
            pid,
            stmt_id,
            EventKind::CallExit { func, ret: ret_value },
            None,
            ret_value,
            Vec::new(),
            tracer,
        );
        let caller = self.frame_mut(pid);
        caller.values.push(ret.unwrap_or(0));
        caller.pending_reads.push(ReadSource::CallResult { call_seq: frame.call_seq });
        // The calling statement is a synchronization-unit boundary; its
        // unit's reads resume now that the callee (and whatever internal
        // synchronization it performed) has completed.
        self.boundary_snapshot_at_current_stmt(pid)
    }

    /// Emits (normal mode) or consumes (replay) the unit snapshot keyed
    /// by the current statement, if that statement is a unit boundary.
    fn boundary_snapshot_at_current_stmt(&mut self, pid: ProcId) -> Result<(), RuntimeError> {
        let ix = self.proc_ix(pid);
        let frame = self.procs[ix].frames.last().expect("frame");
        let (body, stmt) = (frame.body, frame.current_stmt.map(|s| s.id));
        let Some(stmt) = stmt else { return Ok(()) };
        if self.analyses.sync_units.of(body).is_boundary(stmt) {
            self.unit_snapshot_point(pid, Some(stmt))
        } else {
            Ok(())
        }
    }

    // -----------------------------------------------------------------
    // Memory
    // -----------------------------------------------------------------

    fn read_var(
        &mut self,
        pid: ProcId,
        var: VarId,
        index: Option<i64>,
    ) -> Result<i64, RuntimeError> {
        let shared = self.rp.is_shared(var);
        // §7 element logging: array reads are served from the log during
        // replay (and recorded during execution) instead of array memory,
        // which is then excluded from prelogs/postlogs/snapshots.
        let element_logged = index.is_some() && self.element_logged();
        let what_if = self.replay.as_ref().is_some_and(|r| r.what_if);
        let value = if element_logged && self.is_replay() && !what_if {
            let replay = self.replay.as_mut().expect("replay mode");
            match replay.cursor.seek(|e| matches!(e, LogEntry::ElementRead { .. })) {
                Some(LogEntry::ElementRead { value, .. }) => *value,
                _ => {
                    return Err(RuntimeError::LogMismatch(
                        "expected an ElementRead entry for array read".into(),
                    ))
                }
            }
        } else if shared {
            read_value(&self.shared[var.index()], index)?
        } else {
            let ix = self.proc_ix(pid);
            let frame = self.procs[ix].frames.last().expect("frame");
            let Some(v) = frame.locals.get(&var) else {
                return Err(RuntimeError::UninitializedLocal);
            };
            read_value(v, index)?
        };
        if element_logged && !self.is_replay() && self.logs.is_some() {
            let t = self.clock;
            self.log_append(pid, LogEntry::ElementRead { value, time: t });
        }
        let cell = CellRef { var, index: index.map(|i| i as usize) };
        self.frame_mut(pid).pending_reads.push(ReadSource::Cell(cell));
        if shared && !self.is_replay() {
            let c = self.cells.cell(var, cell.index);
            if let Some(g) = self.pgraph.as_mut() {
                g.record_read(pid, c);
            }
        }
        Ok(value)
    }

    fn write_var(
        &mut self,
        pid: ProcId,
        var: VarId,
        index: Option<i64>,
        value: i64,
    ) -> Result<CellRef, RuntimeError> {
        let shared = self.rp.is_shared(var);
        if shared {
            write_value(&mut self.shared[var.index()], index, value)?;
            if !self.is_replay() {
                let c = self.cells.cell(var, index.map(|i| i as usize));
                if let Some(g) = self.pgraph.as_mut() {
                    g.record_write(pid, c);
                }
            }
        } else {
            let ix = self.proc_ix(pid);
            let frame = self.procs[ix].frames.last_mut().expect("frame");
            match index {
                None => {
                    frame.locals.insert(var, Value::Int(value));
                }
                Some(_) => {
                    let Some(v) = frame.locals.get_mut(&var) else {
                        return Err(RuntimeError::UninitializedLocal);
                    };
                    write_value(v, index, value)?;
                }
            }
        }
        Ok(CellRef { var, index: index.map(|i| i as usize) })
    }

    fn pop_value(&mut self, pid: ProcId) -> i64 {
        self.frame_mut(pid).values.pop().expect("operand stack underflow is a machine bug")
    }

    // -----------------------------------------------------------------
    // Events
    // -----------------------------------------------------------------

    fn emit(
        &mut self,
        pid: ProcId,
        stmt: ppd_lang::StmtId,
        kind: EventKind,
        write: Option<(CellRef, i64)>,
        value: Option<i64>,
        tracer: &mut dyn Tracer,
    ) -> u64 {
        let reads = std::mem::take(&mut self.frame_mut(pid).pending_reads);
        self.emit_with(pid, stmt, kind, write, value, reads, tracer)
    }

    #[allow(clippy::too_many_arguments)]
    fn emit_with(
        &mut self,
        pid: ProcId,
        stmt: ppd_lang::StmtId,
        kind: EventKind,
        write: Option<(CellRef, i64)>,
        value: Option<i64>,
        reads: Vec<ReadSource>,
        tracer: &mut dyn Tracer,
    ) -> u64 {
        let seq = self.tick();
        // Internal edges of the parallel dynamic graph count only
        // non-synchronization events (§6.1).
        let counts_as_internal = matches!(
            kind,
            EventKind::Assign
                | EventKind::Predicate { .. }
                | EventKind::Return
                | EventKind::Print
                | EventKind::AssertPass
                | EventKind::AssertFail
        );
        let event = TraceEvent { proc: pid, stmt, seq, kind, reads, write, value };
        tracer.event(&event);
        self.events += 1;
        if counts_as_internal && !self.is_replay() {
            if let Some(g) = self.pgraph.as_mut() {
                g.record_event(pid);
            }
        }
        seq
    }

    // -----------------------------------------------------------------
    // Logging (§5.1, §5.5) and replay consumption
    // -----------------------------------------------------------------

    /// Applies the element-logging exclusion: arrays drop out of unit
    /// snapshot sets when their reads are logged individually.
    fn filter_snapshot_set(&self, set: &VarSet) -> VarSet {
        if !self.element_logged() {
            return set.clone();
        }
        VarSet::from_iter(
            self.rp.var_count(),
            set.to_vec().into_iter().filter(|v| self.rp.vars[v.index()].size.is_none()),
        )
    }

    fn capture_set(&self, pid: ProcId, set: &VarSet) -> Vec<(VarId, Value)> {
        let ix = self.proc_ix(pid);
        let frame = self.procs[ix].frames.last().expect("frame");
        let mut out = Vec::new();
        for var in set.to_vec() {
            if self.rp.is_shared(var) {
                out.push((var, self.shared[var.index()].clone()));
            } else if let Some(v) = frame.locals.get(&var) {
                out.push((var, v.clone()));
            }
        }
        out
    }

    fn next_instance(&mut self, pid: ProcId, eb: EBlockId) -> u64 {
        let counter = self.eb_counters[pid.index()].entry(eb).or_insert(0);
        let inst = *counter;
        *counter += 1;
        inst
    }

    fn open_body_interval(&mut self, pid: ProcId) {
        if self.is_replay() {
            return;
        }
        let Some(plan) = self.plan else { return };
        let body = {
            let ix = self.proc_ix(pid);
            self.procs[ix].frames.last().expect("frame").body
        };
        let Some(eb) = plan.body_eblock(body) else { return };
        let _span = ppd_obs::span("runtime", "prelog");
        let meter_start = self.log_meter.as_ref().map(|_| Instant::now());
        let used = plan.eblock(eb).used.clone();
        let values = self.capture_set(pid, &used);
        let instance = self.next_instance(pid, eb);
        let t = self.tick();
        let entry = LogEntry::Prelog { eblock: eb, instance, values, time: t };
        let bytes = self.log_meter.as_ref().map(|_| entry.size_bytes() as u64);
        self.log_append(pid, entry);
        if let (Some(start), Some(bytes)) = (meter_start, bytes) {
            let ns = start.elapsed().as_nanos() as u64;
            if let Some(meter) = self.log_meter.as_mut() {
                meter.note_prelog(eb, bytes, ns);
            }
        }
        self.frame_mut(pid).open_intervals.push((eb, instance));
    }

    fn open_loop_interval(&mut self, pid: ProcId, stmt: &'p Stmt) {
        let Some(plan) = self.plan else { return };
        let Some(eb) = plan.loop_eblock(stmt.id) else { return };
        if self.is_replay() {
            return; // handled by substitution in dispatch_stmt
        }
        let _span = ppd_obs::span("runtime", "prelog");
        let meter_start = self.log_meter.as_ref().map(|_| Instant::now());
        let used = plan.eblock(eb).used.clone();
        let values = self.capture_set(pid, &used);
        let instance = self.next_instance(pid, eb);
        let t = self.tick();
        let entry = LogEntry::Prelog { eblock: eb, instance, values, time: t };
        let bytes = self.log_meter.as_ref().map(|_| entry.size_bytes() as u64);
        self.log_append(pid, entry);
        if let (Some(start), Some(bytes)) = (meter_start, bytes) {
            let ns = start.elapsed().as_nanos() as u64;
            if let Some(meter) = self.log_meter.as_mut() {
                meter.note_prelog(eb, bytes, ns);
            }
        }
        let frame = self.frame_mut(pid);
        frame.open_intervals.push((eb, instance));
        frame.tasks.push(Task::CloseLoopInterval { eblock: eb, instance });
    }

    fn switch_chunk_interval(&mut self, pid: ProcId, eb: EBlockId) {
        // Close the previous chunk if one is open.
        let prev = self.frame_mut(pid).open_intervals.last().copied();
        if let Some((prev_eb, prev_inst)) = prev {
            if let Some(plan) = self.plan {
                if matches!(plan.eblock(prev_eb).region, Region::Chunk { .. }) {
                    self.close_interval(pid, prev_eb, prev_inst, None);
                }
            }
        }
        let Some(plan) = self.plan else { return };
        let _span = ppd_obs::span("runtime", "prelog");
        let meter_start = self.log_meter.as_ref().map(|_| Instant::now());
        let used = plan.eblock(eb).used.clone();
        let values = self.capture_set(pid, &used);
        let instance = self.next_instance(pid, eb);
        let t = self.tick();
        let entry = LogEntry::Prelog { eblock: eb, instance, values, time: t };
        let bytes = self.log_meter.as_ref().map(|_| entry.size_bytes() as u64);
        self.log_append(pid, entry);
        if let (Some(start), Some(bytes)) = (meter_start, bytes) {
            let ns = start.elapsed().as_nanos() as u64;
            if let Some(meter) = self.log_meter.as_mut() {
                meter.note_prelog(eb, bytes, ns);
            }
        }
        self.frame_mut(pid).open_intervals.push((eb, instance));
    }

    fn close_interval(&mut self, pid: ProcId, eb: EBlockId, instance: u64, ret: Option<i64>) {
        if self.is_replay() {
            return;
        }
        let Some(plan) = self.plan else { return };
        let _span = ppd_obs::span("runtime", "postlog");
        let meter_start = self.log_meter.as_ref().map(|_| Instant::now());
        let defined = plan.eblock(eb).defined.clone();
        let values = self.capture_set(pid, &defined);
        let t = self.tick();
        let entry =
            LogEntry::Postlog { eblock: eb, instance, values, ret: ret.map(Value::Int), time: t };
        let bytes = self.log_meter.as_ref().map(|_| entry.size_bytes() as u64);
        self.log_append(pid, entry);
        if let (Some(start), Some(bytes)) = (meter_start, bytes) {
            let ns = start.elapsed().as_nanos() as u64;
            if let Some(meter) = self.log_meter.as_mut() {
                meter.note_postlog(eb, bytes, ns);
            }
        }
        let frame = self.frame_mut(pid);
        if let Some(pos) = frame.open_intervals.iter().position(|&(b, i)| b == eb && i == instance)
        {
            frame.open_intervals.remove(pos);
        }
    }

    /// At a synchronization-unit boundary: write (normal mode) or consume
    /// (replay mode) the shared-variable snapshot of §5.5.
    fn unit_snapshot_point(
        &mut self,
        pid: ProcId,
        at: Option<ppd_lang::StmtId>,
    ) -> Result<(), RuntimeError> {
        let body = {
            let ix = self.proc_ix(pid);
            self.procs[ix].frames.last().expect("frame").body
        };
        if self.is_replay() {
            return self.consume_snapshot_inner(at);
        }
        let Some(_plan) = self.plan else { return Ok(()) };
        let unit_reads = {
            let units = self.analyses.sync_units.of(body);
            let unit = match at {
                None => Some(units.entry_unit()),
                Some(stmt) => units.unit_at(stmt),
            };
            match unit {
                Some(u) => {
                    let filtered = self.filter_snapshot_set(&u.reads);
                    (!filtered.is_empty()).then_some(filtered)
                }
                None => None,
            }
        }; // at=None is currently never emitted: the e-block prelog covers it
        if let Some(reads) = unit_reads {
            let _span = ppd_obs::span("runtime", "snapshot");
            let meter_start = self.log_meter.as_ref().map(|_| Instant::now());
            let values = self.capture_set(pid, &reads);
            let t = self.tick();
            let entry = LogEntry::SharedSnapshot { at, values, time: t };
            let bytes = self.log_meter.as_ref().map(|_| entry.size_bytes() as u64);
            self.log_append(pid, entry);
            if let (Some(start), Some(bytes)) = (meter_start, bytes) {
                let ns = start.elapsed().as_nanos() as u64;
                if let Some(meter) = self.log_meter.as_mut() {
                    meter.note_snapshot(bytes, ns);
                }
            }
        }
        Ok(())
    }

    fn consume_snapshot_inner(&mut self, at: Option<ppd_lang::StmtId>) -> Result<(), RuntimeError> {
        // Only consume if the unit has a non-empty read set — mirrors the
        // emission condition exactly.
        let body = self.procs[0].frames.last().expect("frame").body;
        let has_reads = {
            let units = self.analyses.sync_units.of(body);
            let unit = match at {
                None => Some(units.entry_unit()),
                Some(stmt) => units.unit_at(stmt),
            };
            match unit {
                Some(u) => !self.filter_snapshot_set(&u.reads).is_empty(),
                None => false,
            }
        };
        if !has_reads {
            return Ok(());
        }
        if self.replay.as_ref().is_some_and(|r| r.what_if) {
            return Ok(());
        }
        let replay = self.replay.as_mut().expect("replay mode");
        let entry = replay.cursor.seek(|e| matches!(e, LogEntry::SharedSnapshot { .. }));
        let Some(LogEntry::SharedSnapshot { at: logged_at, values, .. }) = entry else {
            return Err(RuntimeError::LogMismatch("expected a SharedSnapshot entry".into()));
        };
        if *logged_at != at {
            return Err(RuntimeError::LogMismatch(format!(
                "snapshot boundary mismatch: logged {logged_at:?}, replaying {at:?}"
            )));
        }
        for (var, value) in values.clone() {
            self.shared[var.index()] = value;
        }
        Ok(())
    }

    /// Handles loop-e-block substitution during replay: when the replayed
    /// region *contains* a loop that formed its own e-block, the loop is
    /// skipped and its postlog applied (§5.4); the Controller re-executes
    /// the loop's own interval if the user asks for its details.
    fn try_substitute_loop(
        &mut self,
        pid: ProcId,
        stmt: &'p Stmt,
        tracer: &mut dyn Tracer,
    ) -> Result<bool, RuntimeError> {
        if !self.is_replay() {
            return Ok(false);
        }
        let Some(plan) = self.plan else { return Ok(false) };
        let Some(eb) = plan.loop_eblock(stmt.id) else { return Ok(false) };
        let replay = self.replay.as_ref().expect("replay mode");
        if replay.nested != NestedCalls::Substitute {
            return Ok(false);
        }
        // Don't substitute the loop we were asked to replay.
        if self.replay_root == Some(stmt.id) {
            return Ok(false);
        }
        let replay = self.replay.as_mut().expect("replay mode");
        let Some(LogEntry::Postlog { values, .. }) = replay.cursor.skip_nested_interval(eb) else {
            return Err(RuntimeError::LogMismatch(format!("missing nested loop interval {eb}")));
        };
        let values = values.clone();
        for (var, value) in values {
            if self.rp.is_shared(var) {
                self.shared[var.index()] = value;
            } else {
                self.frame_mut(pid).locals.insert(var, value);
            }
        }
        let stmt_id = stmt.id;
        self.emit_with(
            pid,
            stmt_id,
            EventKind::LoopSubstituted { eblock: eb },
            None,
            None,
            Vec::new(),
            tracer,
        );
        Ok(true)
    }
}

// ---------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------

fn init_shared(rp: &ResolvedProgram) -> Vec<Value> {
    rp.vars[..rp.shared_count as usize]
        .iter()
        .map(|v| match v.size {
            Some(n) => Value::Array(vec![0; n]),
            None => Value::Int(v.init.unwrap_or(0)),
        })
        .collect()
}

fn init_sems(rp: &ResolvedProgram) -> Vec<SemState> {
    rp.sems.iter().map(|s| SemState { count: s.init, pending_v: None }).collect()
}

fn build_stmt_index(rp: &ResolvedProgram) -> HashMap<ppd_lang::StmtId, &Stmt> {
    let mut map = HashMap::new();
    for body in rp.bodies() {
        walk_stmts(rp.body_block(body), &mut |s| {
            map.insert(s.id, s);
        });
    }
    map
}

fn read_value(value: &Value, index: Option<i64>) -> Result<i64, RuntimeError> {
    match (value, index) {
        (Value::Int(n), None) => Ok(*n),
        (Value::Array(a), Some(i)) => {
            if i < 0 || i as usize >= a.len() {
                Err(RuntimeError::IndexOutOfBounds { index: i, len: a.len() })
            } else {
                Ok(a[i as usize])
            }
        }
        // Unreachable for programs that pass `ppd check` (TYP001 rejects
        // scalar/array shape confusion); defensive for unchecked runs.
        (Value::Int(n), Some(_)) => {
            debug_assert!(false, "indexed read of a scalar — `ppd check` would reject this");
            Ok(*n)
        }
        (Value::Array(_), None) => {
            debug_assert!(false, "scalar read of an array — `ppd check` would reject this");
            Ok(0)
        }
    }
}

fn write_value(value: &mut Value, index: Option<i64>, new: i64) -> Result<(), RuntimeError> {
    match (value, index) {
        (Value::Int(n), None) => {
            *n = new;
            Ok(())
        }
        (Value::Array(a), Some(i)) => {
            if i < 0 || i as usize >= a.len() {
                Err(RuntimeError::IndexOutOfBounds { index: i, len: a.len() })
            } else {
                a[i as usize] = new;
                Ok(())
            }
        }
        // Unreachable for programs that pass `ppd check` (TYP001 rejects
        // scalar/array shape confusion); treat as a scalar overwrite.
        (v, _) => {
            debug_assert!(false, "shape-confused write — `ppd check` would reject this");
            *v = Value::Int(new);
            Ok(())
        }
    }
}

fn apply_binop(op: BinOp, l: i64, r: i64) -> Result<i64, RuntimeError> {
    Ok(match op {
        BinOp::Add => l.wrapping_add(r),
        BinOp::Sub => l.wrapping_sub(r),
        BinOp::Mul => l.wrapping_mul(r),
        BinOp::Div => {
            if r == 0 {
                return Err(RuntimeError::DivideByZero);
            }
            l.wrapping_div(r)
        }
        BinOp::Rem => {
            if r == 0 {
                return Err(RuntimeError::RemainderByZero);
            }
            l.wrapping_rem(r)
        }
        BinOp::Eq => (l == r) as i64,
        BinOp::Ne => (l != r) as i64,
        BinOp::Lt => (l < r) as i64,
        BinOp::Le => (l <= r) as i64,
        BinOp::Gt => (l > r) as i64,
        BinOp::Ge => (l >= r) as i64,
        BinOp::And | BinOp::Or => unreachable!("short-circuit ops never reach apply_binop"),
    })
}

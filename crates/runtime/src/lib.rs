//! # ppd-runtime — the shared-memory multiprocessor substrate
//!
//! A deterministic multi-process interpreter that plays the paper's
//! execution-phase roles: the plain program, the log-writing **object
//! code** (§3.2.2), and the trace-everything **emulation package**
//! (§5.3) used for e-block replay during debugging.
//!
//! See [`machine::Machine`] for the interpreter, [`sched`] for the
//! reproducible schedulers, and [`event`] for the trace-event model.
//!
//! ## Example
//!
//! ```
//! use ppd_runtime::{ExecConfig, Machine, NullTracer};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let rp = ppd_lang::compile("shared int x; process Main { x = 2 + 3; print(x); }")?;
//! let analyses = ppd_analysis::Analyses::run(&rp);
//! let machine = Machine::new(&rp, &analyses, None, ExecConfig::default());
//! let result = machine.run(&mut NullTracer);
//! assert!(result.outcome.is_success());
//! assert_eq!(result.output, vec![(ppd_lang::ProcId(0), 5)]);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod error;
pub mod event;
pub mod machine;
pub mod sched;

#[cfg(test)]
mod tests;

pub use error::{BlockReason, Outcome, RuntimeError};
pub use event::{
    CellRef, CountingTracer, EventKind, NullTracer, ReadSource, SyncKind, TraceEvent, Tracer,
    VecTracer,
};
pub use machine::{
    EBlockLogCost, ExecConfig, ExecResult, LogMeter, Machine, NestedCalls, ReplayResult,
};
pub use sched::{Scheduler, SchedulerSpec};

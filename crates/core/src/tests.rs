//! Debugging-phase tests: flowback analysis, incremental expansion,
//! cross-process dependences, race reports, and state restoration.

#![allow(clippy::field_reassign_with_default)]

use crate::{shared_state_at, what_if_replay, Controller, PpdSession, RunConfig};
use ppd_analysis::EBlockStrategy;
use ppd_graph::{DynEdgeKind, DynNodeId, DynNodeKind, DynamicGraph};
use ppd_lang::{BodyId, ProcId, Value, VarId};
use ppd_runtime::{EventKind, SchedulerSpec};

fn prepare(src: &str) -> PpdSession {
    PpdSession::prepare(src, EBlockStrategy::per_subroutine()).expect("compiles")
}

fn var(session: &PpdSession, name: &str) -> VarId {
    let rp = session.rp();
    (0..rp.var_count() as u32)
        .map(VarId)
        .find(|v| rp.var_name(*v) == name)
        .unwrap_or_else(|| panic!("no variable named {name}"))
}

/// Nodes whose label contains `needle`.
fn nodes_labeled(graph: &DynamicGraph, needle: &str) -> Vec<DynNodeId> {
    graph.nodes().iter().filter(|n| n.label.contains(needle)).map(|n| n.id).collect()
}

// ---------------------------------------------------------------------
// Flowback from a failure (the paper's headline use case)
// ---------------------------------------------------------------------

#[test]
fn flowback_reaches_the_planted_bug() {
    let session = prepare(ppd_lang::corpus::FLOWBACK_DEMO.source);
    let mut config = RunConfig::default();
    config.inputs = vec![vec![42, 10]];
    let execution = session.execute(config);
    assert!(execution.outcome.is_failure());

    let mut controller = Controller::new(&session, &execution);
    let root = controller.start().expect("debugging starts");
    let graph = controller.graph();

    // The root is the failure node for `out = work / gain`.
    let root_node = graph.node(root);
    assert!(root_node.label.contains("FAILED"), "{}", root_node.label);
    assert!(root_node.label.contains("division by zero"), "{}", root_node.label);

    // One flowback step: the immediate suspects are the reads of the
    // failing expression — `work` and `gain` definitions.
    let causes = controller.flowback(root);
    let labels: Vec<&str> = causes.iter().map(|&(n, _)| graph.node(n).label.as_str()).collect();
    assert!(
        labels.iter().any(|l| l.contains("gain")),
        "gain's definition should be a direct cause: {labels:?}"
    );

    // The full backward slice reaches the planted bug
    // (`calibration = reading - reading`).
    let slice = controller.backward_slice(root);
    let slice_labels: Vec<String> = slice.iter().map(|&n| graph.node(n).label.clone()).collect();
    assert!(
        slice_labels.iter().any(|l| l.contains("reading - reading")),
        "slice misses the bug: {slice_labels:?}"
    );
}

#[test]
fn flowback_excludes_unrelated_chains() {
    // `unrelated` feeds only the print, not the failure.
    let session = prepare(
        "shared int out; \
         process Main { int unrelated = 7; print(unrelated); \
         int zero = 0; out = 10 / zero; }",
    );
    let execution = session.execute(RunConfig::default());
    assert!(execution.outcome.is_failure());
    let mut controller = Controller::new(&session, &execution);
    let root = controller.start().unwrap();
    let slice = controller.backward_slice(root);
    let graph = controller.graph();
    let labels: Vec<String> = slice.iter().map(|&n| graph.node(n).label.clone()).collect();
    assert!(labels.iter().any(|l| l.contains("zero")));
    assert!(
        !labels.iter().any(|l| l.contains("unrelated")),
        "slice should not contain the unrelated chain: {labels:?}"
    );
}

// ---------------------------------------------------------------------
// Figure 4.1: the worked dynamic-graph example
// ---------------------------------------------------------------------

struct Fig41 {
    session: PpdSession,
    execution: crate::Execution,
}

fn fig41() -> Fig41 {
    let session = prepare(ppd_lang::corpus::FIG_4_1.source);
    let mut config = RunConfig::default();
    config.inputs = vec![vec![5, 3, 2]];
    let execution = session.execute(config);
    assert!(execution.outcome.is_success());
    Fig41 { session, execution }
}

#[test]
fn fig41_graph_structure() {
    let f = fig41();
    let mut controller = Controller::new(&f.session, &f.execution);
    controller.start_at(ProcId(0)).unwrap();
    let graph = controller.graph();

    // The SubD call is a sub-graph node with value d = -5.
    let subd = nodes_labeled(graph, "SubD(")[0];
    assert!(matches!(graph.node(subd).kind, DynNodeKind::SubGraph { expanded: false, .. }));
    assert_eq!(graph.node(subd).value, Some(Value::Int(-5)));

    // The third actual parameter is an expression, so a fictional %3
    // node feeds the call (Figure 4.1's %3).
    let params = nodes_labeled(graph, "%3");
    assert_eq!(params.len(), 1, "exactly one fictional %3 node");
    let p3 = params[0];
    assert!(matches!(graph.node(p3).kind, DynNodeKind::Param { index: 3 }));
    // %3 = a + b + c = 10.
    assert_eq!(graph.node(p3).value, Some(Value::Int(10)));
    // It has three incoming data edges (a, b, c) and feeds SubD.
    assert_eq!(graph.dependence_preds(p3).len(), 3);
    assert!(graph
        .succs_by(p3, |k| matches!(k, DynEdgeKind::ValueFlow))
        .iter()
        .any(|&(n, _)| n == subd));

    // `d > 0` predicate instance took the false branch (d = -5).
    let pred = nodes_labeled(graph, "d > 0")[0];
    assert_eq!(graph.node(pred).value, Some(Value::Int(0)));

    // The else-branch sqrt assignment is control dependent on it.
    let sqrt_assign = nodes_labeled(graph, "sq = sqrt(0 - d)")[0];
    assert!(graph
        .preds_by(sqrt_assign, |k| matches!(k, DynEdgeKind::Control))
        .iter()
        .any(|&(n, _)| n == pred));

    // s6 `a = a + sq` reads a's original definition and sq.
    let s6 = nodes_labeled(graph, "a = a + sq")[0];
    assert_eq!(graph.node(s6).value, Some(Value::Int(7)));
    let dep_labels: Vec<String> =
        graph.dependence_preds(s6).iter().map(|&(n, _)| graph.node(n).label.clone()).collect();
    assert!(dep_labels.iter().any(|l| l.contains("a = input()")), "{dep_labels:?}");
    assert!(dep_labels.iter().any(|l| l.contains("sq = sqrt")), "{dep_labels:?}");
}

#[test]
fn fig41_expand_subgraph_node() {
    let f = fig41();
    let mut controller = Controller::new(&f.session, &f.execution);
    controller.start_at(ProcId(0)).unwrap();

    let subd = nodes_labeled(controller.graph(), "SubD(")[0];
    assert!(controller.unexpanded().contains(&subd));
    let before = controller.graph().len();

    let report = controller.expand(subd).expect("expansion succeeds");
    assert!(report.nodes.len() > 1, "expansion adds the callee's details");
    assert!(controller.graph().len() > before);
    assert!(matches!(
        controller.graph().node(subd).kind,
        DynNodeKind::SubGraph { expanded: true, .. }
    ));
    // The callee's return (p3 - p1 * p2) is now in the graph, wired into
    // the sub-graph node by a ValueFlow edge.
    let ret = nodes_labeled(controller.graph(), "return p3 - p1 * p2");
    assert_eq!(ret.len(), 1);
    assert!(controller
        .graph()
        .succs_by(ret[0], |k| matches!(k, DynEdgeKind::ValueFlow))
        .iter()
        .any(|&(n, _)| n == subd));

    // A second expansion of the same node is rejected.
    assert!(controller.expand(subd).is_err());
}

#[test]
fn nested_expansion_through_recursion() {
    let session = prepare(
        "shared int out; \
         int fact(int n) { if (n <= 1) { return 1; } return n * fact(n - 1); } \
         process Main { out = fact(4); print(out); }",
    );
    let execution = session.execute(RunConfig::default());
    let mut controller = Controller::new(&session, &execution);
    controller.start_at(ProcId(0)).unwrap();

    // Expand fact(4) -> fact(3) -> fact(2) -> fact(1).
    let mut depth = 0;
    loop {
        let unexpanded = controller.unexpanded();
        let Some(&node) = unexpanded.first() else { break };
        controller.expand(node).expect("expand recursion level");
        depth += 1;
        assert!(depth < 10, "runaway expansion");
    }
    assert_eq!(depth, 4);
    // All fact frames materialized: the recursive return statement has
    // one Singular instance per non-base frame (n = 4, 3, 2); the same
    // label also appears on the nested-call SubGraph nodes, so filter by
    // node kind.
    let graph = controller.graph();
    let rets: Vec<_> = nodes_labeled(graph, "return n * fact(n - 1)")
        .into_iter()
        .filter(|&n| matches!(graph.node(n).kind, DynNodeKind::Singular { .. }))
        .collect();
    assert_eq!(rets.len(), 3);
    let base = nodes_labeled(graph, "return 1");
    assert_eq!(base.len(), 1);
}

#[test]
fn fig52_interval_nesting() {
    // SubJ calls SubK (Figure 5.2): the controller sees SubK's interval
    // as a direct child of SubJ's, and expansion follows the nesting.
    let session = prepare(
        "shared int out; \
         int SubK(int x) { return x + 1; } \
         int SubJ(int x) { int before = x * 2; int k = SubK(before); return k + before; } \
         process Main { out = SubJ(3); print(out); }",
    );
    let execution = session.execute(RunConfig::default());
    let controller = Controller::new(&session, &execution);

    let main_iv = controller.top_level_intervals(ProcId(0))[0];
    let children = controller.direct_children(main_iv);
    assert_eq!(children.len(), 1, "Main directly contains only SubJ");
    let subj = children[0];
    let grandchildren = controller.direct_children(subj);
    assert_eq!(grandchildren.len(), 1, "SubJ directly contains SubK");
    // Nesting: SubK's interval lies strictly inside SubJ's.
    assert!(subj.prelog_pos < grandchildren[0].prelog_pos);
    assert!(grandchildren[0].postlog_pos.unwrap() < subj.postlog_pos.unwrap());
}

// ---------------------------------------------------------------------
// Cross-process dependences (§5.6, §6.3)
// ---------------------------------------------------------------------

#[test]
fn cross_process_data_dependence_fig61() {
    let session = prepare(ppd_lang::corpus::FIG_6_1.source);
    let execution = session.execute(RunConfig::default());
    assert!(execution.outcome.is_success());
    let mut controller = Controller::new(&session, &execution);
    controller.start_at(ProcId(2)).unwrap(); // P3

    // `int x = SV` read SV from outside the fragment: its data edge
    // comes from the fragment entry.
    let read = nodes_labeled(controller.graph(), "x = SV")[0];
    let entry_sourced = controller
        .graph()
        .preds_by(read, |k| matches!(k, DynEdgeKind::Data { .. }))
        .iter()
        .any(|&(n, _)| matches!(controller.graph().node(n).kind, DynNodeKind::Entry));
    assert!(entry_sourced, "SV's value comes from outside P3");

    // Extend across processes: materializes the writer's fragment and
    // wires the dependence.
    let sv = var(&session, "SV");
    let writer = controller.extend_across_processes(read, sv).expect("writer found");
    let wnode = controller.graph().node(writer);
    assert!(wnode.label.contains("SV ="), "{}", wnode.label);
    assert_ne!(wnode.proc, ProcId(2), "writer is another process");
    assert!(controller
        .graph()
        .preds_by(read, |k| matches!(k, DynEdgeKind::Data { var: v } if v == sv))
        .iter()
        .any(|&(n, _)| n == writer));
}

#[test]
fn extend_fails_when_no_writer_exists() {
    let session = prepare("shared int g; process A { print(g); } process B { print(g); }");
    let execution = session.execute(RunConfig::default());
    let mut controller = Controller::new(&session, &execution);
    let root = controller.start_at(ProcId(0)).unwrap();
    let g = var(&session, "g");
    assert!(controller.extend_across_processes(root, g).is_err());
}

// ---------------------------------------------------------------------
// Races and deadlocks through the controller
// ---------------------------------------------------------------------

#[test]
fn race_reports_name_variable_and_processes() {
    let session = prepare(ppd_lang::corpus::FIG_6_1.source);
    let execution = session.execute(RunConfig::default());
    let controller = Controller::new(&session, &execution);
    let races = controller.races();
    assert_eq!(races.len(), 2);
    for r in &races {
        assert!(r.description.contains("SV"), "{}", r.description);
    }
    assert!(!controller.is_race_free());
}

#[test]
fn race_free_program_reports_clean() {
    let session = prepare(ppd_lang::corpus::BANK.source);
    let execution = session.execute(RunConfig::default());
    let controller = Controller::new(&session, &execution);
    assert!(controller.is_race_free());
    assert!(controller.deadlock_report().is_none());
}

#[test]
fn deadlock_report_lists_blocked_processes() {
    let session = prepare(ppd_lang::corpus::DINING_PHILOSOPHERS.source);
    let execution = session.execute(RunConfig::default());
    let controller = Controller::new(&session, &execution);
    let report = controller.deadlock_report().expect("deadlocked");
    assert_eq!(report.len(), 2);
    let names: Vec<&str> = report.iter().map(|e| e.proc_name.as_str()).collect();
    assert!(names.contains(&"PhilA"));
    assert!(names.contains(&"PhilB"));
    for e in &report {
        assert!(e.waiting_for.contains("semaphore"), "{}", e.waiting_for);
    }
}

// ---------------------------------------------------------------------
// State restoration and what-if replay (§5.7)
// ---------------------------------------------------------------------

#[test]
fn shared_state_at_end_matches_final_values() {
    let session = prepare(ppd_lang::corpus::BANK.source);
    let execution = session.execute(RunConfig::default());
    assert!(execution.outcome.is_success());
    let state = shared_state_at(&session, &execution, u64::MAX);
    let audit = var(&session, "audit_total");
    assert_eq!(state[audit.index()], Value::Int(400));
    let accounts = var(&session, "accounts");
    let Value::Array(a) = &state[accounts.index()] else { panic!() };
    assert_eq!(a.iter().sum::<i64>(), 400);
}

#[test]
fn shared_state_at_zero_is_initial() {
    let session = prepare("shared int g = 9; process M { g = 1; }");
    let execution = session.execute(RunConfig::default());
    let state = shared_state_at(&session, &execution, 0);
    assert_eq!(state[0], Value::Int(9));
}

#[test]
fn what_if_replay_changes_outcome() {
    // scale() was called with base = 0 (the bug); override base = 5 and
    // the function returns 500 instead of 0.
    let session = prepare(ppd_lang::corpus::FLOWBACK_DEMO.source);
    let mut config = RunConfig::default();
    config.inputs = vec![vec![42, 10]];
    let execution = session.execute(config);

    let rp = session.rp();
    let scale = rp.func_by_name("scale").unwrap();
    let scale_eb = session.plan().body_eblock(BodyId::Func(scale)).unwrap();
    let interval = execution
        .logs
        .intervals(ProcId(0))
        .into_iter()
        .find(|iv| iv.eblock == scale_eb)
        .expect("scale ran");

    // Faithful replay returns 0.
    let faithful = what_if_replay(&session, &execution, interval, &[]).unwrap();
    let ret_of = |events: &[ppd_runtime::TraceEvent]| {
        events
            .iter()
            .rev()
            .find_map(|e| match e.kind {
                EventKind::Return => e.value,
                _ => None,
            })
            .expect("return event")
    };
    assert_eq!(ret_of(&faithful.events), 0);

    // What-if: base = 5 ⇒ scaled = 500.
    let base = rp.var_by_name(BodyId::Func(scale), "base").unwrap();
    let modified =
        what_if_replay(&session, &execution, interval, &[(base, Value::Int(5))]).unwrap();
    assert_eq!(ret_of(&modified.events), 500);
    assert!(modified.result.outcome.is_success());
}

#[test]
fn what_if_replay_can_avoid_the_failure() {
    // Replay the halted Main interval with `gain` pre-set… gain is
    // recomputed inside the interval, so instead demonstrate on a
    // program whose prelog carries the poisoned value.
    let session = prepare(
        "shared int out; \
         int divide(int num, int den) { return num / den; } \
         process Main { int d = input(); out = divide(100, d); print(out); }",
    );
    let mut config = RunConfig::default();
    config.inputs = vec![vec![0]]; // d = 0 -> failure inside divide
    let execution = session.execute(config);
    assert!(execution.outcome.is_failure());

    let rp = session.rp();
    let divide = rp.func_by_name("divide").unwrap();
    let interval = execution
        .logs
        .open_intervals(ProcId(0))
        .into_iter()
        .find(|iv| session.plan().eblock(iv.eblock).region.body() == BodyId::Func(divide))
        .expect("divide's interval is open at the failure");

    // Faithful replay reproduces the failure.
    let faithful = what_if_replay(&session, &execution, interval, &[]).unwrap();
    assert!(faithful.result.outcome.is_failure());

    // Overriding the denominator avoids it.
    let den = rp.var_by_name(BodyId::Func(divide), "den").unwrap();
    let fixed = what_if_replay(&session, &execution, interval, &[(den, Value::Int(4))]).unwrap();
    assert!(fixed.result.outcome.is_success(), "{:?}", fixed.result.outcome);
    let ret = fixed
        .events
        .iter()
        .rev()
        .find_map(|e| match e.kind {
            EventKind::Return => e.value,
            _ => None,
        })
        .unwrap();
    assert_eq!(ret, 25);
}

// ---------------------------------------------------------------------
// Incremental-tracing bookkeeping
// ---------------------------------------------------------------------

#[test]
fn materialization_is_incremental() {
    // Only the requested intervals are replayed; the graph grows as the
    // user asks for more (§5.3's "incremental tracing").
    let session = prepare(ppd_lang::corpus::QUICKSORT.source);
    let execution = session.execute(RunConfig::default());
    let mut controller = Controller::new(&session, &execution);
    controller.start_at(ProcId(0)).unwrap();
    let after_start = controller.graph().len();

    // Many intervals exist, but only Main's was materialized.
    let total_intervals = execution.logs.intervals(ProcId(0)).len();
    assert!(total_intervals > 10);

    // Expanding one sub-graph node adds only that interval's events.
    let node = controller.unexpanded()[0];
    controller.expand(node).unwrap();
    assert!(controller.graph().len() > after_start);
}

#[test]
fn controller_on_completed_chunked_program() {
    let session = PpdSession::prepare(
        "shared int out; process Main { int a = 1; int b = a + 1; int c = b * 2; \
         out = c; print(out); }",
        EBlockStrategy::with_split(2),
    )
    .unwrap();
    let execution = session.execute(RunConfig::default());
    assert!(execution.outcome.is_success());
    let mut controller = Controller::new(&session, &execution);
    // Starts at the last chunk.
    let root = controller.start_at(ProcId(0)).unwrap();
    assert!(controller.graph().node(root).label.contains("print"));
}

#[test]
fn start_prefers_failing_process() {
    let session = prepare(
        "shared int z; \
         process Healthy { int i; for (i = 0; i < 5; i = i + 1) { } } \
         process Crashy { print(1 / z); }",
    );
    let execution = session.execute(RunConfig::default());
    let mut controller = Controller::new(&session, &execution);
    let root = controller.start().unwrap();
    assert_eq!(controller.graph().node(root).proc, ProcId(1));
}

#[test]
fn races_under_random_schedules_prodcons_racy() {
    let session = prepare(ppd_lang::corpus::PRODUCER_CONSUMER_RACY.source);
    let mut found = false;
    for seed in 0..10 {
        let execution = session.execute(RunConfig {
            scheduler: SchedulerSpec::Random { seed },
            ..RunConfig::default()
        });
        let controller = Controller::new(&session, &execution);
        if !controller.is_race_free() {
            found = true;
            break;
        }
    }
    assert!(found, "the unprotected counter should race under some schedule");
}

// ---------------------------------------------------------------------
// Breakpoints (user-intervention halt, §3.2.2 / [24])
// ---------------------------------------------------------------------

#[test]
fn breakpoint_halts_all_processes_and_debugging_starts() {
    let session = prepare(
        "shared int g; \
         process A { g = 1; g = 2; g = 3; print(g); } \
         process B { int i; for (i = 0; i < 50; i = i + 1) { } print(i); }",
    );
    // Break at `g = 3` (line lookup via the program database).
    let db = &session.analyses().database;
    let g3 = session
        .rp()
        .bodies()
        .iter()
        .flat_map(|_| db.stmts_at_line(1)) // single-line source
        .find(|&s| {
            // find the statement assigning 3
            let rp = session.rp();
            let mut found = false;
            for body in rp.bodies() {
                ppd_lang::ast::walk_stmts(rp.body_block(body), &mut |stmt| {
                    if stmt.id == s {
                        if let ppd_lang::StmtKind::Assign { value, .. } = &stmt.kind {
                            if matches!(value.kind, ppd_lang::ExprKind::IntLit(3)) {
                                found = true;
                            }
                        }
                    }
                });
            }
            found
        })
        .expect("g = 3 statement");
    let execution = session.execute(RunConfig { breakpoints: vec![g3], ..RunConfig::default() });
    let ppd_runtime::Outcome::Breakpoint { proc, stmt } = execution.outcome else {
        panic!("expected breakpoint halt: {:?}", execution.outcome);
    };
    assert_eq!(proc, ProcId(0));
    assert_eq!(stmt, g3);
    // The logs alone only know the last *logged* value (prelog at start);
    // the up-to-date state comes from replaying the open interval (§5.7).
    let state = shared_state_at(&session, &execution, u64::MAX);
    assert_eq!(state[var(&session, "g").index()], Value::Int(0));
    // The debugging phase starts from the halted process's open interval
    // and replays exactly up to the breakpoint — g = 3 never appears.
    let mut controller = Controller::new(&session, &execution);
    let root = controller.start().expect("debugging starts at breakpoint");
    assert_eq!(controller.graph().node(root).proc, ProcId(0));
    let labels: Vec<String> = controller.graph().nodes().iter().map(|n| n.label.clone()).collect();
    assert!(labels.iter().any(|l| l.contains("g = 2")), "{labels:?}");
    assert!(!labels.iter().any(|l| l.contains("g = 3")), "{labels:?}");
    // The fragment root is the last executed statement, `g = 2`.
    assert!(controller.graph().node(root).label.contains("g = 2"));
}

#[test]
fn breakpoint_in_function_body() {
    let session = prepare(
        "shared int out; \
         int f(int x) { int y = x * 2; return y; } \
         process Main { out = f(21); print(out); }",
    );
    // Break on the return inside f.
    let rp = session.rp();
    let mut ret_stmt = None;
    for body in rp.bodies() {
        ppd_lang::ast::walk_stmts(rp.body_block(body), &mut |stmt| {
            if matches!(stmt.kind, ppd_lang::StmtKind::Return(Some(_))) {
                ret_stmt = Some(stmt.id);
            }
        });
    }
    let execution =
        session.execute(RunConfig { breakpoints: vec![ret_stmt.unwrap()], ..RunConfig::default() });
    assert!(execution.outcome.is_breakpoint());
    // Both Main's and f's intervals are open at the halt.
    assert_eq!(execution.logs.open_intervals(ProcId(0)).len(), 2);
}

#[test]
fn replay_stops_at_original_breakpoint() {
    // A breakpoint hit during the original run must not re-trigger in
    // replay (the debugging phase replays freely).
    let session = prepare("shared int g; process M { g = 1; g = 2; print(g); }");
    let rp = session.rp();
    let mut second = None;
    ppd_lang::ast::walk_stmts(rp.body_block(rp.bodies()[0]), &mut |stmt| {
        if let ppd_lang::StmtKind::Assign { value, .. } = &stmt.kind {
            if matches!(value.kind, ppd_lang::ExprKind::IntLit(2)) {
                second = Some(stmt.id);
            }
        }
    });
    let execution =
        session.execute(RunConfig { breakpoints: vec![second.unwrap()], ..RunConfig::default() });
    assert!(execution.outcome.is_breakpoint());
    let interval = execution.logs.open_intervals(ProcId(0))[0];
    // Faithful replay halts at the same breakpoint: only `g = 1` was
    // executed before the halt, and only it is replayed.
    let mut tracer = ppd_runtime::VecTracer::default();
    let res = crate::faithful_replay(&session, &execution, interval, &mut tracer);
    assert!(res.outcome.is_breakpoint(), "{:?}", res.outcome);
    let assigns = tracer.events.iter().filter(|e| matches!(e.kind, EventKind::Assign)).count();
    assert_eq!(assigns, 1);
}

#[test]
fn deadlock_replay_stops_at_block_point() {
    let session = prepare(ppd_lang::corpus::DINING_PHILOSOPHERS.source);
    let execution = session.execute(RunConfig::default());
    assert!(execution.outcome.is_deadlock());
    let mut controller = Controller::new(&session, &execution);
    // PhilA got fork0 and blocked on fork1: the fragment must show the
    // first p() but not the meal that never happened.
    let root = controller.start_at(ProcId(0)).expect("debugging starts");
    let labels: Vec<String> = controller.graph().nodes().iter().map(|n| n.label.clone()).collect();
    assert!(labels.iter().any(|l| l.contains("p(fork0)")), "{labels:?}");
    assert!(!labels.iter().any(|l| l.contains("meals")), "the meal never happened: {labels:?}");
    let _ = root;
}

#[test]
fn forward_flow_from_the_bug() {
    // Forward slice from the planted bug covers everything it poisoned.
    let session = prepare(ppd_lang::corpus::FLOWBACK_DEMO.source);
    let mut config = RunConfig::default();
    config.inputs = vec![vec![42, 10]];
    let execution = session.execute(config);
    let mut controller = Controller::new(&session, &execution);
    controller.start().unwrap();
    let graph = controller.graph();
    let bug = nodes_labeled(graph, "reading - reading")[0];
    let forward = controller.forward_slice(bug);
    let labels: Vec<String> =
        forward.iter().map(|&n| controller.graph().node(n).label.clone()).collect();
    assert!(labels.iter().any(|l| l.contains("gain")), "{labels:?}");
    assert!(labels.iter().any(|l| l.contains("FAILED")), "the bug reaches the failure: {labels:?}");
    // Forward and backward slices are adjoint: bug in back(fail) iff
    // fail in forward(bug).
    let root = nodes_labeled(graph, "FAILED")[0];
    assert!(controller.backward_slice(root).contains(&bug));
    assert!(forward.contains(&root));
}

// ---------------------------------------------------------------------
// Failure injection: corrupted logs are detected, not misinterpreted
// ---------------------------------------------------------------------

#[test]
fn corrupted_log_yields_log_mismatch() {
    use ppd_log::LogEntry;
    let session =
        prepare("shared int out; process Main { int x = input(); out = x * 2; print(out); }");
    let mut config = RunConfig::default();
    config.inputs = vec![vec![7]];
    let mut execution = session.execute(config);
    assert!(execution.outcome.is_success());

    // Drop the Input record from the log: replay must fail loudly.
    let json = execution.logs.to_json().unwrap();
    let mut store = ppd_log::LogStore::from_json(&json).unwrap();
    store = {
        // Rebuild without Input entries.
        let mut clean = ppd_log::LogStore::new(store.process_count());
        for p in 0..store.process_count() {
            let pid = ProcId(p as u32);
            for e in &store.log(pid).entries {
                if !matches!(e, LogEntry::Input { .. }) {
                    clean.push(pid, e.clone());
                }
            }
        }
        clean
    };
    execution.logs = store;
    let interval = execution.logs.intervals(ProcId(0))[0];
    let mut tracer = ppd_runtime::VecTracer::default();
    let res = crate::faithful_replay(&session, &execution, interval, &mut tracer);
    assert!(
        matches!(
            &res.outcome,
            ppd_runtime::Outcome::Failed { error: ppd_runtime::RuntimeError::LogMismatch(_), .. }
        ),
        "{:?}",
        res.outcome
    );
}

#[test]
fn truncated_log_detected_on_substitution() {
    let session = prepare(
        "shared int out; int f(int x) { return x + 1; } \
         process Main { out = f(1); print(out); }",
    );
    let mut execution = session.execute(RunConfig::default());
    // Keep only Main's prelog: the nested interval for f is gone.
    let pid = ProcId(0);
    let first = execution.logs.log(pid).entries[0].clone();
    let mut clean = ppd_log::LogStore::new(execution.logs.process_count());
    clean.push(pid, first);
    execution.logs = clean;
    let interval = execution.logs.intervals(pid)[0];
    let mut controller = Controller::new(&session, &execution);
    assert!(controller.materialize(interval, None).is_err());
}

#[test]
fn present_bounds_the_visible_graph() {
    let session = prepare(ppd_lang::corpus::FLOWBACK_DEMO.source);
    let mut config = RunConfig::default();
    config.inputs = vec![vec![42, 10]];
    let execution = session.execute(config);
    let mut controller = Controller::new(&session, &execution);
    let root = controller.start().unwrap();
    let d0 = controller.present(root, 0);
    assert_eq!(d0, vec![root]);
    let d1 = controller.present(root, 1);
    assert_eq!(d1.len(), 1 + controller.flowback(root).len());
    // Depth grows monotonically up to the full slice.
    let full = controller.backward_slice(root);
    let deep = controller.present(root, 64);
    assert_eq!(deep.len(), full.len());
    let d2 = controller.present(root, 2);
    assert!(d1.len() <= d2.len() && d2.len() <= deep.len());
}

#[test]
fn dynamic_graph_is_cell_precise_for_arrays() {
    // a[0] and a[1] are distinct cells: the read of a[0] depends on the
    // first store, not the second.
    let session = prepare("shared int a[2]; process M { a[0] = 10; a[1] = 20; print(a[0]); }");
    let execution = session.execute(RunConfig::default());
    let mut controller = Controller::new(&session, &execution);
    controller.start_at(ProcId(0)).unwrap();
    let graph = controller.graph();
    let read = nodes_labeled(graph, "print(a[0])")[0];
    let sources: Vec<String> =
        graph.dependence_preds(read).iter().map(|&(n, _)| graph.node(n).label.clone()).collect();
    assert!(sources.iter().any(|l| l.contains("a[0] = 10")), "{sources:?}");
    assert!(!sources.iter().any(|l| l.contains("a[1] = 20")), "{sources:?}");
}

#[test]
fn dynamic_index_reads_track_the_computed_cell() {
    let session = prepare("shared int a[3]; process M { a[2] = 7; int i = 1 + 1; print(a[i]); }");
    let execution = session.execute(RunConfig::default());
    let mut controller = Controller::new(&session, &execution);
    controller.start_at(ProcId(0)).unwrap();
    let graph = controller.graph();
    let read = nodes_labeled(graph, "print(a[i])")[0];
    let sources: Vec<String> =
        graph.dependence_preds(read).iter().map(|&(n, _)| graph.node(n).label.clone()).collect();
    // Depends on both the store to a[2] (the cell read) and on i.
    assert!(sources.iter().any(|l| l.contains("a[2] = 7")), "{sources:?}");
    assert!(sources.iter().any(|l| l.contains("int i")), "{sources:?}");
}

#[test]
fn deadlock_cycle_found_for_philosophers() {
    let session = prepare(ppd_lang::corpus::DINING_PHILOSOPHERS.source);
    let execution = session.execute(RunConfig::default());
    let controller = Controller::new(&session, &execution);
    let cycle = controller.deadlock_cycle().expect("cycle exists");
    assert_eq!(cycle.len(), 2, "{cycle:?}");
    // Both philosophers participate.
    assert!(cycle.contains(&ProcId(0)));
    assert!(cycle.contains(&ProcId(1)));
}

#[test]
fn no_cycle_when_waiting_on_departed_process() {
    // B waits on a semaphore only A could have released — but A already
    // finished without releasing: deadlock, yet no wait-for cycle.
    let session = prepare(
        "sem s = 0; \
         process A { print(1); } \
         process B { p(s); print(2); }",
    );
    let execution = session.execute(RunConfig::default());
    assert!(execution.outcome.is_deadlock());
    let controller = Controller::new(&session, &execution);
    assert!(controller.deadlock_cycle().is_none());
    // The report still names the blocked process.
    assert_eq!(controller.deadlock_report().unwrap().len(), 1);
}

#[test]
fn no_cycle_on_completed_run() {
    let session = prepare(ppd_lang::corpus::BANK.source);
    let execution = session.execute(RunConfig::default());
    let controller = Controller::new(&session, &execution);
    assert!(controller.deadlock_cycle().is_none());
}

#[test]
fn auto_extend_resolves_entry_dependences() {
    let session = prepare(ppd_lang::corpus::FIG_6_1.source);
    let execution = session.execute(RunConfig::default());
    let mut controller = Controller::new(&session, &execution);
    controller.start_at(ProcId(2)).unwrap();
    let read = nodes_labeled(controller.graph(), "x = SV")[0];
    let resolved = controller.auto_extend(read);
    assert_eq!(resolved.len(), 1);
    let (var, writer) = resolved[0];
    assert_eq!(session.rp().var_name(var), "SV");
    assert!(controller.graph().node(writer).label.contains("SV ="));
}

#[test]
fn explain_race_points_at_both_accesses() {
    let session = prepare(ppd_lang::corpus::FIG_6_1.source);
    let execution = session.execute(RunConfig::default());
    let mut controller = Controller::new(&session, &execution);
    let races = controller.races();
    let ww =
        races.iter().find(|r| r.race.kind == ppd_graph::ConflictKind::WriteWrite).unwrap().race;
    let (a, b) = controller.explain_race(&ww).expect("explains");
    let (la, lb) =
        (controller.graph().node(a).label.clone(), controller.graph().node(b).label.clone());
    assert!(la.contains("SV = "), "{la}");
    assert!(lb.contains("SV = "), "{lb}");
    assert_ne!(
        controller.graph().node(a).proc,
        controller.graph().node(b).proc,
        "the two accesses are in different processes"
    );
}

#[test]
fn execution_round_trips_through_json_and_debugs() {
    let session = prepare(ppd_lang::corpus::FLOWBACK_DEMO.source);
    let mut config = RunConfig::default();
    config.inputs = vec![vec![42, 10]];
    let execution = session.execute(config);

    // Save, drop, reload — the offline debugging workflow.
    let json = execution.to_json().unwrap();
    drop(execution);
    let loaded = crate::Execution::from_json(&json).unwrap();
    assert!(loaded.outcome.is_failure());

    // Debugging the reloaded execution works end to end.
    let mut controller = Controller::new(&session, &loaded);
    let root = controller.start().unwrap();
    let slice = controller.backward_slice(root);
    let labels: Vec<String> =
        slice.iter().map(|&n| controller.graph().node(n).label.clone()).collect();
    assert!(labels.iter().any(|l| l.contains("reading - reading")));
    // Races computable from the reloaded parallel graph.
    assert!(controller.races().is_empty());
    // Rerunning the stored config reproduces the run.
    let again = session.execute(loaded.config.clone());
    assert_eq!(again.output, loaded.output);
}

#[test]
fn completed_intervals_replay_fully_despite_halt_at_same_stmt() {
    // `grab` is called three times; the third call blocks forever on the
    // same `p(s)` statement the first two calls executed successfully.
    // Replaying the *completed* intervals must run them in full — only
    // the open (blocked) interval stops at the halt statement.
    let session = prepare(
        "shared int done; sem s = 2; \
         void grab(int k) { p(s); done = done + k; } \
         process Main { grab(1); grab(2); grab(3); print(done); }",
    );
    let execution = session.execute(RunConfig::default());
    assert!(execution.outcome.is_deadlock(), "{:?}", execution.outcome);

    let rp = session.rp();
    let grab_eb =
        session.plan().body_eblock(BodyId::Func(rp.func_by_name("grab").unwrap())).unwrap();
    let grab_intervals: Vec<_> =
        execution.logs.intervals(ProcId(0)).into_iter().filter(|iv| iv.eblock == grab_eb).collect();
    assert_eq!(grab_intervals.len(), 3);

    for iv in &grab_intervals {
        let mut tracer = ppd_runtime::VecTracer::default();
        let res = crate::faithful_replay(&session, &execution, *iv, &mut tracer);
        let syncs =
            tracer.events.iter().filter(|e| matches!(e.kind, EventKind::Sync { .. })).count();
        let assigns = tracer.events.iter().filter(|e| matches!(e.kind, EventKind::Assign)).count();
        if iv.postlog_pos.is_some() {
            // Completed call: the p(s) executed AND the update ran.
            assert!(res.outcome.is_success(), "{:?}", res.outcome);
            assert_eq!((syncs, assigns), (1, 1), "completed interval truncated");
        } else {
            // The blocked call stops at the p(s), having run nothing.
            assert!(res.outcome.is_breakpoint(), "{:?}", res.outcome);
            assert_eq!((syncs, assigns), (0, 0));
        }
    }
}

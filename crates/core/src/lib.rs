//! # ppd-core — the Parallel Program Debugger
//!
//! The integrated debugging system of Miller & Choi (PLDI 1988),
//! organized in the paper's three phases:
//!
//! 1. **Preparatory phase** ([`PpdSession::prepare`]) — the
//!    Compiler/Linker: semantic analyses, static program dependence
//!    graph, program database, e-block plan (§3.2.1);
//! 2. **Execution phase** ([`PpdSession::execute`]) — the instrumented
//!    object code runs, writing one log per process and building the
//!    parallel dynamic graph (§3.2.2);
//! 3. **Debugging phase** ([`Controller`]) — flowback analysis over a
//!    dynamic graph built incrementally by replaying exactly the log
//!    intervals the user asks about (§3.2.3, §5), plus race detection
//!    (§6) and state restoration / what-if replay (§5.7, [`restore`]).
//!
//! ## Quickstart
//!
//! ```
//! use ppd_core::{Controller, PpdSession, RunConfig};
//! use ppd_analysis::EBlockStrategy;
//!
//! # fn main() -> Result<(), ppd_core::PpdError> {
//! // A bug: `gain` is always 0, so the final division fails.
//! let session = PpdSession::prepare(
//!     ppd_lang::corpus::FLOWBACK_DEMO.source,
//!     EBlockStrategy::per_subroutine(),
//! )?;
//! let mut config = RunConfig::default();
//! config.inputs = vec![vec![42, 10]];
//! let execution = session.execute(config);
//! assert!(execution.outcome.is_failure());
//!
//! // Debugging: flow back from the failure.
//! let mut controller = Controller::new(&session, &execution);
//! let root = controller.start()?;
//! let causes = controller.flowback(root);
//! assert!(!causes.is_empty());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod builder;
pub mod cache;
pub mod controller;
pub mod replay;
pub mod restore;
pub mod session;

#[cfg(test)]
mod tests;

pub use builder::{FeedReport, GraphBuilder, SubstitutedRef};
pub use cache::{CacheStats, ShardedTraceCache, SHARD_COUNT};
pub use controller::{Controller, DeadlockEntry, RaceReport};
pub use replay::{ratio, DebugStats, ReplayEngine};
pub use restore::{faithful_replay, halt_stop_at, shared_state_at, what_if_replay, WhatIfResult};
pub use session::{Execution, PpdSession, RunConfig};

use std::error::Error;
use std::fmt;

/// Errors from the PPD system.
#[derive(Debug)]
pub enum PpdError {
    /// A parse or resolution error in the source program.
    Lang(ppd_lang::LangError),
    /// A debugging-phase failure (missing interval, bad expansion, ...).
    Debugging(String),
    /// A failure saving or loading the on-disk log store.
    Store(String),
}

impl fmt::Display for PpdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PpdError::Lang(e) => write!(f, "language error: {e}"),
            PpdError::Debugging(m) => write!(f, "debugging error: {m}"),
            PpdError::Store(m) => write!(f, "log store error: {m}"),
        }
    }
}

impl Error for PpdError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PpdError::Lang(e) => Some(e),
            PpdError::Debugging(_) | PpdError::Store(_) => None,
        }
    }
}

impl From<ppd_log::SegError> for PpdError {
    fn from(e: ppd_log::SegError) -> Self {
        PpdError::Store(e.to_string())
    }
}

impl From<ppd_lang::LangError> for PpdError {
    fn from(e: ppd_lang::LangError) -> Self {
        PpdError::Lang(e)
    }
}

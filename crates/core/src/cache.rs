//! Sharded concurrent trace cache for the replay engine.
//!
//! Worker threads fanning out over e-block replays (§5's independent
//! need-to-generate units) must share warm traces without serializing
//! on one lock. The cache therefore splits its key space across
//! [`SHARD_COUNT`] shards, each a `Mutex<HashMap>` with its own LRU
//! clock, while the **byte budget stays global**: a single atomic gauge
//! guards admission with a compare-and-swap reservation, so the cache
//! never holds more than `budget` bytes at any instant, from any
//! thread's point of view.
//!
//! Admission protocol for an entry of `b` bytes (`b > budget` entries
//! are never admitted, exactly like the sequential LRU it replaces):
//!
//! 1. try to reserve: CAS the gauge from `cur` to `cur + b` while
//!    `cur + b <= budget`;
//! 2. on failure, evict one least-recently-used entry — from the
//!    inserting key's own shard first, then round-robin across the
//!    others — and retry;
//! 3. once reserved, insert under the shard lock (a racing duplicate
//!    insert of the same key releases the loser's bytes — replay is
//!    deterministic, so both candidates are identical).
//!
//! Step 2 always makes progress (every retry either frees bytes or
//! finds the cache empty, in which case the reservation succeeds), so
//! an insert of a within-budget trace never fails: no lost insertions.
//! Eviction order is per-shard-LRU-first rather than the exact global
//! LRU of the sequential cache — an approximation that only ever costs
//! a re-replay, never correctness.

use ppd_analysis::EBlockId;
use ppd_lang::ProcId;
use ppd_runtime::TraceEvent;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Identity of one dynamic e-block execution.
pub type CacheKey = (ProcId, EBlockId, u64);

/// Number of independently locked shards (power of two).
pub const SHARD_COUNT: usize = 8;

struct Entry {
    events: Arc<Vec<TraceEvent>>,
    bytes: usize,
    last_used: u64,
}

#[derive(Default)]
struct Shard {
    map: HashMap<CacheKey, Entry>,
}

/// Point-in-time counters for [`ShardedTraceCache`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Hits per shard, indexed by shard number.
    pub shard_hits: Vec<u64>,
    /// Misses per shard, indexed by shard number.
    pub shard_misses: Vec<u64>,
    /// Entries evicted to stay under the byte budget.
    pub evictions: u64,
    /// Bytes currently held.
    pub bytes: usize,
    /// Traces currently held.
    pub traces: usize,
}

impl CacheStats {
    /// Total hits across shards.
    pub fn hits(&self) -> u64 {
        self.shard_hits.iter().sum()
    }

    /// Total misses across shards.
    pub fn misses(&self) -> u64 {
        self.shard_misses.iter().sum()
    }
}

/// The sharded, byte-budgeted concurrent trace cache.
pub struct ShardedTraceCache {
    shards: Vec<Mutex<Shard>>,
    hits: Vec<AtomicU64>,
    misses: Vec<AtomicU64>,
    evictions: AtomicU64,
    /// Global byte gauge; only ever raised by a successful CAS
    /// reservation against `budget`, so it never exceeds it.
    bytes: AtomicUsize,
    budget: AtomicUsize,
    enabled: AtomicBool,
    tick: AtomicU64,
}

impl ShardedTraceCache {
    /// An empty cache with the given global byte budget.
    pub fn new(budget: usize) -> ShardedTraceCache {
        ShardedTraceCache {
            shards: (0..SHARD_COUNT).map(|_| Mutex::new(Shard::default())).collect(),
            hits: (0..SHARD_COUNT).map(|_| AtomicU64::new(0)).collect(),
            misses: (0..SHARD_COUNT).map(|_| AtomicU64::new(0)).collect(),
            evictions: AtomicU64::new(0),
            bytes: AtomicUsize::new(0),
            budget: AtomicUsize::new(budget),
            enabled: AtomicBool::new(true),
            tick: AtomicU64::new(0),
        }
    }

    fn shard_of(key: &CacheKey) -> usize {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() as usize) & (SHARD_COUNT - 1)
    }

    /// Looks up a memoized trace, bumping its LRU stamp. Records a hit
    /// or miss against the key's shard; a disabled cache always misses.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<Vec<TraceEvent>>> {
        // Probes are the hottest instrumented site (one per warm
        // replay), so a *hit* records no span — hits are counted in
        // the shard counters and surface as `cache.hits` — and a warm
        // query pays one clock read. Misses record retroactively.
        let probe_start = ppd_obs::spans_enabled().then(ppd_obs::now_ns);
        let s = Self::shard_of(key);
        if !self.enabled.load(Ordering::Relaxed) {
            self.misses[s].fetch_add(1, Ordering::Relaxed);
            if let Some(t0) = probe_start {
                ppd_obs::record_span_since("cache", "probe_disabled", t0);
            }
            return None;
        }
        let tick = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        let mut shard = self.shards[s].lock().unwrap();
        match shard.map.get_mut(key) {
            Some(entry) => {
                entry.last_used = tick;
                self.hits[s].fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&entry.events))
            }
            None => {
                self.misses[s].fetch_add(1, Ordering::Relaxed);
                drop(shard);
                if let Some(t0) = probe_start {
                    ppd_obs::record_span_since("cache", "probe_miss", t0);
                }
                None
            }
        }
    }

    /// Admits a trace of `bytes` bytes, evicting LRU entries as needed.
    /// Returns whether the entry was stored (false only when the cache
    /// is disabled or the single trace exceeds the whole budget).
    pub fn insert(&self, key: CacheKey, events: Arc<Vec<TraceEvent>>, bytes: usize) -> bool {
        let mut span = ppd_obs::span("cache", "insert");
        span.arg("bytes", bytes);
        if !self.enabled.load(Ordering::Relaxed) {
            return false;
        }
        let budget = self.budget.load(Ordering::Relaxed);
        if bytes > budget {
            return false;
        }
        let s = Self::shard_of(&key);
        // Reserve the bytes against the global gauge before touching
        // any shard, evicting until the reservation lands.
        loop {
            let cur = self.bytes.load(Ordering::Relaxed);
            if cur + bytes <= budget {
                if self
                    .bytes
                    .compare_exchange(cur, cur + bytes, Ordering::Relaxed, Ordering::Relaxed)
                    .is_ok()
                {
                    break;
                }
                continue;
            }
            if !self.evict_one(s) {
                // Every shard empty yet the gauge is non-zero can only
                // mean concurrent inserters hold reservations; yield
                // and retry until one of them lands and evicts.
                std::thread::yield_now();
            }
        }
        let tick = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        let mut shard = self.shards[s].lock().unwrap();
        if let Some(old) = shard.map.insert(key, Entry { events, bytes, last_used: tick }) {
            // Racing duplicate: release the replaced entry's bytes.
            self.bytes.fetch_sub(old.bytes, Ordering::Relaxed);
        }
        true
    }

    /// Evicts the LRU entry of `prefer` or, failing that, of the first
    /// non-empty shard after it. Returns false if every shard is empty.
    fn evict_one(&self, prefer: usize) -> bool {
        for off in 0..SHARD_COUNT {
            let s = (prefer + off) & (SHARD_COUNT - 1);
            let mut shard = self.shards[s].lock().unwrap();
            let victim = shard.map.iter().min_by_key(|(_, e)| e.last_used).map(|(k, _)| *k);
            if let Some(victim) = victim {
                let entry = shard.map.remove(&victim).expect("victim present under lock");
                self.bytes.fetch_sub(entry.bytes, Ordering::Relaxed);
                self.evictions.fetch_add(1, Ordering::Relaxed);
                ppd_obs::instant("cache", "evict");
                return true;
            }
        }
        false
    }

    /// Enables or disables the cache; disabling drops every entry.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
        if !enabled {
            self.clear();
        }
    }

    /// Sets the global byte budget, evicting down to it.
    pub fn set_budget(&self, budget: usize) {
        self.budget.store(budget, Ordering::Relaxed);
        while self.bytes.load(Ordering::Relaxed) > budget {
            if !self.evict_one(0) {
                break;
            }
        }
    }

    /// Drops every entry (counters are preserved).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut shard = shard.lock().unwrap();
            for (_, entry) in shard.map.drain() {
                self.bytes.fetch_sub(entry.bytes, Ordering::Relaxed);
            }
        }
    }

    /// Bytes currently held (never exceeds the budget).
    pub fn bytes(&self) -> usize {
        self.bytes.load(Ordering::Relaxed)
    }

    /// The current byte budget.
    pub fn budget(&self) -> usize {
        self.budget.load(Ordering::Relaxed)
    }

    /// Traces currently held across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().map.len()).sum()
    }

    /// Whether the cache holds no traces.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Zeroes the hit/miss/eviction counters without touching held
    /// traces (used by `stats reset` to time a warm query from zero).
    pub fn reset_counters(&self) {
        for h in &self.hits {
            h.store(0, Ordering::Relaxed);
        }
        for m in &self.misses {
            m.store(0, Ordering::Relaxed);
        }
        self.evictions.store(0, Ordering::Relaxed);
    }

    /// Total hits across shards (lock-free; for per-query deltas).
    pub fn hits_total(&self) -> u64 {
        self.hits.iter().map(|h| h.load(Ordering::Relaxed)).sum()
    }

    /// Total misses across shards (lock-free).
    pub fn misses_total(&self) -> u64 {
        self.misses.iter().map(|m| m.load(Ordering::Relaxed)).sum()
    }

    /// Total evictions (lock-free).
    pub fn evictions_total(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// A snapshot of the counters and gauges.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            shard_hits: self.hits.iter().map(|h| h.load(Ordering::Relaxed)).collect(),
            shard_misses: self.misses.iter().map(|m| m.load(Ordering::Relaxed)).collect(),
            evictions: self.evictions.load(Ordering::Relaxed),
            bytes: self.bytes(),
            traces: self.len(),
        }
    }
}

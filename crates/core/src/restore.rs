//! State restoration and what-if replay (§5.7).
//!
//! "The accumulation of the information carried by all the postlogs from
//! the first postlog up to postlog(i) is the same as the information
//! carried by the program state at the time at which postlog(i) is made."
//! This module rebuilds shared-memory state at any logical time from the
//! logs, and supports the paper's experiment of changing variable values
//! and re-running from the same point.

use crate::replay::ReplayEngine;
use crate::session::{Execution, PpdSession};
use crate::PpdError;
use ppd_lang::{ProcId, Value, VarId};
use ppd_log::{IntervalRef, LogEntry};
use ppd_runtime::{ReplayResult, TraceEvent, Tracer};

/// Rebuilds the values of all shared variables at logical time `t` by
/// replaying the logs' value records in time order.
pub fn shared_state_at(session: &PpdSession, execution: &Execution, t: u64) -> Vec<Value> {
    let rp = session.rp();
    // Initial shared state.
    let mut state: Vec<Value> = rp.vars[..rp.shared_count as usize]
        .iter()
        .map(|v| match v.size {
            Some(n) => Value::Array(vec![0; n]),
            None => Value::Int(v.init.unwrap_or(0)),
        })
        .collect();

    // Merge all processes' entries by timestamp and apply shared values.
    let mut entries: Vec<&LogEntry> = Vec::new();
    for p in 0..execution.logs.process_count() {
        entries.extend(execution.logs.log(ProcId(p as u32)).entries.iter());
    }
    entries.sort_by_key(|e| e.time());
    for e in entries {
        if e.time() > t {
            break;
        }
        let values = match e {
            LogEntry::Prelog { values, .. }
            | LogEntry::Postlog { values, .. }
            | LogEntry::SharedSnapshot { values, .. } => values,
            _ => continue,
        };
        for (var, value) in values {
            if rp.is_shared(*var) {
                state[var.index()] = value.clone();
            }
        }
    }
    state
}

/// Result of a what-if replay.
#[derive(Debug)]
pub struct WhatIfResult {
    /// How the modified replay ended.
    pub result: ReplayResult,
    /// The trace of the modified execution.
    pub events: Vec<TraceEvent>,
}

/// Replays `interval` with some variables overridden — "the user could
/// change the values of variables and re-start the program from the same
/// point to see the effect of these changes on program behavior" (§5.7).
///
/// The replay runs in *what-if* mode: logged shared snapshots are not
/// re-applied (they would overwrite the modification), and nested calls
/// are expanded rather than substituted (their logged postlogs describe
/// the unmodified execution).
///
/// # Errors
///
/// Currently infallible in setup; kept fallible for interface stability.
pub fn what_if_replay(
    session: &PpdSession,
    execution: &Execution,
    interval: IntervalRef,
    changes: &[(VarId, Value)],
) -> Result<WhatIfResult, PpdError> {
    ReplayEngine::new(session, execution).what_if(interval, changes)
}

/// Replays `interval` faithfully and streams its events into `tracer` —
/// a convenience for examining "the effect" baseline before a what-if.
/// If the original execution halted mid-interval at a breakpoint or
/// deadlock, the replay stops at the same statement.
pub fn faithful_replay(
    session: &PpdSession,
    execution: &Execution,
    interval: IntervalRef,
    tracer: &mut dyn Tracer,
) -> ReplayResult {
    ReplayEngine::new(session, execution).faithful(interval, tracer)
}

/// Where a replay of `interval` must stop to mirror the original halt:
/// the breakpoint statement (if this process hit it) or the statement a
/// deadlocked process is blocked at. `None` for completed/failed runs —
/// failures re-occur naturally during replay.
pub fn halt_stop_at(execution: &Execution, interval: IntervalRef) -> Option<ppd_lang::StmtId> {
    use ppd_runtime::Outcome;
    // Only intervals still open at the halt stop early: a *completed*
    // interval may well contain the breakpoint statement (e.g. earlier
    // loop iterations) and must replay in full.
    if interval.postlog_pos.is_some() {
        return None;
    }
    match &execution.outcome {
        Outcome::Breakpoint { proc, stmt } if *proc == interval.proc => Some(*stmt),
        Outcome::Deadlock { blocked } => {
            blocked.iter().find(|(p, _, _)| *p == interval.proc).map(|&(_, _, stmt)| stmt)
        }
        _ => None,
    }
}

//! The preparatory and execution phases (§3.2.1, §3.2.2).
//!
//! [`PpdSession::prepare`] is the paper's Compiler/Linker: it parses and
//! resolves the program, runs the semantic analyses, computes the static
//! program dependence graph, the program database, and the e-block plan.
//! [`PpdSession::execute`] is the execution phase: it runs the program as
//! instrumented *object code*, producing output, per-process logs, and
//! the parallel dynamic graph.

use crate::PpdError;
use ppd_analysis::{Analyses, AnalysisConfig, EBlockPlan, EBlockStrategy};
use ppd_graph::{ParallelGraph, StaticGraph};
use ppd_lang::{ProcId, ResolvedProgram};
use ppd_log::LogStore;
use ppd_runtime::{ExecConfig, LogMeter, Machine, NullTracer, Outcome, SchedulerSpec, Tracer};

/// Parameters of one execution-phase run.
#[derive(Debug, Clone, Default, serde::Serialize, serde::Deserialize)]
pub struct RunConfig {
    /// Scheduling policy (reproducible).
    pub scheduler: SchedulerSpec,
    /// Per-process input streams.
    pub inputs: Vec<Vec<i64>>,
    /// Step budget; `None` uses the runtime default.
    pub max_steps: Option<u64>,
    /// Statements that halt execution when reached (user-intervention
    /// halt, §3.2.2): the debugging phase then starts from the open
    /// intervals, exactly as for a failure.
    pub breakpoints: Vec<ppd_lang::StmtId>,
}

impl RunConfig {
    fn to_exec(&self, build_pgraph: bool) -> ExecConfig {
        let mut cfg = ExecConfig {
            scheduler: self.scheduler,
            inputs: self.inputs.clone(),
            build_parallel_graph: build_pgraph,
            breakpoints: self.breakpoints.clone(),
            ..ExecConfig::default()
        };
        if let Some(m) = self.max_steps {
            cfg.max_steps = m;
        }
        cfg
    }
}

/// Everything the execution phase leaves behind for debugging.
///
/// Serializable: the paper's logs live on disk between the execution
/// and debugging phases; [`Execution::to_json`]/[`Execution::from_json`]
/// persist the whole execution record. A loaded execution must be
/// debugged against a session prepared from the *same source and
/// e-block strategy* (the plan defines what the logs mean).
#[derive(Debug, serde::Serialize, serde::Deserialize)]
pub struct Execution {
    /// How the run ended.
    pub outcome: Outcome,
    /// Program output in global order.
    pub output: Vec<(ProcId, i64)>,
    /// One log per process (§5.6).
    pub logs: LogStore,
    /// The parallel dynamic graph, built during execution (§6.1).
    pub pgraph: ParallelGraph,
    /// Scheduler steps consumed.
    pub steps: u64,
    /// The configuration that produced this execution (needed to
    /// reproduce it).
    pub config: RunConfig,
}

/// Everything `run.json` carries next to the segments: the execution
/// record minus the logs (which live in the `.seg` files).
#[derive(serde::Serialize, serde::Deserialize)]
struct RunRecord {
    outcome: Outcome,
    output: Vec<(ProcId, i64)>,
    pgraph: ParallelGraph,
    steps: u64,
    config: RunConfig,
}

/// Name of the sidecar record in a log directory.
const RUN_RECORD_NAME: &str = "run.json";

fn write_run_record(dir: &std::path::Path, record: &RunRecord) -> Result<(), PpdError> {
    let json = serde_json::to_string(record)
        .map_err(|e| PpdError::Store(format!("serialize {RUN_RECORD_NAME}: {e}")))?;
    std::fs::write(dir.join(RUN_RECORD_NAME), json)
        .map_err(|e| PpdError::Store(format!("write {RUN_RECORD_NAME}: {e}")))
}

impl Execution {
    /// Serializes the execution record (outcome, output, logs, parallel
    /// graph, config) for offline debugging.
    ///
    /// # Errors
    ///
    /// Propagates serialization failures.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string(self)
    }

    /// Loads a previously saved execution record.
    ///
    /// # Errors
    ///
    /// Returns a deserialization error on malformed input.
    pub fn from_json(json: &str) -> Result<Execution, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Persists this execution to `dir` as a segmented log store (one
    /// `.seg` file per sealed segment, CRC-guarded footers) plus a
    /// `run.json` sidecar holding everything but the logs. The
    /// directory can be reopened with [`Execution::load_dir`] — or by
    /// `ppd debug/races/lint --log-dir` — without rescanning the logs.
    ///
    /// `segment_bytes` is the per-segment payload capacity; `0` uses
    /// [`ppd_log::DEFAULT_SEGMENT_BYTES`].
    ///
    /// # Errors
    ///
    /// Returns [`PpdError::Store`] on IO or serialization failure.
    pub fn save_dir(
        &self,
        dir: &std::path::Path,
        segment_bytes: usize,
    ) -> Result<ppd_log::SinkReport, PpdError> {
        self.save_dir_with(dir, segment_bytes, ppd_log::SegmentFormat::default())
    }

    /// [`save_dir`](Self::save_dir) with an explicit segment payload
    /// format — [`ppd_log::SegmentFormat::V2Compressed`] for
    /// `--compress` stores.
    ///
    /// # Errors
    ///
    /// As [`save_dir`](Self::save_dir).
    pub fn save_dir_with(
        &self,
        dir: &std::path::Path,
        segment_bytes: usize,
        format: ppd_log::SegmentFormat,
    ) -> Result<ppd_log::SinkReport, PpdError> {
        let report = self.logs.write_dir_with(dir, segment_bytes, format)?;
        let record = RunRecord {
            outcome: self.outcome.clone(),
            output: self.output.clone(),
            pgraph: self.pgraph.clone(),
            steps: self.steps,
            config: self.config.clone(),
        };
        write_run_record(dir, &record)?;
        Ok(report)
    }

    /// Opens an execution saved by [`Execution::save_dir`] (or streamed
    /// by [`PpdSession::execute_streaming`]): the logs come back
    /// segment-backed — `mmap` + footer decode, no full rescan — and
    /// entries decode lazily per process as debugging touches them.
    ///
    /// # Errors
    ///
    /// Returns [`PpdError::Store`] if the directory is missing, the
    /// store is corrupt, or `run.json` is absent/malformed.
    pub fn load_dir(dir: &std::path::Path) -> Result<Execution, PpdError> {
        let logs = LogStore::open_dir(dir)?;
        let path = dir.join(RUN_RECORD_NAME);
        let json = std::fs::read_to_string(&path)
            .map_err(|e| PpdError::Store(format!("read {}: {e}", path.display())))?;
        let record: RunRecord = serde_json::from_str(&json)
            .map_err(|e| PpdError::Store(format!("parse {}: {e}", path.display())))?;
        Ok(Execution {
            outcome: record.outcome,
            output: record.output,
            logs,
            pgraph: record.pgraph,
            steps: record.steps,
            config: record.config,
        })
    }

    /// Re-opens this execution's log directory in place, picking up
    /// segments (and live-tail entries) a still-running program has
    /// appended since [`load_dir`](Self::load_dir): sealed segments
    /// already loaded are reused, tail scans resume from their
    /// high-water marks, and a built interval index is extended rather
    /// than rebuilt. Returns `None` when the logs are in-memory.
    ///
    /// # Errors
    ///
    /// Returns [`PpdError::Store`] if the directory can no longer be
    /// opened.
    pub fn refresh_logs(&mut self) -> Result<Option<ppd_log::RefreshStats>, PpdError> {
        Ok(self.logs.refresh()?)
    }
}

/// A prepared program: the output of the paper's preparatory phase.
#[derive(Debug)]
pub struct PpdSession {
    rp: ResolvedProgram,
    analyses: Analyses,
    plan: EBlockPlan,
    static_graph: StaticGraph,
}

impl PpdSession {
    /// Compiles `source` and runs the preparatory phase under `strategy`.
    ///
    /// # Errors
    ///
    /// Returns parse/resolution errors from the language front end.
    ///
    /// # Examples
    ///
    /// ```
    /// use ppd_core::{PpdSession, RunConfig};
    /// use ppd_analysis::EBlockStrategy;
    ///
    /// # fn main() -> Result<(), ppd_core::PpdError> {
    /// let session = PpdSession::prepare(
    ///     "shared int x; process Main { x = 41 + 1; print(x); }",
    ///     EBlockStrategy::per_subroutine(),
    /// )?;
    /// let exec = session.execute(RunConfig::default());
    /// assert!(exec.outcome.is_success());
    /// # Ok(())
    /// # }
    /// ```
    pub fn prepare(source: &str, strategy: EBlockStrategy) -> Result<PpdSession, PpdError> {
        Self::prepare_with(source, strategy, AnalysisConfig::default())
    }

    /// Like [`prepare`](Self::prepare) with explicit analysis knobs
    /// (e.g. disabling the MHP snapshot trim to measure its effect).
    ///
    /// # Errors
    ///
    /// Returns parse/resolution errors from the language front end.
    pub fn prepare_with(
        source: &str,
        strategy: EBlockStrategy,
        config: AnalysisConfig,
    ) -> Result<PpdSession, PpdError> {
        let rp = ppd_lang::compile(source).map_err(PpdError::Lang)?;
        Ok(Self::from_resolved_with(rp, strategy, config))
    }

    /// Runs the preparatory phase on an already-resolved program.
    pub fn from_resolved(rp: ResolvedProgram, strategy: EBlockStrategy) -> PpdSession {
        Self::from_resolved_with(rp, strategy, AnalysisConfig::default())
    }

    /// [`from_resolved`](Self::from_resolved) with explicit analysis knobs.
    pub fn from_resolved_with(
        rp: ResolvedProgram,
        strategy: EBlockStrategy,
        config: AnalysisConfig,
    ) -> PpdSession {
        let analyses = Analyses::run_with(&rp, config);
        let plan = analyses.eblock_plan(&rp, strategy);
        let static_graph = StaticGraph::build(&rp, &analyses);
        PpdSession { rp, analyses, plan, static_graph }
    }

    /// The resolved program.
    pub fn rp(&self) -> &ResolvedProgram {
        &self.rp
    }

    /// The preparatory-phase analyses.
    pub fn analyses(&self) -> &Analyses {
        &self.analyses
    }

    /// The e-block plan in force.
    pub fn plan(&self) -> &EBlockPlan {
        &self.plan
    }

    /// The static program dependence graph (§4.1).
    pub fn static_graph(&self) -> &StaticGraph {
        &self.static_graph
    }

    /// Execution phase (§3.2.2): runs the instrumented object code,
    /// producing logs and the parallel dynamic graph.
    pub fn execute(&self, config: RunConfig) -> Execution {
        self.execute_traced(config, &mut NullTracer)
    }

    /// Like [`execute`](Self::execute) but also streams trace events into
    /// `tracer` (used by tests and the benchmark harness; the paper's
    /// object code does *not* trace — that is the point).
    pub fn execute_traced(&self, config: RunConfig, tracer: &mut dyn Tracer) -> Execution {
        let machine =
            Machine::new(&self.rp, &self.analyses, Some(&self.plan), config.to_exec(true));
        let result = machine.run(tracer);
        Execution {
            outcome: result.outcome,
            output: result.output,
            logs: result.logs.expect("logging enabled"),
            pgraph: result.pgraph.expect("parallel graph enabled"),
            steps: result.steps,
            config,
        }
    }

    /// Execution phase with a streaming log sink (§5.6 out-of-core
    /// logs): every log record is teed into a segmented on-disk store
    /// in `dir` *while the program runs* — full segments are sealed and
    /// flushed mid-execution, not at the end. When the run finishes,
    /// a `run.json` sidecar is written and the execution is returned
    /// with its logs **reopened from the directory**, so subsequent
    /// debugging exercises the mapped, lazily-decoded path. The
    /// directory can also be reopened later with
    /// [`Execution::load_dir`].
    ///
    /// `segment_bytes` as in [`Execution::save_dir`].
    ///
    /// # Errors
    ///
    /// Returns [`PpdError::Store`] if the sink hit an IO error during
    /// the run or the finished store cannot be reopened.
    pub fn execute_streaming(
        &self,
        config: RunConfig,
        dir: &std::path::Path,
        segment_bytes: usize,
    ) -> Result<Execution, PpdError> {
        self.execute_streaming_with(config, dir, segment_bytes, false)
    }

    /// [`execute_streaming`](Self::execute_streaming) with block
    /// compression toggled: when `compress` is set, the sink seals
    /// ~256 KiB payload blocks through the LZ77 compressor as the
    /// program runs, so the store never exists uncompressed on disk.
    ///
    /// # Errors
    ///
    /// As [`execute_streaming`](Self::execute_streaming).
    pub fn execute_streaming_with(
        &self,
        config: RunConfig,
        dir: &std::path::Path,
        segment_bytes: usize,
        compress: bool,
    ) -> Result<Execution, PpdError> {
        let mut exec = config.to_exec(true);
        exec.log_dir = Some(dir.to_path_buf());
        exec.segment_bytes = segment_bytes;
        exec.compress = compress;
        let machine = Machine::new(&self.rp, &self.analyses, Some(&self.plan), exec);
        let result = machine.run(&mut NullTracer);
        if let Some(e) = result.sink_error {
            return Err(PpdError::Store(e));
        }
        let execution = Execution {
            outcome: result.outcome,
            output: result.output,
            logs: result.logs.expect("logging enabled"),
            pgraph: result.pgraph.expect("parallel graph enabled"),
            steps: result.steps,
            config,
        };
        let record = RunRecord {
            outcome: execution.outcome.clone(),
            output: execution.output.clone(),
            pgraph: execution.pgraph.clone(),
            steps: execution.steps,
            config: execution.config.clone(),
        };
        write_run_record(dir, &record)?;
        let logs = LogStore::open_dir(dir)?;
        Ok(Execution { logs, ..execution })
    }

    /// Runs the program *uninstrumented* — no logs, no parallel graph —
    /// the baseline of the overhead experiment E1.
    pub fn execute_baseline(&self, config: RunConfig) -> (Outcome, Vec<(ProcId, i64)>, u64) {
        let machine = Machine::new(&self.rp, &self.analyses, None, config.to_exec(false));
        let result = machine.run(&mut NullTracer);
        (result.outcome, result.output, result.steps)
    }

    /// Benchmark entry point: runs with logging and/or parallel-graph
    /// construction individually toggled, so the E1 experiment can
    /// attribute overhead to each instrument.
    pub fn measure_run(&self, config: RunConfig, logging: bool, pgraph: bool) -> Outcome {
        let plan = logging.then_some(&self.plan);
        let machine = Machine::new(&self.rp, &self.analyses, plan, config.to_exec(pgraph));
        machine.run(&mut NullTracer).outcome
    }

    /// Runs the instrumented object code with the §7 logging meter
    /// attached: every prelog/postlog/snapshot write is timed and sized,
    /// attributed per e-block. Used by experiment E9; the metering
    /// clock reads perturb the run, so overhead *ratios* come from
    /// [`measure_run`](Self::measure_run) pairs instead.
    pub fn execute_metered(&self, config: RunConfig) -> (Outcome, LogMeter) {
        let mut exec = config.to_exec(false);
        exec.meter_logging = true;
        let machine = Machine::new(&self.rp, &self.analyses, Some(&self.plan), exec);
        let result = machine.run(&mut NullTracer);
        (result.outcome, result.log_meter.expect("metering enabled with a plan"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepare_and_execute_quickstart() {
        let session = PpdSession::prepare(
            ppd_lang::corpus::PRODUCER_CONSUMER.source,
            EBlockStrategy::per_subroutine(),
        )
        .unwrap();
        let exec = session.execute(RunConfig::default());
        assert!(exec.outcome.is_success());
        assert_eq!(exec.output.last().map(|&(_, v)| v), Some(36));
        assert!(exec.logs.total_entries() > 0);
        assert!(!exec.pgraph.nodes().is_empty());
    }

    #[test]
    fn baseline_matches_instrumented_output() {
        let session = PpdSession::prepare(
            ppd_lang::corpus::QUICKSORT.source,
            EBlockStrategy::per_subroutine(),
        )
        .unwrap();
        let exec = session.execute(RunConfig::default());
        let (outcome, output, _) = session.execute_baseline(RunConfig::default());
        assert_eq!(exec.outcome, outcome);
        assert_eq!(exec.output, output);
    }

    #[test]
    fn prepare_rejects_invalid_source() {
        assert!(PpdSession::prepare("process M { x = 1; }", EBlockStrategy::default()).is_err());
    }

    #[test]
    fn save_dir_load_dir_round_trips_everything() {
        let session = PpdSession::prepare(
            ppd_lang::corpus::PRODUCER_CONSUMER.source,
            EBlockStrategy::per_subroutine(),
        )
        .unwrap();
        let exec = session.execute(RunConfig::default());
        let dir = std::env::temp_dir().join(format!("ppd-session-save-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        exec.save_dir(&dir, 512).unwrap();
        let loaded = Execution::load_dir(&dir).unwrap();
        assert!(loaded.logs.is_segmented());
        assert_eq!(loaded.outcome, exec.outcome);
        assert_eq!(loaded.output, exec.output);
        assert_eq!(loaded.steps, exec.steps);
        assert_eq!(loaded.logs.total_entries(), exec.logs.total_entries());
        for p in 0..exec.logs.process_count() {
            let p = ProcId(p as u32);
            assert_eq!(loaded.logs.log(p), exec.logs.log(p));
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn execute_streaming_matches_in_memory_run() {
        let session = PpdSession::prepare(
            ppd_lang::corpus::PRODUCER_CONSUMER.source,
            EBlockStrategy::per_subroutine(),
        )
        .unwrap();
        let mem = session.execute(RunConfig::default());
        let dir = std::env::temp_dir().join(format!("ppd-session-stream-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let streamed = session.execute_streaming(RunConfig::default(), &dir, 256).unwrap();
        assert!(streamed.logs.is_segmented(), "streamed logs reopen segment-backed");
        assert_eq!(streamed.outcome, mem.outcome);
        assert_eq!(streamed.output, mem.output);
        for p in 0..mem.logs.process_count() {
            let p = ProcId(p as u32);
            assert_eq!(streamed.logs.log(p), mem.logs.log(p), "identical entries for {p:?}");
        }
        // The sidecar makes the directory self-contained.
        let reloaded = Execution::load_dir(&dir).unwrap();
        assert_eq!(reloaded.output, mem.output);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compressed_streaming_matches_raw_run() {
        let session = PpdSession::prepare(
            ppd_lang::corpus::PRODUCER_CONSUMER.source,
            EBlockStrategy::per_subroutine(),
        )
        .unwrap();
        let mem = session.execute(RunConfig::default());
        let dir = std::env::temp_dir().join(format!("ppd-session-zstream-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let streamed =
            session.execute_streaming_with(RunConfig::default(), &dir, 256, true).unwrap();
        assert!(streamed.logs.is_segmented());
        let seg = streamed.logs.segmented().unwrap();
        assert!(
            seg.segments(ppd_lang::ProcId(0)).all(|s| s.version == 2),
            "compressed streaming writes v2 segments"
        );
        assert_eq!(streamed.outcome, mem.outcome);
        for p in 0..mem.logs.process_count() {
            let p = ProcId(p as u32);
            assert_eq!(streamed.logs.log(p), mem.logs.log(p), "identical entries for {p:?}");
            assert_eq!(streamed.logs.intervals(p), mem.logs.intervals(p));
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn refresh_logs_is_a_noop_for_memory_and_cheap_for_dirs() {
        let session = PpdSession::prepare(
            ppd_lang::corpus::PRODUCER_CONSUMER.source,
            EBlockStrategy::per_subroutine(),
        )
        .unwrap();
        let mut mem = session.execute(RunConfig::default());
        assert!(mem.refresh_logs().unwrap().is_none());
        let dir = std::env::temp_dir().join(format!("ppd-session-refresh-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        mem.save_dir(&dir, 512).unwrap();
        let mut loaded = Execution::load_dir(&dir).unwrap();
        let before = loaded.logs.total_entries();
        let stats = loaded.refresh_logs().unwrap().expect("segment-backed");
        assert_eq!(stats.segments_parsed, 0, "unchanged dir reuses every sealed segment");
        assert!(stats.segments_reused > 0);
        assert_eq!(loaded.logs.total_entries(), before);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn execution_remembers_config_for_reproduction() {
        let session =
            PpdSession::prepare(ppd_lang::corpus::FIG_4_1.source, EBlockStrategy::per_subroutine())
                .unwrap();
        let cfg = RunConfig {
            scheduler: SchedulerSpec::Random { seed: 5 },
            inputs: vec![vec![5, 3, 2]],
            ..RunConfig::default()
        };
        let e1 = session.execute(cfg);
        let e2 = session.execute(e1.config.clone());
        assert_eq!(e1.output, e2.output);
        assert_eq!(e1.steps, e2.steps);
    }
}

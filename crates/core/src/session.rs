//! The preparatory and execution phases (§3.2.1, §3.2.2).
//!
//! [`PpdSession::prepare`] is the paper's Compiler/Linker: it parses and
//! resolves the program, runs the semantic analyses, computes the static
//! program dependence graph, the program database, and the e-block plan.
//! [`PpdSession::execute`] is the execution phase: it runs the program as
//! instrumented *object code*, producing output, per-process logs, and
//! the parallel dynamic graph.

use crate::PpdError;
use ppd_analysis::{Analyses, AnalysisConfig, EBlockPlan, EBlockStrategy};
use ppd_graph::{ParallelGraph, StaticGraph};
use ppd_lang::{ProcId, ResolvedProgram};
use ppd_log::LogStore;
use ppd_runtime::{ExecConfig, LogMeter, Machine, NullTracer, Outcome, SchedulerSpec, Tracer};

/// Parameters of one execution-phase run.
#[derive(Debug, Clone, Default, serde::Serialize, serde::Deserialize)]
pub struct RunConfig {
    /// Scheduling policy (reproducible).
    pub scheduler: SchedulerSpec,
    /// Per-process input streams.
    pub inputs: Vec<Vec<i64>>,
    /// Step budget; `None` uses the runtime default.
    pub max_steps: Option<u64>,
    /// Statements that halt execution when reached (user-intervention
    /// halt, §3.2.2): the debugging phase then starts from the open
    /// intervals, exactly as for a failure.
    pub breakpoints: Vec<ppd_lang::StmtId>,
}

impl RunConfig {
    fn to_exec(&self, build_pgraph: bool) -> ExecConfig {
        let mut cfg = ExecConfig {
            scheduler: self.scheduler,
            inputs: self.inputs.clone(),
            build_parallel_graph: build_pgraph,
            breakpoints: self.breakpoints.clone(),
            ..ExecConfig::default()
        };
        if let Some(m) = self.max_steps {
            cfg.max_steps = m;
        }
        cfg
    }
}

/// Everything the execution phase leaves behind for debugging.
///
/// Serializable: the paper's logs live on disk between the execution
/// and debugging phases; [`Execution::to_json`]/[`Execution::from_json`]
/// persist the whole execution record. A loaded execution must be
/// debugged against a session prepared from the *same source and
/// e-block strategy* (the plan defines what the logs mean).
#[derive(Debug, serde::Serialize, serde::Deserialize)]
pub struct Execution {
    /// How the run ended.
    pub outcome: Outcome,
    /// Program output in global order.
    pub output: Vec<(ProcId, i64)>,
    /// One log per process (§5.6).
    pub logs: LogStore,
    /// The parallel dynamic graph, built during execution (§6.1).
    pub pgraph: ParallelGraph,
    /// Scheduler steps consumed.
    pub steps: u64,
    /// The configuration that produced this execution (needed to
    /// reproduce it).
    pub config: RunConfig,
}

impl Execution {
    /// Serializes the execution record (outcome, output, logs, parallel
    /// graph, config) for offline debugging.
    ///
    /// # Errors
    ///
    /// Propagates serialization failures.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string(self)
    }

    /// Loads a previously saved execution record.
    ///
    /// # Errors
    ///
    /// Returns a deserialization error on malformed input.
    pub fn from_json(json: &str) -> Result<Execution, serde_json::Error> {
        serde_json::from_str(json)
    }
}

/// A prepared program: the output of the paper's preparatory phase.
#[derive(Debug)]
pub struct PpdSession {
    rp: ResolvedProgram,
    analyses: Analyses,
    plan: EBlockPlan,
    static_graph: StaticGraph,
}

impl PpdSession {
    /// Compiles `source` and runs the preparatory phase under `strategy`.
    ///
    /// # Errors
    ///
    /// Returns parse/resolution errors from the language front end.
    ///
    /// # Examples
    ///
    /// ```
    /// use ppd_core::{PpdSession, RunConfig};
    /// use ppd_analysis::EBlockStrategy;
    ///
    /// # fn main() -> Result<(), ppd_core::PpdError> {
    /// let session = PpdSession::prepare(
    ///     "shared int x; process Main { x = 41 + 1; print(x); }",
    ///     EBlockStrategy::per_subroutine(),
    /// )?;
    /// let exec = session.execute(RunConfig::default());
    /// assert!(exec.outcome.is_success());
    /// # Ok(())
    /// # }
    /// ```
    pub fn prepare(source: &str, strategy: EBlockStrategy) -> Result<PpdSession, PpdError> {
        Self::prepare_with(source, strategy, AnalysisConfig::default())
    }

    /// Like [`prepare`](Self::prepare) with explicit analysis knobs
    /// (e.g. disabling the MHP snapshot trim to measure its effect).
    ///
    /// # Errors
    ///
    /// Returns parse/resolution errors from the language front end.
    pub fn prepare_with(
        source: &str,
        strategy: EBlockStrategy,
        config: AnalysisConfig,
    ) -> Result<PpdSession, PpdError> {
        let rp = ppd_lang::compile(source).map_err(PpdError::Lang)?;
        Ok(Self::from_resolved_with(rp, strategy, config))
    }

    /// Runs the preparatory phase on an already-resolved program.
    pub fn from_resolved(rp: ResolvedProgram, strategy: EBlockStrategy) -> PpdSession {
        Self::from_resolved_with(rp, strategy, AnalysisConfig::default())
    }

    /// [`from_resolved`](Self::from_resolved) with explicit analysis knobs.
    pub fn from_resolved_with(
        rp: ResolvedProgram,
        strategy: EBlockStrategy,
        config: AnalysisConfig,
    ) -> PpdSession {
        let analyses = Analyses::run_with(&rp, config);
        let plan = analyses.eblock_plan(&rp, strategy);
        let static_graph = StaticGraph::build(&rp, &analyses);
        PpdSession { rp, analyses, plan, static_graph }
    }

    /// The resolved program.
    pub fn rp(&self) -> &ResolvedProgram {
        &self.rp
    }

    /// The preparatory-phase analyses.
    pub fn analyses(&self) -> &Analyses {
        &self.analyses
    }

    /// The e-block plan in force.
    pub fn plan(&self) -> &EBlockPlan {
        &self.plan
    }

    /// The static program dependence graph (§4.1).
    pub fn static_graph(&self) -> &StaticGraph {
        &self.static_graph
    }

    /// Execution phase (§3.2.2): runs the instrumented object code,
    /// producing logs and the parallel dynamic graph.
    pub fn execute(&self, config: RunConfig) -> Execution {
        self.execute_traced(config, &mut NullTracer)
    }

    /// Like [`execute`](Self::execute) but also streams trace events into
    /// `tracer` (used by tests and the benchmark harness; the paper's
    /// object code does *not* trace — that is the point).
    pub fn execute_traced(&self, config: RunConfig, tracer: &mut dyn Tracer) -> Execution {
        let machine =
            Machine::new(&self.rp, &self.analyses, Some(&self.plan), config.to_exec(true));
        let result = machine.run(tracer);
        Execution {
            outcome: result.outcome,
            output: result.output,
            logs: result.logs.expect("logging enabled"),
            pgraph: result.pgraph.expect("parallel graph enabled"),
            steps: result.steps,
            config,
        }
    }

    /// Runs the program *uninstrumented* — no logs, no parallel graph —
    /// the baseline of the overhead experiment E1.
    pub fn execute_baseline(&self, config: RunConfig) -> (Outcome, Vec<(ProcId, i64)>, u64) {
        let machine = Machine::new(&self.rp, &self.analyses, None, config.to_exec(false));
        let result = machine.run(&mut NullTracer);
        (result.outcome, result.output, result.steps)
    }

    /// Benchmark entry point: runs with logging and/or parallel-graph
    /// construction individually toggled, so the E1 experiment can
    /// attribute overhead to each instrument.
    pub fn measure_run(&self, config: RunConfig, logging: bool, pgraph: bool) -> Outcome {
        let plan = logging.then_some(&self.plan);
        let machine = Machine::new(&self.rp, &self.analyses, plan, config.to_exec(pgraph));
        machine.run(&mut NullTracer).outcome
    }

    /// Runs the instrumented object code with the §7 logging meter
    /// attached: every prelog/postlog/snapshot write is timed and sized,
    /// attributed per e-block. Used by experiment E9; the metering
    /// clock reads perturb the run, so overhead *ratios* come from
    /// [`measure_run`](Self::measure_run) pairs instead.
    pub fn execute_metered(&self, config: RunConfig) -> (Outcome, LogMeter) {
        let mut exec = config.to_exec(false);
        exec.meter_logging = true;
        let machine = Machine::new(&self.rp, &self.analyses, Some(&self.plan), exec);
        let result = machine.run(&mut NullTracer);
        (result.outcome, result.log_meter.expect("metering enabled with a plan"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepare_and_execute_quickstart() {
        let session = PpdSession::prepare(
            ppd_lang::corpus::PRODUCER_CONSUMER.source,
            EBlockStrategy::per_subroutine(),
        )
        .unwrap();
        let exec = session.execute(RunConfig::default());
        assert!(exec.outcome.is_success());
        assert_eq!(exec.output.last().map(|&(_, v)| v), Some(36));
        assert!(exec.logs.total_entries() > 0);
        assert!(!exec.pgraph.nodes().is_empty());
    }

    #[test]
    fn baseline_matches_instrumented_output() {
        let session = PpdSession::prepare(
            ppd_lang::corpus::QUICKSORT.source,
            EBlockStrategy::per_subroutine(),
        )
        .unwrap();
        let exec = session.execute(RunConfig::default());
        let (outcome, output, _) = session.execute_baseline(RunConfig::default());
        assert_eq!(exec.outcome, outcome);
        assert_eq!(exec.output, output);
    }

    #[test]
    fn prepare_rejects_invalid_source() {
        assert!(PpdSession::prepare("process M { x = 1; }", EBlockStrategy::default()).is_err());
    }

    #[test]
    fn execution_remembers_config_for_reproduction() {
        let session =
            PpdSession::prepare(ppd_lang::corpus::FIG_4_1.source, EBlockStrategy::per_subroutine())
                .unwrap();
        let cfg = RunConfig {
            scheduler: SchedulerSpec::Random { seed: 5 },
            inputs: vec![vec![5, 3, 2]],
            ..RunConfig::default()
        };
        let e1 = session.execute(cfg);
        let e2 = session.execute(e1.config.clone());
        assert_eq!(e1.output, e2.output);
        assert_eq!(e1.steps, e2.steps);
    }
}

//! The PPD Controller — the debugging phase (§3.2.3, §5.3, §5.6, §6).
//!
//! When the program halts, the Controller locates the last prelog whose
//! postlog was never written, replays that e-block under the emulation
//! package, and presents a dynamic-graph fragment rooted at the last
//! statement executed. The user then walks dependences backward
//! (flowback); when a requested dependence needs traces that were never
//! generated, the Controller replays exactly the log interval that can
//! produce them — incremental tracing.

use crate::builder::{GraphBuilder, SubstitutedRef};
use crate::replay::{DebugStats, ReplayEngine};
use crate::session::{Execution, PpdSession};
use crate::PpdError;
use ppd_analysis::VarSetRepr;
use ppd_graph::{detect_races_par, DynEdgeKind, DynNodeId, DynamicGraph, Race, VectorClocks};
use ppd_lang::{ProcId, VarId};
use ppd_log::{IntervalRef, LogEntry};
use ppd_runtime::Outcome;
use std::collections::HashMap;

/// A race found in the execution instance, with human-readable context.
#[derive(Debug, Clone)]
pub struct RaceReport {
    /// The underlying race (edge pair + conflict kind).
    pub race: Race,
    /// Rendered description with variable and process names.
    pub description: String,
}

/// One blocked process in a deadlock report.
#[derive(Debug, Clone)]
pub struct DeadlockEntry {
    /// The blocked process.
    pub proc: ProcId,
    /// Its name.
    pub proc_name: String,
    /// What it is waiting for.
    pub waiting_for: String,
    /// The statement it is blocked at.
    pub stmt: ppd_lang::StmtId,
}

/// The PPD Controller.
pub struct Controller<'p> {
    session: &'p PpdSession,
    execution: &'p Execution,
    builder: GraphBuilder<'p>,
    /// All replays go through here: memoization, interval index, stats.
    engine: ReplayEngine<'p>,
    /// For each unexpanded node: the interval whose replay produced it,
    /// plus the e-block/ordinal key of the nested interval to expand.
    expansions: HashMap<DynNodeId, (IntervalRef, SubstitutedRef)>,
    /// Intervals already materialized into the graph, with their entry
    /// node (for cross-interval stitching).
    materialized: Vec<(IntervalRef, DynNodeId)>,
}

impl<'p> Controller<'p> {
    /// Creates a controller over a finished execution.
    pub fn new(session: &'p PpdSession, execution: &'p Execution) -> Controller<'p> {
        Controller {
            session,
            execution,
            builder: GraphBuilder::new(session.rp(), session.analyses(), session.plan()),
            engine: ReplayEngine::new(session, execution),
            expansions: HashMap::new(),
            materialized: Vec::new(),
        }
    }

    /// The dynamic graph built so far.
    pub fn graph(&self) -> &DynamicGraph {
        self.builder.graph()
    }

    /// A snapshot of the debugging-phase counters (replays, cache
    /// hits/misses, query timings — the `--stats` output).
    pub fn stats(&self) -> DebugStats {
        self.engine.stats()
    }

    /// The same counters as [`Controller::stats`] in raw registry form,
    /// rendered as single-line JSON (`--stats --format json`).
    pub fn metrics_json(&self) -> String {
        self.engine.metrics_snapshot().to_json()
    }

    /// The raw metrics snapshot ([`Controller::metrics_json`] without
    /// the rendering), for alternative expositions (`--metrics-out`).
    pub fn metrics_snapshot(&self) -> ppd_obs::Snapshot {
        self.engine.metrics_snapshot()
    }

    /// Attaches a query journal: every completed top-level query from
    /// now on appends one JSONL record with its kind, args, latency,
    /// and cache/log cost deltas.
    pub fn set_journal(&mut self, journal: ppd_obs::Journal) {
        self.engine.set_journal(journal);
    }

    /// Zeroes every debugging-phase counter (queries, replays, cache
    /// hit/miss/eviction tallies) while keeping cached traces warm, so
    /// an interactive session can measure a single query in isolation
    /// (the `stats reset` command).
    pub fn reset_stats(&self) {
        self.engine.reset_stats();
    }

    /// Enables or disables replay memoization. Results are identical
    /// either way (replay is deterministic); only the cost changes.
    pub fn set_cache_enabled(&mut self, enabled: bool) {
        self.engine.set_cache_enabled(enabled);
    }

    /// Sets the replay cache's byte budget.
    pub fn set_cache_budget(&mut self, bytes: usize) {
        self.engine.set_cache_budget(bytes);
    }

    /// Sets the worker-thread count used by parallel queries (replay
    /// prefetch fan-out, race scan). 1 means fully sequential; results
    /// are bit-identical at any setting, only the cost changes.
    pub fn set_jobs(&mut self, jobs: usize) {
        self.engine.set_jobs(jobs);
    }

    /// The configured worker-thread count.
    pub fn jobs(&self) -> usize {
        self.engine.jobs()
    }

    /// Warms the replay cache for a batch of intervals by fanning the
    /// replays out across the worker pool — each e-block replay depends
    /// only on its own prelog (§5), so the batch is embarrassingly
    /// parallel. Subsequent `materialize` calls for these intervals are
    /// cache hits. Returns the number of intervals warmed.
    ///
    /// # Errors
    ///
    /// Propagates the first (by batch position) replay failure.
    pub fn prefetch(&mut self, intervals: &[IntervalRef]) -> Result<usize, PpdError> {
        let _q = self.engine.query_timer_for("prefetch", format!("intervals={}", intervals.len()));
        self.engine.replay_intervals_par(intervals)?;
        Ok(intervals.len())
    }

    /// Warms the replay cache for every logged interval of every
    /// process — the whole `(proc, eblock, instance)` set a flowback
    /// session could need.
    ///
    /// # Errors
    ///
    /// Propagates the first replay failure.
    pub fn prefetch_all(&mut self) -> Result<usize, PpdError> {
        let intervals = self.all_intervals();
        self.prefetch(&intervals)
    }

    /// Every replayable interval of every process, in (process, log)
    /// order: all closed intervals plus each process's innermost open
    /// interval (the halt interval `start_at` replays). Outer open
    /// intervals are excluded — their nested calls never produced the
    /// postlogs that §5.2 substitution would need.
    pub fn all_intervals(&self) -> Vec<IntervalRef> {
        let index = self.engine.index();
        (0..index.process_count())
            .flat_map(|p| {
                let proc = ProcId(p as u32);
                let closed =
                    index.intervals(proc).into_iter().filter(|iv| iv.postlog_pos.is_some());
                closed.chain(index.open_intervals(proc).last().copied())
            })
            .collect()
    }

    /// Starts a debugging session (§5.3): locates the innermost open
    /// interval of the halted process (or of the given process for
    /// completed runs), replays it, and returns the root — "the last
    /// statement executed" as an inverted tree root.
    ///
    /// # Errors
    ///
    /// Fails if there is nothing to debug (no intervals logged).
    pub fn start(&mut self) -> Result<DynNodeId, PpdError> {
        let proc = match &self.execution.outcome {
            Outcome::Failed { proc, .. } | Outcome::Breakpoint { proc, .. } => *proc,
            _ => ProcId(0),
        };
        self.start_at(proc)
    }

    /// Starts debugging from a specific process's halt point.
    ///
    /// # Errors
    ///
    /// Fails if the process logged no intervals.
    pub fn start_at(&mut self, proc: ProcId) -> Result<DynNodeId, PpdError> {
        let _q = self.engine.query_timer_for("start_at", format!("proc={}", proc.0));
        let open = self.engine.index().open_intervals(proc);
        let interval = open
            .last()
            .copied()
            .or_else(|| self.top_level_intervals(proc).into_iter().last())
            .ok_or_else(|| {
                PpdError::Debugging(format!(
                    "process {} logged no intervals",
                    self.session.rp().proc_name(proc)
                ))
            })?;
        let report = self.materialize(interval, None)?;
        report
            .root
            .ok_or_else(|| PpdError::Debugging("the halted interval produced no events".into()))
    }

    /// Replays `interval` and feeds its trace into the graph; `attach_to`
    /// marks this as the expansion of an existing unexpanded node.
    ///
    /// # Errors
    ///
    /// Propagates replay failures other than the re-occurrence of the
    /// original program failure (which is expected when replaying the
    /// halted interval).
    pub fn materialize(
        &mut self,
        interval: IntervalRef,
        attach_to: Option<DynNodeId>,
    ) -> Result<crate::builder::FeedReport, PpdError> {
        let _q = self.engine.query_timer_for(
            "materialize",
            format!(
                "proc={} eblock={} instance={}",
                interval.proc.0, interval.eblock.0, interval.instance
            ),
        );
        let events = self.engine.replay_interval(interval)?;
        let body = self.session.plan().eblock(interval.eblock).region.body();
        let report = self.builder.feed(interval.proc, body, &events, attach_to);
        for sub in &report.substituted {
            self.expansions.insert(sub.node, (interval, *sub));
        }
        self.materialized.push((interval, report.entry));
        Ok(report)
    }

    /// Expands an unexpanded sub-graph or loop node (§5.2): finds the
    /// nested log interval it stands for, replays it, and grafts the
    /// detailed fragment under the node.
    ///
    /// # Errors
    ///
    /// Fails if the node is not an unexpanded node produced by this
    /// controller, or the nested interval cannot be located.
    pub fn expand(&mut self, node: DynNodeId) -> Result<crate::builder::FeedReport, PpdError> {
        let _q = self.engine.query_timer_for("expand", format!("node={node}"));
        let (parent, sub) = self
            .expansions
            .get(&node)
            .copied()
            .ok_or_else(|| PpdError::Debugging(format!("{node} is not expandable")))?;
        let children = self.direct_children(parent);
        let target = children
            .iter()
            .filter(|iv| iv.eblock == sub.eblock)
            .nth(sub.ordinal)
            .copied()
            .ok_or_else(|| {
                PpdError::Debugging(format!(
                    "nested interval {} #{} not found under {parent:?}",
                    sub.eblock, sub.ordinal
                ))
            })?;
        self.expansions.remove(&node);
        self.materialize(target, Some(node))
    }

    /// The top-level (unnested) intervals of a process, in log order —
    /// an O(1)-amortized view over the interval index.
    pub fn top_level_intervals(&self, proc: ProcId) -> Vec<IntervalRef> {
        self.engine.index().top_level(proc)
    }

    /// The direct child intervals of `parent`, in log order — the
    /// nesting structure of Figure 5.2, read off the index's links.
    pub fn direct_children(&self, parent: IntervalRef) -> Vec<IntervalRef> {
        self.engine.index().direct_children(parent)
    }

    /// One flowback step (§1): the dependence predecessors of `node`.
    pub fn flowback(&self, node: DynNodeId) -> Vec<(DynNodeId, DynEdgeKind)> {
        let _q = self.engine.query_timer_for("flowback", format!("node={node}"));
        self.builder.graph().dependence_preds(node)
    }

    /// The full backward slice from `node`.
    pub fn backward_slice(&self, node: DynNodeId) -> Vec<DynNodeId> {
        let _q = self.engine.query_timer_for("backward_slice", format!("node={node}"));
        self.builder.graph().backward_slice(node)
    }

    /// One forward-flow step: the events `node` directly influenced.
    pub fn flow_forward(&self, node: DynNodeId) -> Vec<(DynNodeId, DynEdgeKind)> {
        let _q = self.engine.query_timer_for("flow_forward", format!("node={node}"));
        self.builder.graph().dependence_succs(node)
    }

    /// The bounded portion of the dynamic graph presented to the user
    /// (§3.2.3: "there is a practical limit to the size of the graph
    /// determined by the screen size"): the inverted dependence tree of
    /// depth at most `depth` rooted at `root`, nodes in seq order.
    pub fn present(&self, root: DynNodeId, depth: usize) -> Vec<DynNodeId> {
        let _q = self.engine.query_timer_for("present", format!("root={root} depth={depth}"));
        let graph = self.builder.graph();
        let mut seen = std::collections::HashSet::new();
        let mut frontier = vec![root];
        seen.insert(root);
        for _ in 0..depth {
            let mut next = Vec::new();
            for &n in &frontier {
                for (p, _) in graph.dependence_preds(n) {
                    if seen.insert(p) {
                        next.push(p);
                    }
                }
            }
            if next.is_empty() {
                break;
            }
            frontier = next;
        }
        let mut out: Vec<DynNodeId> = seen.into_iter().collect();
        out.sort_by_key(|n| graph.node(*n).seq);
        out
    }

    /// The full forward slice from `node` — everything it influenced.
    pub fn forward_slice(&self, node: DynNodeId) -> Vec<DynNodeId> {
        let _q = self.engine.query_timer_for("forward_slice", format!("node={node}"));
        self.builder.graph().forward_slice(node)
    }

    /// The unexpanded nodes currently in the graph.
    pub fn unexpanded(&self) -> Vec<DynNodeId> {
        self.builder.graph().unexpanded_subgraphs()
    }

    /// Follows a dependence across process boundaries (§5.6, §6.3): for
    /// a `node` whose read of shared `var` resolved only to the fragment
    /// entry, find the internal edge of another process that last wrote
    /// `var` before this fragment ended, materialize the corresponding
    /// log interval, and wire a cross-process data edge from that
    /// fragment's last write of `var`.
    ///
    /// # Errors
    ///
    /// Fails when no other process wrote the variable.
    pub fn extend_across_processes(
        &mut self,
        node: DynNodeId,
        var: VarId,
    ) -> Result<DynNodeId, PpdError> {
        let _q = self.engine.query_timer_for("extend", format!("node={node} var={}", var.0));
        let reader_proc = self.builder.graph().node(node).proc;
        // Upper time bound: the end of the fragment the node belongs to.
        let upper = self
            .materialized
            .iter()
            .filter(|(iv, _)| iv.proc == reader_proc)
            .filter_map(|(iv, _)| {
                self.execution.logs.postlog_of(*iv).map(LogEntry::time).or(Some(u64::MAX))
            })
            .max()
            .unwrap_or(u64::MAX);

        // Find the latest internal edge of another process writing `var`
        // that starts before the bound.
        let g = &self.execution.pgraph;
        let best = g
            .internal_edges()
            .iter()
            .filter(|e| {
                e.proc != reader_proc && e.writes.to_vec().into_iter().any(|c| g.owner_of(c) == var)
            })
            .filter(|e| g.node(e.from).time <= upper)
            .max_by_key(|e| g.node(e.from).time)
            .ok_or_else(|| {
                PpdError::Debugging(format!(
                    "no other process wrote `{}`",
                    self.session.rp().var_name(var)
                ))
            })?;
        let writer_proc = best.proc;
        // The write happened somewhere inside the edge's time window.
        let (w_start, w_end) = (g.node(best.from).time, g.node(best.to).time);

        // Locate the writer's innermost log interval overlapping that
        // window (interval boundaries are logged between the edge's
        // synchronization nodes, so containment cannot be required).
        let interval =
            self.engine.index().covering_window(writer_proc, w_start, w_end).ok_or_else(|| {
                PpdError::Debugging(format!(
                    "no log interval of {} overlaps [{w_start}, {w_end}]",
                    self.session.rp().proc_name(writer_proc)
                ))
            })?;

        let report = self.materialize(interval, None)?;
        // The last write of `var` in the new fragment.
        let writer_node = report
            .last_writes
            .get(&var)
            .copied()
            .or(report.root)
            .ok_or_else(|| PpdError::Debugging("empty writer fragment".into()))?;
        self.builder.graph_mut().add_edge(writer_node, node, DynEdgeKind::Data { var });
        Ok(writer_node)
    }

    /// Extends every unresolved shared-variable dependence of `node`
    /// across process boundaries (§5.6): for each Data edge into `node`
    /// that currently comes from a fragment entry and names a shared
    /// variable, materializes the writing process's interval and wires
    /// the real source. Returns `(var, writer_node)` pairs for the
    /// dependences that were resolved.
    pub fn auto_extend(&mut self, node: DynNodeId) -> Vec<(VarId, DynNodeId)> {
        let _q = self.engine.query_timer_for("auto_extend", format!("node={node}"));
        let rp = self.session.rp();
        let pending: Vec<VarId> = self
            .builder
            .graph()
            .preds_by(node, |k| matches!(k, DynEdgeKind::Data { .. }))
            .into_iter()
            .filter_map(|(src, kind)| match kind {
                DynEdgeKind::Data { var }
                    if rp.is_shared(var)
                        && matches!(
                            self.builder.graph().node(src).kind,
                            ppd_graph::DynNodeKind::Entry
                        ) =>
                {
                    Some(var)
                }
                _ => None,
            })
            .collect();
        let mut out = Vec::new();
        for var in pending {
            if let Ok(writer) = self.extend_across_processes(node, var) {
                out.push((var, writer));
            }
        }
        out
    }

    /// Explains a detected race (§6.3): materializes the log intervals
    /// containing the two conflicting internal edges and returns the
    /// dynamic-graph nodes of the last access to the raced variable in
    /// each — the pair of statements the user should look at.
    ///
    /// # Errors
    ///
    /// Fails if either edge's interval cannot be located or replayed.
    pub fn explain_race(
        &mut self,
        race: &ppd_graph::Race,
    ) -> Result<(DynNodeId, DynNodeId), PpdError> {
        let _q = self.engine.query_timer_for("explain_race", format!("var={}", race.var.0));
        let mut access_node = |edge: ppd_graph::InternalEdgeId| -> Result<DynNodeId, PpdError> {
            let g = &self.execution.pgraph;
            let e = g.internal_edge(edge);
            let (w_start, w_end) = (g.node(e.from).time, g.node(e.to).time);
            let interval =
                self.engine.index().covering_window(e.proc, w_start, w_end).ok_or_else(|| {
                    PpdError::Debugging(format!("no interval covers edge {edge}"))
                })?;
            let report = self.materialize(interval, None)?;
            report
                .last_writes
                .get(&race.var)
                .copied()
                .or(report.root)
                .ok_or_else(|| PpdError::Debugging("empty race fragment".into()))
        };
        let first = access_node(race.first)?;
        let second = access_node(race.second)?;
        Ok((first, second))
    }

    /// Race detection over the execution instance (§6.4), pruned by the
    /// static candidate index refined with the may-happen-in-parallel
    /// relation, channel payload types, and interval analysis (none of
    /// GMOD/GREF, a static MHP ordering, or a disjoint access-region
    /// proof can miss a dynamic race, so the pruned result equals the
    /// naive scan's).
    pub fn races(&self) -> Vec<RaceReport> {
        let _q = self.engine.query_timer_for("races", format!("jobs={}", self.engine.jobs()));
        let g = &self.execution.pgraph;
        let ord = VectorClocks::compute(g);
        let cands = &self.session.analyses().absint_candidates;
        let jobs = self.engine.jobs();
        let races = if jobs > 1 {
            detect_races_par(g, &ord, Some(cands), jobs)
        } else {
            ppd_graph::detect_races_absint(g, &ord, cands)
        };
        races
            .into_iter()
            .map(|race| RaceReport {
                race,
                description: ppd_graph::race::describe_race(g, self.session.rp(), &race),
            })
            .collect()
    }

    /// Whether this execution instance is race-free (Definition 6.4).
    pub fn is_race_free(&self) -> bool {
        self.races().is_empty()
    }

    /// The number of cross-process edge pairs each detector stage
    /// examines on this execution, in pruning order: `naive` (every
    /// conflicting pair), `indexed` (grouped by accessed cell),
    /// `pruned` (GMOD/GREF candidates), `mhp` (MHP-refined), `typed`
    /// (payload-class-refined), `absint` (interval-region-refined).
    /// Every stage returns the same race set — the counts measure how
    /// much work each static layer removes (`ppd races --stats`).
    pub fn race_stage_pairs(&self) -> Vec<(&'static str, usize)> {
        let g = &self.execution.pgraph;
        let ord = VectorClocks::compute(g);
        let a = self.session.analyses();
        vec![
            ("naive", ppd_graph::detect_races_naive_counted(g, &ord).1),
            ("indexed", ppd_graph::detect_races_indexed_counted(g, &ord).1),
            ("pruned", ppd_graph::detect_races_pruned_counted(g, &ord, &a.race_candidates).1),
            ("mhp", ppd_graph::detect_races_mhp_counted(g, &ord, &a.mhp_candidates).1),
            ("typed", ppd_graph::detect_races_typed_counted(g, &ord, &a.typed_candidates).1),
            ("absint", ppd_graph::detect_races_absint_counted(g, &ord, &a.absint_candidates).1),
        ]
    }

    /// Wait-for cycle analysis (§6: the parallel dynamic graph "can also
    /// help the user analyze the causes of deadlocks"): among the blocked
    /// processes, finds a cycle `P0 → P1 → ... → P0` where each process
    /// waits on a semaphore/lock that only the next (also blocked)
    /// process could still release — the static release-site information
    /// comes from the program database.
    ///
    /// Returns `None` if the execution did not deadlock or no cycle
    /// exists among the blocked processes (e.g. waiting on a process
    /// that already exited).
    pub fn deadlock_cycle(&self) -> Option<Vec<ProcId>> {
        use ppd_lang::ast::{walk_stmts, StmtKind, SyncStmt};
        use ppd_runtime::BlockReason;
        let Outcome::Deadlock { blocked } = &self.execution.outcome else {
            return None;
        };
        let rp = self.session.rp();
        // For each blocked process: the semaphore it waits on.
        let waits: Vec<(ProcId, ppd_lang::SemId)> = blocked
            .iter()
            .filter_map(|(p, r, _)| match r {
                BlockReason::Semaphore(s) | BlockReason::LockWait(s) => Some((*p, *s)),
                _ => None,
            })
            .collect();
        // Which blocked processes could release a given semaphore: their
        // reachable code contains a V/unlock on it.
        let releases = |proc: ProcId, sem: ppd_lang::SemId| -> bool {
            let mut found = false;
            for body in
                self.session.analyses().callgraph.reachable_from(ppd_lang::BodyId::Proc(proc))
            {
                walk_stmts(rp.body_block(body), &mut |stmt| {
                    if let StmtKind::Sync(SyncStmt::V(_) | SyncStmt::Unlock(_)) = &stmt.kind {
                        if rp.sem_ref.get(&stmt.id) == Some(&sem) {
                            found = true;
                        }
                    }
                });
            }
            found
        };
        // Edges P -> Q: P waits on a sem Q could release.
        let succ: Vec<Vec<usize>> = waits
            .iter()
            .map(|&(_, sem)| {
                waits
                    .iter()
                    .enumerate()
                    .filter(|&(_, &(q, _))| releases(q, sem))
                    .map(|(j, _)| j)
                    .collect()
            })
            .collect();
        // Find any cycle with a DFS.
        for start in 0..waits.len() {
            let mut path = vec![start];
            let mut on_path = vec![false; waits.len()];
            on_path[start] = true;
            if let Some(cycle) = dfs_cycle(&succ, &mut path, &mut on_path, start) {
                return Some(cycle.into_iter().map(|i| waits[i].0).collect());
            }
        }
        None
    }

    /// A deadlock report, if the execution deadlocked (§6's "help the
    /// user analyze the causes of deadlocks").
    pub fn deadlock_report(&self) -> Option<Vec<DeadlockEntry>> {
        let Outcome::Deadlock { blocked } = &self.execution.outcome else {
            return None;
        };
        Some(
            blocked
                .iter()
                .map(|(proc, reason, stmt)| DeadlockEntry {
                    proc: *proc,
                    proc_name: self.session.rp().proc_name(*proc).to_owned(),
                    waiting_for: reason.to_string(),
                    stmt: *stmt,
                })
                .collect(),
        )
    }
}

fn dfs_cycle(
    succ: &[Vec<usize>],
    path: &mut Vec<usize>,
    on_path: &mut [bool],
    start: usize,
) -> Option<Vec<usize>> {
    let cur = *path.last().expect("path non-empty");
    for &next in &succ[cur] {
        if next == start && path.len() > 1 {
            return Some(path.clone());
        }
        if !on_path[next] {
            path.push(next);
            on_path[next] = true;
            if let Some(c) = dfs_cycle(succ, path, on_path, start) {
                return Some(c);
            }
            on_path[next] = false;
            path.pop();
        }
    }
    None
}

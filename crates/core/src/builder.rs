//! Building dynamic-graph fragments from emulation-package traces
//! (§3.2.3, §4.2).
//!
//! The PPD Controller feeds the trace of one replayed e-block interval
//! into the [`GraphBuilder`]; the builder turns events into dynamic-graph
//! nodes and wires flow, data-dependence, control-dependence and
//! value-flow edges, using the static control dependences and the actual
//! cells each event read.
//!
//! Substituted calls (§5.2) become *unexpanded* sub-graph nodes; skipped
//! loops become unexpanded loop nodes. The Controller can later expand
//! either by replaying the nested interval and feeding it with
//! `attach_to` pointing at the node.

use ppd_analysis::{Analyses, EBlockId, EBlockPlan, VarSetRepr};
use ppd_graph::{DynEdgeKind, DynNodeId, DynNodeKind, DynamicGraph};
use ppd_lang::ast::{walk_stmts, Stmt};
use ppd_lang::{pretty, BodyId, ProcId, ResolvedProgram, StmtId, Value, VarId};
use ppd_runtime::{CellRef, EventKind, ReadSource, TraceEvent};
use std::collections::HashMap;

/// A substituted (unexpanded) node produced during a feed, with the key
/// the Controller needs to locate the corresponding nested log interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubstitutedRef {
    /// The unexpanded sub-graph/loop node.
    pub node: DynNodeId,
    /// The e-block whose interval was substituted.
    pub eblock: EBlockId,
    /// Which occurrence of that e-block this was within the feed
    /// (matches the order of direct child intervals in the log).
    pub ordinal: usize,
}

/// What one feed added to the graph.
#[derive(Debug, Clone)]
pub struct FeedReport {
    /// The process the fragment belongs to.
    pub proc: ProcId,
    /// Nodes added, in creation order.
    pub nodes: Vec<DynNodeId>,
    /// The fragment's last node (the root of the inverted tree the
    /// debugger presents first, §3.2.3).
    pub root: Option<DynNodeId>,
    /// Unexpanded nodes available for §5.2 expansion.
    pub substituted: Vec<SubstitutedRef>,
    /// The fragment's entry node.
    pub entry: DynNodeId,
    /// The last node that wrote each variable within the fragment — the
    /// hook for cross-process data edges (§5.6).
    pub last_writes: HashMap<VarId, DynNodeId>,
}

struct FrameCtx {
    body: BodyId,
    entry: DynNodeId,
    /// Most recent instance node of each predicate statement.
    preds: HashMap<StmtId, DynNodeId>,
    /// The sub-graph node this frame hangs off, if any.
    subgraph: Option<DynNodeId>,
    /// The frame's most recent `return` node.
    last_return: Option<DynNodeId>,
}

/// Incremental dynamic-graph builder.
pub struct GraphBuilder<'p> {
    rp: &'p ResolvedProgram,
    analyses: &'p Analyses,
    plan: &'p EBlockPlan,
    graph: DynamicGraph,
    stmt_index: HashMap<StmtId, &'p Stmt>,
}

impl<'p> GraphBuilder<'p> {
    /// Creates an empty builder.
    pub fn new(
        rp: &'p ResolvedProgram,
        analyses: &'p Analyses,
        plan: &'p EBlockPlan,
    ) -> GraphBuilder<'p> {
        let mut stmt_index = HashMap::new();
        for body in rp.bodies() {
            walk_stmts(rp.body_block(body), &mut |s| {
                stmt_index.insert(s.id, s);
            });
        }
        GraphBuilder { rp, analyses, plan, graph: DynamicGraph::new(), stmt_index }
    }

    /// The graph built so far.
    pub fn graph(&self) -> &DynamicGraph {
        &self.graph
    }

    /// Mutable access (the Controller marks nodes expanded).
    pub fn graph_mut(&mut self) -> &mut DynamicGraph {
        &mut self.graph
    }

    /// Feeds the trace of one replayed interval.
    ///
    /// `body` is the body the interval's region belongs to; `attach_to`
    /// is the unexpanded node this fragment expands, if any.
    pub fn feed(
        &mut self,
        proc: ProcId,
        body: BodyId,
        events: &[TraceEvent],
        attach_to: Option<DynNodeId>,
    ) -> FeedReport {
        let mut st = FeedState {
            proc,
            def_map: HashMap::new(),
            var_fallback: HashMap::new(),
            call_nodes: HashMap::new(),
            frames: Vec::new(),
            pending_substituted: None,
            prev: None,
            nodes: Vec::new(),
            substituted: Vec::new(),
            sub_counts: HashMap::new(),
        };
        let entry_label = format!("ENTRY {}", self.rp.body_name(body));
        let entry = self.graph.add_node(DynNodeKind::Entry, proc, entry_label, None, 0);
        st.nodes.push(entry);
        if let Some(parent) = attach_to {
            self.graph.add_edge(parent, entry, DynEdgeKind::Control);
        }
        st.frames.push(FrameCtx {
            body,
            entry,
            preds: HashMap::new(),
            subgraph: attach_to,
            last_return: None,
        });

        for event in events {
            self.consume(&mut st, event);
        }

        // If the fragment expanded a node, mark it and wire the returned
        // value out of it (%0).
        if let Some(parent) = attach_to {
            if let Some(root_frame) = st.frames.first() {
                if let Some(ret) = root_frame.last_return {
                    self.graph.add_edge(ret, parent, DynEdgeKind::ValueFlow);
                }
            }
            match &mut self.graph.node_mut(parent).kind {
                DynNodeKind::SubGraph { expanded, .. }
                | DynNodeKind::LoopGraph { expanded, .. } => *expanded = true,
                _ => {}
            }
        }

        let root = st
            .nodes
            .iter()
            .copied()
            .rfind(|n| !matches!(self.graph.node(*n).kind, DynNodeKind::Entry));
        // Final writer per variable: prefer concrete cell defs (latest by
        // node seq), fall back to substituted nodes.
        let mut last_writes: HashMap<VarId, DynNodeId> = st.var_fallback.clone();
        for (cell, node) in &st.def_map {
            let candidate = *node;
            match last_writes.get(&cell.var) {
                Some(&cur) if self.graph.node(cur).seq >= self.graph.node(candidate).seq => {}
                _ => {
                    last_writes.insert(cell.var, candidate);
                }
            }
        }
        FeedReport { proc, root, entry, nodes: st.nodes, substituted: st.substituted, last_writes }
    }

    fn label_of(&self, stmt: StmtId) -> String {
        self.stmt_index
            .get(&stmt)
            .map(|s| pretty::stmt_label(s, &self.rp.program.interner))
            .unwrap_or_else(|| stmt.to_string())
    }

    fn consume(&mut self, st: &mut FeedState, event: &TraceEvent) {
        match &event.kind {
            EventKind::Assign
            | EventKind::Print
            | EventKind::AssertPass
            | EventKind::AssertFail
            | EventKind::Failure { .. }
            | EventKind::Sync { .. } => {
                let mut label = self.label_of(event.stmt);
                if matches!(event.kind, EventKind::AssertFail) {
                    label.push_str("  [FAILED]");
                }
                if let EventKind::Failure { message } = &event.kind {
                    label.push_str(&format!("  [FAILED: {message}]"));
                }
                let node = self.singular(st, event, label);
                if let Some((cell, _)) = event.write {
                    st.def_map.insert(cell, node);
                }
            }
            EventKind::Predicate { .. } => {
                let node = self.singular(st, event, self.label_of(event.stmt));
                st.frame_mut().preds.insert(event.stmt, node);
            }
            EventKind::Return => {
                let node = self.singular(st, event, self.label_of(event.stmt));
                st.frame_mut().last_return = Some(node);
            }
            EventKind::CallEnter { func, args, substituted } => {
                let node = self.graph.add_node(
                    DynNodeKind::SubGraph { stmt: event.stmt, func: *func, expanded: !substituted },
                    st.proc,
                    self.label_of(event.stmt),
                    None,
                    event.seq,
                );
                st.nodes.push(node);
                self.wire_common(st, event, node);
                st.call_nodes.insert(event.seq, node);

                if *substituted {
                    // Fictional %n nodes only for expression arguments
                    // (Figure 4.1's %3); plain variables wire directly.
                    for (i, (value, reads)) in args.iter().enumerate() {
                        let sources = self.resolve_all(st, reads);
                        if reads.len() == 1 && sources.len() == 1 {
                            self.data_edge(st, sources[0], node, &reads[0]);
                        } else if !sources.is_empty() {
                            let p = self.param_node(st, i + 1, *value, event.seq);
                            for r in reads {
                                if let Resolved::Node(src) = self.resolve(st, r) {
                                    self.data_edge(st, src, p, r);
                                }
                            }
                            self.graph.add_edge(p, node, DynEdgeKind::ValueFlow);
                        }
                    }
                    // The callee may have written shared variables; later
                    // reads of them depend on this node.
                    let eb = self
                        .plan
                        .body_eblock(BodyId::Func(*func))
                        .expect("substituted calls have e-blocks");
                    self.invalidate_defined(st, eb, node);
                    let ordinal = st.bump_sub(eb);
                    st.substituted.push(SubstitutedRef { node, eblock: eb, ordinal });
                    st.pending_substituted = Some(node);
                } else {
                    // Expanded call: create %n nodes for every parameter
                    // and bind the callee's parameter cells to them.
                    let params = self.rp.funcs[func.index()].params.clone();
                    let callee_entry_label = format!("ENTRY {}", self.rp.func_name(*func));
                    let centry = self.graph.add_node(
                        DynNodeKind::Entry,
                        st.proc,
                        callee_entry_label,
                        None,
                        event.seq,
                    );
                    st.nodes.push(centry);
                    self.graph.add_edge(node, centry, DynEdgeKind::Control);
                    for (i, (value, reads)) in args.iter().enumerate() {
                        let p = self.param_node(st, i + 1, *value, event.seq);
                        for r in reads {
                            if let Resolved::Node(src) = self.resolve(st, r) {
                                self.data_edge(st, src, p, r);
                            }
                        }
                        self.graph.add_edge(p, node, DynEdgeKind::ValueFlow);
                        if let Some(param_var) = params.get(i) {
                            st.def_map.insert(CellRef::scalar(*param_var), p);
                        }
                    }
                    st.frames.push(FrameCtx {
                        body: BodyId::Func(*func),
                        entry: centry,
                        preds: HashMap::new(),
                        subgraph: Some(node),
                        last_return: None,
                    });
                }
                st.prev = Some(node);
            }
            EventKind::CallExit { ret, .. } => {
                if let Some(node) = st.pending_substituted.take() {
                    self.graph.node_mut(node).value = ret.map(Value::Int);
                    return;
                }
                if st.frames.len() > 1 {
                    let frame = st.frames.pop().expect("checked");
                    if let Some(sub) = frame.subgraph {
                        self.graph.node_mut(sub).value = ret.map(Value::Int);
                        if let Some(r) = frame.last_return {
                            self.graph.add_edge(r, sub, DynEdgeKind::ValueFlow);
                        }
                        st.prev = Some(sub);
                    }
                }
            }
            EventKind::LoopSubstituted { eblock } => {
                let stmt = match &self.plan.eblock(*eblock).region {
                    ppd_analysis::Region::Loop { stmt, .. } => *stmt,
                    _ => event.stmt,
                };
                let node = self.graph.add_node(
                    DynNodeKind::LoopGraph { stmt, expanded: false },
                    st.proc,
                    format!("loop: {}", self.label_of(stmt)),
                    None,
                    event.seq,
                );
                st.nodes.push(node);
                self.wire_common(st, event, node);
                self.invalidate_defined(st, *eblock, node);
                let ordinal = st.bump_sub(*eblock);
                st.substituted.push(SubstitutedRef { node, eblock: *eblock, ordinal });
                st.prev = Some(node);
            }
        }
    }

    /// Creates a singular node with the standard wiring.
    fn singular(&mut self, st: &mut FeedState, event: &TraceEvent, label: String) -> DynNodeId {
        let node = self.graph.add_node(
            DynNodeKind::Singular { stmt: event.stmt },
            st.proc,
            label,
            event.value.map(Value::Int),
            event.seq,
        );
        st.nodes.push(node);
        self.wire_common(st, event, node);
        st.prev = Some(node);
        node
    }

    /// Flow edge, data edges from the event's reads, and control edge.
    fn wire_common(&mut self, st: &mut FeedState, event: &TraceEvent, node: DynNodeId) {
        if let Some(prev) = st.prev {
            self.graph.add_edge(prev, node, DynEdgeKind::Flow);
        }
        // Data dependences.
        for read in &event.reads {
            match self.resolve(st, read) {
                Resolved::Node(src) => self.data_edge(st, src, node, read),
                Resolved::Outside(var) => {
                    // Value came from before the fragment (prelog) or
                    // another process: hang it off the fragment entry so
                    // the Controller can extend it (§5.6).
                    let entry = st.frames.first().expect("root frame").entry;
                    self.graph.add_edge(entry, node, DynEdgeKind::Data { var });
                }
                Resolved::External => {}
            }
        }
        // Control dependence: the most recent instance of each static
        // controlling predicate; entry-dependent statements hang off the
        // frame's entry (or its sub-graph node).
        let frame = st.frames.last().expect("frame");
        let parents = self.analyses.control_deps(frame.body).parents(event.stmt);
        let mut wired = false;
        for &(pred_stmt, _) in parents {
            if let Some(&pnode) = frame.preds.get(&pred_stmt) {
                if pnode != node {
                    self.graph.add_edge(pnode, node, DynEdgeKind::Control);
                    wired = true;
                }
            }
        }
        if !wired {
            self.graph.add_edge(frame.entry, node, DynEdgeKind::Control);
        }
    }

    fn data_edge(&mut self, _st: &FeedState, src: DynNodeId, dst: DynNodeId, read: &ReadSource) {
        let kind = match read {
            ReadSource::Cell(cell) => DynEdgeKind::Data { var: cell.var },
            _ => DynEdgeKind::ValueFlow,
        };
        if src != dst {
            self.graph.add_edge(src, dst, kind);
        }
    }

    fn resolve_all(&self, st: &FeedState, reads: &[ReadSource]) -> Vec<DynNodeId> {
        reads
            .iter()
            .filter_map(|r| match self.resolve(st, r) {
                Resolved::Node(n) => Some(n),
                _ => None,
            })
            .collect()
    }

    fn resolve(&self, st: &FeedState, read: &ReadSource) -> Resolved {
        match read {
            ReadSource::Cell(cell) => {
                if let Some(&n) = st.def_map.get(cell) {
                    return Resolved::Node(n);
                }
                if let Some(&n) = st.var_fallback.get(&cell.var) {
                    return Resolved::Node(n);
                }
                Resolved::Outside(cell.var)
            }
            ReadSource::CallResult { call_seq } => match st.call_nodes.get(call_seq) {
                Some(&n) => Resolved::Node(n),
                None => Resolved::External,
            },
            ReadSource::External => Resolved::External,
        }
    }

    fn param_node(&mut self, st: &mut FeedState, index: usize, value: i64, seq: u64) -> DynNodeId {
        let node = self.graph.add_node(
            DynNodeKind::Param { index },
            st.proc,
            format!("%{index}"),
            Some(Value::Int(value)),
            seq,
        );
        st.nodes.push(node);
        node
    }

    /// After a substitution, reads of anything the skipped region may
    /// have written must depend on the substituted node.
    fn invalidate_defined(&mut self, st: &mut FeedState, eb: EBlockId, node: DynNodeId) {
        for var in self.plan.eblock(eb).defined.to_vec() {
            st.def_map.retain(|cell, _| cell.var != var);
            st.var_fallback.insert(var, node);
        }
    }
}

enum Resolved {
    Node(DynNodeId),
    Outside(VarId),
    External,
}

struct FeedState {
    proc: ProcId,
    def_map: HashMap<CellRef, DynNodeId>,
    var_fallback: HashMap<VarId, DynNodeId>,
    call_nodes: HashMap<u64, DynNodeId>,
    frames: Vec<FrameCtx>,
    pending_substituted: Option<DynNodeId>,
    prev: Option<DynNodeId>,
    nodes: Vec<DynNodeId>,
    substituted: Vec<SubstitutedRef>,
    sub_counts: HashMap<EBlockId, usize>,
}

impl FeedState {
    fn frame_mut(&mut self) -> &mut FrameCtx {
        self.frames.last_mut().expect("frame stack never empty")
    }

    fn bump_sub(&mut self, eb: EBlockId) -> usize {
        let c = self.sub_counts.entry(eb).or_insert(0);
        let ord = *c;
        *c += 1;
        ord
    }
}

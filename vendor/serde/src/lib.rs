//! Vendored, offline stand-in for the `serde` crate.
//!
//! The build container has no network access and no crates-io cache, so
//! the real `serde` cannot be downloaded. This crate re-implements the
//! narrow surface the PPD workspace actually uses: `Serialize` /
//! `Deserialize` traits (routed through a self-describing [`Content`]
//! tree rather than serde's visitor architecture) and, behind the
//! `derive` feature, `#[derive(Serialize, Deserialize)]` macros that
//! understand `#[serde(skip)]`.
//!
//! The encoding conventions mirror serde's defaults closely enough for
//! JSON round-trips produced and consumed by this workspace:
//!
//! - named struct        → map of field name → value
//! - newtype struct      → inner value, transparently
//! - tuple struct        → sequence
//! - unit enum variant   → string of the variant name
//! - tuple enum variant  → `{ "Variant": [fields...] }`
//! - struct enum variant → `{ "Variant": { fields... } }`

// Vendored stand-in: exempt from workspace clippy policy.
#![allow(clippy::all)]

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::fmt;
use std::hash::{BuildHasher, Hash};
use std::path::PathBuf;

/// A self-describing serialization tree — the meeting point between
/// `Serialize` implementations and concrete formats (`serde_json`).
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Seq(Vec<Content>),
    /// Order-preserving map. Keys are arbitrary `Content`, though JSON
    /// rendering stringifies them.
    Map(Vec<(Content, Content)>),
}

impl Content {
    pub fn str_key(s: &str) -> Content {
        Content::Str(s.to_string())
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_map(&self) -> Option<&[(Content, Content)]> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }
}

/// Deserialization error: a message plus optional nesting context.
#[derive(Debug, Clone)]
pub struct DeError {
    msg: String,
}

impl DeError {
    pub fn msg(m: impl Into<String>) -> DeError {
        DeError { msg: m.into() }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for DeError {}

pub trait Serialize {
    fn to_content(&self) -> Content;
}

pub trait Deserialize: Sized {
    fn from_content(c: &Content) -> Result<Self, DeError>;
}

/// Looks up a struct field by name in a serialized map.
/// Used by the derive-generated code.
pub fn field<T: Deserialize>(
    entries: &[(Content, Content)],
    name: &str,
    ty: &str,
) -> Result<T, DeError> {
    for (k, v) in entries {
        if k.as_str() == Some(name) {
            return T::from_content(v);
        }
    }
    Err(DeError::msg(format!("missing field `{name}` for {ty}")))
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content { Content::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                match c {
                    Content::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::msg("integer out of range")),
                    Content::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::msg("integer out of range")),
                    // Map keys arrive as strings from JSON.
                    Content::Str(s) => s.parse::<$t>()
                        .map_err(|_| DeError::msg("invalid integer string")),
                    _ => Err(DeError::msg(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content { Content::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                match c {
                    Content::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::msg("integer out of range")),
                    Content::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::msg("integer out of range")),
                    Content::Str(s) => s.parse::<$t>()
                        .map_err(|_| DeError::msg("invalid integer string")),
                    _ => Err(DeError::msg(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}
impl Deserialize for f64 {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::F64(x) => Ok(*x),
            Content::I64(n) => Ok(*n as f64),
            Content::U64(n) => Ok(*n as f64),
            _ => Err(DeError::msg("expected f64")),
        }
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(*self as f64)
    }
}
impl Deserialize for f32 {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        f64::from_content(c).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Bool(b) => Ok(*b),
            Content::Str(s) => s.parse::<bool>().map_err(|_| DeError::msg("invalid bool")),
            _ => Err(DeError::msg("expected bool")),
        }
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(DeError::msg("expected single-char string")),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_str().map(str::to_string).ok_or_else(|| DeError::msg("expected string"))
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for PathBuf {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string_lossy().into_owned())
    }
}
impl Deserialize for PathBuf {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        String::from_content(c).map(PathBuf::from)
    }
}

impl Serialize for () {
    fn to_content(&self) -> Content {
        Content::Null
    }
}
impl Deserialize for () {
    fn from_content(_: &Content) -> Result<Self, DeError> {
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        T::from_content(c).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            None => Content::Null,
            Some(x) => x.to_content(),
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_seq()
            .ok_or_else(|| DeError::msg("expected sequence"))?
            .iter()
            .map(T::from_content)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}
impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        Vec::<T>::from_content(c).map(VecDeque::from)
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$n.to_content()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let s = c.as_seq().ok_or_else(|| DeError::msg("expected tuple sequence"))?;
                let mut it = s.iter();
                Ok(($({
                    let _ = $n; // positional
                    $t::from_content(it.next().ok_or_else(|| DeError::msg("tuple too short"))?)?
                },)+))
            }
        }
    )*};
}

impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

impl<K: Serialize, V: Serialize, S: BuildHasher> Serialize for HashMap<K, V, S> {
    fn to_content(&self) -> Content {
        Content::Map(self.iter().map(|(k, v)| (k.to_content(), v.to_content())).collect())
    }
}
impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + Eq + Hash,
    V: Deserialize,
    S: BuildHasher + Default,
{
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let entries = c.as_map().ok_or_else(|| DeError::msg("expected map"))?;
        let mut out = HashMap::with_capacity_and_hasher(entries.len(), S::default());
        for (k, v) in entries {
            out.insert(K::from_content(k)?, V::from_content(v)?);
        }
        Ok(out)
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_content(&self) -> Content {
        Content::Map(self.iter().map(|(k, v)| (k.to_content(), v.to_content())).collect())
    }
}
impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let entries = c.as_map().ok_or_else(|| DeError::msg("expected map"))?;
        let mut out = BTreeMap::new();
        for (k, v) in entries {
            out.insert(K::from_content(k)?, V::from_content(v)?);
        }
        Ok(out)
    }
}

impl<T: Serialize, S: BuildHasher> Serialize for HashSet<T, S> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}
impl<T, S> Deserialize for HashSet<T, S>
where
    T: Deserialize + Eq + Hash,
    S: BuildHasher + Default,
{
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let s = c.as_seq().ok_or_else(|| DeError::msg("expected sequence"))?;
        s.iter().map(T::from_content).collect()
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}
impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let s = c.as_seq().ok_or_else(|| DeError::msg("expected sequence"))?;
        s.iter().map(T::from_content).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_content(&42u32.to_content()).unwrap(), 42);
        assert_eq!(i64::from_content(&(-7i64).to_content()).unwrap(), -7);
        assert_eq!(bool::from_content(&true.to_content()).unwrap(), true);
        assert_eq!(String::from_content(&"hi".to_string().to_content()).unwrap(), "hi");
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_content(&v.to_content()).unwrap(), v);
        let m: BTreeMap<u32, String> = [(1, "a".to_string()), (2, "b".to_string())].into();
        assert_eq!(BTreeMap::<u32, String>::from_content(&m.to_content()).unwrap(), m);
        let o: Option<u32> = Some(9);
        assert_eq!(Option::<u32>::from_content(&o.to_content()).unwrap(), o);
        let t = (1u32, "x".to_string(), true);
        assert_eq!(<(u32, String, bool)>::from_content(&t.to_content()).unwrap(), t);
    }
}

//! Vendored, offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` against
//! the vendored `serde` crate's `Content` model, without `syn`/`quote`:
//! the item definition is parsed with a small hand-rolled walk over
//! `proc_macro::TokenTree`s, and the impl is emitted as a string that is
//! re-parsed into a `TokenStream`.
//!
//! Supported shapes (everything the PPD workspace derives):
//! - named structs, tuple structs (newtype special-cased), unit structs
//! - enums with unit / tuple / struct variants, explicit discriminants
//! - the `#[serde(skip)]` field attribute (skipped on serialize,
//!   `Default::default()` on deserialize)
//!
//! Not supported (unused here): generics, lifetimes, unions, and the
//! wider serde attribute family (rename, tag, flatten, ...).

// Vendored stand-in: exempt from workspace clippy policy.
#![allow(clippy::all)]

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write as _;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().unwrap()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().unwrap()
}

// ---------------------------------------------------------------------
// A miniature item model
// ---------------------------------------------------------------------

struct Field {
    name: String, // field name, or index for tuple fields
    skip: bool,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum Item {
    NamedStruct { name: String, fields: Vec<Field> },
    TupleStruct { name: String, arity: usize },
    UnitStruct { name: String },
    Enum { name: String, variants: Vec<Variant> },
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

/// True if an attribute group's tokens are exactly `serde(... skip ...)`.
fn attr_is_serde_skip(group: &proc_macro::Group) -> bool {
    let mut toks = group.stream().into_iter();
    match toks.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return false,
    }
    match toks.next() {
        Some(TokenTree::Group(inner)) => inner
            .stream()
            .into_iter()
            .any(|t| matches!(&t, TokenTree::Ident(id) if id.to_string() == "skip")),
        _ => false,
    }
}

/// Consumes leading attributes (`#[...]`), returning whether any was
/// `#[serde(skip)]`.
fn eat_attrs(toks: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) -> bool {
    let mut skip = false;
    loop {
        match toks.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
                if let Some(TokenTree::Group(g)) = toks.next() {
                    if attr_is_serde_skip(&g) {
                        skip = true;
                    }
                }
            }
            _ => return skip,
        }
    }
}

/// Consumes a possible visibility qualifier (`pub`, `pub(crate)`, ...).
fn eat_vis(toks: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    if matches!(toks.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        toks.next();
        if matches!(toks.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            toks.next();
        }
    }
}

/// Counts top-level comma-separated entries inside a parenthesized
/// tuple-field list (commas nested in generic groups don't appear as
/// separate trees, so a flat count works; `<...>` is punct-level, so we
/// track angle depth explicitly).
fn tuple_arity(group: &proc_macro::Group) -> usize {
    let mut angle: i32 = 0;
    let mut after_separator = true;
    let mut fields = 0;
    for t in group.stream() {
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle += 1;
                after_separator = false;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle -= 1;
                after_separator = false;
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => after_separator = true,
            _ => {
                if after_separator {
                    fields += 1;
                }
                after_separator = false;
            }
        }
    }
    fields
}

/// Parses a named-field list `{ a: T, #[serde(skip)] b: U, ... }`.
fn parse_named_fields(group: &proc_macro::Group) -> Vec<Field> {
    let mut toks = group.stream().into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        let skip = eat_attrs(&mut toks);
        eat_vis(&mut toks);
        let name = match toks.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive stub: unexpected token in field list: {other:?}"),
        };
        // Consume `:` then the type — everything until a top-level comma.
        let mut angle: i32 = 0;
        for t in toks.by_ref() {
            match &t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => break,
                _ => {}
            }
        }
        fields.push(Field { name, skip });
    }
    fields
}

fn parse_item(input: TokenStream) -> Item {
    let mut toks = input.into_iter().peekable();
    eat_attrs(&mut toks);
    eat_vis(&mut toks);
    // Also skip doc comments already folded into attrs; next must be the keyword.
    let kw = loop {
        match toks.next() {
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    break s;
                }
                // e.g. leftover keywords; keep scanning
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next(); // attribute body
            }
            Some(_) => {}
            None => panic!("serde_derive stub: no struct/enum keyword found"),
        }
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive stub: expected type name, got {other:?}"),
    };
    if matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive stub: generic types are not supported (type `{name}`)");
    }

    if kw == "struct" {
        match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Item::NamedStruct { name, fields: parse_named_fields(&g) }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::TupleStruct { name, arity: tuple_arity(&g) }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item::UnitStruct { name },
            other => panic!("serde_derive stub: malformed struct body: {other:?}"),
        }
    } else {
        let body = loop {
            match toks.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
                Some(_) => {}
                None => panic!("serde_derive stub: enum `{name}` has no body"),
            }
        };
        let mut vtoks = body.stream().into_iter().peekable();
        let mut variants = Vec::new();
        loop {
            eat_attrs(&mut vtoks);
            let vname = match vtoks.next() {
                Some(TokenTree::Ident(id)) => id.to_string(),
                None => break,
                other => panic!("serde_derive stub: unexpected token in enum body: {other:?}"),
            };
            let shape = match vtoks.peek() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    let arity = tuple_arity(g);
                    vtoks.next();
                    VariantShape::Tuple(arity)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    let fields = parse_named_fields(g);
                    vtoks.next();
                    VariantShape::Struct(fields)
                }
                _ => VariantShape::Unit,
            };
            // Skip explicit discriminant (`= expr`) and the trailing comma.
            let mut angle: i32 = 0;
            while let Some(t) = vtoks.peek() {
                match t {
                    TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                    TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                    TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                        vtoks.next();
                        break;
                    }
                    _ => {}
                }
                vtoks.next();
            }
            variants.push(Variant { name: vname, shape });
        }
        Item::Enum { name, variants }
    }
}

// ---------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let mut s = String::new();
    match item {
        Item::NamedStruct { name, fields } => {
            let _ = write!(
                s,
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_content(&self) -> ::serde::Content {{\n\
                 let mut m: Vec<(::serde::Content, ::serde::Content)> = Vec::new();\n"
            );
            for f in fields.iter().filter(|f| !f.skip) {
                let fname = &f.name;
                let _ = write!(
                    s,
                    "m.push((::serde::Content::str_key(\"{fname}\"), \
                     ::serde::Serialize::to_content(&self.{fname})));\n"
                );
            }
            s.push_str("::serde::Content::Map(m)\n}\n}\n");
        }
        Item::TupleStruct { name, arity } => {
            let _ = write!(
                s,
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_content(&self) -> ::serde::Content {{\n"
            );
            if *arity == 1 {
                s.push_str("::serde::Serialize::to_content(&self.0)\n");
            } else {
                s.push_str("::serde::Content::Seq(vec![");
                for i in 0..*arity {
                    let _ = write!(s, "::serde::Serialize::to_content(&self.{i}),");
                }
                s.push_str("])\n");
            }
            s.push_str("}\n}\n");
        }
        Item::UnitStruct { name } => {
            let _ = write!(
                s,
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_content(&self) -> ::serde::Content {{ ::serde::Content::Null }}\n}}\n"
            );
        }
        Item::Enum { name, variants } => {
            let _ = write!(
                s,
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_content(&self) -> ::serde::Content {{\n\
                 match self {{\n"
            );
            for v in variants {
                let vname = &v.name;
                match &v.shape {
                    VariantShape::Unit => {
                        let _ = write!(
                            s,
                            "{name}::{vname} => ::serde::Content::str_key(\"{vname}\"),\n"
                        );
                    }
                    VariantShape::Tuple(arity) => {
                        let binds: Vec<String> = (0..*arity).map(|i| format!("__f{i}")).collect();
                        let _ = write!(s, "{name}::{vname}({}) => ", binds.join(", "));
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_content({b})"))
                            .collect();
                        let _ = write!(
                            s,
                            "::serde::Content::Map(vec![(::serde::Content::str_key(\"{vname}\"), \
                             ::serde::Content::Seq(vec![{}]))]),\n",
                            items.join(", ")
                        );
                    }
                    VariantShape::Struct(fields) => {
                        let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let _ = write!(s, "{name}::{vname} {{ {} }} => {{\n", binds.join(", "));
                        s.push_str(
                            "let mut m: Vec<(::serde::Content, ::serde::Content)> = Vec::new();\n",
                        );
                        for f in fields.iter().filter(|f| !f.skip) {
                            let fname = &f.name;
                            let _ = write!(
                                s,
                                "m.push((::serde::Content::str_key(\"{fname}\"), \
                                 ::serde::Serialize::to_content({fname})));\n"
                            );
                        }
                        for f in fields.iter().filter(|f| f.skip) {
                            let fname = &f.name;
                            let _ = write!(s, "let _ = {fname};\n");
                        }
                        let _ = write!(
                            s,
                            "::serde::Content::Map(vec![(::serde::Content::str_key(\"{vname}\"), \
                             ::serde::Content::Map(m))])\n}},\n"
                        );
                    }
                }
            }
            s.push_str("}\n}\n}\n");
        }
    }
    s
}

fn gen_deserialize(item: &Item) -> String {
    let mut s = String::new();
    match item {
        Item::NamedStruct { name, fields } => {
            let _ = write!(
                s,
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_content(c: &::serde::Content) -> \
                 ::std::result::Result<Self, ::serde::DeError> {{\n\
                 let m = c.as_map().ok_or_else(|| \
                 ::serde::DeError::msg(\"expected map for {name}\"))?;\n\
                 ::std::result::Result::Ok({name} {{\n"
            );
            for f in fields {
                let fname = &f.name;
                if f.skip {
                    let _ = write!(s, "{fname}: ::std::default::Default::default(),\n");
                } else {
                    let _ = write!(s, "{fname}: ::serde::field(m, \"{fname}\", \"{name}\")?,\n");
                }
            }
            s.push_str("})\n}\n}\n");
        }
        Item::TupleStruct { name, arity } => {
            let _ = write!(
                s,
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_content(c: &::serde::Content) -> \
                 ::std::result::Result<Self, ::serde::DeError> {{\n"
            );
            if *arity == 1 {
                let _ = write!(
                    s,
                    "::std::result::Result::Ok({name}(::serde::Deserialize::from_content(c)?))\n"
                );
            } else {
                let _ = write!(
                    s,
                    "let seq = c.as_seq().ok_or_else(|| \
                     ::serde::DeError::msg(\"expected sequence for {name}\"))?;\n\
                     if seq.len() != {arity} {{ return ::std::result::Result::Err(\
                     ::serde::DeError::msg(\"wrong tuple arity for {name}\")); }}\n\
                     ::std::result::Result::Ok({name}("
                );
                for i in 0..*arity {
                    let _ = write!(s, "::serde::Deserialize::from_content(&seq[{i}])?,");
                }
                s.push_str("))\n");
            }
            s.push_str("}\n}\n");
        }
        Item::UnitStruct { name } => {
            let _ = write!(
                s,
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_content(_c: &::serde::Content) -> \
                 ::std::result::Result<Self, ::serde::DeError> {{\n\
                 ::std::result::Result::Ok({name})\n}}\n}}\n"
            );
        }
        Item::Enum { name, variants } => {
            let _ = write!(
                s,
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_content(c: &::serde::Content) -> \
                 ::std::result::Result<Self, ::serde::DeError> {{\n\
                 match c {{\n\
                 ::serde::Content::Str(__s) => match __s.as_str() {{\n"
            );
            for v in variants {
                if matches!(v.shape, VariantShape::Unit) {
                    let vname = &v.name;
                    let _ =
                        write!(s, "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),\n");
                }
            }
            let _ = write!(
                s,
                "__other => ::std::result::Result::Err(::serde::DeError::msg(format!(\
                 \"unknown unit variant `{{__other}}` for {name}\"))),\n}},\n\
                 ::serde::Content::Map(__entries) if __entries.len() == 1 => {{\n\
                 let (__k, __v) = &__entries[0];\n\
                 let __k = __k.as_str().ok_or_else(|| \
                 ::serde::DeError::msg(\"expected string variant key for {name}\"))?;\n\
                 match __k {{\n"
            );
            for v in variants {
                let vname = &v.name;
                match &v.shape {
                    VariantShape::Unit => {
                        // Also accept the {"Variant": null} form.
                        let _ = write!(
                            s,
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),\n"
                        );
                    }
                    VariantShape::Tuple(arity) => {
                        let _ = write!(
                            s,
                            "\"{vname}\" => {{\n\
                             let __seq = __v.as_seq().ok_or_else(|| \
                             ::serde::DeError::msg(\"expected sequence for {name}::{vname}\"))?;\n\
                             if __seq.len() != {arity} {{ return ::std::result::Result::Err(\
                             ::serde::DeError::msg(\"wrong arity for {name}::{vname}\")); }}\n\
                             ::std::result::Result::Ok({name}::{vname}("
                        );
                        for i in 0..*arity {
                            let _ = write!(s, "::serde::Deserialize::from_content(&__seq[{i}])?,");
                        }
                        s.push_str("))\n},\n");
                    }
                    VariantShape::Struct(fields) => {
                        let _ = write!(
                            s,
                            "\"{vname}\" => {{\n\
                             let __m = __v.as_map().ok_or_else(|| \
                             ::serde::DeError::msg(\"expected map for {name}::{vname}\"))?;\n\
                             let _ = __m;\n\
                             ::std::result::Result::Ok({name}::{vname} {{\n"
                        );
                        for f in fields {
                            let fname = &f.name;
                            if f.skip {
                                let _ = write!(s, "{fname}: ::std::default::Default::default(),\n");
                            } else {
                                let _ = write!(
                                    s,
                                    "{fname}: ::serde::field(__m, \"{fname}\", \
                                     \"{name}::{vname}\")?,\n"
                                );
                            }
                        }
                        s.push_str("})\n},\n");
                    }
                }
            }
            let _ = write!(
                s,
                "__other => ::std::result::Result::Err(::serde::DeError::msg(format!(\
                 \"unknown variant `{{__other}}` for {name}\"))),\n}}\n}},\n\
                 _ => ::std::result::Result::Err(::serde::DeError::msg(\
                 \"unexpected content for enum {name}\")),\n}}\n}}\n}}\n"
            );
        }
    }
    s
}

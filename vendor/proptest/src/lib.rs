//! Vendored, offline stand-in for `proptest`.
//!
//! Provides the API subset the PPD test suites use: the `proptest!`
//! macro with `#![proptest_config(...)]`, `any::<T>()`, integer-range
//! and tuple strategies, `proptest::collection::vec`, and the
//! `prop_assert*` macros. Cases are generated from a deterministic
//! per-case SplitMix64 stream, so failures reproduce across runs.
//! There is no shrinking: a failing case panics with the generated
//! inputs left to the assertion message.

// Vendored stand-in: exempt from workspace clippy policy.
#![allow(clippy::all)]

use std::ops::Range;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
    /// Accepted for API compatibility; this stub does not shrink.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_shrink_iters: 1024 }
    }
}

/// Error type carried by a failing test case. `prop_assert*` in this
/// stub panics directly, but bodies may construct/return these.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Deterministic per-case random stream (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn for_case(case: u32) -> TestRng {
        TestRng { state: 0x5EED_0F_9D9D_1988 ^ ((case as u64).wrapping_mul(0xA076_1D64_78BD_642F)) }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A value generator. Unlike real proptest there is no value tree or
/// shrinking; `gen_value` directly produces one random value.
pub trait Strategy {
    type Value;
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;
}

// ---- any::<T>() ------------------------------------------------------

pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

pub struct Any<T>(std::marker::PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

// ---- integer range strategies ---------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128 as u64;
                let off = rng.next_u64() % span;
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// ---- tuple strategies ------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.gen_value(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

// ---- collections -----------------------------------------------------

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.elem.gen_value(rng)).collect()
        }
    }
}

// ---- macros ----------------------------------------------------------

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::TestRng::for_case(__case);
                $(let $pat = $crate::Strategy::gen_value(&($strat), &mut __rng);)+
                // Real proptest bodies run in a Result context and may
                // `return Ok(())` to discard a case early.
                let __result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = __result {
                    panic!("proptest case {__case} failed: {e}");
                }
            }
        }
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn ranges_in_bounds(x in 3u32..17, v in crate::collection::vec(any::<u8>(), 2..6)) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(v.len() >= 2 && v.len() < 6);
        }

        #[test]
        fn tuples_work((a, b) in (0u32..10, 5u64..9)) {
            prop_assert!(a < 10);
            prop_assert!((5..9).contains(&b));
        }
    }
}

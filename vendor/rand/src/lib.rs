//! Vendored, offline stand-in for the `rand` crate (0.8 API subset).
//!
//! Backed by SplitMix64 — statistically fine for scheduling jitter and
//! workload generation, *not* cryptographic. Deterministic for a given
//! seed, which is exactly what the PPD schedulers need for replay.

// Vendored stand-in: exempt from workspace clippy policy.
#![allow(clippy::all)]

use std::ops::{Range, RangeInclusive};

pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform sampling support for `Rng::gen_range`.
pub trait SampleRange<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as u128) - (start as u128) + 1;
                start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128 as u64;
                let off = rng.next_u64() % span;
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_sample_range_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

pub trait Rng: RngCore {
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p));
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<T: RngCore> Rng for T {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64. Name kept for API compatibility with `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            assert_eq!(a.gen_range(0usize..100), b.gen_range(0usize..100));
        }
    }

    #[test]
    fn range_respected() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(3u32..17);
            assert!((3..17).contains(&v));
        }
        for _ in 0..1000 {
            let v = r.gen_range(-5i32..5);
            assert!((-5..5).contains(&v));
        }
    }
}

//! `lzb` — a dependency-free LZ77-style block compressor.
//!
//! This is a vendored stand-in in the same spirit as `vendor/rayon`: the
//! offline build cannot pull `lz4`/`zstd` from crates.io, so the log store
//! carries its own small, auditable codec. The format is LZ4-flavoured —
//! token bytes with literal-run / match-length nibbles, 255-continuation
//! length extensions, and 2-byte little-endian match offsets (64 KiB
//! window) — produced by a greedy hash-chain matcher.
//!
//! Every compressed block is wrapped in a self-describing *frame*:
//!
//! ```text
//! method:u8           0 = raw escape (stored bytes ARE the data)
//!                     1 = lzb token stream
//! uncompressed_len    varint (LEB128)
//! stored_len          varint (LEB128)
//! payload             stored_len bytes
//! crc32:u32le         IEEE CRC-32 of the *uncompressed* bytes
//! ```
//!
//! The raw escape guarantees a hard bound on expansion: a frame is never
//! more than [`MAX_FRAME_OVERHEAD`] bytes larger than its input. The
//! trailing checksum covers the decoded output, so truncated or bit-flipped
//! frames are rejected deterministically — [`decompress_into`] never
//! returns corrupt data, and every error carries the byte offset within the
//! frame where decoding stopped.

#![warn(missing_docs)]

/// Frame method byte: payload is the uncompressed data, stored verbatim.
pub const METHOD_RAW: u8 = 0;
/// Frame method byte: payload is an lzb token stream.
pub const METHOD_LZB: u8 = 1;

/// Shortest possible match the encoder emits (LZ4's choice: below four
/// bytes a match token costs more than the literals it replaces).
pub const MIN_MATCH: usize = 4;

/// Largest back-reference distance the 2-byte offset field can express.
pub const MAX_OFFSET: usize = 65_535;

/// Upper bound on `frame.len() - input.len()`: method byte, two 5-byte
/// varints, and the 4-byte checksum.
pub const MAX_FRAME_OVERHEAD: usize = 15;

const HASH_BITS: u32 = 15;
const HASH_SIZE: usize = 1 << HASH_BITS;
/// How many chain links the matcher follows before settling; bounds
/// worst-case compression time on degenerate inputs.
const MAX_CHAIN: usize = 32;

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// What went wrong while decoding a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LzbErrorKind {
    /// The frame ended before the declared payload / checksum.
    Truncated,
    /// The method byte is neither [`METHOD_RAW`] nor [`METHOD_LZB`].
    BadMethod(u8),
    /// A varint ran past 10 bytes or past the end of the frame.
    BadVarint,
    /// A match offset of zero or one pointing before the start of output.
    BadMatchOffset {
        /// The (invalid) encoded distance.
        offset: usize,
        /// Bytes of output produced so far.
        produced: usize,
    },
    /// The token stream decoded to a different length than declared.
    LengthMismatch {
        /// Length declared in the frame header.
        declared: usize,
        /// Length actually produced.
        produced: usize,
    },
    /// The CRC-32 of the decoded bytes does not match the frame trailer.
    Checksum {
        /// Checksum stored in the frame.
        stored: u32,
        /// Checksum computed over the decoded output.
        computed: u32,
    },
}

/// A positioned decode error: `kind` plus the byte offset *within the
/// frame* at which decoding stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LzbError {
    /// What went wrong.
    pub kind: LzbErrorKind,
    /// Byte offset within the frame where the error was detected.
    pub offset: usize,
}

impl std::fmt::Display for LzbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.kind {
            LzbErrorKind::Truncated => write!(f, "frame truncated at byte {}", self.offset),
            LzbErrorKind::BadMethod(m) => {
                write!(f, "unknown frame method {m} at byte {}", self.offset)
            }
            LzbErrorKind::BadVarint => write!(f, "malformed varint at byte {}", self.offset),
            LzbErrorKind::BadMatchOffset { offset, produced } => write!(
                f,
                "match offset {offset} exceeds {produced} produced bytes at frame byte {}",
                self.offset
            ),
            LzbErrorKind::LengthMismatch { declared, produced } => write!(
                f,
                "decoded {produced} bytes where frame declared {declared} (at byte {})",
                self.offset
            ),
            LzbErrorKind::Checksum { stored, computed } => write!(
                f,
                "checksum mismatch at byte {}: frame says {stored:#010x}, decoded data hashes to {computed:#010x}",
                self.offset
            ),
        }
    }
}

impl std::error::Error for LzbError {}

fn err<T>(kind: LzbErrorKind, offset: usize) -> Result<T, LzbError> {
    Err(LzbError { kind, offset })
}

// ---------------------------------------------------------------------------
// CRC-32 (IEEE), slice-by-4 — self-contained so the crate stays
// dependency-free.
// ---------------------------------------------------------------------------

const CRC_TABLES: [[u32; 256]; 4] = {
    let mut t = [[0u32; 256]; 4];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        t[0][i] = c;
        i += 1;
    }
    let mut j = 1;
    while j < 4 {
        let mut i = 0;
        while i < 256 {
            t[j][i] = (t[j - 1][i] >> 8) ^ t[0][(t[j - 1][i] & 0xFF) as usize];
            i += 1;
        }
        j += 1;
    }
    t
};

/// IEEE CRC-32 of `bytes` (same polynomial as zlib / the segment store).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    let mut chunks = bytes.chunks_exact(4);
    for c in &mut chunks {
        crc ^= u32::from_le_bytes([c[0], c[1], c[2], c[3]]);
        crc = CRC_TABLES[3][(crc & 0xFF) as usize]
            ^ CRC_TABLES[2][((crc >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[1][((crc >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[0][(crc >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = CRC_TABLES[0][((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

// ---------------------------------------------------------------------------
// Varints (unsigned LEB128, shared convention with the store's binio codec)
// ---------------------------------------------------------------------------

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

fn get_varint(bytes: &[u8], pos: &mut usize) -> Result<u64, LzbError> {
    let start = *pos;
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        if *pos >= bytes.len() {
            return err(LzbErrorKind::Truncated, start);
        }
        let b = bytes[*pos];
        *pos += 1;
        if shift >= 63 && b > 1 {
            return err(LzbErrorKind::BadVarint, start);
        }
        v |= ((b & 0x7F) as u64) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return err(LzbErrorKind::BadVarint, start);
        }
    }
}

// ---------------------------------------------------------------------------
// Encoder
// ---------------------------------------------------------------------------

#[inline]
fn hash4(bytes: &[u8], pos: usize) -> usize {
    let v = u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]]);
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

/// Encode the LZ4-style token stream for `input` into `out`. Returns
/// `false` (leaving `out` in an arbitrary state) if the stream would be at
/// least as large as the input, in which case the caller should fall back
/// to a raw frame.
fn compress_tokens(input: &[u8], out: &mut Vec<u8>) -> bool {
    let n = input.len();
    if n < MIN_MATCH + 1 {
        return false;
    }
    // head[h] / prev[i] store position+1 so 0 means "empty".
    let mut head = vec![0u32; HASH_SIZE];
    let mut prev = vec![0u32; n];
    let mut pos = 0usize;
    let mut literal_start = 0usize;
    let limit = n - MIN_MATCH;

    while pos <= limit {
        if out.len() >= n {
            return false;
        }
        let h = hash4(input, pos);
        let first = head[h];
        let mut cand = first as usize;
        let mut best_len = 0usize;
        let mut best_off = 0usize;
        let mut chain = 0usize;
        while cand != 0 && chain < MAX_CHAIN {
            let c = cand - 1;
            if pos - c <= MAX_OFFSET {
                let max = n - pos;
                let mut l = 0usize;
                while l < max && input[c + l] == input[pos + l] {
                    l += 1;
                }
                if l >= MIN_MATCH && l > best_len {
                    best_len = l;
                    best_off = pos - c;
                    if l >= 128 {
                        break; // long enough; stop searching
                    }
                }
            } else {
                break; // chain positions only get older
            }
            cand = prev[c] as usize;
            chain += 1;
        }
        head[h] = (pos + 1) as u32;
        prev[pos] = first;
        if best_len == 0 {
            pos += 1;
            continue;
        }

        // Emit sequence: literals [literal_start, pos) + match.
        let lit_len = pos - literal_start;
        let match_extra = best_len - MIN_MATCH;
        let token_lit = lit_len.min(15) as u8;
        let token_match = match_extra.min(15) as u8;
        out.push((token_lit << 4) | token_match);
        if lit_len >= 15 {
            put_len_ext(out, lit_len - 15);
        }
        out.extend_from_slice(&input[literal_start..pos]);
        out.extend_from_slice(&(best_off as u16).to_le_bytes());
        if match_extra >= 15 {
            put_len_ext(out, match_extra - 15);
        }

        // Insert hash entries for the matched region (sparsely for speed).
        let end = pos + best_len;
        let mut p = pos + 1;
        let step = if best_len > 64 { 4 } else { 1 };
        while p < end.min(limit + 1) {
            let h = hash4(input, p);
            prev[p] = head[h];
            head[h] = (p + 1) as u32;
            p += step;
        }
        pos = end;
        literal_start = pos;
    }

    // Final literal run (possibly empty token if input ended on a match).
    let lit_len = n - literal_start;
    let token_lit = lit_len.min(15) as u8;
    out.push(token_lit << 4);
    if lit_len >= 15 {
        put_len_ext(out, lit_len - 15);
    }
    out.extend_from_slice(&input[literal_start..]);
    out.len() < n
}

/// 255-continuation length extension (LZ4 style): emit `v / 255` bytes of
/// 255 followed by `v % 255`.
fn put_len_ext(out: &mut Vec<u8>, mut v: usize) {
    while v >= 255 {
        out.push(255);
        v -= 255;
    }
    out.push(v as u8);
}

fn get_len_ext(bytes: &[u8], pos: &mut usize) -> Result<usize, LzbError> {
    let mut v = 0usize;
    loop {
        if *pos >= bytes.len() {
            return err(LzbErrorKind::Truncated, *pos);
        }
        let b = bytes[*pos];
        *pos += 1;
        v += b as usize;
        if b != 255 {
            return Ok(v);
        }
    }
}

/// Compress `input` into a fresh framed block. Incompressible inputs fall
/// back to the raw escape, so the result is never more than
/// [`MAX_FRAME_OVERHEAD`] bytes larger than `input`.
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 32);
    compress_into(input, &mut out);
    out
}

/// Like [`compress`], but appends the frame to `out` (which is not
/// cleared). Returns the number of frame bytes written.
pub fn compress_into(input: &[u8], out: &mut Vec<u8>) -> usize {
    let start = out.len();
    let mut tokens = Vec::with_capacity(input.len());
    let ok = compress_tokens(input, &mut tokens);
    let (method, payload): (u8, &[u8]) =
        if ok { (METHOD_LZB, &tokens) } else { (METHOD_RAW, input) };
    out.push(method);
    put_varint(out, input.len() as u64);
    put_varint(out, payload.len() as u64);
    out.extend_from_slice(payload);
    out.extend_from_slice(&crc32(input).to_le_bytes());
    out.len() - start
}

/// Frame `input` with the raw escape unconditionally (no matcher pass).
/// Appends the frame to `out` and returns the number of frame bytes
/// written. Useful when the caller wants the framing (walkable sizes +
/// checksum) without paying for compression.
pub fn frame_raw_into(input: &[u8], out: &mut Vec<u8>) -> usize {
    let start = out.len();
    out.push(METHOD_RAW);
    put_varint(out, input.len() as u64);
    put_varint(out, input.len() as u64);
    out.extend_from_slice(input);
    out.extend_from_slice(&crc32(input).to_le_bytes());
    out.len() - start
}

// ---------------------------------------------------------------------------
// Decoder
// ---------------------------------------------------------------------------

/// Sizes declared by the frame starting at `frame[0]`: returns
/// `(uncompressed_len, total_frame_len)` without decoding the payload.
/// Use this to walk a byte stream of concatenated frames.
pub fn frame_sizes(frame: &[u8]) -> Result<(usize, usize), LzbError> {
    if frame.is_empty() {
        return err(LzbErrorKind::Truncated, 0);
    }
    let method = frame[0];
    if method != METHOD_RAW && method != METHOD_LZB {
        return err(LzbErrorKind::BadMethod(method), 0);
    }
    let mut pos = 1usize;
    let uncomp = get_varint(frame, &mut pos)? as usize;
    let stored = get_varint(frame, &mut pos)? as usize;
    let total = pos
        .checked_add(stored)
        .and_then(|v| v.checked_add(4))
        .ok_or(LzbError { kind: LzbErrorKind::BadVarint, offset: pos })?;
    if total > frame.len() {
        return err(LzbErrorKind::Truncated, frame.len());
    }
    Ok((uncomp, total))
}

/// Decode one frame from the start of `frame`, appending the uncompressed
/// bytes to `out`. Returns the number of frame bytes consumed, so callers
/// can walk concatenated frames. On error `out` is truncated back to its
/// original length — no partial data is ever exposed.
pub fn decompress_into(frame: &[u8], out: &mut Vec<u8>) -> Result<usize, LzbError> {
    let out_start = out.len();
    let r = decompress_inner(frame, out);
    if r.is_err() {
        out.truncate(out_start);
    }
    r
}

fn decompress_inner(frame: &[u8], out: &mut Vec<u8>) -> Result<usize, LzbError> {
    if frame.is_empty() {
        return err(LzbErrorKind::Truncated, 0);
    }
    let method = frame[0];
    if method != METHOD_RAW && method != METHOD_LZB {
        return err(LzbErrorKind::BadMethod(method), 0);
    }
    let mut pos = 1usize;
    let uncomp = get_varint(frame, &mut pos)? as usize;
    let stored = get_varint(frame, &mut pos)? as usize;
    let payload_start = pos;
    if payload_start + stored + 4 > frame.len() {
        return err(LzbErrorKind::Truncated, frame.len());
    }
    let payload = &frame[payload_start..payload_start + stored];
    let crc_off = payload_start + stored;
    let stored_crc = u32::from_le_bytes([
        frame[crc_off],
        frame[crc_off + 1],
        frame[crc_off + 2],
        frame[crc_off + 3],
    ]);

    let out_start = out.len();
    match method {
        METHOD_RAW => {
            if stored != uncomp {
                return err(
                    LzbErrorKind::LengthMismatch { declared: uncomp, produced: stored },
                    payload_start,
                );
            }
            out.extend_from_slice(payload);
        }
        _ => decode_tokens(payload, payload_start, uncomp, out)?,
    }
    let produced = out.len() - out_start;
    if produced != uncomp {
        return err(LzbErrorKind::LengthMismatch { declared: uncomp, produced }, crc_off);
    }
    let computed = crc32(&out[out_start..]);
    if computed != stored_crc {
        return err(LzbErrorKind::Checksum { stored: stored_crc, computed }, crc_off);
    }
    Ok(crc_off + 4)
}

/// Decode an lzb token stream. `base` is the payload's offset within the
/// frame, used to position errors in frame coordinates.
fn decode_tokens(
    payload: &[u8],
    base: usize,
    expect: usize,
    out: &mut Vec<u8>,
) -> Result<(), LzbError> {
    let out_start = out.len();
    let mut pos = 0usize;
    while pos < payload.len() {
        let token = payload[pos];
        pos += 1;
        let mut lit_len = (token >> 4) as usize;
        if lit_len == 15 {
            lit_len += get_len_ext(payload, &mut pos).map_err(|e| at(e, base))?;
        }
        if pos + lit_len > payload.len() {
            return err(LzbErrorKind::Truncated, base + payload.len());
        }
        out.extend_from_slice(&payload[pos..pos + lit_len]);
        pos += lit_len;
        if pos == payload.len() {
            // Final sequence carries no match — and must not promise
            // one: the encoder always ends on a pure-literal token, so
            // a nonzero match nibble here is corruption (every payload
            // bit is load-bearing, there are no ignorable bits for
            // damage to hide in).
            if token & 0x0F != 0 {
                return err(LzbErrorKind::Truncated, base + payload.len());
            }
            break;
        }
        if pos + 2 > payload.len() {
            return err(LzbErrorKind::Truncated, base + payload.len());
        }
        let offset = u16::from_le_bytes([payload[pos], payload[pos + 1]]) as usize;
        let tok_pos = pos;
        pos += 2;
        let mut match_len = (token & 0x0F) as usize;
        if match_len == 15 {
            match_len += get_len_ext(payload, &mut pos).map_err(|e| at(e, base))?;
        }
        match_len += MIN_MATCH;
        let produced = out.len() - out_start;
        if offset == 0 || offset > produced {
            return err(LzbErrorKind::BadMatchOffset { offset, produced }, base + tok_pos);
        }
        if produced + match_len > expect {
            // Would overrun the declared size — corrupt stream; stop with a
            // positioned error instead of over-allocating.
            return err(
                LzbErrorKind::LengthMismatch { declared: expect, produced: produced + match_len },
                base + tok_pos,
            );
        }
        // Overlapping copies are the point (offset < match_len repeats a
        // short pattern), so copy byte-wise from the output buffer.
        let src = out.len() - offset;
        for i in src..src + match_len {
            let b = out[i];
            out.push(b);
        }
    }
    Ok(())
}

fn at(mut e: LzbError, base: usize) -> LzbError {
    e.offset += base;
    e
}

/// Decode one frame into a fresh buffer (convenience over
/// [`decompress_into`]).
pub fn decompress(frame: &[u8]) -> Result<Vec<u8>, LzbError> {
    let mut out = Vec::new();
    decompress_into(frame, &mut out)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(data: &[u8]) {
        let frame = compress(data);
        assert!(frame.len() <= data.len() + MAX_FRAME_OVERHEAD, "expansion bound violated");
        let back = decompress(&frame).expect("round trip");
        assert_eq!(back, data);
        let (uncomp, total) = frame_sizes(&frame).expect("sizes");
        assert_eq!(uncomp, data.len());
        assert_eq!(total, frame.len());
    }

    #[test]
    fn empty_and_tiny() {
        round_trip(b"");
        round_trip(b"a");
        round_trip(b"abcd");
        round_trip(b"abcde");
    }

    #[test]
    fn all_zero_compresses_hard() {
        let data = vec![0u8; 1 << 16];
        let frame = compress(&data);
        assert!(frame.len() < data.len() / 100, "zeros should compress >100x, got {}", frame.len());
        assert_eq!(decompress(&frame).unwrap(), data);
    }

    #[test]
    fn repetitive_text() {
        let data: Vec<u8> = b"the quick brown fox jumps over the lazy dog. "
            .iter()
            .copied()
            .cycle()
            .take(100_000)
            .collect();
        let frame = compress(&data);
        assert!(frame.len() < data.len() / 4);
        assert_eq!(decompress(&frame).unwrap(), data);
    }

    #[test]
    fn incompressible_uses_raw_escape() {
        // A simple xorshift PRNG gives bytes no 4-byte match will tame.
        let mut x = 0x1234_5678_9abc_def0u64;
        let data: Vec<u8> = (0..4096)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x >> 56) as u8
            })
            .collect();
        let frame = compress(&data);
        assert_eq!(frame[0], METHOD_RAW);
        assert!(frame.len() <= data.len() + MAX_FRAME_OVERHEAD);
        assert_eq!(decompress(&frame).unwrap(), data);
    }

    #[test]
    fn overlapping_match_short_period() {
        let mut data = b"ab".to_vec();
        for _ in 0..2000 {
            data.push(b'a');
            data.push(b'b');
        }
        round_trip(&data);
    }

    #[test]
    fn truncated_frames_are_positioned_errors() {
        let data: Vec<u8> = (0..10_000u32).flat_map(|i| (i % 251).to_le_bytes()).collect();
        let frame = compress(&data);
        for cut in [0, 1, 2, frame.len() / 2, frame.len() - 1] {
            let e = decompress(&frame[..cut]).expect_err("truncated frame must fail");
            assert!(e.offset <= cut, "error offset {} beyond cut {}", e.offset, cut);
        }
    }

    #[test]
    fn bit_flips_fail_checksum() {
        let data: Vec<u8> = b"abcabcabcabc1234".iter().copied().cycle().take(5000).collect();
        let frame = compress(&data);
        let mut flipped = 0;
        for i in 0..frame.len() {
            let mut bad = frame.clone();
            bad[i] ^= 0x40;
            if decompress(&bad).is_err() {
                flipped += 1;
            }
        }
        // Every single-bit corruption must be detected (method byte,
        // lengths, payload, or checksum all feed the validation chain).
        assert_eq!(flipped, frame.len());
    }

    #[test]
    fn concatenated_frames_walk() {
        let a = compress(b"first block first block first block");
        let b = compress(b"second");
        let mut stream = a.clone();
        stream.extend_from_slice(&b);
        let mut out = Vec::new();
        let used = decompress_into(&stream, &mut out).unwrap();
        assert_eq!(used, a.len());
        let used2 = decompress_into(&stream[used..], &mut out).unwrap();
        assert_eq!(used2, b.len());
        assert_eq!(out, b"first block first block first blocksecond");
    }

    #[test]
    fn crc_reference_vector() {
        // Standard IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }
}

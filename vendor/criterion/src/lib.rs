//! Vendored, offline stand-in for `criterion`.
//!
//! Implements the macro/struct surface the PPD benches use
//! (`criterion_group!`, `criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`) with a simple
//! wall-clock measurement: a short warm-up, then batches timed until a
//! fixed measurement budget elapses, reporting the per-iteration mean
//! and best batch. No statistics, plots, or baselines.

// Vendored stand-in: exempt from workspace clippy policy.
#![allow(clippy::all)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

pub struct Criterion {
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_time: Duration::from_millis(200),
            warm_up_time: Duration::from_millis(20),
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("\n== group: {name}");
        BenchmarkGroup { c: self, name }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&id, self.warm_up_time, self.measurement_time, &mut f);
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }
}

pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        run_one(&id, self.c.warm_up_time, self.c.measurement_time, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = format!("{}/{}", self.name, id.0);
        run_one(&id, self.c.warm_up_time, self.c.measurement_time, &mut |b| f(b, input));
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.c.measurement_time = d;
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn finish(self) {}
}

pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(name: impl Into<String>, param: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{}/{}", name.into(), param))
    }

    pub fn from_parameter(param: impl Display) -> BenchmarkId {
        BenchmarkId(param.to_string())
    }
}

pub struct Bencher {
    /// (iterations, elapsed) batches recorded by `iter`.
    samples: Vec<(u64, Duration)>,
    budget: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One calibration call, then geometric batch growth until the
        // measurement budget is used.
        let start = Instant::now();
        black_box(f());
        let first = start.elapsed();
        self.samples.push((1, first));
        let mut batch: u64 = if first < Duration::from_micros(50) { 64 } else { 1 };
        let deadline = Instant::now() + self.budget;
        while Instant::now() < deadline {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples.push((batch, t0.elapsed()));
            if batch < 1 << 20 {
                batch *= 2;
            }
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, warm_up: Duration, budget: Duration, f: &mut F) {
    // Warm-up round (discarded).
    let mut warm = Bencher { samples: Vec::new(), budget: warm_up };
    f(&mut warm);
    let mut b = Bencher { samples: Vec::new(), budget };
    f(&mut b);
    let total_iters: u64 = b.samples.iter().map(|(n, _)| n).sum();
    let total_time: Duration = b.samples.iter().map(|(_, t)| *t).sum();
    let mean =
        if total_iters > 0 { total_time.as_nanos() as f64 / total_iters as f64 } else { f64::NAN };
    let best = b
        .samples
        .iter()
        .map(|(n, t)| t.as_nanos() as f64 / *n as f64)
        .fold(f64::INFINITY, f64::min);
    eprintln!(
        "{id:<60} mean {:>12}  best {:>12}  ({total_iters} iters)",
        fmt_ns(mean),
        fmt_ns(best)
    );
}

fn fmt_ns(ns: f64) -> String {
    if !ns.is_finite() {
        "n/a".to_string()
    } else if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        c.measurement_time(Duration::from_millis(5)).warm_up_time(Duration::from_millis(1));
        let mut group = c.benchmark_group("smoke");
        group.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
        group.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }
}

//! Vendored, offline stand-in for `serde_json`: renders the vendored
//! `serde::Content` tree to JSON text and parses JSON text back into it.
//!
//! Supports the full JSON grammar (escapes, `\uXXXX` including
//! surrogate pairs, scientific-notation numbers) so anything this
//! workspace serializes round-trips. Map keys are stringified on
//! output; integer-typed keys are recovered on input by the vendored
//! `serde` integer impls, which accept numeric strings.

// Vendored stand-in: exempt from workspace clippy policy.
#![allow(clippy::all)]

use serde::{Content, Deserialize, Serialize};
use std::fmt;

/// JSON serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Error {
        Error::new(e.to_string())
    }
}

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_content(), &mut out, None, 0);
    Ok(out)
}

pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_content(), &mut out, Some(2), 0);
    Ok(out)
}

pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let content = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new("trailing characters after JSON value"));
    }
    Ok(T::from_content(&content)?)
}

// ---------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// JSON object keys must be strings; stringify scalar keys directly and
/// fall back to rendering the key as compact JSON inside a string.
fn render_key(key: &Content, out: &mut String) {
    match key {
        Content::Str(s) => escape_into(s, out),
        Content::U64(n) => escape_into(&n.to_string(), out),
        Content::I64(n) => escape_into(&n.to_string(), out),
        Content::Bool(b) => escape_into(&b.to_string(), out),
        other => {
            let mut inner = String::new();
            render(other, &mut inner, None, 0);
            escape_into(&inner, out);
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..(w * depth) {
            out.push(' ');
        }
    }
}

fn render(c: &Content, out: &mut String, indent: Option<usize>, depth: usize) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::I64(n) => out.push_str(&n.to_string()),
        Content::U64(n) => out.push_str(&n.to_string()),
        Content::F64(x) => {
            if x.is_finite() {
                out.push_str(&format!("{x}"));
            } else {
                out.push_str("null");
            }
        }
        Content::Str(s) => escape_into(s, out),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                render(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                render_key(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(v, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!("expected `{}` at byte {}", b as char, self.pos)))
        }
    }

    fn parse_value(&mut self) -> Result<Content, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_lit("null", Content::Null),
            Some(b't') => self.parse_lit("true", Content::Bool(true)),
            Some(b'f') => self.parse_lit("false", Content::Bool(false)),
            Some(b'"') => Ok(Content::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => {
                Err(Error::new(format!("unexpected character {other:?} at byte {}", self.pos)))
            }
        }
    }

    fn parse_lit(&mut self, lit: &str, value: Content) -> Result<Content, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_array(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(Error::new(format!("malformed array at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((Content::Str(key), value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => {
                    return Err(Error::new(format!("malformed object at byte {}", self.pos)));
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or_else(|| Error::new("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self.peek().ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| Error::new("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(Error::new("unknown escape")),
                    }
                }
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Multi-byte UTF-8: the input is a &str, so just
                    // re-decode from the byte slice.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| Error::new("invalid utf-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>().map(Content::F64).map_err(|_| Error::new("invalid number"))
        } else if text.starts_with('-') {
            text.parse::<i64>().map(Content::I64).map_err(|_| Error::new("invalid number"))
        } else {
            text.parse::<u64>().map(Content::U64).map_err(|_| Error::new("invalid number"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(from_str::<i64>("-3").unwrap(), -3);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(from_str::<bool>("true").unwrap(), true);
    }

    #[test]
    fn strings_escape_round_trip() {
        let s = "line\n\"quote\"\tüñî©ode \u{1F600}".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
        // Parse external escapes too.
        assert_eq!(from_str::<String>("\"\\u0041\\uD83D\\uDE00\"").unwrap(), "A\u{1F600}");
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(from_str::<Vec<u32>>(&to_string(&v).unwrap()).unwrap(), v);
        let mut m = BTreeMap::new();
        m.insert(7u32, "seven".to_string());
        let json = to_string(&m).unwrap();
        assert_eq!(json, "{\"7\":\"seven\"}");
        assert_eq!(from_str::<BTreeMap<u32, String>>(&json).unwrap(), m);
    }

    #[test]
    fn pretty_parses_back() {
        let v = vec![vec![1u32], vec![2, 3]];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<Vec<Vec<u32>>>(&pretty).unwrap(), v);
    }
}

//! Vendored offline stand-in for `rayon`.
//!
//! The build container has no crates-io access, so this crate provides
//! the small slice of the rayon API the workspace uses, implemented
//! with safe `std::thread::scope` threads and atomic index-range work
//! stealing:
//!
//! - [`ThreadPoolBuilder`] / [`ThreadPool`] with [`ThreadPool::install`];
//! - [`current_num_threads`], honouring `RAYON_NUM_THREADS`;
//! - `slice.par_iter().map(f).collect::<Vec<_>>()` via [`prelude`];
//! - [`join`] for two-way forks.
//!
//! Scheduling: each parallel map splits the input index space into one
//! contiguous range per worker; every worker owns an atomic cursor into
//! its range and, when its own range drains, steals indices from the
//! busiest remaining victim. Results are assembled **in input index
//! order**, so output is deterministic regardless of the schedule.
//!
//! Stand-in extensions (not in real rayon): [`ThreadPool::pool_stats`]
//! exposes the task and steal counters the bench tables report, and
//! workers are scoped threads spawned per call rather than a persistent
//! pool — adequate for the coarse-grained replay/scan tasks here.

use std::cell::RefCell;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Counters accumulated by a pool across all parallel calls run in it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Individual items executed by workers.
    pub tasks: u64,
    /// Items executed by a worker that stole them from another
    /// worker's range.
    pub steals: u64,
}

#[derive(Debug)]
struct PoolInner {
    threads: usize,
    tasks: AtomicU64,
    steals: AtomicU64,
}

thread_local! {
    /// Stack of installed pools; `install` pushes, its guard pops.
    static CURRENT: RefCell<Vec<Arc<PoolInner>>> = const { RefCell::new(Vec::new()) };
}

fn global_pool() -> &'static Arc<PoolInner> {
    static GLOBAL: OnceLock<Arc<PoolInner>> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        Arc::new(PoolInner {
            threads: default_threads(),
            tasks: AtomicU64::new(0),
            steals: AtomicU64::new(0),
        })
    })
}

fn default_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

fn current_pool() -> Arc<PoolInner> {
    CURRENT.with(|c| c.borrow().last().cloned()).unwrap_or_else(|| Arc::clone(global_pool()))
}

/// Number of threads the currently installed (or global) pool uses.
pub fn current_num_threads() -> usize {
    current_pool().threads
}

/// Error from [`ThreadPoolBuilder::build`]. The stand-in never fails
/// to build, but the type keeps call sites source-compatible.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    pub fn new() -> ThreadPoolBuilder {
        ThreadPoolBuilder::default()
    }

    /// Sets the worker count; 0 (rayon's convention) means "default".
    pub fn num_threads(mut self, n: usize) -> ThreadPoolBuilder {
        self.num_threads = if n == 0 { None } else { Some(n) };
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = self.num_threads.unwrap_or_else(default_threads).max(1);
        Ok(ThreadPool {
            inner: Arc::new(PoolInner {
                threads,
                tasks: AtomicU64::new(0),
                steals: AtomicU64::new(0),
            }),
        })
    }
}

/// A pool of `num_threads` workers (spawned per parallel call).
#[derive(Debug, Clone)]
pub struct ThreadPool {
    inner: Arc<PoolInner>,
}

impl ThreadPool {
    /// Runs `op` with this pool installed as the current pool: parallel
    /// iterators inside `op` use this pool's thread count and counters.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        CURRENT.with(|c| c.borrow_mut().push(Arc::clone(&self.inner)));
        struct Guard;
        impl Drop for Guard {
            fn drop(&mut self) {
                CURRENT.with(|c| {
                    c.borrow_mut().pop();
                });
            }
        }
        let _guard = Guard;
        op()
    }

    /// This pool's worker count.
    pub fn current_num_threads(&self) -> usize {
        self.inner.threads
    }

    /// Task/steal counters accumulated so far (stand-in extension).
    pub fn pool_stats(&self) -> PoolStats {
        PoolStats {
            tasks: self.inner.tasks.load(Ordering::Relaxed),
            steals: self.inner.steals.load(Ordering::Relaxed),
        }
    }
}

/// Two-way fork-join. The stand-in runs the closures on the calling
/// thread (the coarse-grained callers here fan out via `par_iter`).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    let pool = current_pool();
    pool.tasks.fetch_add(2, Ordering::Relaxed);
    (a(), b())
}

/// The work-stealing parallel map every `par_iter` chain bottoms out
/// in: applies `f` to each index, returning results in index order.
fn parallel_map<'a, T, R, F>(pool: &PoolInner, items: &'a [T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    let n = items.len();
    let workers = pool.threads.min(n);
    pool.tasks.fetch_add(n as u64, Ordering::Relaxed);
    if workers <= 1 {
        return items.iter().map(f).collect();
    }

    // One contiguous index range per worker, each with an atomic
    // cursor. A worker drains its own range first, then steals from
    // whichever victim has the most remaining work.
    let mut starts = Vec::with_capacity(workers);
    let mut ends = Vec::with_capacity(workers);
    let chunk = n / workers;
    let extra = n % workers;
    let mut lo = 0usize;
    for w in 0..workers {
        let len = chunk + usize::from(w < extra);
        starts.push(AtomicUsize::new(lo));
        ends.push(lo + len);
        lo += len;
    }
    let cursors = &starts;
    let ends = &ends;
    let f = &f;
    let steals = &pool.steals;

    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let out: Vec<Mutex<Vec<(usize, R)>>> = (0..workers).map(|_| Mutex::new(Vec::new())).collect();
    let out_ref = &out;

    std::thread::scope(|scope| {
        for w in 0..workers {
            scope.spawn(move || {
                // One Chrome track per worker; scoped threads are fresh
                // per call, so name the track every time.
                if ppd_obs::spans_enabled() {
                    ppd_obs::set_thread_name(format!("pool-worker-{w}"));
                }
                let mut local: Vec<(usize, R)> = Vec::new();
                // Own range.
                loop {
                    let i = cursors[w].fetch_add(1, Ordering::Relaxed);
                    if i >= ends[w] {
                        break;
                    }
                    let _task = ppd_obs::span("pool", "task");
                    local.push((i, f(&items[i])));
                }
                // Steal until every range is drained.
                loop {
                    let mut victim = None;
                    let mut most_left = 0usize;
                    for (v, end) in ends.iter().enumerate() {
                        if v == w {
                            continue;
                        }
                        let cur = cursors[v].load(Ordering::Relaxed);
                        let left = end.saturating_sub(cur);
                        if left > most_left {
                            most_left = left;
                            victim = Some(v);
                        }
                    }
                    let Some(v) = victim else { break };
                    let i = cursors[v].fetch_add(1, Ordering::Relaxed);
                    if i < ends[v] {
                        steals.fetch_add(1, Ordering::Relaxed);
                        let mut task = ppd_obs::span("pool", "task");
                        task.arg_str("stolen", "true");
                        local.push((i, f(&items[i])));
                    }
                }
                *out_ref[w].lock().unwrap() = local;
            });
        }
    });

    for m in out {
        for (i, r) in m.into_inner().unwrap() {
            slots[i] = Some(r);
        }
    }
    slots.into_iter().map(|s| s.expect("every index executed exactly once")).collect()
}

/// `use rayon::prelude::*;` — brings the parallel-iterator traits in.
pub mod prelude {
    pub use crate::{IntoParallelRefIterator, ParallelIterator};
}

/// `.par_iter()` on slices (and, by deref, `Vec`s).
pub trait IntoParallelRefIterator<'a> {
    type Item: Sync + 'a;
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// Borrowing parallel iterator over a slice.
#[derive(Debug)]
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        ParMap { items: self.items, f }
    }
}

/// A mapped parallel iterator, ready to collect.
#[derive(Debug)]
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

/// The subset of rayon's `ParallelIterator` the workspace consumes.
pub trait ParallelIterator {
    type Output;
    /// Runs the pipeline on the current pool; results arrive in input
    /// index order.
    fn collect<C: From<Vec<Self::Output>>>(self) -> C;
}

impl<'a, T, R, F> ParallelIterator for ParMap<'a, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    type Output = R;
    fn collect<C: From<Vec<R>>>(self) -> C {
        let pool = current_pool();
        let out = parallel_map(&pool, self.items, &self.f);
        C::from(out)
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn collect_preserves_input_order() {
        let items: Vec<u64> = (0..997).collect();
        let pool = ThreadPoolBuilder::new().num_threads(8).build().unwrap();
        let doubled: Vec<u64> = pool.install(|| items.par_iter().map(|x| x * 2).collect());
        assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn tasks_counted_and_single_thread_runs_inline() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let v: Vec<usize> = pool.install(|| [1, 2, 3].par_iter().map(|x| x + 1).collect());
        assert_eq!(v, vec![2, 3, 4]);
        assert_eq!(pool.pool_stats().tasks, 3);
        assert_eq!(pool.pool_stats().steals, 0);
    }

    #[test]
    fn uneven_work_steals_without_losing_items() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let items: Vec<u64> = (0..256).collect();
        // Front-loaded work so later ranges finish first and steal.
        let out: Vec<u64> = pool.install(|| {
            items
                .par_iter()
                .map(|&x| {
                    let mut acc = x;
                    let spin = if x < 32 { 20_000 } else { 10 };
                    for i in 0..spin {
                        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
                    }
                    let _ = acc;
                    x
                })
                .collect()
        });
        assert_eq!(out, items);
        assert_eq!(pool.pool_stats().tasks, 256);
    }

    #[test]
    fn install_nests_and_restores() {
        let outer = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let inner = ThreadPoolBuilder::new().num_threads(5).build().unwrap();
        outer.install(|| {
            assert_eq!(current_num_threads(), 3);
            inner.install(|| assert_eq!(current_num_threads(), 5));
            assert_eq!(current_num_threads(), 3);
        });
    }

    #[test]
    fn join_runs_both() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!((a, b), (4, "ok"));
    }

    #[test]
    fn builder_zero_means_default() {
        let pool = ThreadPoolBuilder::new().num_threads(0).build().unwrap();
        assert!(pool.current_num_threads() >= 1);
    }
}

#!/usr/bin/env bash
# Lints every example program in deny-warnings mode against the
# expected-diagnostics allowlist in programs/lint-allow.txt.
#
# A program passes when the set of diagnostic codes `ppd lint` emits is
# exactly its allowlisted set; clean programs (no allowlist line) must
# additionally survive `ppd lint --deny`. Any drift — a new diagnostic,
# or a documented one disappearing — fails the script, so the allowlist
# is forced to stay in sync with the lint passes.
set -u

PPD=${PPD:-target/debug/ppd}
ALLOW=programs/lint-allow.txt
fail=0

for f in programs/*.ppd; do
    name=$(basename "$f")
    expected=$(sed -n "s/^$name: *//p" "$ALLOW")
    actual=$("$PPD" lint "$f" --format json \
        | grep -o '"code": "PPD[0-9]*"' \
        | grep -o 'PPD[0-9]*' | sort -u | paste -sd, -)
    if [ "${actual:-}" != "$expected" ]; then
        echo "FAIL $name: emitted [${actual:-}] but allowlist says [$expected]" >&2
        fail=1
    else
        echo "ok   $name: [${actual:-none}]"
    fi
    if [ -z "$expected" ]; then
        if ! "$PPD" lint "$f" --deny >/dev/null; then
            echo "FAIL $name: clean program rejected by --deny" >&2
            fail=1
        fi
    fi
done

exit $fail

#!/usr/bin/env bash
# Gates every example program in programs/ on the two static frontends:
#
# 1. `ppd check` in deny-errors mode: every program must type-check,
#    unless listed in programs/check-allow.txt (programs that
#    deliberately fail inference, none today). The SARIF rendering of
#    the check result must also be structurally valid.
# 2. `ppd lint` against the expected-diagnostics allowlist in
#    programs/lint-allow.txt: a program passes when the set of
#    diagnostic codes `ppd lint` emits is exactly its allowlisted set;
#    clean programs (no allowlist line) must additionally survive
#    `ppd lint --deny`.
#
# Any drift — a new diagnostic, a documented one disappearing, or a
# program that stops type-checking — fails the script, so both
# allowlists are forced to stay in sync with the analyses. Before the
# per-program gates, both allowlists are themselves validated: an entry
# naming a program that no longer exists, or a diagnostic code the lint
# registry does not know (`ppd lint --explain` is the oracle), fails
# the script — stale allowlist lines cannot silently rot.
set -u

PPD=${PPD:-target/debug/ppd}
ALLOW=programs/lint-allow.txt
CHECK_ALLOW=programs/check-allow.txt
fail=0

# --- allowlist hygiene ---------------------------------------------------
while IFS= read -r line; do
    case "$line" in ''|\#*) continue ;; esac
    prog=${line%%:*}
    if [ ! -f "programs/$prog" ]; then
        echo "FAIL $ALLOW: stale entry for missing program $prog" >&2
        fail=1
    fi
    for code in $(printf '%s' "${line#*:}" | tr ',' ' '); do
        if ! "$PPD" lint --explain "$code" >/dev/null 2>&1; then
            echo "FAIL $ALLOW: unknown diagnostic code $code (entry for $prog)" >&2
            fail=1
        fi
    done
done < "$ALLOW"
while IFS= read -r line; do
    case "$line" in ''|\#*) continue ;; esac
    if [ ! -f "programs/$line" ]; then
        echo "FAIL $CHECK_ALLOW: stale entry for missing program $line" >&2
        fail=1
    fi
done < "$CHECK_ALLOW"

for f in programs/*.ppd; do
    name=$(basename "$f")

    # --- ppd check: deny type errors unless allowlisted -----------------
    allowed_fail=0
    if [ -f "$CHECK_ALLOW" ] && grep -q "^$name\$" "$CHECK_ALLOW"; then
        allowed_fail=1
    fi
    if "$PPD" check "$f" >/dev/null 2>&1; then
        if [ "$allowed_fail" = 1 ]; then
            echo "FAIL $name: type-checks but is allowlisted as failing in $CHECK_ALLOW" >&2
            fail=1
        else
            echo "ok   $name: ppd check clean"
        fi
    else
        if [ "$allowed_fail" = 1 ]; then
            echo "ok   $name: ppd check fails (allowlisted)"
        else
            echo "FAIL $name: ppd check reports type errors:" >&2
            "$PPD" check "$f" 2>&1 | sed 's/^/    /' >&2
            fail=1
        fi
    fi

    # --- ppd check --format sarif: must emit a well-formed SARIF doc ----
    sarif=$("$PPD" check "$f" --format sarif 2>/dev/null)
    for key in '"version": "2.1.0"' '"runs"' '"results"' '"driver"'; do
        case "$sarif" in
            *"$key"*) ;;
            *)
                echo "FAIL $name: check --format sarif output lacks $key" >&2
                fail=1
                ;;
        esac
    done

    # --- ppd lint: exact allowlisted diagnostic codes -------------------
    expected=$(sed -n "s/^$name: *//p" "$ALLOW")
    actual=$("$PPD" lint "$f" --no-check --format json \
        | grep -o '"code": "PPD[0-9]*"' \
        | grep -o 'PPD[0-9]*' | sort -u | paste -sd, -)
    if [ "${actual:-}" != "$expected" ]; then
        echo "FAIL $name: emitted [${actual:-}] but allowlist says [$expected]" >&2
        fail=1
    else
        echo "ok   $name: [${actual:-none}]"
    fi
    if [ -z "$expected" ]; then
        if ! "$PPD" lint "$f" --deny >/dev/null; then
            echo "FAIL $name: clean program rejected by --deny" >&2
            fail=1
        fi
    fi
done

exit $fail

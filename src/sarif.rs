//! Minimal SARIF 2.1.0 output for the lint driver.
//!
//! [SARIF](https://docs.oasis-open.org/sarif/sarif/v2.1.0/sarif-v2.1.0.html)
//! is the interchange format code-scanning UIs (GitHub, VS Code)
//! ingest. This emits the minimal useful subset: one `run` with the
//! `ppd lint` tool descriptor, one reporting rule per diagnostic code
//! that actually fired, and one `result` per diagnostic carrying its
//! message, level, primary physical location and the spanned notes as
//! `relatedLocations`. Spanless help notes travel in the related
//! location list with no region, so no information is dropped relative
//! to the JSON formatter.
//!
//! The vendored `serde_derive` has no `rename` support and SARIF wants
//! camelCase keys plus a literal `$schema`, so the document is built
//! directly as a [`serde::Content`] tree and rendered by `serde_json`.

use ppd_analysis::lint::{default_passes, Diagnostic, Severity};
use ppd_lang::diag::SourceFile;
use serde::{Content, Serialize};

/// Hand-built JSON tree; `Serialize` by structural identity.
struct Raw(Content);

impl Serialize for Raw {
    fn to_content(&self) -> Content {
        self.0.clone()
    }
}

fn obj(fields: Vec<(&str, Content)>) -> Content {
    Content::Map(fields.into_iter().map(|(k, v)| (Content::str_key(k), v)).collect())
}

fn text(s: impl Into<String>) -> Content {
    Content::Str(s.into())
}

fn physical_location(file: &SourceFile, span: ppd_lang::Span) -> Content {
    let (line, col) = file.line_col(span.start);
    obj(vec![
        ("artifactLocation", obj(vec![("uri", text(file.name()))])),
        (
            "region",
            obj(vec![
                ("startLine", Content::U64(u64::from(line))),
                ("startColumn", Content::U64(u64::from(col))),
            ]),
        ),
    ])
}

/// Renders `diags` as a pretty-printed SARIF 2.1.0 document.
pub fn to_sarif(diags: &[Diagnostic], file: &SourceFile) -> String {
    // One rule per code that fired, in first-appearance order; pass
    // names double as the rules' shortDescription.
    let pass_names: Vec<(&'static str, &'static str)> =
        default_passes().iter().map(|p| (p.code(), p.name())).collect();
    let mut rule_ids: Vec<&'static str> = Vec::new();
    for d in diags {
        if !rule_ids.contains(&d.code) {
            rule_ids.push(d.code);
        }
    }
    let rules: Vec<Content> = rule_ids
        .iter()
        .map(|&code| {
            let name = pass_names.iter().find(|&&(c, _)| c == code).map_or(code, |&(_, n)| n);
            obj(vec![
                ("id", text(code)),
                ("name", text(name)),
                ("shortDescription", obj(vec![("text", text(name))])),
            ])
        })
        .collect();

    let results: Vec<Content> = diags
        .iter()
        .map(|d| {
            let level = match d.severity {
                Severity::Warning => "warning",
                Severity::Error => "error",
            };
            let rule_index = rule_ids.iter().position(|&c| c == d.code).unwrap_or(0);
            let related: Vec<Content> = d
                .notes
                .iter()
                .map(|n| {
                    let mut fields = vec![("message", obj(vec![("text", text(n.label.clone()))]))];
                    if let Some(span) = n.span {
                        fields.push(("physicalLocation", physical_location(file, span)));
                    }
                    obj(fields)
                })
                .collect();
            obj(vec![
                ("ruleId", text(d.code)),
                ("ruleIndex", Content::U64(rule_index as u64)),
                ("level", text(level)),
                ("message", obj(vec![("text", text(d.message.clone()))])),
                (
                    "locations",
                    Content::Seq(vec![obj(vec![(
                        "physicalLocation",
                        physical_location(file, d.span),
                    )])]),
                ),
                ("relatedLocations", Content::Seq(related)),
            ])
        })
        .collect();

    let doc = obj(vec![
        ("$schema", text("https://json.schemastore.org/sarif-2.1.0.json")),
        ("version", text("2.1.0")),
        (
            "runs",
            Content::Seq(vec![obj(vec![
                (
                    "tool",
                    obj(vec![(
                        "driver",
                        obj(vec![
                            ("name", text("ppd lint")),
                            ("informationUri", text("https://example.org/ppd")),
                            ("rules", Content::Seq(rules)),
                        ]),
                    )]),
                ),
                ("results", Content::Seq(results)),
            ])]),
        ),
    ]);
    serde_json::to_string_pretty(&Raw(doc)).expect("infallible tree render")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppd_analysis::lint::run_default;
    use ppd_analysis::Analyses;

    fn sarif_of(src: &str) -> (String, usize) {
        let rp = ppd_lang::compile(src).unwrap();
        let analyses = Analyses::run(&rp);
        let diags = run_default(&rp, &analyses);
        let file = SourceFile::new("test.ppd", src);
        (to_sarif(&diags, &file), diags.len())
    }

    #[test]
    fn document_has_schema_version_and_one_result_per_diagnostic() {
        let (sarif, n) = sarif_of("shared int g; process A { g = 1; } process B { g = 2; }");
        assert!(n > 0);
        assert!(sarif.contains("\"version\": \"2.1.0\""), "{sarif}");
        assert!(sarif.contains("\"$schema\""), "{sarif}");
        assert_eq!(sarif.matches("\"ruleId\"").count(), n, "{sarif}");
    }

    #[test]
    fn rules_are_unique_and_referenced_by_index() {
        let (sarif, _) = sarif_of(
            "shared int g; \
             process A { g = 1; } process B { g = 2; } process C { g = 3; }",
        );
        // Three PPD001 results but only one PPD001 rule entry.
        assert_eq!(sarif.matches("\"id\": \"PPD001\"").count(), 1, "{sarif}");
        assert!(sarif.contains("\"name\": \"race-candidate\""), "{sarif}");
        assert!(sarif.matches("\"ruleId\": \"PPD001\"").count() >= 3, "{sarif}");
    }

    #[test]
    fn locations_are_one_based_line_and_column() {
        let (sarif, _) = sarif_of("shared int g;\nprocess A { g = 1; }\nprocess B { g = 2; }");
        assert!(sarif.contains("\"startLine\": 2"), "{sarif}");
        assert!(sarif.contains("\"uri\": \"test.ppd\""), "{sarif}");
    }

    #[test]
    fn output_parses_back_as_json() {
        let (sarif, _) = sarif_of("shared int g; process A { g = 1; } process B { g = 2; }");
        #[derive(serde::Deserialize)]
        struct Doc {
            version: String,
            runs: Vec<RunShape>,
        }
        #[derive(serde::Deserialize)]
        struct RunShape {
            results: Vec<ResultShape>,
        }
        #[allow(non_snake_case)]
        #[derive(serde::Deserialize)]
        struct ResultShape {
            ruleId: String,
            level: String,
        }
        let doc: Doc = serde_json::from_str(&sarif).unwrap();
        assert_eq!(doc.version, "2.1.0");
        assert!(doc.runs[0].results.iter().all(|r| r.ruleId.starts_with("PPD")));
        assert!(doc.runs[0].results.iter().all(|r| r.level == "warning"));
    }
}

//! The `ppd` command-line debugger.
//!
//! ```text
//! ppd check  <file> [options]            static type inference, then summarize
//! ppd lint   <file> [options]            static race & misuse diagnostics
//! ppd run    <file> [options]            execute as instrumented object code
//! ppd debug  <file> [options]            run, then open the interactive debugger
//! ppd races  <file> [--schedules N]      probe N random schedules for races
//! ppd dot    <file> [options]            emit Graphviz (static | parallel | dynamic)
//! ppd log    pack <file> <dir> [options] run and stream logs into a segment store
//!            (or: pack <saved.json> <dir> to convert a --save record)
//! ppd log    inspect <dir> [--format json]  segment/footer summary, no entry decode
//! ppd log    verify <dir>                full CRC + footer cross-check
//! ppd obs    report <journal> [--format json]  aggregate a --journal file:
//!            per-kind latency percentiles, bytes/query, cache hit-rate trend
//! ppd obs    flight <dump>               pretty-print a flight-recorder dump
//!
//! options:
//!   --seed N            seeded-random scheduler (default: round-robin)
//!   --inputs a,b,c      input stream for process 0 (repeatable: next process)
//!   --break LINE        breakpoint on a source line (repeatable)
//!   --strategy S        e-blocks: subroutine | loops | split | merge
//!   --what W            dot target: static | parallel | dynamic
//!   --deny              lint: exit nonzero on any diagnostic, not just errors
//!   --explain CODE      lint/check: print the documentation page for a
//!                       stable diagnostic code (PPDnnn / TYPnnn) and
//!                       exit; no file operand is needed
//!   --format F          check/lint output: text (default) | json | sarif
//!   --no-check          lint/debug: proceed even if `ppd check` reports
//!                       type errors (they gate both commands by default)
//!   --stats             debug: print replay-engine counters (cache hits,
//!                       replays, query timings) after the session; with
//!                       `--format json`, emit the raw metrics registry
//!                       as a JSON snapshot instead of the table.
//!                       races: also print, per schedule, how many edge
//!                       pairs each detector stage examined (naive →
//!                       indexed → pruned → mhp → typed → absint)
//!   --trace-out FILE    record hierarchical spans from every layer
//!                       (runtime logging, log codec, replay, cache,
//!                       race scan, lint passes, pool workers) and write
//!                       a Chrome trace-event JSON loadable in Perfetto
//!   --jobs N | -j N     worker threads for replay prefetch, race scan and
//!                       lint passes (default: available parallelism)
//!   --log-dir DIR       run/debug: stream logs into a segmented on-disk
//!                       store in DIR during execution and debug over the
//!                       mmap-backed reopened store; if DIR already holds
//!                       a saved run, load it instead of executing.
//!                       races: stream every probed schedule through
//!                       DIR/seed-N before scanning it (results are
//!                       bit-identical to the in-memory path)
//!   --segment-bytes N   segment payload capacity for --log-dir and
//!                       `ppd log pack` (default 65536)
//!   --compress          run/debug/races/`ppd log pack`: compress segment
//!                       payloads block-by-block (LZ77 frames, ~256 KiB
//!                       blocks) as they are sealed; queries decompress
//!                       only the blocks they touch
//!   --journal FILE      debug/races: append one JSONL record per
//!                       Controller query (kind, args, wall latency,
//!                       cache hits/misses/evictions, log entries
//!                       decoded, blocks inflated, bytes read); feed the
//!                       file to `ppd obs report`
//!   --metrics-out FILE  write an OpenMetrics/Prometheus text exposition
//!                       of every counter/gauge/histogram (debug/races
//!                       include the replay-engine registry and a
//!                       per-segment access heatmap) when the command
//!                       finishes
//!   --flight-out FILE   dump the always-on flight recorder (a fixed
//!                       ring of the last ~1k coarse events) to FILE at
//!                       exit; on panic the ring is dumped there (or to
//!                       ppd-flight-panic.json) automatically
//!
//! interactive debug commands include `stats` (counters so far) and
//! `stats reset` (zero them, keeping cached traces warm, to measure a
//! single query in a warm session).
//! ```

use ppd::analysis::EBlockStrategy;
use ppd::core::{shared_state_at, Controller, Execution, PpdSession, RunConfig};
use ppd::graph::{dot, DynNodeId, DynNodeKind};
use ppd::runtime::{Outcome, SchedulerSpec};
use std::io::{self, BufRead, Write as _};
use std::process::ExitCode;

struct Options {
    file: String,
    scheduler: SchedulerSpec,
    inputs: Vec<Vec<i64>>,
    break_lines: Vec<u32>,
    strategy: EBlockStrategy,
    what: String,
    schedules: u64,
    save: Option<String>,
    load: Option<String>,
    deny: bool,
    explain: Option<String>,
    no_check: bool,
    format: String,
    stats: bool,
    trace_out: Option<String>,
    jobs: usize,
    log_dir: Option<String>,
    segment_bytes: usize,
    compress: bool,
    journal: Option<String>,
    metrics_out: Option<String>,
    flight_out: Option<String>,
}

/// Default `--jobs`: every hardware thread the host will give us.
fn default_jobs() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: ppd <check|lint|run|debug|races|dot> <file.ppd> \
         [--seed N] [--inputs a,b,c]... [--break LINE]... \
         [--strategy subroutine|loops|split|merge] [--what static|parallel|dynamic] \
         [--schedules N] [--save FILE] [--load FILE] \
         [--deny] [--explain CODE] [--no-check] [--format text|json|sarif] [--stats] \
         [--trace-out FILE] [--jobs N] \
         [--log-dir DIR] [--segment-bytes N] [--compress] \
         [--journal FILE] [--metrics-out FILE] [--flight-out FILE]\n       \
         ppd log <pack|inspect|verify> ... (see ppd log --help)\n       \
         ppd obs <report|flight> ... (see ppd obs --help)"
    );
    ExitCode::from(2)
}

fn parse_args(mut args: impl Iterator<Item = String>) -> Result<(String, Options), String> {
    let cmd = args.next().ok_or("missing command")?;
    // `ppd lint --explain PPDnnn` takes no file operand: when the
    // operand position holds a flag, re-process it as one and leave the
    // file empty (`main` rejects the empty file unless `--explain` ran).
    let mut deferred_flag = None;
    let file = match args.next() {
        Some(f) if f.starts_with("--") => {
            deferred_flag = Some(f);
            String::new()
        }
        Some(f) => f,
        None => return Err("missing file".into()),
    };
    let mut args = deferred_flag.into_iter().chain(args);
    let mut opts = Options {
        file,
        scheduler: SchedulerSpec::RoundRobin,
        inputs: Vec::new(),
        break_lines: Vec::new(),
        strategy: EBlockStrategy::per_subroutine(),
        what: "dynamic".into(),
        schedules: 10,
        save: None,
        load: None,
        deny: false,
        explain: None,
        no_check: false,
        format: "text".into(),
        stats: false,
        trace_out: None,
        jobs: default_jobs(),
        log_dir: None,
        segment_bytes: 0,
        compress: false,
        journal: None,
        metrics_out: None,
        flight_out: None,
    };
    while let Some(flag) = args.next() {
        let mut value = || args.next().ok_or(format!("{flag} needs a value"));
        match flag.as_str() {
            "--seed" => {
                let seed = value()?.parse().map_err(|_| "--seed wants a number")?;
                opts.scheduler = SchedulerSpec::Random { seed };
            }
            "--inputs" => {
                let stream: Result<Vec<i64>, _> =
                    value()?.split(',').map(|s| s.trim().parse()).collect();
                opts.inputs.push(stream.map_err(|_| "--inputs wants numbers")?);
            }
            "--break" => {
                opts.break_lines.push(value()?.parse().map_err(|_| "--break wants a line")?);
            }
            "--strategy" => {
                opts.strategy = match value()?.as_str() {
                    "subroutine" => EBlockStrategy::per_subroutine(),
                    "loops" => EBlockStrategy::with_loops(4),
                    "split" => EBlockStrategy::with_split(4),
                    "merge" => EBlockStrategy::with_leaf_merge(8),
                    other => return Err(format!("unknown strategy `{other}`")),
                };
            }
            "--what" => opts.what = value()?,
            "--schedules" => {
                opts.schedules = value()?.parse().map_err(|_| "--schedules wants a number")?;
            }
            "--save" => opts.save = Some(value()?),
            "--load" => opts.load = Some(value()?),
            "--deny" => opts.deny = true,
            "--explain" => opts.explain = Some(value()?),
            "--no-check" => opts.no_check = true,
            "--format" => opts.format = value()?,
            "--stats" => opts.stats = true,
            "--trace-out" => opts.trace_out = Some(value()?),
            "--jobs" | "-j" => {
                let n: usize = value()?.parse().map_err(|_| "--jobs wants a number")?;
                opts.jobs = n.max(1);
            }
            "--log-dir" => opts.log_dir = Some(value()?),
            "--segment-bytes" => {
                opts.segment_bytes =
                    value()?.parse().map_err(|_| "--segment-bytes wants a number")?;
            }
            "--compress" => opts.compress = true,
            "--journal" => opts.journal = Some(value()?),
            "--metrics-out" => opts.metrics_out = Some(value()?),
            "--flight-out" => opts.flight_out = Some(value()?),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok((cmd, opts))
}

fn main() -> ExitCode {
    // The flight recorder is always on; the hook makes every panic
    // leave a black-box dump behind (default ppd-flight-panic.json,
    // or the --flight-out path once parsed below).
    ppd::obs::flight::install_panic_hook();
    let mut raw = std::env::args().skip(1).peekable();
    if raw.peek().map(String::as_str) == Some("log") {
        raw.next();
        return cmd_log(raw);
    }
    if raw.peek().map(String::as_str) == Some("obs") {
        raw.next();
        return cmd_obs(raw);
    }
    let (cmd, opts) = match parse_args(raw) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    if let Some(path) = &opts.flight_out {
        ppd::obs::flight::set_panic_dump_path(Some(path.into()));
    }
    ppd::obs::flight::note_with("cli", "command", format!("cmd={cmd} file={}", opts.file));
    if let Some(code) = &opts.explain {
        return cmd_explain(&cmd, code);
    }
    if opts.file.is_empty() {
        eprintln!("error: missing file");
        return usage();
    }
    let source = match std::fs::read_to_string(&opts.file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", opts.file);
            return ExitCode::FAILURE;
        }
    };
    let session = match PpdSession::prepare(&source, opts.strategy) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("compile error: {e}");
            if let ppd::core::PpdError::Lang(lang) = &e {
                let file = ppd::lang::SourceFile::new(opts.file.clone(), source);
                let excerpt = file.render_excerpt(lang.span());
                if !excerpt.is_empty() {
                    eprintln!("{excerpt}");
                }
            }
            return ExitCode::FAILURE;
        }
    };
    if opts.trace_out.is_some() {
        ppd::obs::enable_spans(true);
    }
    let code = match cmd.as_str() {
        "check" => cmd_check(&session, &opts, &source),
        "lint" => check_gate(&session, &opts, &source)
            .unwrap_or_else(|| cmd_lint(&session, &opts, &source)),
        "run" => cmd_run(&session, &opts, true).1,
        "debug" => {
            check_gate(&session, &opts, &source).unwrap_or_else(|| cmd_debug(&session, &opts))
        }
        "races" => cmd_races(&session, &opts),
        "dot" => cmd_dot(&session, &opts, &source),
        _ => usage(),
    };
    if let Some(path) = &opts.trace_out {
        ppd::obs::enable_spans(false);
        let records = ppd::obs::take_spans();
        let json = ppd::obs::chrome::trace_json(&records, &ppd::obs::thread_names());
        match std::fs::write(path, json) {
            Ok(()) => eprintln!("trace: {} span(s) written to {path}", records.len()),
            Err(e) => {
                eprintln!("error: cannot write trace to {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    // debug/races write --metrics-out themselves (they fold in the
    // replay-engine registry and the segment heatmap); every other
    // command exposes the global registry alone.
    if !matches!(cmd.as_str(), "debug" | "races") {
        if let Some(path) = &opts.metrics_out {
            if !write_metrics_out(path, None, &[]) {
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(path) = &opts.flight_out {
        let recorder = ppd::obs::flight::global();
        match std::fs::write(path, recorder.dump_json()) {
            Ok(()) => eprintln!("flight: {} event(s) written to {path}", recorder.recorded()),
            Err(e) => {
                eprintln!("error: cannot write flight dump to {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    code
}

/// Writes the OpenMetrics exposition for `--metrics-out`: the global
/// registry, optionally a replay-engine snapshot, and the per-segment
/// access heatmap as labeled counter families. Returns false (after
/// printing) on I/O failure.
fn write_metrics_out(
    path: &str,
    engine: Option<ppd::obs::Snapshot>,
    heat: &[ppd::log::HeatRecord],
) -> bool {
    let mut exp = ppd::obs::Exposition::new("ppd");
    exp.add_snapshot(&ppd::obs::global().snapshot());
    if let Some(snap) = engine {
        exp.add_snapshot(&snap);
    }
    for h in heat {
        if h.entries_decoded == 0 && h.blocks_inflated == 0 && h.bytes_read == 0 {
            continue;
        }
        let proc = h.proc.to_string();
        let seq = h.seq.to_string();
        let labels = [("file", h.file.as_str()), ("proc", proc.as_str()), ("seq", seq.as_str())];
        exp.counter(
            "log.segment_heat_entries_decoded",
            "Entries decoded from this segment",
            &labels,
            h.entries_decoded,
        );
        exp.counter(
            "log.segment_heat_blocks_inflated",
            "Compressed blocks inflated from this segment",
            &labels,
            h.blocks_inflated,
        );
        exp.counter(
            "log.segment_heat_bytes_read",
            "Bytes read from this segment",
            &labels,
            h.bytes_read,
        );
    }
    match std::fs::write(path, exp.render()) {
        Ok(()) => {
            eprintln!("metrics: OpenMetrics exposition written to {path}");
            true
        }
        Err(e) => {
            eprintln!("error: cannot write metrics to {path}: {e}");
            false
        }
    }
}

/// `ppd lint --explain PPDnnn` / `ppd check --explain TYPnnn`: prints
/// the documentation page for a stable diagnostic code. Exit 2 on a
/// command that has no codes, 1 on an unknown code.
fn cmd_explain(cmd: &str, code: &str) -> ExitCode {
    let (page, known) = match cmd {
        "lint" => (ppd::analysis::lint::explain(code), ppd::analysis::lint::explained_codes()),
        "check" => (ppd::lang::types::explain(code), ppd::lang::types::explained_codes()),
        _ => {
            eprintln!(
                "error: --explain applies to `ppd lint` (PPDnnn codes) \
                 and `ppd check` (TYPnnn codes)"
            );
            return ExitCode::from(2);
        }
    };
    match page {
        Some(text) => {
            println!("{text}");
            ExitCode::SUCCESS
        }
        None => {
            eprintln!("error: no documentation page for `{code}` (known: {})", known.join(", "));
            ExitCode::FAILURE
        }
    }
}

fn run_config(session: &PpdSession, opts: &Options) -> RunConfig {
    let breakpoints = opts
        .break_lines
        .iter()
        .flat_map(|&l| session.analyses().database.stmts_at_line(l))
        .collect();
    RunConfig {
        scheduler: opts.scheduler,
        inputs: opts.inputs.clone(),
        breakpoints,
        ..RunConfig::default()
    }
}

/// Converts the type checker's errors into lint-style diagnostics so the
/// text/json/sarif renderers can be shared with `ppd lint`. The checker
/// already emits them stable-sorted by `(span, code, message)` and
/// deduplicated; the conversion preserves that order.
fn type_error_diags(
    errors: &[ppd::lang::types::TypeError],
) -> Vec<ppd::analysis::lint::Diagnostic> {
    use ppd::analysis::lint::{Diagnostic, Severity};
    errors.iter().map(|e| Diagnostic::new(e.code(), Severity::Error, e.message(), e.span)).collect()
}

/// The `--no-check` gate: `ppd lint` and `ppd debug` refuse to run on a
/// program the type checker rejects — inferred channel payloads feed the
/// typed sync groups both commands rely on, so diagnostics computed from
/// an ill-typed program would be unreliable. Returns `Some(exit)` when
/// the gate trips.
fn check_gate(session: &PpdSession, opts: &Options, source: &str) -> Option<ExitCode> {
    if opts.no_check {
        return None;
    }
    let tc = ppd::lang::types::check(session.rp());
    if tc.is_ok() {
        return None;
    }
    let file = ppd::lang::SourceFile::new(opts.file.clone(), source.to_owned());
    for d in type_error_diags(&tc.errors) {
        eprintln!("{}\n", d.render(&file));
    }
    eprintln!(
        "error: {} type error(s); fix them or pass --no-check to proceed anyway",
        tc.errors.len()
    );
    Some(ExitCode::FAILURE)
}

fn cmd_check(session: &PpdSession, opts: &Options, source: &str) -> ExitCode {
    let rp = session.rp();
    let file = ppd::lang::SourceFile::new(opts.file.clone(), source.to_owned());
    let tc = ppd::lang::types::check(rp);
    let diags = type_error_diags(&tc.errors);
    match opts.format.as_str() {
        "text" | "human" => {
            for d in &diags {
                println!("{}\n", d.render(&file));
            }
            if !tc.is_ok() {
                println!("check: {} type error(s)", diags.len());
                return ExitCode::FAILURE;
            }
            println!(
                "ok: {} process(es), {} function(s), {} shared variable(s), \
                 {} semaphore(s)/lock(s), {} channel(s)",
                rp.procs.len(),
                rp.funcs.len(),
                rp.shared_count,
                rp.sems.len(),
                rp.chans.len()
            );
            for i in 0..rp.chans.len() {
                let c = ppd::lang::ChanId(i as u32);
                println!("  chan {}: carries `{}`", rp.chan_name(c), tc.info.chan_payload[i]);
            }
            println!(
                "preparatory phase: {} e-blocks, {} static-graph edges, {} sync units",
                session.plan().eblocks().len(),
                session.static_graph().edge_count(),
                session.analyses().sync_units.total()
            );
            for eb in session.plan().eblocks() {
                println!(
                    "  {}: {:?} region of {}",
                    eb.id,
                    match &eb.region {
                        ppd::analysis::Region::Body(_) => "body",
                        ppd::analysis::Region::Loop { .. } => "loop",
                        ppd::analysis::Region::Chunk { .. } => "chunk",
                    },
                    rp.body_name(eb.region.body())
                );
            }
            ExitCode::SUCCESS
        }
        "json" => match diags_json(&diags, &file) {
            Ok(json) => {
                println!("{json}");
                if tc.is_ok() {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                }
            }
            Err(e) => {
                eprintln!("error: cannot serialize diagnostics: {e}");
                ExitCode::FAILURE
            }
        },
        "sarif" => {
            println!("{}", ppd::sarif::to_sarif(&diags, &file));
            if tc.is_ok() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        other => {
            eprintln!("unknown --format `{other}` (text | json | sarif)");
            ExitCode::FAILURE
        }
    }
}

/// JSON shape of one diagnostic (stable output for tooling). Owned
/// fields: the vendored serde_derive stub does not handle generics.
#[derive(serde::Serialize)]
struct JsonDiagnostic {
    code: String,
    severity: String,
    message: String,
    file: String,
    line: u32,
    col: u32,
    notes: Vec<JsonNote>,
}

/// JSON shape of one diagnostic note.
#[derive(serde::Serialize)]
struct JsonNote {
    label: String,
    line: Option<u32>,
    col: Option<u32>,
}

/// Serializes diagnostics to the stable JSON shape shared by `ppd lint`
/// and `ppd check`.
fn diags_json(
    diags: &[ppd::analysis::lint::Diagnostic],
    file: &ppd::lang::SourceFile,
) -> Result<String, serde_json::Error> {
    let list: Vec<JsonDiagnostic> = diags
        .iter()
        .map(|d| {
            let (line, col) = file.line_col(d.span.start);
            JsonDiagnostic {
                code: d.code.to_owned(),
                severity: d.severity.to_string(),
                message: d.message.clone(),
                file: file.name().to_owned(),
                line,
                col,
                notes: d
                    .notes
                    .iter()
                    .map(|n| {
                        let pos = n.span.map(|s| file.line_col(s.start));
                        JsonNote {
                            label: n.label.clone(),
                            line: pos.map(|p| p.0),
                            col: pos.map(|p| p.1),
                        }
                    })
                    .collect(),
            }
        })
        .collect();
    serde_json::to_string_pretty(&list)
}

fn cmd_lint(session: &PpdSession, opts: &Options, source: &str) -> ExitCode {
    use ppd::analysis::lint::{run_default_par, Severity};
    let file = ppd::lang::SourceFile::new(opts.file.clone(), source);
    let diags = run_default_par(session.rp(), session.analyses(), opts.jobs);
    let errors = diags.iter().filter(|d| d.severity == Severity::Error).count();
    let warnings = diags.len() - errors;
    match opts.format.as_str() {
        "text" | "human" => {
            for d in &diags {
                println!("{}\n", d.render(&file));
            }
            if diags.is_empty() {
                println!("lint: no diagnostics");
            } else {
                println!("lint: {warnings} warning(s), {errors} error(s)");
            }
            // The static race-candidate prune chain: each stage is a
            // subset of the previous one, and the dynamic detector only
            // ever examines combinations surviving the last stage.
            let a = session.analyses();
            println!(
                "candidates: {} gmod/gref -> {} mhp -> {} typed -> {} absint",
                a.race_candidates.len(),
                a.mhp_candidates.len(),
                a.typed_candidates.len(),
                a.absint_candidates.len()
            );
        }
        "json" => match diags_json(&diags, &file) {
            Ok(json) => println!("{json}"),
            Err(e) => {
                eprintln!("error: cannot serialize diagnostics: {e}");
                return ExitCode::FAILURE;
            }
        },
        "sarif" => {
            println!("{}", ppd::sarif::to_sarif(&diags, &file));
        }
        other => {
            eprintln!("unknown --format `{other}` (text | json | sarif)");
            return ExitCode::FAILURE;
        }
    }
    if errors > 0 || (opts.deny && !diags.is_empty()) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn cmd_run(session: &PpdSession, opts: &Options, verbose: bool) -> (Execution, ExitCode) {
    // `--load` replays the offline workflow: the execution phase already
    // happened; debug its saved record.
    if let Some(path) = &opts.load {
        match std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|j| Execution::from_json(&j).map_err(|e| e.to_string()))
        {
            Ok(execution) => {
                if verbose {
                    println!("loaded execution from {path}");
                    println!("outcome: {}", describe_outcome(session, &execution.outcome));
                }
                let code = match execution.outcome {
                    Outcome::Completed | Outcome::Breakpoint { .. } => ExitCode::SUCCESS,
                    _ => ExitCode::FAILURE,
                };
                return (execution, code);
            }
            Err(e) => {
                eprintln!("error: cannot load {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    // `--log-dir` streams the run through the segmented on-disk store
    // (or loads one a previous run left there): debugging then works
    // over the mmap-backed, lazily decoded logs.
    let execution = if let Some(dir) = &opts.log_dir {
        let dir = std::path::Path::new(dir);
        if dir.join("run.json").exists() {
            match Execution::load_dir(dir) {
                Ok(execution) => {
                    if verbose {
                        println!("loaded segmented log store from {}", dir.display());
                        for w in execution.logs.recovery_warnings() {
                            eprintln!("warning: {w}");
                        }
                        println!("outcome: {}", describe_outcome(session, &execution.outcome));
                    }
                    let code = match execution.outcome {
                        Outcome::Completed | Outcome::Breakpoint { .. } => ExitCode::SUCCESS,
                        _ => ExitCode::FAILURE,
                    };
                    return (execution, code);
                }
                Err(e) => {
                    eprintln!("error: cannot open log dir {}: {e}", dir.display());
                    std::process::exit(1);
                }
            }
        }
        match session.execute_streaming_with(
            run_config(session, opts),
            dir,
            opts.segment_bytes,
            opts.compress,
        ) {
            Ok(execution) => {
                if verbose {
                    println!("logs streamed to {}", dir.display());
                }
                execution
            }
            Err(e) => {
                eprintln!("error: cannot stream logs to {}: {e}", dir.display());
                std::process::exit(1);
            }
        }
    } else {
        session.execute(run_config(session, opts))
    };
    if let Some(path) = &opts.save {
        let written = execution
            .to_json()
            .map_err(|e| e.to_string())
            .and_then(|j| std::fs::write(path, j).map_err(|e| e.to_string()));
        match written {
            Ok(()) if verbose => println!("execution saved to {path}"),
            Ok(()) => {}
            Err(e) => eprintln!("warning: cannot save to {path}: {e}"),
        }
    }
    if verbose {
        for &(p, v) in &execution.output {
            println!("[{}] {v}", session.rp().proc_name(p));
        }
        println!("outcome: {}", describe_outcome(session, &execution.outcome));
        println!(
            "logs: {} entries / {} bytes; parallel graph: {} nodes, {} internal edges",
            execution.logs.total_entries(),
            execution.logs.total_bytes(),
            execution.pgraph.nodes().len(),
            execution.pgraph.internal_edges().len(),
        );
    }
    let code = match execution.outcome {
        Outcome::Completed | Outcome::Breakpoint { .. } => ExitCode::SUCCESS,
        _ => ExitCode::FAILURE,
    };
    (execution, code)
}

fn describe_outcome(session: &PpdSession, outcome: &Outcome) -> String {
    let line = |stmt: &ppd::lang::StmtId| {
        session
            .analyses()
            .database
            .line_of(*stmt)
            .map(|l| format!(" (line {l})"))
            .unwrap_or_default()
    };
    match outcome {
        Outcome::Completed => "completed".into(),
        Outcome::Failed { proc, stmt, error } => {
            format!("FAILED in {}{}: {error}", session.rp().proc_name(*proc), line(stmt))
        }
        Outcome::Deadlock { blocked } => {
            use ppd::runtime::BlockReason;
            let who: Vec<String> = blocked
                .iter()
                .map(|(p, r, s)| {
                    let reason = match r {
                        BlockReason::Semaphore(sem) => {
                            format!("waiting on semaphore `{}`", session.rp().sem_name(*sem))
                        }
                        BlockReason::LockWait(sem) => {
                            format!("waiting on lock `{}`", session.rp().sem_name(*sem))
                        }
                        other => other.to_string(),
                    };
                    format!("{} {reason}{}", session.rp().proc_name(*p), line(s))
                })
                .collect();
            format!("DEADLOCK: {}", who.join("; "))
        }
        Outcome::StepLimit => "step limit exhausted".into(),
        Outcome::Breakpoint { proc, stmt } => {
            format!("breakpoint in {}{}", session.rp().proc_name(*proc), line(stmt))
        }
    }
}

fn cmd_races(session: &PpdSession, opts: &Options) -> ExitCode {
    let mut any = false;
    // One journal across all probed schedules; records from successive
    // seeds append to the same file.
    let journal = match opts.journal.as_deref().map(ppd::obs::Journal::create) {
        Some(Ok(j)) => Some(j),
        Some(Err(e)) => {
            eprintln!("error: cannot create journal {}: {e}", opts.journal.as_deref().unwrap());
            return ExitCode::FAILURE;
        }
        None => None,
    };
    let mut last_metrics = None;
    let mut last_heat = Vec::new();
    for seed in 0..opts.schedules {
        let cfg = RunConfig {
            scheduler: SchedulerSpec::Random { seed },
            inputs: opts.inputs.clone(),
            ..RunConfig::default()
        };
        // With `--log-dir`, every probed schedule round-trips through
        // the on-disk store before the scan — the printed results must
        // be bit-identical to the in-memory path (CI diffs them).
        let execution = match &opts.log_dir {
            Some(dir) => {
                let sub = std::path::Path::new(dir).join(format!("seed-{seed}"));
                match session.execute_streaming_with(cfg, &sub, opts.segment_bytes, opts.compress) {
                    Ok(e) => e,
                    Err(e) => {
                        eprintln!("error: cannot stream logs to {}: {e}", sub.display());
                        return ExitCode::FAILURE;
                    }
                }
            }
            None => session.execute(cfg),
        };
        // Surface log-recovery warnings exactly like `ppd debug --stats`
        // does rather than silently succeeding over a truncated store.
        for w in execution.logs.recovery_warnings() {
            println!("recovery: {w}");
        }
        let mut controller = Controller::new(session, &execution);
        controller.set_jobs(opts.jobs);
        if let Some(j) = &journal {
            controller.set_journal(j.clone());
        }
        let races = controller.races();
        if races.is_empty() {
            println!("seed {seed}: race-free ({})", describe_outcome(session, &execution.outcome));
        } else {
            any = true;
            println!("seed {seed}: {} race(s)", races.len());
            for r in races {
                println!("    {}", r.description);
            }
        }
        if opts.stats {
            // Every stage finds the identical race set; the counts show
            // how many edge pairs each static pruning layer removed.
            let stages: Vec<String> = controller
                .race_stage_pairs()
                .iter()
                .map(|(name, pairs)| format!("{name} {pairs}"))
                .collect();
            println!("    pairs examined: {}", stages.join(" -> "));
        }
        if opts.metrics_out.is_some() {
            last_metrics = Some(controller.metrics_snapshot());
            last_heat = execution.logs.access_heatmap();
        }
    }
    if let Some(j) = &journal {
        eprintln!("journal: {} record(s) appended to {}", j.records(), j.path().display());
    }
    if let Some(path) = &opts.metrics_out {
        if !write_metrics_out(path, last_metrics, &last_heat) {
            return ExitCode::FAILURE;
        }
    }
    if any {
        ExitCode::FAILURE
    } else {
        println!("all {} probed schedules race-free (Definition 6.4)", opts.schedules);
        ExitCode::SUCCESS
    }
}

fn cmd_dot(session: &PpdSession, opts: &Options, _source: &str) -> ExitCode {
    match opts.what.as_str() {
        "parallel" => {
            let (execution, _) = cmd_run(session, opts, false);
            println!("{}", dot::parallel_to_dot(&execution.pgraph, session.rp()));
        }
        "dynamic" => {
            let (execution, _) = cmd_run(session, opts, false);
            let mut controller = Controller::new(session, &execution);
            if let Err(e) = controller.start() {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
            println!("{}", dot::dynamic_to_dot(controller.graph()));
        }
        "static" => {
            // One simplified graph per body.
            for body in session.rp().bodies() {
                let g = ppd::graph::SimplifiedGraph::build(session.rp(), session.analyses(), body);
                println!("// {}", session.rp().body_name(body));
                println!("{}", dot::simplified_to_dot(&g));
            }
        }
        "pdg" => {
            for body in session.rp().bodies() {
                println!("{}", dot::static_to_dot(session.static_graph(), session.rp(), body));
            }
        }
        other => {
            eprintln!("unknown --what `{other}` (static | pdg | parallel | dynamic)");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

fn cmd_debug(session: &PpdSession, opts: &Options) -> ExitCode {
    let (execution, _) = cmd_run(session, opts, true);
    let mut controller = Controller::new(session, &execution);
    controller.set_jobs(opts.jobs);
    // Attach the journal before the first query so every Controller
    // query of the session lands in it (start() below is query #1).
    let journal = match opts.journal.as_deref().map(ppd::obs::Journal::create) {
        Some(Ok(j)) => {
            controller.set_journal(j.clone());
            Some(j)
        }
        Some(Err(e)) => {
            eprintln!("error: cannot create journal {}: {e}", opts.journal.as_deref().unwrap());
            return ExitCode::FAILURE;
        }
        None => None,
    };
    let root = match controller.start() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cannot start debugging: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("\ndebugging from: {}", controller.graph().node(root).label);
    if opts.trace_out.is_some() {
        // With a trace attached, exercise the race-scan layer once so
        // the exported timeline shows every debugging-phase subsystem.
        println!("races: {} (race scan recorded in trace)", controller.races().len());
    }
    if opts.stats {
        // Non-interactive runs (stdin closed) still see the counters for
        // the initial query before the REPL exits — and any log-recovery
        // warnings from an unsealed (crashed or still-running) store.
        for w in execution.logs.recovery_warnings() {
            println!("recovery: {w}");
        }
        println!("\nreplay-engine stats after initial query:\n{}", render_stats(&controller, opts));
    }
    println!(
        "commands: graph back <n> slice <n> forward <n> expand <n> races state stats \
         [reset] dot quit\n"
    );
    print!("ppd> ");
    let _ = io::stdout().flush();
    let stdin = io::stdin();
    for line in stdin.lock().lines() {
        let line = line.unwrap_or_default();
        let mut parts = line.split_whitespace();
        let cmd = parts.next().unwrap_or("");
        let arg = parts.next();
        let node = arg
            .and_then(|s| s.parse::<u32>().ok())
            .map(DynNodeId)
            .filter(|n| n.index() < controller.graph().len());
        match (cmd, node) {
            ("quit", _) | ("exit", _) => break,
            ("graph", _) => {
                for n in controller.graph().nodes() {
                    print_node(&controller, n.id);
                }
            }
            ("back", Some(n)) => {
                for (p, k) in controller.flowback(n) {
                    println!("  <-[{k:?}]- #{} {}", p.0, controller.graph().node(p).label);
                }
            }
            ("forward", Some(n)) => {
                for (sx, k) in controller.flow_forward(n) {
                    println!("  -[{k:?}]-> #{} {}", sx.0, controller.graph().node(sx).label);
                }
            }
            ("slice", Some(n)) => {
                for s in controller.backward_slice(n) {
                    print_node(&controller, s);
                }
            }
            ("expand", Some(n)) => match controller.expand(n) {
                Ok(report) => {
                    for added in report.nodes {
                        print_node(&controller, added);
                    }
                }
                Err(e) => println!("{e}"),
            },
            ("races", _) => {
                for r in controller.races() {
                    println!("  {}", r.description);
                }
            }
            ("stats", _) if arg == Some("reset") => {
                controller.reset_stats();
                println!("stats reset (cached traces kept warm)");
            }
            ("stats", _) => println!("{}", render_stats(&controller, opts)),
            ("state", _) => {
                let state = shared_state_at(session, &execution, u64::MAX);
                for v in session.rp().shared_vars() {
                    println!("  {} = {}", session.rp().var_name(v), state[v.index()]);
                }
            }
            ("dot", _) => println!("{}", dot::dynamic_to_dot(controller.graph())),
            ("", _) => {}
            _ => println!("unknown command or bad node id"),
        }
        print!("ppd> ");
        let _ = io::stdout().flush();
    }
    if opts.stats {
        println!("\nreplay-engine stats at exit:\n{}", render_stats(&controller, opts));
    }
    if let Some(j) = &journal {
        eprintln!("journal: {} record(s) appended to {}", j.records(), j.path().display());
    }
    if let Some(path) = &opts.metrics_out {
        let heat = execution.logs.access_heatmap();
        if !write_metrics_out(path, Some(controller.metrics_snapshot()), &heat) {
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// `--stats` rendering: the human table, or the raw metrics-registry
/// snapshot as single-line JSON under `--format json`.
fn render_stats(controller: &Controller<'_>, opts: &Options) -> String {
    if opts.format == "json" {
        controller.metrics_json()
    } else {
        controller.stats().render()
    }
}

// ---------------------------------------------------------------------
// `ppd log` — segmented-store tooling
// ---------------------------------------------------------------------

fn log_usage() -> ExitCode {
    eprintln!(
        "usage: ppd log pack <file.ppd|saved.json> <dir> \
         [--seed N] [--inputs a,b,c]... [--strategy S] [--segment-bytes N] [--compress]\n       \
         ppd log inspect <dir> [--format text|json]\n       \
         ppd log verify <dir>"
    );
    ExitCode::from(2)
}

/// `ppd log pack | inspect | verify`: tooling over the segmented
/// on-disk store, dispatched before the generic argument parser (these
/// subcommands take a directory, not a source file).
fn cmd_log(mut args: impl Iterator<Item = String>) -> ExitCode {
    let Some(sub) = args.next() else { return log_usage() };
    match sub.as_str() {
        "pack" => cmd_log_pack(args),
        "inspect" => {
            let Some(dir) = args.next() else { return log_usage() };
            let mut format = "text".to_owned();
            while let Some(flag) = args.next() {
                match (flag.as_str(), args.next()) {
                    ("--format", Some(f)) => format = f,
                    _ => return log_usage(),
                }
            }
            cmd_log_inspect(&dir, &format)
        }
        "verify" => match args.next() {
            Some(dir) => cmd_log_verify(&dir),
            None => log_usage(),
        },
        _ => log_usage(),
    }
}

/// Runs a program (or converts a `--save` JSON record) into a segmented
/// store at `dir`.
fn cmd_log_pack(mut args: impl Iterator<Item = String>) -> ExitCode {
    let (Some(file), Some(dir)) = (args.next(), args.next()) else { return log_usage() };
    let mut scheduler = SchedulerSpec::RoundRobin;
    let mut inputs: Vec<Vec<i64>> = Vec::new();
    let mut strategy = EBlockStrategy::per_subroutine();
    let mut segment_bytes = 0usize;
    let mut compress = false;
    while let Some(flag) = args.next() {
        let mut value = || args.next().ok_or_else(|| format!("{flag} needs a value"));
        let parsed = (|| -> Result<(), String> {
            match flag.as_str() {
                "--seed" => {
                    let seed = value()?.parse().map_err(|_| "--seed wants a number")?;
                    scheduler = SchedulerSpec::Random { seed };
                }
                "--inputs" => {
                    let stream: Result<Vec<i64>, _> =
                        value()?.split(',').map(|s| s.trim().parse()).collect();
                    inputs.push(stream.map_err(|_| "--inputs wants numbers")?);
                }
                "--strategy" => {
                    strategy = match value()?.as_str() {
                        "subroutine" => EBlockStrategy::per_subroutine(),
                        "loops" => EBlockStrategy::with_loops(4),
                        "split" => EBlockStrategy::with_split(4),
                        "merge" => EBlockStrategy::with_leaf_merge(8),
                        other => return Err(format!("unknown strategy `{other}`")),
                    };
                }
                "--segment-bytes" => {
                    segment_bytes =
                        value()?.parse().map_err(|_| "--segment-bytes wants a number")?;
                }
                "--compress" => compress = true,
                other => return Err(format!("unknown flag `{other}`")),
            }
            Ok(())
        })();
        if let Err(e) = parsed {
            eprintln!("error: {e}");
            return log_usage();
        }
    }
    let dir = std::path::Path::new(&dir);
    // A `--save` record converts without re-running; source re-executes
    // with the streaming sink attached.
    if file.ends_with(".json") {
        let loaded = std::fs::read_to_string(&file)
            .map_err(|e| e.to_string())
            .and_then(|j| Execution::from_json(&j).map_err(|e| e.to_string()));
        let execution = match loaded {
            Ok(x) => x,
            Err(e) => {
                eprintln!("error: cannot load {file}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let format = if compress {
            ppd::log::SegmentFormat::V2Compressed
        } else {
            ppd::log::SegmentFormat::default()
        };
        return match execution.save_dir_with(dir, segment_bytes, format) {
            Ok(report) => {
                println!(
                    "packed {} entries into {} segment(s), {} bytes, at {}",
                    report.entries,
                    report.segments,
                    report.bytes,
                    dir.display()
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let source = match std::fs::read_to_string(&file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot read {file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let session = match PpdSession::prepare(&source, strategy) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("compile error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let config = RunConfig { scheduler, inputs, ..RunConfig::default() };
    match session.execute_streaming_with(config, dir, segment_bytes, compress) {
        Ok(execution) => {
            let seg = execution.logs.segmented().expect("streamed store is segment-backed");
            println!(
                "packed {} entries into {} segment(s), {} file bytes, at {} \
                 (outcome: {})",
                seg.total_entries(),
                (0..seg.process_count())
                    .map(|p| seg.segments(ppd::lang::ProcId(p as u32)).count())
                    .sum::<usize>(),
                seg.total_file_bytes(),
                dir.display(),
                describe_outcome(&session, &execution.outcome)
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Summarizes a store from its footers alone — no entry decode (the
/// final line proves it). `--format json` emits the same facts as one
/// machine-readable object with a per-segment array.
fn cmd_log_inspect(dir: &str, format: &str) -> ExitCode {
    let seg = match ppd::log::SegmentedLog::open(std::path::Path::new(dir)) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    match format {
        "text" | "human" => {}
        "json" => return cmd_log_inspect_json(dir, &seg),
        other => {
            eprintln!("unknown --format `{other}` (text | json)");
            return ExitCode::FAILURE;
        }
    }
    for w in seg.warnings() {
        eprintln!("warning: {w}");
    }
    println!(
        "{}: {} process(es), {} entries, {} logical bytes in {} file bytes{}",
        dir,
        seg.process_count(),
        seg.total_entries(),
        seg.total_logical_bytes(),
        seg.total_file_bytes(),
        if seg.fully_mapped() { " (mmap)" } else { " (heap)" },
    );
    let counts = seg.counts_by_kind();
    let kinds: Vec<String> = ppd::log::segment::KIND_NAMES
        .iter()
        .zip(counts)
        .filter(|&(_, n)| n > 0)
        .map(|(k, n)| format!("{k} {n}"))
        .collect();
    println!("entries by kind: {}", kinds.join(", "));
    let (payload, stored) = (seg.total_payload_bytes(), seg.total_stored_bytes());
    if stored > 0 && stored != payload {
        println!(
            "compression: {payload} payload bytes stored as {stored} ({:.2}x)",
            payload as f64 / stored as f64
        );
    }
    if seg.recovered_entries() > 0 {
        println!("recovered: {} entries from unsealed tail segment(s)", seg.recovered_entries());
    }
    for p in 0..seg.process_count() {
        let proc = ppd::lang::ProcId(p as u32);
        for m in seg.segments(proc) {
            let blocks = match m.block_count() {
                0 => String::new(),
                n => format!(
                    " in {} stored ({:.2}x, {n} block(s))",
                    m.stored_len,
                    m.payload_len as f64 / (m.stored_len.max(1)) as f64
                ),
            };
            println!(
                "  {}: v{}, base seq {}, {} entries, {} payload bytes{blocks}, time {}..{}",
                m.file, m.version, m.base_seq, m.entry_count, m.payload_len, m.min_time, m.max_time
            );
        }
        if let Some(t) = seg.recovered_tail(proc) {
            println!(
                "  {}: unsealed tail, {} entries recovered ({})",
                t.file(),
                t.entry_count(),
                t.detail()
            );
        }
    }
    println!("entries decoded while inspecting: {} (footers only)", seg.entries_decoded());
    ExitCode::SUCCESS
}

/// The `--format json` arm of `ppd log inspect`: store totals plus one
/// object per sealed segment and recovered tail. Built by hand (the
/// obs JSON string escaper) so the field order is stable for tooling.
fn cmd_log_inspect_json(dir: &str, seg: &ppd::log::SegmentedLog) -> ExitCode {
    use ppd::obs::metrics::json_string;
    let ratio = |payload: u64, stored: u64| -> String {
        if stored == 0 {
            "null".into()
        } else {
            format!("{:.4}", payload as f64 / stored as f64)
        }
    };
    let counts = seg.counts_by_kind();
    let kinds: Vec<String> = ppd::log::segment::KIND_NAMES
        .iter()
        .zip(counts)
        .map(|(k, n)| format!("{}:{n}", json_string(k)))
        .collect();
    let mut segments = Vec::new();
    let mut tails = Vec::new();
    for p in 0..seg.process_count() {
        let proc = ppd::lang::ProcId(p as u32);
        for m in seg.segments(proc) {
            segments.push(format!(
                "{{\"file\":{},\"proc\":{},\"seq\":{},\"version\":{},\"base_seq\":{},\
                 \"entries\":{},\"payload_bytes\":{},\"stored_bytes\":{},\"blocks\":{},\
                 \"compression_ratio\":{},\"min_time\":{},\"max_time\":{}}}",
                json_string(&m.file),
                m.proc,
                m.seq,
                m.version,
                m.base_seq,
                m.entry_count,
                m.payload_len,
                m.stored_len,
                m.block_count(),
                ratio(m.payload_len, m.stored_len),
                m.min_time,
                m.max_time,
            ));
        }
        if let Some(t) = seg.recovered_tail(proc) {
            tails.push(format!(
                "{{\"file\":{},\"proc\":{p},\"entries\":{},\"detail\":{}}}",
                json_string(t.file()),
                t.entry_count(),
                json_string(t.detail()),
            ));
        }
    }
    let warnings: Vec<String> = seg.warnings().iter().map(|w| json_string(w)).collect();
    println!(
        "{{\"dir\":{},\"processes\":{},\"entries\":{},\"logical_bytes\":{},\"file_bytes\":{},\
         \"payload_bytes\":{},\"stored_bytes\":{},\"compression_ratio\":{},\"mapped\":{},\
         \"recovered_entries\":{},\"entries_by_kind\":{{{}}},\"segments\":[{}],\
         \"recovered_tails\":[{}],\"warnings\":[{}],\"entries_decoded_while_inspecting\":{}}}",
        json_string(dir),
        seg.process_count(),
        seg.total_entries(),
        seg.total_logical_bytes(),
        seg.total_file_bytes(),
        seg.total_payload_bytes(),
        seg.total_stored_bytes(),
        ratio(seg.total_payload_bytes(), seg.total_stored_bytes()),
        seg.fully_mapped(),
        seg.recovered_entries(),
        kinds.join(","),
        segments.join(","),
        tails.join(","),
        warnings.join(","),
        seg.entries_decoded(),
    );
    ExitCode::SUCCESS
}

/// Full integrity pass: CRC re-check plus payload-vs-footer
/// cross-validation of every sealed segment.
fn cmd_log_verify(dir: &str) -> ExitCode {
    let seg = match ppd::log::SegmentedLog::open(std::path::Path::new(dir)) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    match seg.verify() {
        Ok(report) => {
            // Same `recovery:` surface as `ppd debug --stats` and
            // `ppd races`, so truncated-tail stores are never silent.
            for w in &report.warnings {
                println!("recovery: {w}");
            }
            println!(
                "ok: {} segment(s) verified, {} entries decoded and cross-checked \
                 against footers{}",
                report.segments,
                report.entries,
                if report.warnings.is_empty() {
                    String::new()
                } else {
                    format!(" ({} recovery warning(s))", report.warnings.len())
                },
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("corrupt: {e}");
            ExitCode::FAILURE
        }
    }
}

// ---------------------------------------------------------------------
// `ppd obs` — telemetry tooling (journal reports, flight dumps)
// ---------------------------------------------------------------------

fn obs_usage() -> ExitCode {
    eprintln!(
        "usage: ppd obs report <journal.jsonl> [--format text|json]\n       \
         ppd obs flight <dump.json>"
    );
    ExitCode::from(2)
}

/// `ppd obs report | flight`: offline profiling over the telemetry
/// artifacts (`--journal` JSONL files, `--flight-out` dumps).
fn cmd_obs(mut args: impl Iterator<Item = String>) -> ExitCode {
    let Some(sub) = args.next() else { return obs_usage() };
    match sub.as_str() {
        "report" => {
            let Some(path) = args.next() else { return obs_usage() };
            let mut format = "text".to_owned();
            while let Some(flag) = args.next() {
                match (flag.as_str(), args.next()) {
                    ("--format", Some(f)) => format = f,
                    _ => return obs_usage(),
                }
            }
            cmd_obs_report(&path, &format)
        }
        "flight" => match args.next() {
            Some(path) => cmd_obs_flight(&path),
            None => obs_usage(),
        },
        _ => obs_usage(),
    }
}

/// One parsed `--journal` line (schema `"v":1`). Owned scalar fields
/// only: the vendored serde_derive stub handles exactly that shape.
#[derive(serde::Deserialize)]
struct JournalLine {
    v: u64,
    kind: String,
    // Carried for tooling that slices by argument; the report itself
    // rolls up by kind only.
    #[allow(dead_code)]
    args: String,
    start_ns: u64,
    latency_ns: u64,
    replays: u64,
    trace_events: u64,
    log_entries_scanned: u64,
    cache_hits: u64,
    cache_misses: u64,
    cache_evictions: u64,
    entries_decoded: u64,
    blocks_inflated: u64,
    bytes_read: u64,
}

/// Exact percentile over a sorted sample: the smallest value with at
/// least `q` of the mass at or below it (nearest-rank).
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Aggregates a query journal: per-kind latency percentiles, aggregate
/// totals (printed in the exact `--stats` line formats so a journal of
/// a deterministic session reproduces `ppd debug --stats` bit-for-bit),
/// bytes per query, and the cache hit-rate trend across the session.
fn cmd_obs_report(path: &str, format: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut records: Vec<JournalLine> = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match serde_json::from_str::<JournalLine>(line) {
            Ok(r) if r.v == 1 => records.push(r),
            Ok(r) => {
                eprintln!("error: {path}:{}: unsupported journal version {}", i + 1, r.v);
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("error: {path}:{}: bad journal line: {e}", i + 1);
                return ExitCode::FAILURE;
            }
        }
    }
    if records.is_empty() {
        eprintln!("error: {path}: no journal records");
        return ExitCode::FAILURE;
    }
    // Chronological order for the trend; records are appended in
    // completion order but nested sessions may interleave starts.
    records.sort_by_key(|r| r.start_ns);
    let n = records.len() as u64;
    let sum = |f: fn(&JournalLine) -> u64| records.iter().map(f).sum::<u64>();
    let (hits, misses) = (sum(|r| r.cache_hits), sum(|r| r.cache_misses));
    let latency_total = sum(|r| r.latency_ns);
    let bytes_total = sum(|r| r.bytes_read);
    let mut lat_sorted: Vec<u64> = records.iter().map(|r| r.latency_ns).collect();
    lat_sorted.sort_unstable();
    let (p50, p95, p99) = (
        percentile(&lat_sorted, 0.50),
        percentile(&lat_sorted, 0.95),
        percentile(&lat_sorted, 0.99),
    );
    // Hit-rate trend: first half of the session vs the second — a warm
    // cache shows up as a rising rate.
    let half = records.len() / 2;
    let rate = |rs: &[JournalLine]| -> f64 {
        let h: u64 = rs.iter().map(|r| r.cache_hits).sum();
        let m: u64 = rs.iter().map(|r| r.cache_misses).sum();
        if h + m == 0 {
            0.0
        } else {
            100.0 * h as f64 / (h + m) as f64
        }
    };
    let (early, late) = (rate(&records[..half]), rate(&records[half..]));
    // Per-kind rollup, by first appearance so the table is stable.
    let mut kinds: Vec<(String, Vec<u64>, u64)> = Vec::new();
    for r in &records {
        match kinds.iter_mut().find(|(k, _, _)| *k == r.kind) {
            Some((_, lats, bytes)) => {
                lats.push(r.latency_ns);
                *bytes += r.bytes_read;
            }
            None => kinds.push((r.kind.clone(), vec![r.latency_ns], r.bytes_read)),
        }
    }
    for (_, lats, _) in &mut kinds {
        lats.sort_unstable();
    }
    if format == "json" {
        let by_kind: Vec<String> = kinds
            .iter()
            .map(|(k, lats, bytes)| {
                format!(
                    "{{\"kind\":{},\"queries\":{},\"latency_ns\":{{\"p50\":{},\"p95\":{},\
                     \"p99\":{},\"total\":{}}},\"bytes_read\":{bytes}}}",
                    ppd::obs::metrics::json_string(k),
                    lats.len(),
                    percentile(lats, 0.50),
                    percentile(lats, 0.95),
                    percentile(lats, 0.99),
                    lats.iter().sum::<u64>(),
                )
            })
            .collect();
        println!(
            "{{\"journal\":{},\"queries\":{n},\"latency_ns\":{{\"p50\":{p50},\"p95\":{p95},\
             \"p99\":{p99},\"total\":{latency_total}}},\"replays\":{},\"trace_events\":{},\
             \"log_entries_scanned\":{},\"cache_hits\":{hits},\"cache_misses\":{misses},\
             \"cache_evictions\":{},\"entries_decoded\":{},\"blocks_inflated\":{},\
             \"bytes_read\":{bytes_total},\"bytes_per_query\":{:.1},\
             \"hit_rate_pct\":{:.4},\"hit_rate_first_half_pct\":{early:.4},\
             \"hit_rate_second_half_pct\":{late:.4},\"by_kind\":[{}]}}",
            ppd::obs::metrics::json_string(path),
            sum(|r| r.replays),
            sum(|r| r.trace_events),
            sum(|r| r.log_entries_scanned),
            sum(|r| r.cache_evictions),
            sum(|r| r.entries_decoded),
            sum(|r| r.blocks_inflated),
            bytes_total as f64 / n as f64,
            if hits + misses == 0 { 0.0 } else { 100.0 * hits as f64 / (hits + misses) as f64 },
            by_kind.join(","),
        );
        return ExitCode::SUCCESS;
    }
    if format != "text" && format != "human" {
        eprintln!("unknown --format `{format}` (text | json)");
        return ExitCode::FAILURE;
    }
    let ms = |ns: u64| ns as f64 / 1e6;
    println!("query journal report: {path}");
    println!();
    println!(
        "{:<14} {:>7} {:>12} {:>12} {:>12} {:>12}",
        "kind", "queries", "p50 ms", "p95 ms", "p99 ms", "bytes"
    );
    for (k, lats, bytes) in &kinds {
        println!(
            "{k:<14} {:>7} {:>12.3} {:>12.3} {:>12.3} {bytes:>12}",
            lats.len(),
            ms(percentile(lats, 0.50)),
            ms(percentile(lats, 0.95)),
            ms(percentile(lats, 0.99)),
        );
    }
    println!();
    println!("latency p50 / p95 / p99   {:.3} / {:.3} / {:.3} ms", ms(p50), ms(p95), ms(p99));
    println!(
        "bytes read per query      {:.1} ({bytes_total} total)",
        bytes_total as f64 / n as f64
    );
    println!("blocks inflated           {}", sum(|r| r.blocks_inflated));
    println!("entries decoded           {}", sum(|r| r.entries_decoded));
    println!("hit rate trend            {early:.1}% (first half) -> {late:.1}% (second half)");
    println!();
    // The aggregate block mirrors `ppd debug --stats` line-for-line:
    // on a deterministic run, summing a session's journal reproduces
    // the session's own counters bit-for-bit.
    println!("aggregates (same layout as ppd debug --stats):");
    println!("replays performed     {}", sum(|r| r.replays));
    let hr = if hits + misses == 0 { 0.0 } else { 100.0 * hits as f64 / (hits + misses) as f64 };
    println!("cache hits / misses   {hits} / {misses} ({hr:.1}% hit rate)");
    println!("evictions             {}", sum(|r| r.cache_evictions));
    println!("trace events          {}", sum(|r| r.trace_events));
    println!("log entries scanned   {}", sum(|r| r.log_entries_scanned));
    println!(
        "queries               {n} in {:.3}ms",
        std::time::Duration::from_nanos(latency_total).as_secs_f64() * 1e3
    );
    ExitCode::SUCCESS
}

/// Flight-recorder dump shape (see `ppd_obs::flight`), parsed via the
/// vendored serde stub for `ppd obs flight`.
#[derive(serde::Deserialize)]
struct FlightDumpFile {
    format: String,
    version: u64,
    recorded: u64,
    dropped: u64,
    events: Vec<FlightDumpEvent>,
}

/// One event of a flight-recorder dump.
#[derive(serde::Deserialize)]
struct FlightDumpEvent {
    seq: u64,
    ts_ns: u64,
    tid: u64,
    cat: String,
    name: String,
    detail: String,
}

/// Pretty-prints a flight-recorder dump (from `--flight-out` or a
/// panic) as a chronological table.
fn cmd_obs_flight(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let dump: FlightDumpFile = match serde_json::from_str(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: {path} is not a flight dump: {e}");
            return ExitCode::FAILURE;
        }
    };
    if dump.format != "ppd-flight" {
        eprintln!("error: {path}: unknown dump format `{}`", dump.format);
        return ExitCode::FAILURE;
    }
    println!(
        "flight dump {path}: v{}, {} event(s) recorded, {} dropped, {} shown",
        dump.version,
        dump.recorded,
        dump.dropped,
        dump.events.len()
    );
    let mut events = dump.events;
    events.sort_by_key(|e| e.seq);
    let t0 = events.iter().map(|e| e.ts_ns).min().unwrap_or(0);
    for e in &events {
        let detail = if e.detail.is_empty() { String::new() } else { format!("  {}", e.detail) };
        println!(
            "{:>6}  +{:>12.3}ms  t{:<3} [{:<8}] {}{detail}",
            e.seq,
            (e.ts_ns - t0) as f64 / 1e6,
            e.tid,
            e.cat,
            e.name,
        );
    }
    ExitCode::SUCCESS
}

fn print_node(controller: &Controller<'_>, id: DynNodeId) {
    let n = controller.graph().node(id);
    let tag = match &n.kind {
        DynNodeKind::Entry => "entry",
        DynNodeKind::Exit => "exit",
        DynNodeKind::Singular { .. } => "stmt",
        DynNodeKind::SubGraph { expanded: false, .. } => "call*",
        DynNodeKind::SubGraph { .. } => "call",
        DynNodeKind::Param { .. } => "param",
        DynNodeKind::LoopGraph { expanded: false, .. } => "loop*",
        DynNodeKind::LoopGraph { .. } => "loop",
    };
    let value = n.value.as_ref().map(|v| format!(" = {v}")).unwrap_or_default();
    println!("  #{:<3} [{tag:<5}] {}{value}", id.0, n.label);
}

//! # ppd — flowback analysis, incremental tracing, and race detection
//!
//! A faithful, complete reproduction of **Miller & Choi, "A Mechanism
//! for Efficient Debugging of Parallel Programs" (PLDI 1988)** — the
//! Parallel Program Debugger (PPD) — as a Rust library, together with
//! every substrate the paper depends on:
//!
//! - [`lang`] — a C-like parallel source language with processes, shared
//!   variables, semaphores, locks, messages and rendezvous;
//! - [`analysis`] — the compiler analyses behind incremental tracing:
//!   CFGs, dominators, dataflow, interprocedural MOD/REF, e-blocks,
//!   synchronization units, the program database;
//! - [`graph`] — static, simplified, dynamic, and parallel dynamic
//!   program dependence graphs, event ordering, race detection;
//! - [`log`] — prelogs, postlogs, shared-variable snapshots, per-process
//!   log files;
//! - [`runtime`] — a deterministic shared-memory multiprocessor
//!   simulation: the object code and the emulation package;
//! - [`core`] — the debugger: preparatory / execution / debugging
//!   phases, the PPD Controller, flowback analysis, what-if replay;
//! - [`obs`] — the unified instrumentation layer: hierarchical spans,
//!   counters/gauges/histograms, Chrome-trace export (`--trace-out`),
//!   JSON metrics snapshots (`--stats --format json`).
//!
//! ## Quickstart
//!
//! ```
//! use ppd::core::{Controller, PpdSession, RunConfig};
//! use ppd::analysis::EBlockStrategy;
//!
//! # fn main() -> Result<(), ppd::core::PpdError> {
//! let session = PpdSession::prepare(
//!     "shared int out; \
//!      process Main { int x = input(); out = 100 / x; print(out); }",
//!     EBlockStrategy::per_subroutine(),
//! )?;
//! let mut config = RunConfig::default();
//! config.inputs = vec![vec![0]]; // division by zero!
//! let execution = session.execute(config);
//! assert!(execution.outcome.is_failure());
//!
//! let mut controller = Controller::new(&session, &execution);
//! let root = controller.start()?;          // the failure node
//! let causes = controller.flowback(root);  // …and what led to it
//! assert!(!causes.is_empty());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod sarif;

pub use ppd_analysis as analysis;
pub use ppd_core as core;
pub use ppd_graph as graph;
pub use ppd_lang as lang;
pub use ppd_log as log;
pub use ppd_obs as obs;
pub use ppd_runtime as runtime;

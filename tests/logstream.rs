//! Determinism and integrity suite for the out-of-core segmented log
//! store.
//!
//! Everything the debugger answers over an on-disk store — dynamic
//! graphs, flowback, slices, races — must be bit-identical to the
//! in-memory execution it was saved from, across the corpus, the
//! `programs/` directory, proptest-randomized schedules, and generated
//! programs. The interval index rebuilt from segment footers must equal
//! the index a full entry scan builds, and opening a store must decode
//! zero entries (the no-rescan acceptance criterion).

mod common;

use common::Gen;
use ppd::analysis::EBlockStrategy;
use ppd::core::{Controller, Execution, PpdSession, RunConfig};
use ppd::lang::{corpus, ProcId};
use ppd::log::IntervalIndex;
use ppd::runtime::SchedulerSpec;
use proptest::prelude::*;
use std::path::{Path, PathBuf};

/// Fresh per-test store directory under the system temp dir.
fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("ppd-logstream-tests").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Small capacity so every workload spans multiple segments per process.
const SEG_BYTES: usize = 512;

/// The corpus + `programs/` workload sweep (mirrors the parallel
/// backend determinism suite).
fn workloads() -> Vec<(String, PpdSession, RunConfig)> {
    let mut out = Vec::new();
    let corpus_set: Vec<(&str, &str, Vec<Vec<i64>>)> = vec![
        ("flowback_demo", corpus::FLOWBACK_DEMO.source, vec![vec![42, 10]]),
        ("producer_consumer", corpus::PRODUCER_CONSUMER.source, vec![]),
        ("fig41", corpus::FIG_4_1.source, vec![vec![5, 3, 2]]),
        ("fig61", corpus::FIG_6_1.source, vec![]),
        ("quicksort", corpus::QUICKSORT.source, vec![]),
    ];
    for (name, source, inputs) in corpus_set {
        let session = PpdSession::prepare(source, EBlockStrategy::per_subroutine())
            .expect("corpus program compiles");
        out.push((name.to_owned(), session, RunConfig { inputs, ..RunConfig::default() }));
    }
    for entry in std::fs::read_dir(concat!(env!("CARGO_MANIFEST_DIR"), "/programs"))
        .expect("programs/ exists")
    {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("ppd") {
            continue;
        }
        let name = path.file_stem().unwrap().to_string_lossy().into_owned();
        let source = std::fs::read_to_string(&path).expect("program reads");
        let session = PpdSession::prepare(&source, EBlockStrategy::per_subroutine())
            .expect("programs/ compiles");
        let inputs = if name == "overdraw" { vec![vec![95]] } else { vec![] };
        out.push((name, session, RunConfig { inputs, ..RunConfig::default() }));
    }
    out
}

/// A total, order-stable description of the dynamic graph.
fn fingerprint(controller: &Controller<'_>) -> String {
    use std::fmt::Write as _;
    let graph = controller.graph();
    let mut out = String::new();
    for n in graph.nodes() {
        let mut preds: Vec<String> =
            graph.dependence_preds(n.id).iter().map(|(p, k)| format!("{}:{k:?}", p.0)).collect();
        preds.sort();
        let _ = writeln!(
            out,
            "#{} {:?} {} proc{} seq{} {:?} <- [{}]",
            n.id.0,
            n.kind,
            n.label,
            n.proc.0,
            n.seq,
            n.value,
            preds.join(", ")
        );
    }
    out
}

/// Full debug transcript: start + expand everything + flowback +
/// slice + races — every answer a user could compare between the
/// in-memory and the reopened-from-disk execution.
fn transcript(session: &PpdSession, execution: &Execution) -> Vec<String> {
    let mut c = Controller::new(session, execution);
    let mut out = Vec::new();
    match c.start() {
        Ok(root) => {
            loop {
                let pending = c.unexpanded();
                let before = c.graph().len();
                for node in pending {
                    let _ = c.expand(node);
                }
                if c.graph().len() == before {
                    break;
                }
            }
            out.push(fingerprint(&c));
            out.push(format!("flowback: {:?}", c.flowback(root)));
            out.push(format!("slice: {:?}", c.backward_slice(root)));
        }
        Err(e) => out.push(format!("start failed: {e}")),
    }
    let races: Vec<String> = c.races().into_iter().map(|r| r.description).collect();
    out.push(format!("races: {races:?}"));
    out
}

/// Saves `execution` to `dir` and reloads it, asserting the reload is
/// segment-backed and per-process bit-identical before returning it.
fn save_and_reload(name: &str, execution: &Execution, dir: &Path) -> Execution {
    execution.save_dir(dir, SEG_BYTES).expect("save_dir succeeds");
    let loaded = Execution::load_dir(dir).expect("load_dir succeeds");
    assert!(loaded.logs.is_segmented(), "{name}: reload must be segment-backed");
    for p in 0..execution.logs.process_count() {
        let pid = ProcId(p as u32);
        assert_eq!(
            loaded.logs.log(pid).entries,
            execution.logs.log(pid).entries,
            "{name}: proc {p} entries diverged across the disk round-trip"
        );
    }
    loaded
}

#[test]
fn on_disk_transcripts_match_in_memory_across_corpus_and_programs() {
    for (name, session, config) in workloads() {
        let dir = tmp_dir(&format!("transcript-{name}"));
        let execution = session.execute(config);
        let loaded = save_and_reload(&name, &execution, &dir);
        assert_eq!(
            transcript(&session, &execution),
            transcript(&session, &loaded),
            "{name}: on-disk transcript diverged from in-memory"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn footer_index_matches_rebuilt_index() {
    for (name, session, config) in workloads() {
        let dir = tmp_dir(&format!("index-{name}"));
        let execution = session.execute(config);
        execution.save_dir(&dir, SEG_BYTES).expect("save_dir succeeds");
        let loaded = Execution::load_dir(&dir).expect("load_dir succeeds");
        let seg = loaded.logs.segmented().expect("segment-backed").clone();
        // The index the footers give us, without touching a payload…
        let from_footers = seg.index();
        assert_eq!(seg.entries_decoded(), 0, "{name}: footer index decoded entries");
        // …must equal the index a full scan of the original builds.
        let rebuilt = IntervalIndex::build(&execution.logs);
        assert_eq!(from_footers.process_count(), rebuilt.process_count(), "{name}");
        for p in 0..rebuilt.process_count() {
            let pid = ProcId(p as u32);
            assert_eq!(
                from_footers.intervals(pid),
                rebuilt.intervals(pid),
                "{name}: proc {p} interval lists diverged"
            );
            assert_eq!(
                from_footers.open_intervals(pid),
                rebuilt.open_intervals(pid),
                "{name}: proc {p} open intervals diverged"
            );
            assert_eq!(
                from_footers.top_level(pid),
                rebuilt.top_level(pid),
                "{name}: proc {p} top-level intervals diverged"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// The no-rescan acceptance criterion: opening a store and answering
/// structural queries decodes zero entries; only touching a payload
/// decodes, and only that process's share.
#[test]
fn opening_a_store_decodes_no_entries() {
    let session =
        PpdSession::prepare(corpus::PRODUCER_CONSUMER.source, EBlockStrategy::per_subroutine())
            .expect("corpus program compiles");
    let execution = session.execute(RunConfig::default());
    let dir = tmp_dir("no-rescan");
    execution.save_dir(&dir, 256).expect("save_dir succeeds");
    let loaded = Execution::load_dir(&dir).expect("load_dir succeeds");
    let seg = loaded.logs.segmented().expect("segment-backed").clone();
    assert!(seg.total_entries() > 0);
    let idx = seg.index();
    for p in 0..loaded.logs.process_count() {
        let pid = ProcId(p as u32);
        let _ = idx.open_intervals(pid);
        let _ = idx.interval_count(pid);
    }
    assert_eq!(seg.entries_decoded(), 0, "structural queries must not decode entries");
    let n0 = loaded.logs.log(ProcId(0)).entries.len() as u64;
    assert_eq!(seg.entries_decoded(), n0, "touching proc 0 decodes exactly its entries");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Streaming-sink parity: a run that streams segments to disk as it
/// executes must reopen to the same logs, transcripts and races as the
/// purely in-memory run of the same schedule.
#[test]
fn streamed_runs_match_in_memory_runs() {
    for (name, session, config) in workloads() {
        let dir = tmp_dir(&format!("streamed-{name}"));
        let in_memory = session.execute(config.clone());
        let streamed =
            session.execute_streaming(config, &dir, SEG_BYTES).expect("streaming run succeeds");
        assert!(streamed.logs.is_segmented(), "{name}");
        assert_eq!(streamed.outcome, in_memory.outcome, "{name}: outcomes diverged");
        assert_eq!(
            transcript(&session, &in_memory),
            transcript(&session, &streamed),
            "{name}: streamed transcript diverged from in-memory"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Truncated-tail recovery end to end: killing the tail segment of one
/// process still loads (with a warning), and the surviving log is a
/// prefix of the original.
#[test]
fn truncated_tail_still_loads_with_warning() {
    let session = PpdSession::prepare(corpus::QUICKSORT.source, EBlockStrategy::per_subroutine())
        .expect("corpus program compiles");
    let execution = session.execute(RunConfig::default());
    let dir = tmp_dir("truncated-tail");
    execution.save_dir(&dir, 256).expect("save_dir succeeds");
    // Truncate the highest-seq segment file of some process mid-file.
    let mut segs: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".seg"))
        .collect();
    segs.sort();
    let victim = dir.join(segs.last().expect("at least one segment"));
    let bytes = std::fs::read(&victim).unwrap();
    std::fs::write(&victim, &bytes[..bytes.len() / 2]).unwrap();
    let loaded = Execution::load_dir(&dir).expect("tail truncation must be recoverable");
    let seg = loaded.logs.segmented().expect("segment-backed").clone();
    assert_eq!(seg.warnings().len(), 1, "{:?}", seg.warnings());
    for p in 0..execution.logs.process_count() {
        let pid = ProcId(p as u32);
        let got = &loaded.logs.log(pid).entries;
        let full = &execution.logs.log(pid).entries;
        assert!(got.len() <= full.len(), "proc {p}");
        assert_eq!(got.as_slice(), &full[..got.len()], "proc {p} is not a prefix");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Randomized schedules and generated programs (proptest)
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Under proptest-randomized schedules, the disk round-trip changes
    /// no debugger answer.
    #[test]
    fn randomized_schedules_round_trip_through_disk(
        choice in any::<u8>(),
        seed in 0u64..10_000,
    ) {
        let (source, inputs): (&str, Vec<Vec<i64>>) = match choice % 4 {
            0 => (corpus::PRODUCER_CONSUMER.source, vec![]),
            1 => (corpus::FIG_6_1.source, vec![]),
            2 => (corpus::FLOWBACK_DEMO.source, vec![vec![42, 10]]),
            _ => (corpus::QUICKSORT.source, vec![]),
        };
        let session = PpdSession::prepare(source, EBlockStrategy::per_subroutine())
            .expect("corpus program compiles");
        let execution = session.execute(RunConfig {
            scheduler: SchedulerSpec::Random { seed },
            inputs,
            ..RunConfig::default()
        });
        let dir = tmp_dir(&format!("prop-{}-{seed}", choice % 4));
        let loaded = save_and_reload("randomized", &execution, &dir);
        prop_assert_eq!(
            transcript(&session, &execution),
            transcript(&session, &loaded),
            "seed {} diverged across the disk round-trip",
            seed
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Generated programs round-trip too — the store format carries
    /// arbitrary entry shapes, not just the corpus's.
    #[test]
    fn generated_programs_round_trip_through_disk(bytes in proptest::collection::vec(any::<u8>(), 4..64)) {
        let source = Gen::new(&bytes).program();
        let session = PpdSession::prepare(&source, EBlockStrategy::per_subroutine())
            .expect("generated program compiles");
        let execution = session.execute(RunConfig::default());
        let dir = tmp_dir(&format!("gen-{:02x}{:02x}-{}", bytes[0], bytes[1], bytes.len()));
        let loaded = save_and_reload("generated", &execution, &dir);
        prop_assert_eq!(
            transcript(&session, &execution),
            transcript(&session, &loaded),
            "generated program diverged across the disk round-trip"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

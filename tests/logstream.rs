//! Determinism and integrity suite for the out-of-core segmented log
//! store.
//!
//! Everything the debugger answers over an on-disk store — dynamic
//! graphs, flowback, slices, races — must be bit-identical to the
//! in-memory execution it was saved from, across the corpus, the
//! `programs/` directory, proptest-randomized schedules, and generated
//! programs. The interval index rebuilt from segment footers must equal
//! the index a full entry scan builds, and opening a store must decode
//! zero entries (the no-rescan acceptance criterion).

mod common;

use common::Gen;
use ppd::analysis::EBlockStrategy;
use ppd::core::{Controller, Execution, PpdSession, RunConfig};
use ppd::lang::{corpus, ProcId};
use ppd::log::{IntervalIndex, LogStore, SegmentFormat, SegmentWriter};
use ppd::runtime::SchedulerSpec;
use proptest::prelude::*;
use std::path::{Path, PathBuf};

/// Every on-disk payload layout the store can read.
const FORMATS: [(&str, SegmentFormat); 3] = [
    ("v1", SegmentFormat::V1),
    ("v2raw", SegmentFormat::V2Raw),
    ("v2z", SegmentFormat::V2Compressed),
];

/// Fresh per-test store directory under the system temp dir.
fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("ppd-logstream-tests").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Small capacity so every workload spans multiple segments per process.
const SEG_BYTES: usize = 512;

/// The corpus + `programs/` workload sweep (mirrors the parallel
/// backend determinism suite).
fn workloads() -> Vec<(String, PpdSession, RunConfig)> {
    let mut out = Vec::new();
    let corpus_set: Vec<(&str, &str, Vec<Vec<i64>>)> = vec![
        ("flowback_demo", corpus::FLOWBACK_DEMO.source, vec![vec![42, 10]]),
        ("producer_consumer", corpus::PRODUCER_CONSUMER.source, vec![]),
        ("fig41", corpus::FIG_4_1.source, vec![vec![5, 3, 2]]),
        ("fig61", corpus::FIG_6_1.source, vec![]),
        ("quicksort", corpus::QUICKSORT.source, vec![]),
    ];
    for (name, source, inputs) in corpus_set {
        let session = PpdSession::prepare(source, EBlockStrategy::per_subroutine())
            .expect("corpus program compiles");
        out.push((name.to_owned(), session, RunConfig { inputs, ..RunConfig::default() }));
    }
    for entry in std::fs::read_dir(concat!(env!("CARGO_MANIFEST_DIR"), "/programs"))
        .expect("programs/ exists")
    {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("ppd") {
            continue;
        }
        let name = path.file_stem().unwrap().to_string_lossy().into_owned();
        let source = std::fs::read_to_string(&path).expect("program reads");
        let session = PpdSession::prepare(&source, EBlockStrategy::per_subroutine())
            .expect("programs/ compiles");
        let inputs = if name == "overdraw" { vec![vec![95]] } else { vec![] };
        out.push((name, session, RunConfig { inputs, ..RunConfig::default() }));
    }
    out
}

/// A total, order-stable description of the dynamic graph.
fn fingerprint(controller: &Controller<'_>) -> String {
    use std::fmt::Write as _;
    let graph = controller.graph();
    let mut out = String::new();
    for n in graph.nodes() {
        let mut preds: Vec<String> =
            graph.dependence_preds(n.id).iter().map(|(p, k)| format!("{}:{k:?}", p.0)).collect();
        preds.sort();
        let _ = writeln!(
            out,
            "#{} {:?} {} proc{} seq{} {:?} <- [{}]",
            n.id.0,
            n.kind,
            n.label,
            n.proc.0,
            n.seq,
            n.value,
            preds.join(", ")
        );
    }
    out
}

/// Full debug transcript: start + expand everything + flowback +
/// slice + races — every answer a user could compare between the
/// in-memory and the reopened-from-disk execution.
fn transcript(session: &PpdSession, execution: &Execution) -> Vec<String> {
    let mut c = Controller::new(session, execution);
    let mut out = Vec::new();
    match c.start() {
        Ok(root) => {
            loop {
                let pending = c.unexpanded();
                let before = c.graph().len();
                for node in pending {
                    let _ = c.expand(node);
                }
                if c.graph().len() == before {
                    break;
                }
            }
            out.push(fingerprint(&c));
            out.push(format!("flowback: {:?}", c.flowback(root)));
            out.push(format!("slice: {:?}", c.backward_slice(root)));
        }
        Err(e) => out.push(format!("start failed: {e}")),
    }
    let races: Vec<String> = c.races().into_iter().map(|r| r.description).collect();
    out.push(format!("races: {races:?}"));
    out
}

/// Saves `execution` to `dir` and reloads it, asserting the reload is
/// segment-backed and per-process bit-identical before returning it.
fn save_and_reload(name: &str, execution: &Execution, dir: &Path) -> Execution {
    execution.save_dir(dir, SEG_BYTES).expect("save_dir succeeds");
    let loaded = Execution::load_dir(dir).expect("load_dir succeeds");
    assert!(loaded.logs.is_segmented(), "{name}: reload must be segment-backed");
    for p in 0..execution.logs.process_count() {
        let pid = ProcId(p as u32);
        assert_eq!(
            loaded.logs.log(pid).entries,
            execution.logs.log(pid).entries,
            "{name}: proc {p} entries diverged across the disk round-trip"
        );
    }
    loaded
}

#[test]
fn on_disk_transcripts_match_in_memory_across_corpus_and_programs() {
    for (name, session, config) in workloads() {
        let dir = tmp_dir(&format!("transcript-{name}"));
        let execution = session.execute(config);
        let loaded = save_and_reload(&name, &execution, &dir);
        assert_eq!(
            transcript(&session, &execution),
            transcript(&session, &loaded),
            "{name}: on-disk transcript diverged from in-memory"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn footer_index_matches_rebuilt_index() {
    for (name, session, config) in workloads() {
        let dir = tmp_dir(&format!("index-{name}"));
        let execution = session.execute(config);
        execution.save_dir(&dir, SEG_BYTES).expect("save_dir succeeds");
        let loaded = Execution::load_dir(&dir).expect("load_dir succeeds");
        let seg = loaded.logs.segmented().expect("segment-backed").clone();
        // The index the footers give us, without touching a payload…
        let from_footers = seg.index();
        assert_eq!(seg.entries_decoded(), 0, "{name}: footer index decoded entries");
        // …must equal the index a full scan of the original builds.
        let rebuilt = IntervalIndex::build(&execution.logs);
        assert_eq!(from_footers.process_count(), rebuilt.process_count(), "{name}");
        for p in 0..rebuilt.process_count() {
            let pid = ProcId(p as u32);
            assert_eq!(
                from_footers.intervals(pid),
                rebuilt.intervals(pid),
                "{name}: proc {p} interval lists diverged"
            );
            assert_eq!(
                from_footers.open_intervals(pid),
                rebuilt.open_intervals(pid),
                "{name}: proc {p} open intervals diverged"
            );
            assert_eq!(
                from_footers.top_level(pid),
                rebuilt.top_level(pid),
                "{name}: proc {p} top-level intervals diverged"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// The no-rescan acceptance criterion: opening a store and answering
/// structural queries decodes zero entries; only touching a payload
/// decodes, and only that process's share.
#[test]
fn opening_a_store_decodes_no_entries() {
    let session =
        PpdSession::prepare(corpus::PRODUCER_CONSUMER.source, EBlockStrategy::per_subroutine())
            .expect("corpus program compiles");
    let execution = session.execute(RunConfig::default());
    let dir = tmp_dir("no-rescan");
    execution.save_dir(&dir, 256).expect("save_dir succeeds");
    let loaded = Execution::load_dir(&dir).expect("load_dir succeeds");
    let seg = loaded.logs.segmented().expect("segment-backed").clone();
    assert!(seg.total_entries() > 0);
    let idx = seg.index();
    for p in 0..loaded.logs.process_count() {
        let pid = ProcId(p as u32);
        let _ = idx.open_intervals(pid);
        let _ = idx.interval_count(pid);
    }
    assert_eq!(seg.entries_decoded(), 0, "structural queries must not decode entries");
    let n0 = loaded.logs.log(ProcId(0)).entries.len() as u64;
    assert_eq!(seg.entries_decoded(), n0, "touching proc 0 decodes exactly its entries");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Streaming-sink parity: a run that streams segments to disk as it
/// executes must reopen to the same logs, transcripts and races as the
/// purely in-memory run of the same schedule.
#[test]
fn streamed_runs_match_in_memory_runs() {
    for (name, session, config) in workloads() {
        let dir = tmp_dir(&format!("streamed-{name}"));
        let in_memory = session.execute(config.clone());
        let streamed =
            session.execute_streaming(config, &dir, SEG_BYTES).expect("streaming run succeeds");
        assert!(streamed.logs.is_segmented(), "{name}");
        assert_eq!(streamed.outcome, in_memory.outcome, "{name}: outcomes diverged");
        assert_eq!(
            transcript(&session, &in_memory),
            transcript(&session, &streamed),
            "{name}: streamed transcript diverged from in-memory"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Truncated-tail recovery end to end: killing the tail segment of one
/// process still loads (with a warning), and the surviving log is a
/// prefix of the original.
#[test]
fn truncated_tail_still_loads_with_warning() {
    let session = PpdSession::prepare(corpus::QUICKSORT.source, EBlockStrategy::per_subroutine())
        .expect("corpus program compiles");
    let execution = session.execute(RunConfig::default());
    let dir = tmp_dir("truncated-tail");
    execution.save_dir(&dir, 256).expect("save_dir succeeds");
    // Truncate the highest-seq segment file of some process mid-file.
    let mut segs: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".seg"))
        .collect();
    segs.sort();
    let victim = dir.join(segs.last().expect("at least one segment"));
    let bytes = std::fs::read(&victim).unwrap();
    std::fs::write(&victim, &bytes[..bytes.len() / 2]).unwrap();
    let loaded = Execution::load_dir(&dir).expect("tail truncation must be recoverable");
    let seg = loaded.logs.segmented().expect("segment-backed").clone();
    assert_eq!(seg.warnings().len(), 1, "{:?}", seg.warnings());
    for p in 0..execution.logs.process_count() {
        let pid = ProcId(p as u32);
        let got = &loaded.logs.log(pid).entries;
        let full = &execution.logs.log(pid).entries;
        assert!(got.len() <= full.len(), "proc {p}");
        assert_eq!(got.as_slice(), &full[..got.len()], "proc {p} is not a prefix");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Bit-identical query transcripts across raw v1, raw v2 and compressed
/// v2 stores of the same execution: the payload layout must never leak
/// into a debugger answer.
#[test]
fn transcripts_identical_across_v1_v2raw_and_v2_compressed() {
    for (name, session, config) in workloads() {
        let execution = session.execute(config);
        let base = transcript(&session, &execution);
        for (tag, format) in FORMATS {
            let dir = tmp_dir(&format!("fmt-{tag}-{name}"));
            execution.save_dir_with(&dir, SEG_BYTES, format).expect("save_dir_with succeeds");
            let loaded = Execution::load_dir(&dir).expect("load_dir succeeds");
            for p in 0..execution.logs.process_count() {
                let pid = ProcId(p as u32);
                assert_eq!(
                    loaded.logs.log(pid).entries,
                    execution.logs.log(pid).entries,
                    "{name}/{tag}: proc {p} entries diverged"
                );
            }
            assert_eq!(
                base,
                transcript(&session, &loaded),
                "{name}/{tag}: transcript diverged from in-memory"
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

/// Live-tail recovery parity: a writer that flushed but never sealed
/// (the still-running-program shape) leaves only unsealed tails, and the
/// recovered store answers every query identically in all three formats.
#[test]
fn recovered_live_tails_answer_queries_identically_across_formats() {
    let session = PpdSession::prepare(corpus::QUICKSORT.source, EBlockStrategy::per_subroutine())
        .expect("corpus program compiles");
    let execution = session.execute(RunConfig::default());
    let base = transcript(&session, &execution);
    let nprocs = execution.logs.process_count();
    for (tag, format) in FORMATS {
        let dir = tmp_dir(&format!("live-{tag}"));
        let mut w = SegmentWriter::create_with(&dir, nprocs, 1 << 20, format)
            .expect("writer creates")
            .with_block_bytes(64);
        for p in 0..nprocs {
            let pid = ProcId(p as u32);
            for e in &execution.logs.log(pid).entries {
                w.append(pid, e);
            }
        }
        w.flush(); // flushed, never sealed: every segment is a live tail
        drop(w);
        let logs = LogStore::open_dir(&dir).expect("live store opens");
        let seg = logs.segmented().expect("segment-backed").clone();
        assert_eq!(
            seg.recovered_entries(),
            execution.logs.total_entries() as u64,
            "{tag}: every flushed entry is recoverable"
        );
        assert!(!logs.recovery_warnings().is_empty(), "{tag}: recovery warns");
        let recovered = Execution {
            outcome: execution.outcome.clone(),
            output: execution.output.clone(),
            logs,
            pgraph: execution.pgraph.clone(),
            steps: execution.steps,
            config: execution.config.clone(),
        };
        assert_eq!(
            base,
            transcript(&session, &recovered),
            "{tag}: recovered-tail transcript diverged from in-memory"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Truncating a compressed v2 segment mid-block (inside a stored frame)
/// and at a frame boundary both recover an exact prefix of the
/// in-memory log — never garbage, never a non-prefix.
#[test]
fn compressed_truncation_recovers_exact_prefix() {
    let session = PpdSession::prepare(corpus::QUICKSORT.source, EBlockStrategy::per_subroutine())
        .expect("corpus program compiles");
    let execution = session.execute(RunConfig::default());
    let nprocs = execution.logs.process_count();
    // The victim: the process with the most entries.
    let victim_proc =
        (0..nprocs).max_by_key(|&p| execution.logs.log(ProcId(p as u32)).entries.len()).unwrap();
    for cut_mid_frame in [true, false] {
        // One big segment per process, framed into many tiny blocks so
        // the cut lands well inside the frame sequence.
        let dir = tmp_dir(&format!("zcut-{cut_mid_frame}"));
        let mut w = SegmentWriter::create_with(&dir, nprocs, 1 << 20, SegmentFormat::V2Compressed)
            .expect("writer creates")
            .with_block_bytes(64);
        for p in 0..nprocs {
            let pid = ProcId(p as u32);
            for e in &execution.logs.log(pid).entries {
                w.append(pid, e);
            }
        }
        w.finish().expect("finish seals");
        let probe = ppd::log::SegmentedLog::open(&dir).expect("probe opens");
        let meta = probe.segments(ProcId(victim_proc as u32)).next().expect("one segment").clone();
        assert!(meta.block_count() >= 3, "expected many small frames, got {}", meta.block_count());
        let block = meta.blocks().last().copied().expect("blocks");
        drop(probe);
        // Cut inside the last stored frame (mid-block), or exactly at
        // its start (a frame boundary, splitting the record stream
        // mid-record sequence): both must drop that frame's entries
        // and keep every earlier one.
        let cut = meta.payload_start()
            + block.stored_off as usize
            + if cut_mid_frame { (block.stored_len as usize) / 2 } else { 0 };
        let victim = dir.join(&meta.file);
        let bytes = std::fs::read(&victim).unwrap();
        assert!(cut < bytes.len());
        std::fs::write(&victim, &bytes[..cut]).unwrap();
        let loaded = LogStore::open_dir(&dir).expect("truncated store recovers");
        let seg = loaded.segmented().expect("segment-backed").clone();
        assert_eq!(seg.warnings().len(), 1, "{:?}", seg.warnings());
        let got = &loaded.log(ProcId(victim_proc as u32)).entries;
        let full = &execution.logs.log(ProcId(victim_proc as u32)).entries;
        assert!(!got.is_empty(), "earlier frames must survive the cut");
        assert!(got.len() < full.len(), "truncation must lose the cut frame's entries");
        assert_eq!(got.as_slice(), &full[..got.len()], "recovered tail is not a prefix");
        // Untouched processes stay complete.
        for p in 0..nprocs {
            if p != victim_proc {
                let pid = ProcId(p as u32);
                assert_eq!(loaded.log(pid).entries, execution.logs.log(pid).entries);
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Regression: a directory whose manifest lists a process that has no
/// segment files at all must fail with a positioned store error, not
/// panic or silently produce an empty log.
#[test]
fn zero_segment_process_is_a_positioned_store_error() {
    let session =
        PpdSession::prepare(corpus::PRODUCER_CONSUMER.source, EBlockStrategy::per_subroutine())
            .expect("corpus program compiles");
    let execution = session.execute(RunConfig::default());
    let dir = tmp_dir("zero-seg");
    execution.save_dir(&dir, SEG_BYTES).expect("save_dir succeeds");
    let victim = execution.logs.process_count() - 1;
    let prefix = format!("p{victim:04}-");
    for entry in std::fs::read_dir(&dir).unwrap() {
        let name = entry.as_ref().unwrap().file_name().to_string_lossy().into_owned();
        if name.starts_with(&prefix) && name.ends_with(".seg") {
            std::fs::remove_file(entry.unwrap().path()).unwrap();
        }
    }
    let err = Execution::load_dir(&dir).expect_err("missing process must be an error");
    assert!(matches!(err, ppd::core::PpdError::Store(_)), "wrong error kind: {err:?}");
    let msg = err.to_string();
    assert!(
        msg.contains("no segment files") && msg.contains(&format!("process {victim}")),
        "unpositioned error: {msg}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Randomized schedules and generated programs (proptest)
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Under proptest-randomized schedules, the disk round-trip changes
    /// no debugger answer.
    #[test]
    fn randomized_schedules_round_trip_through_disk(
        choice in any::<u8>(),
        seed in 0u64..10_000,
    ) {
        let (source, inputs): (&str, Vec<Vec<i64>>) = match choice % 4 {
            0 => (corpus::PRODUCER_CONSUMER.source, vec![]),
            1 => (corpus::FIG_6_1.source, vec![]),
            2 => (corpus::FLOWBACK_DEMO.source, vec![vec![42, 10]]),
            _ => (corpus::QUICKSORT.source, vec![]),
        };
        let session = PpdSession::prepare(source, EBlockStrategy::per_subroutine())
            .expect("corpus program compiles");
        let execution = session.execute(RunConfig {
            scheduler: SchedulerSpec::Random { seed },
            inputs,
            ..RunConfig::default()
        });
        let dir = tmp_dir(&format!("prop-{}-{seed}", choice % 4));
        let loaded = save_and_reload("randomized", &execution, &dir);
        prop_assert_eq!(
            transcript(&session, &execution),
            transcript(&session, &loaded),
            "seed {} diverged across the disk round-trip",
            seed
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Generated programs round-trip too — the store format carries
    /// arbitrary entry shapes, not just the corpus's.
    #[test]
    fn generated_programs_round_trip_through_disk(bytes in proptest::collection::vec(any::<u8>(), 4..64)) {
        let source = Gen::new(&bytes).program();
        let session = PpdSession::prepare(&source, EBlockStrategy::per_subroutine())
            .expect("generated program compiles");
        let execution = session.execute(RunConfig::default());
        let dir = tmp_dir(&format!("gen-{:02x}{:02x}-{}", bytes[0], bytes[1], bytes.len()));
        let loaded = save_and_reload("generated", &execution, &dir);
        prop_assert_eq!(
            transcript(&session, &execution),
            transcript(&session, &loaded),
            "generated program diverged across the disk round-trip"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

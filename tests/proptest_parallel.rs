//! Property tests over randomly generated *parallel* programs.
//!
//! Programs are race-free by construction (every shared access sits in a
//! global-lock critical section), so under ANY schedule: the race
//! detector must stay quiet, outputs must satisfy the program's
//! invariant, and replaying each interval must reproduce its events —
//! the full §5.5 shared-snapshot machinery exercised on random inputs.

use ppd::analysis::EBlockStrategy;
use ppd::core::{faithful_replay, Controller, PpdSession, RunConfig};
use ppd::lang::ProcId;
use ppd::runtime::{EventKind, SchedulerSpec, TraceEvent, VecTracer};
use proptest::prelude::*;

/// Deterministic generator: `nprocs` workers each run a few critical
/// sections updating shared accumulators; a reader process checks them.
fn gen_locked_program(bytes: &[u8], nprocs: u32) -> (String, i64) {
    let mut pos = 0usize;
    let mut next = |d: u8| {
        let b = if bytes.is_empty() { 0 } else { bytes[pos % bytes.len()] };
        pos += 1;
        b % d
    };
    let mut src = String::from("shared int acc;\nshared int ops;\nsem lock_all = 1;\n");
    let mut expected = 0i64;
    let mut total_ops = 0i64;
    for p in 0..nprocs {
        let sections = next(3) as i64 + 1;
        src.push_str(&format!("process W{p} {{\n    int i;\n"));
        for s in 0..sections {
            let delta = next(9) as i64 + 1;
            let reps = next(3) as i64 + 1;
            expected += delta * reps;
            total_ops += reps;
            src.push_str(&format!(
                "    for (i = 0; i < {reps}; i = i + 1) {{\n\
                 \x20       p(lock_all);\n\
                 \x20       acc = acc + {delta};\n\
                 \x20       ops = ops + 1;\n\
                 \x20       v(lock_all);\n\
                 \x20   }}\n"
            ));
            let _ = s;
        }
        src.push_str("}\n");
    }
    src.push_str(&format!(
        "process Check {{\n    int done = 0;\n    while (done == 0) {{\n\
         \x20       p(lock_all);\n        if (ops == {total_ops}) {{ done = 1; }}\n\
         \x20       v(lock_all);\n    }}\n    p(lock_all);\n    print(acc);\n    v(lock_all);\n}}\n"
    ));
    (src, expected)
}

fn normalize(e: &TraceEvent) -> (u32, String, Option<i64>) {
    let kind = match &e.kind {
        EventKind::CallEnter { func, args, .. } => {
            format!("call{}{:?}", func.0, args.iter().map(|(v, _)| *v).collect::<Vec<_>>())
        }
        other => format!("{other:?}"),
    };
    (e.stmt.0, kind, e.value)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Under every probed schedule: correct total, race-free, and the
    /// §5.1 replay contract holds for every process's every interval.
    #[test]
    fn locked_random_programs_are_race_free_and_replayable(
        bytes in proptest::collection::vec(any::<u8>(), 4..48),
        nprocs in 2u32..4,
        seed in 0u64..1000,
    ) {
        let (src, expected) = gen_locked_program(&bytes, nprocs);
        let session = PpdSession::prepare(&src, EBlockStrategy::per_subroutine()).unwrap();
        let cfg = RunConfig {
            scheduler: SchedulerSpec::Random { seed },
            ..RunConfig::default()
        };
        let mut original = VecTracer::default();
        let exec = session.execute_traced(cfg, &mut original);
        prop_assert!(exec.outcome.is_success(), "{:?}", exec.outcome);
        // Locked updates never lose increments.
        prop_assert_eq!(exec.output.last().map(|&(_, v)| v), Some(expected));
        // Race-free under this schedule (Definition 6.4).
        let controller = Controller::new(&session, &exec);
        prop_assert!(controller.is_race_free());

        // Replay fidelity for every interval of every process.
        for p in 0..session.rp().procs.len() {
            let pid = ProcId(p as u32);
            for interval in exec.logs.intervals(pid) {
                let start = exec.logs.prelog_of(interval).time();
                let end = exec
                    .logs
                    .postlog_of(interval)
                    .map(|e| e.time())
                    .unwrap_or(u64::MAX);
                let mut replayed = VecTracer::default();
                let res = faithful_replay(&session, &exec, interval, &mut replayed);
                prop_assert!(res.outcome.is_success(), "{:?}", res.outcome);
                let want: Vec<_> = original
                    .events
                    .iter()
                    .filter(|e| e.proc == pid && e.seq > start && e.seq < end)
                    .map(normalize)
                    .collect();
                let got: Vec<_> = replayed.events.iter().map(normalize).collect();
                prop_assert_eq!(got, want, "interval {:?}", interval);
            }
        }
    }

    /// Debugging always starts, and the presented fragment's nodes all
    /// belong to the chosen process.
    #[test]
    fn debugging_starts_on_random_parallel_programs(
        bytes in proptest::collection::vec(any::<u8>(), 4..32),
        seed in 0u64..100,
    ) {
        let (src, _) = gen_locked_program(&bytes, 2);
        let session = PpdSession::prepare(&src, EBlockStrategy::per_subroutine()).unwrap();
        let exec = session.execute(RunConfig {
            scheduler: SchedulerSpec::Random { seed },
            ..RunConfig::default()
        });
        prop_assert!(exec.outcome.is_success());
        let mut controller = Controller::new(&session, &exec);
        let root = controller.start_at(ProcId(0)).unwrap();
        for &n in &controller.backward_slice(root) {
            prop_assert_eq!(controller.graph().node(n).proc, ProcId(0));
        }
    }
}

//! Property-based tests over randomly generated (always-valid) programs:
//! pretty-print round trips, instrumentation transparency, and the §5.1
//! replay-fidelity contract.
//!
//! Programs are derived deterministically from proptest-supplied byte
//! strings, so every generated program is valid by construction and
//! failures shrink to small byte vectors.

use ppd::analysis::EBlockStrategy;
use ppd::core::{faithful_replay, PpdSession, RunConfig};
use ppd::lang::ProcId;
use ppd::runtime::{EventKind, TraceEvent, VecTracer};
use proptest::prelude::*;

mod common;
use common::Gen;

fn normalize(e: &TraceEvent) -> (u32, String, Option<i64>) {
    let kind = match &e.kind {
        EventKind::CallEnter { func, args, .. } => {
            format!("call{}{:?}", func.0, args.iter().map(|(v, _)| *v).collect::<Vec<_>>())
        }
        other => format!("{other:?}"),
    };
    (e.stmt.0, kind, e.value)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Generated programs parse, and pretty-printing is a fixed point.
    #[test]
    fn pretty_print_round_trips(bytes in proptest::collection::vec(any::<u8>(), 1..128)) {
        let src = Gen::new(&bytes).program();
        let p1 = ppd::lang::parse(&src).expect("generated program parses");
        let printed = ppd::lang::pretty::program_to_string(&p1);
        let p2 = ppd::lang::parse(&printed).expect("printed program parses");
        let printed2 = ppd::lang::pretty::program_to_string(&p2);
        prop_assert_eq!(printed, printed2);
    }

    /// Instrumentation is transparent: the instrumented object code
    /// produces exactly the baseline's output and outcome.
    #[test]
    fn instrumentation_is_transparent(bytes in proptest::collection::vec(any::<u8>(), 1..128)) {
        let src = Gen::new(&bytes).program();
        let session = PpdSession::prepare(&src, EBlockStrategy::with_loops(3)).unwrap();
        let exec = session.execute(RunConfig::default());
        let (outcome, output, _) = session.execute_baseline(RunConfig::default());
        prop_assert_eq!(&exec.outcome, &outcome);
        prop_assert_eq!(&exec.output, &output);
        prop_assert!(outcome.is_success(), "generated programs never fail: {:?}", outcome);
    }

    /// §5.1: replaying any logged interval reproduces exactly the events
    /// the original execution produced inside that interval.
    #[test]
    fn replay_fidelity_on_random_programs(bytes in proptest::collection::vec(any::<u8>(), 1..96)) {
        let src = Gen::new(&bytes).program();
        let session = PpdSession::prepare(&src, EBlockStrategy::with_loops(3)).unwrap();
        let mut original = VecTracer::default();
        let exec = session.execute_traced(RunConfig::default(), &mut original);
        prop_assert!(exec.outcome.is_success());

        for interval in exec.logs.intervals(ProcId(0)) {
            let start = exec.logs.prelog_of(interval).time();
            let end = exec.logs.postlog_of(interval).map(|e| e.time()).unwrap_or(u64::MAX);
            let mut replayed = VecTracer::default();
            let res = faithful_replay(&session, &exec, interval, &mut replayed);
            prop_assert!(res.outcome.is_success(), "{:?}", res.outcome);
            let expected: Vec<_> = original
                .events
                .iter()
                .filter(|e| e.seq > start && e.seq < end)
                .map(normalize)
                .collect();
            let got: Vec<_> = replayed.events.iter().map(normalize).collect();
            prop_assert_eq!(got, expected, "interval {:?} diverged", interval);
        }
    }

    /// Output depends only on (program, inputs, seed): executions with
    /// the same seed agree, step for step.
    #[test]
    fn seeded_determinism(
        bytes in proptest::collection::vec(any::<u8>(), 1..64),
        seed in any::<u64>(),
    ) {
        let src = Gen::new(&bytes).program();
        let session = PpdSession::prepare(&src, EBlockStrategy::per_subroutine()).unwrap();
        let cfg = RunConfig {
            scheduler: ppd::runtime::SchedulerSpec::Random { seed },
            ..RunConfig::default()
        };
        let a = session.execute(cfg.clone());
        let b = session.execute(cfg);
        prop_assert_eq!(a.output, b.output);
        prop_assert_eq!(a.steps, b.steps);
    }
}

//! May-happen-in-parallel pruning and snapshot trimming, end to end.
//!
//! Two safety contracts from the static MHP analysis:
//!
//! 1. **Race preservation** — `detect_races_mhp` (GMOD/GREF candidates
//!    refined by the MHP fixpoint) reports exactly the race set of
//!    `detect_races_naive` on every corpus program, every on-disk
//!    example, and randomized synchronized programs, while scanning no
//!    more edge pairs than the GMOD/GREF-only index — and strictly
//!    fewer on Figure 6.1, whose send/recv pair orders `P1` and `P3`.
//! 2. **Replay invisibility** — dropping statically-ordered shared
//!    variables from synchronization-unit snapshots must not change
//!    debugging: dynamic graphs, values and race reports are
//!    node-for-node identical with the trim on and off, while the trim
//!    strictly reduces logged snapshot volume.

use ppd::analysis::{AnalysisConfig, EBlockStrategy};
use ppd::core::{Controller, PpdSession, RunConfig};
use ppd::graph::{
    detect_races_mhp, detect_races_mhp_counted, detect_races_naive, detect_races_naive_counted,
    detect_races_pruned, detect_races_pruned_counted, detect_races_typed,
    detect_races_typed_counted, VectorClocks,
};
use ppd::lang::{corpus, ProcId};
use ppd::log::LogEntry;
use ppd::runtime::SchedulerSpec;
use proptest::prelude::*;

/// Runs `source` and checks naive/pruned/MHP/typed agreement; returns
/// `(naive_pairs, pruned_pairs, mhp_pairs, typed_pairs)` for shrinkage
/// assertions.
fn check(
    name: &str,
    source: &str,
    inputs: Vec<Vec<i64>>,
    seed: Option<u64>,
) -> (usize, usize, usize, usize) {
    let session = PpdSession::prepare(source, EBlockStrategy::per_subroutine())
        .unwrap_or_else(|e| panic!("{name}: {e}"));
    let gmod_index = &session.analyses().race_candidates;
    let mhp_index = &session.analyses().mhp_candidates;
    let typed_index = &session.analyses().typed_candidates;
    let scheduler = seed.map_or(SchedulerSpec::RoundRobin, |seed| SchedulerSpec::Random { seed });
    let execution = session.execute(RunConfig { inputs, scheduler, ..RunConfig::default() });
    let g = &execution.pgraph;
    let ord = VectorClocks::compute(g);

    let naive = detect_races_naive(g, &ord);
    assert_eq!(
        detect_races_pruned(g, &ord, gmod_index),
        naive,
        "{name}: GMOD/GREF pruning changed the race set"
    );
    assert_eq!(
        detect_races_mhp(g, &ord, mhp_index),
        naive,
        "{name}: MHP pruning changed the race set"
    );
    assert_eq!(
        detect_races_typed(g, &ord, typed_index),
        naive,
        "{name}: typed-channel pruning changed the race set"
    );

    let (_, naive_pairs) = detect_races_naive_counted(g, &ord);
    let (_, pruned_pairs) = detect_races_pruned_counted(g, &ord, gmod_index);
    let (also_mhp, mhp_pairs) = detect_races_mhp_counted(g, &ord, mhp_index);
    let (also_typed, typed_pairs) = detect_races_typed_counted(g, &ord, typed_index);
    assert_eq!(also_mhp, naive, "{name}: counted MHP variant disagrees");
    assert_eq!(also_typed, naive, "{name}: counted typed variant disagrees");
    assert!(
        typed_pairs <= mhp_pairs && mhp_pairs <= pruned_pairs && pruned_pairs <= naive_pairs,
        "{name}: pair counts not monotone \
         ({naive_pairs} / {pruned_pairs} / {mhp_pairs} / {typed_pairs})"
    );
    (naive_pairs, pruned_pairs, mhp_pairs, typed_pairs)
}

fn inputs_for(name: &str) -> Vec<Vec<i64>> {
    match name {
        "fig41" => vec![vec![5, 3, 2]],
        "flowback_demo" => vec![vec![42, 10]],
        "overdraw.ppd" => vec![vec![50]],
        _ => Vec::new(),
    }
}

#[test]
fn corpus_mhp_equals_naive() {
    for prog in corpus::terminating() {
        check(prog.name, prog.source, inputs_for(prog.name), None);
    }
}

#[test]
fn example_programs_mhp_equals_naive() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("programs");
    for file in [
        "bank.ppd",
        "overdraw.ppd",
        "phils.ppd",
        "lintdemo.ppd",
        "pipeline.ppd",
        "stencil.ppd",
        "workqueue.ppd",
    ] {
        let source = std::fs::read_to_string(dir.join(file)).unwrap();
        check(file, &source, inputs_for(file), None);
    }
}

#[test]
fn fig61_mhp_strictly_beats_gmod_gref_pruning() {
    // The acceptance bar: on at least one corpus program the MHP index
    // scans strictly fewer pairs than GMOD/GREF alone. Figure 6.1 is
    // that program — `P1` and `P3` conflict on `SV` but their accesses
    // are ordered by the message, so MHP drops the (SV, P1, P3) entry
    // the shared-set comparison keeps.
    let (naive_pairs, pruned_pairs, mhp_pairs, _) =
        check(corpus::FIG_6_1.name, corpus::FIG_6_1.source, Vec::new(), None);
    assert!(naive_pairs > 0);
    assert!(
        mhp_pairs < pruned_pairs,
        "expected strict shrink over GMOD/GREF, got {mhp_pairs} vs {pruned_pairs}"
    );
}

/// A two-payload-class channel program: `ints` carries `int`, `flags`
/// carries `bool`, and both drains `recv` inside functions. Untyped
/// channel aliasing must assume the `chan` parameters of `draini` and
/// `drainb` may name either channel, so the write to `g` in `P` is not
/// provably ordered before the read in `draini`; the typed sync groups
/// split the sites by payload class and recover the ordering.
const TWO_CLASS_PIPELINE: &str = "chan ints;\n\
                                  chan flags;\n\
                                  shared int g;\n\
                                  void draini(chan q) { int x; recv(q, x); g = x; }\n\
                                  void drainb(chan q) { int b; recv(q, b); print(b); }\n\
                                  process P { g = 1; send(ints, 2); }\n\
                                  process Q { draini(ints); }\n\
                                  process R { send(flags, true); }\n\
                                  process S { drainb(flags); }\n";

#[test]
fn typed_channels_strictly_shrink_candidates_and_preserve_races() {
    // The Issue 6 acceptance bar: on a typed-channel workload the typed
    // candidate index is strictly smaller than the untyped MHP index,
    // while the reported race set stays bit-identical across all
    // detector variants (asserted inside `check`).
    let session =
        PpdSession::prepare(TWO_CLASS_PIPELINE, EBlockStrategy::per_subroutine()).unwrap();
    let mhp_len = session.analyses().mhp_candidates.len();
    let typed_len = session.analyses().typed_candidates.len();
    assert!(
        typed_len < mhp_len,
        "expected typed sync groups to strictly shrink the candidate \
         index, got {typed_len} vs {mhp_len}"
    );
    let (_, _, mhp_pairs, typed_pairs) =
        check("two_class_pipeline", TWO_CLASS_PIPELINE, Vec::new(), None);
    assert!(
        typed_pairs <= mhp_pairs,
        "typed scan examined more pairs than untyped ({typed_pairs} vs {mhp_pairs})"
    );
}

/// Generates a terminating, deadlock-free program: straight-line worker
/// processes doing unsynchronized, mutexed, or printed accesses to three
/// shared variables, with consecutive processes optionally ordered by an
/// init-0 handoff semaphore or an `asend`/`recv` message. Races are
/// allowed — the detectors just have to agree on them.
fn gen_synced_program(bytes: &[u8], nprocs: u32) -> String {
    let mut pos = 0usize;
    let mut next = |d: u8| {
        let b = if bytes.is_empty() { 0 } else { bytes[pos % bytes.len()] };
        pos += 1;
        b % d
    };
    let mut src = String::from("shared int g0;\nshared int g1;\nshared int g2;\nsem mutex = 1;\n");
    // Edge kind per consecutive pair: 0 none, 1 semaphore, 2 message.
    let edges: Vec<u8> = (0..nprocs.saturating_sub(1)).map(|_| next(3)).collect();
    for (p, &kind) in edges.iter().enumerate() {
        if kind == 1 {
            src.push_str(&format!("sem h{p} = 0;\n"));
        }
    }
    for p in 0..nprocs {
        src.push_str(&format!("process P{p} {{\n"));
        if p > 0 {
            match edges[p as usize - 1] {
                1 => src.push_str(&format!("    p(h{});\n", p - 1)),
                2 => src.push_str(&format!("    int m{p};\n    recv(m{p});\n")),
                _ => {}
            }
        }
        for _ in 0..next(4) + 2 {
            let v = next(3);
            match next(3) {
                0 => src.push_str(&format!("    g{v} = g{v} + {};\n", next(5) + 1)),
                1 => src.push_str(&format!("    print(g{v});\n")),
                _ => src.push_str(&format!("    p(mutex);\n    g{v} = g{v} + 1;\n    v(mutex);\n")),
            }
        }
        if (p as usize) < edges.len() {
            match edges[p as usize] {
                1 => src.push_str(&format!("    v(h{p});\n")),
                2 => src.push_str(&format!("    asend(P{}, 7);\n", p + 1)),
                _ => {}
            }
        }
        src.push_str("}\n");
    }
    src
}

/// Generates a well-typed, terminating channel program: `lanes`
/// producer/consumer pairs, each with its own channel randomly carrying
/// `int` or `bool`, drained through shared functions whose `chan`
/// parameters force payload-class aliasing. Lane 0's producer seeds the
/// shared global `g` before sending; consumers read `g` after their
/// receives, so some lanes are provably ordered (same payload class as
/// lane 0 permitting) and the rest stay racy — the detectors just have
/// to agree.
fn gen_typed_chan_program(bytes: &[u8], lanes: u32) -> String {
    let mut pos = 0usize;
    let mut next = |d: u8| {
        let b = if bytes.is_empty() { 0 } else { bytes[pos % bytes.len()] };
        pos += 1;
        b % d
    };
    let mut src = String::from("shared int g;\n");
    let payloads: Vec<bool> = (0..lanes).map(|_| next(2) == 0).collect();
    let counts: Vec<u8> = (0..lanes).map(|_| next(3) + 1).collect();
    for i in 0..lanes as usize {
        src.push_str(&format!("chan ch{i};\n"));
    }
    src.push_str(
        "void drain_int(chan q, int n) {\n    int k;\n    int x;\n    \
         for (k = 0; k < n; k = k + 1) { recv(q, x); print(x + g); }\n}\n\
         void drain_bool(chan q, int n) {\n    int k;\n    int b;\n    \
         for (k = 0; k < n; k = k + 1) { recv(q, b); print(b); print(g); }\n}\n",
    );
    for i in 0..lanes as usize {
        let count = counts[i];
        let blocking = next(2) == 0;
        let op = if blocking { "send" } else { "asend" };
        src.push_str(&format!("process P{i} {{\n    int k;\n"));
        if i == 0 {
            src.push_str(&format!("    g = {};\n", next(9) + 1));
        }
        let value = if payloads[i] { "k + 1" } else { "(k < 2)" };
        src.push_str(&format!(
            "    for (k = 0; k < {count}; k = k + 1) {{ {op}(ch{i}, {value}); }}\n}}\n"
        ));
        let drain = if payloads[i] { "drain_int" } else { "drain_bool" };
        src.push_str(&format!("process C{i} {{ {drain}(ch{i}, {count}); }}\n"));
    }
    src
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// On randomized synchronized programs under random schedules, the
    /// four detectors report the identical race set and the pair
    /// counts shrink monotonically naive ≥ pruned ≥ mhp ≥ typed.
    #[test]
    fn random_programs_mhp_equals_naive(
        bytes in proptest::collection::vec(any::<u8>(), 4..48),
        nprocs in 2u32..5,
        seed in 0u64..1000,
    ) {
        let src = gen_synced_program(&bytes, nprocs);
        check("generated", &src, Vec::new(), Some(seed));
    }

    /// Generated well-typed channel programs pass `ppd check`, execute
    /// to completion with no runtime type mismatch (the machine's
    /// debug assertions fire inside this debug-profile test if typed
    /// replay ever disagrees with the checker), and keep all detector
    /// variants in agreement.
    #[test]
    fn random_typed_programs_run_clean(
        bytes in proptest::collection::vec(any::<u8>(), 4..48),
        lanes in 1u32..4,
        seed in 0u64..1000,
    ) {
        let src = gen_typed_chan_program(&bytes, lanes);
        let rp = ppd::lang::compile(&src).unwrap_or_else(|e| panic!("{e}\n{src}"));
        let tc = ppd::lang::types::check(&rp);
        prop_assert!(tc.is_ok(), "generated program is ill-typed: {:?}\n{src}", tc.errors);
        let session = PpdSession::prepare(&src, EBlockStrategy::per_subroutine()).unwrap();
        let execution = session.execute(RunConfig {
            scheduler: SchedulerSpec::Random { seed },
            ..RunConfig::default()
        });
        prop_assert!(
            execution.outcome.is_success(),
            "well-typed program failed: {:?}\n{src}",
            execution.outcome
        );
        check("generated-typed", &src, Vec::new(), Some(seed));
    }
}

/// The snapshot-trim showcase: every read of `config` in `R` is ordered
/// before the only cross-process write (in `W`, after the `done`
/// handoff), so `R`'s synchronization units need no `config` snapshot.
const HANDOFF: &str = "shared int config;\n\
                       sem go = 0;\n\
                       sem done = 0;\n\
                       process R { p(go); print(config); print(config); v(done); }\n\
                       process W { v(go); p(done); config = 99; print(config); }\n";

/// Prepares and runs `src` with the MHP snapshot trim on or off;
/// returns a total fingerprint of every process's fully expanded
/// dynamic graph plus race reports, and the logged snapshot volume.
fn run_fingerprint(src: &str, trim: bool) -> (String, usize) {
    use std::fmt::Write as _;
    let session = PpdSession::prepare_with(
        src,
        EBlockStrategy::per_subroutine(),
        AnalysisConfig { mhp_snapshot_trim: trim, ..AnalysisConfig::default() },
    )
    .unwrap();
    let execution = session.execute(RunConfig::default());
    assert!(execution.outcome.is_success(), "{:?}", execution.outcome);

    let snapshot_values: usize = (0..session.rp().procs.len())
        .flat_map(|p| &execution.logs.log(ProcId(p as u32)).entries)
        .map(|e| match e {
            LogEntry::SharedSnapshot { values, .. } => values.len(),
            _ => 0,
        })
        .sum();

    let mut out = String::new();
    for p in 0..session.rp().procs.len() {
        let mut controller = Controller::new(&session, &execution);
        controller.start_at(ProcId(p as u32)).unwrap();
        loop {
            let pending = controller.unexpanded();
            let before = controller.graph().len();
            for node in pending {
                let _ = controller.expand(node);
            }
            if controller.graph().len() == before {
                break;
            }
        }
        for n in controller.graph().nodes() {
            let mut preds: Vec<String> = controller
                .graph()
                .dependence_preds(n.id)
                .iter()
                .map(|(q, k)| format!("{}:{k:?}", q.0))
                .collect();
            preds.sort();
            let _ = writeln!(
                out,
                "#{} {:?} {} proc{} seq{} {:?} <- [{}]",
                n.id.0,
                n.kind,
                n.label,
                n.proc.0,
                n.seq,
                n.value,
                preds.join(", ")
            );
        }
        for race in controller.races() {
            let _ = writeln!(out, "race: {}", race.description);
        }
    }
    (out, snapshot_values)
}

#[test]
fn snapshot_trim_is_invisible_to_debugging() {
    let (with_trim, trimmed_values) = run_fingerprint(HANDOFF, true);
    let (without_trim, full_values) = run_fingerprint(HANDOFF, false);
    assert_eq!(with_trim, without_trim, "trim changed a query answer");
    assert!(
        trimmed_values < full_values,
        "trim saved nothing ({trimmed_values} vs {full_values} snapshot values)"
    );
}

#[test]
fn snapshot_trim_is_invisible_on_corpus() {
    for prog in corpus::terminating() {
        // Multi-process programs only: the trim is a no-op elsewhere.
        let rp = ppd::lang::compile(prog.source).unwrap();
        if rp.procs.len() < 2 {
            continue;
        }
        let inputs = inputs_for(prog.name);
        let a = {
            let session = PpdSession::prepare_with(
                prog.source,
                EBlockStrategy::per_subroutine(),
                AnalysisConfig { mhp_snapshot_trim: true, ..AnalysisConfig::default() },
            )
            .unwrap();
            session.execute(RunConfig { inputs: inputs.clone(), ..RunConfig::default() }).output
        };
        let b = {
            let session = PpdSession::prepare_with(
                prog.source,
                EBlockStrategy::per_subroutine(),
                AnalysisConfig { mhp_snapshot_trim: false, ..AnalysisConfig::default() },
            )
            .unwrap();
            session.execute(RunConfig { inputs, ..RunConfig::default() }).output
        };
        assert_eq!(a, b, "{}: trim changed program output", prog.name);
    }
}

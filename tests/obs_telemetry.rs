//! Telemetry-layer tests: OpenMetrics exposition (golden + properties),
//! query-journal JSONL round-trips, and the flight-dump schema — the
//! artifacts behind `--metrics-out`, `--journal` and `--flight-out`.

use ppd::obs::{Exposition, Journal, QueryRecord, Registry};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// OpenMetrics golden
// ---------------------------------------------------------------------

/// A small registry renders to exactly this exposition: families
/// sorted, `_total` on counters, cumulative histogram with power-of-two
/// `le` bounds, approx-quantile gauges, and the `# EOF` terminator.
#[test]
fn openmetrics_golden() {
    let r = Registry::new();
    r.counter("query.count").add(3);
    r.gauge("cache.bytes").set(42);
    let h = r.histogram("query.latency_ns");
    h.record(1);
    h.record(100);
    h.record(1000);
    let expected = "\
# HELP ppd_cache_bytes gauge cache.bytes
# TYPE ppd_cache_bytes gauge
ppd_cache_bytes 42
# HELP ppd_query_count counter query.count
# TYPE ppd_query_count counter
ppd_query_count_total 3
# HELP ppd_query_latency_ns histogram query.latency_ns
# TYPE ppd_query_latency_ns histogram
ppd_query_latency_ns_bucket{le=\"1\"} 1
ppd_query_latency_ns_bucket{le=\"127\"} 2
ppd_query_latency_ns_bucket{le=\"1023\"} 3
ppd_query_latency_ns_bucket{le=\"+Inf\"} 3
ppd_query_latency_ns_sum 1101
ppd_query_latency_ns_count 3
# HELP ppd_query_latency_ns_approx quantile upper bounds (power-of-two) for query.latency_ns
# TYPE ppd_query_latency_ns_approx gauge
ppd_query_latency_ns_approx{quantile=\"0.5\"} 127
ppd_query_latency_ns_approx{quantile=\"0.95\"} 1023
ppd_query_latency_ns_approx{quantile=\"0.99\"} 1023
# EOF
";
    assert_eq!(r.to_openmetrics("ppd"), expected);
}

// ---------------------------------------------------------------------
// OpenMetrics properties
// ---------------------------------------------------------------------

/// Builds an arbitrary-but-valid metric name from fuzz bytes.
fn name_from(bytes: &[u8]) -> String {
    if bytes.is_empty() {
        return "m".into();
    }
    bytes.iter().map(|b| (b'a' + (b % 26)) as char).collect()
}

/// Extracts, in file order, the cumulative histogram bucket counts of
/// one family from a rendered exposition.
fn bucket_counts(text: &str, family: &str) -> Vec<u64> {
    text.lines()
        .filter(|l| l.starts_with(&format!("{family}_bucket{{le=")))
        .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Every exposition is structurally valid: one `# HELP` and one
    /// `# TYPE` line per family (HELP first), every sample line's
    /// metric name begins with the sanitized family name, and the text
    /// ends with the `# EOF` terminator.
    #[test]
    fn exposition_is_structurally_valid(
        names in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..12), 1..6),
        values in proptest::collection::vec(any::<u64>(), 1..6),
    ) {
        let r = Registry::new();
        for (i, n) in names.iter().enumerate() {
            let name = format!("{}.{i}", name_from(n));
            r.counter(&name).add(values[i % values.len()]);
        }
        let text = r.to_openmetrics("ppd");
        prop_assert!(text.ends_with("# EOF\n"));
        let mut last_help: Option<String> = None;
        for line in text.lines() {
            if line == "# EOF" {
                continue;
            }
            if let Some(rest) = line.strip_prefix("# HELP ") {
                last_help = Some(rest.split(' ').next().unwrap().to_owned());
                continue;
            }
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                // TYPE follows HELP for the same family.
                prop_assert_eq!(
                    Some(rest.split(' ').next().unwrap().to_owned()),
                    last_help.clone()
                );
                continue;
            }
            // A sample line: name belongs to the last declared family
            // and is a valid OpenMetrics metric name.
            let metric = line.split([' ', '{']).next().unwrap();
            let family = last_help.clone().unwrap();
            prop_assert!(metric.starts_with(family.as_str()));
            prop_assert!(metric.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'));
            prop_assert!(!metric.starts_with(|c: char| c.is_ascii_digit()));
        }
    }

    /// Histogram bucket series are cumulative: nondecreasing, with the
    /// final `+Inf` bucket equal to the `_count` sample.
    #[test]
    fn histogram_buckets_are_monotone(
        values in proptest::collection::vec(any::<u64>(), 1..40),
    ) {
        let r = Registry::new();
        let h = r.histogram("lat");
        for &v in &values {
            h.record(v);
        }
        let text = r.to_openmetrics("p");
        let buckets = bucket_counts(&text, "p_lat");
        prop_assert!(!buckets.is_empty());
        prop_assert!(buckets.windows(2).all(|w| w[0] <= w[1]));
        prop_assert_eq!(*buckets.last().unwrap(), values.len() as u64);
        let count_line = text.lines().find(|l| l.starts_with("p_lat_count ")).unwrap();
        prop_assert_eq!(count_line, format!("p_lat_count {}", values.len()).as_str());
    }

    /// Label values and help text survive escaping: rendered lines
    /// never contain a raw newline, and escaped quotes/backslashes
    /// keep every label-bearing sample line well-formed.
    #[test]
    fn label_and_help_escaping_is_sound(
        raw in proptest::collection::vec(any::<u8>(), 0..24),
    ) {
        let value: String = raw.iter().map(|&b| b as char).collect();
        let mut exp = Exposition::new("ppd");
        exp.counter("hits", &value, &[("file", value.as_str())], 7);
        let text = exp.render();
        prop_assert!(text.ends_with("# EOF\n"));
        // Escaped newlines never re-split lines: every line is either a
        // comment, the terminator, or a sample of this one family.
        for line in text.lines() {
            prop_assert!(
                line.starts_with("# ") || line.starts_with("ppd_hits_total"),
                "stray line {line:?}"
            );
        }
        // The sample line parses back: value after the final space, one
        // balanced label block with an escaped string inside.
        let sample = text.lines().find(|l| l.starts_with("ppd_hits_total{")).unwrap();
        prop_assert!(sample.ends_with(" 7"));
        let inner = &sample["ppd_hits_total{file=\"".len()..sample.len() - "\"} 7".len()];
        // Unescape and compare against the (control-char-laundered) input.
        let mut unescaped = String::new();
        let mut chars = inner.chars();
        while let Some(c) = chars.next() {
            if c == '\\' {
                match chars.next() {
                    Some('n') => unescaped.push('\n'),
                    Some('\\') => unescaped.push('\\'),
                    Some('"') => unescaped.push('"'),
                    other => prop_assert!(false, "bad escape: {other:?}"),
                }
            } else {
                unescaped.push(c);
            }
        }
        prop_assert_eq!(unescaped, value);
    }
}

// ---------------------------------------------------------------------
// Journal JSONL round-trip
// ---------------------------------------------------------------------

/// The parse-side twin of [`QueryRecord::to_json`] (same shape the CLI
/// uses in `ppd obs report`).
#[derive(serde::Deserialize)]
struct ParsedRecord {
    v: u64,
    kind: String,
    args: String,
    start_ns: u64,
    latency_ns: u64,
    replays: u64,
    trace_events: u64,
    log_entries_scanned: u64,
    cache_hits: u64,
    cache_misses: u64,
    cache_evictions: u64,
    entries_decoded: u64,
    blocks_inflated: u64,
    bytes_read: u64,
}

/// Appended records read back field-for-field — including kinds/args
/// that need JSON escaping — one line per record, all version 1.
#[test]
fn journal_round_trips_through_jsonl() {
    let dir = std::env::temp_dir().join(format!("ppd-journal-rt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("j.jsonl");
    let journal = Journal::create(&path).unwrap();
    let records = vec![
        QueryRecord {
            kind: "flowback".into(),
            args: "node=3 var=1".into(),
            start_ns: 10,
            latency_ns: 250,
            replays: 2,
            trace_events: 40,
            log_entries_scanned: 9,
            cache_hits: 1,
            cache_misses: 2,
            cache_evictions: 0,
            entries_decoded: 12,
            blocks_inflated: 1,
            bytes_read: 4096,
        },
        QueryRecord {
            kind: "weird \"kind\"\nwith newline".into(),
            args: "path=C:\\tmp\\store".into(),
            latency_ns: u64::MAX,
            ..QueryRecord::default()
        },
    ];
    for r in &records {
        journal.append(r);
    }
    assert_eq!(journal.records(), 2);
    let text = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 2);
    for (line, want) in lines.iter().zip(&records) {
        let got: ParsedRecord = serde_json::from_str(line).unwrap();
        assert_eq!(got.v, 1);
        assert_eq!(got.kind, want.kind);
        assert_eq!(got.args, want.args);
        assert_eq!(got.start_ns, want.start_ns);
        assert_eq!(got.latency_ns, want.latency_ns);
        assert_eq!(got.replays, want.replays);
        assert_eq!(got.trace_events, want.trace_events);
        assert_eq!(got.log_entries_scanned, want.log_entries_scanned);
        assert_eq!(got.cache_hits, want.cache_hits);
        assert_eq!(got.cache_misses, want.cache_misses);
        assert_eq!(got.cache_evictions, want.cache_evictions);
        assert_eq!(got.entries_decoded, want.entries_decoded);
        assert_eq!(got.blocks_inflated, want.blocks_inflated);
        assert_eq!(got.bytes_read, want.bytes_read);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Any record — arbitrary bytes in the string fields, arbitrary
    /// u64s in the counters — serializes to exactly one parseable JSON
    /// line that round-trips every field.
    #[test]
    fn any_record_round_trips(
        kind_bytes in proptest::collection::vec(any::<u8>(), 0..32),
        args_bytes in proptest::collection::vec(any::<u8>(), 0..32),
        nums in proptest::collection::vec(any::<u64>(), 11..12),
    ) {
        let rec = QueryRecord {
            kind: kind_bytes.iter().map(|&b| b as char).collect(),
            args: args_bytes.iter().map(|&b| b as char).collect(),
            start_ns: nums[0],
            latency_ns: nums[1],
            replays: nums[2],
            trace_events: nums[3],
            log_entries_scanned: nums[4],
            cache_hits: nums[5],
            cache_misses: nums[6],
            cache_evictions: nums[7],
            entries_decoded: nums[8],
            blocks_inflated: nums[9],
            bytes_read: nums[10],
        };
        let line = rec.to_json();
        prop_assert!(!line.contains('\n'));
        let got: ParsedRecord = serde_json::from_str(&line).unwrap();
        prop_assert_eq!(got.v, 1);
        prop_assert_eq!(got.kind, rec.kind);
        prop_assert_eq!(got.args, rec.args);
        prop_assert_eq!(got.bytes_read, rec.bytes_read);
        prop_assert_eq!(got.latency_ns, rec.latency_ns);
    }
}

// ---------------------------------------------------------------------
// Flight-dump schema
// ---------------------------------------------------------------------

/// Dump shape consumed by `ppd obs flight`.
#[derive(serde::Deserialize)]
struct ParsedDump {
    format: String,
    version: u64,
    recorded: u64,
    dropped: u64,
    events: Vec<ParsedEvent>,
}

/// One dumped flight event.
#[derive(serde::Deserialize)]
struct ParsedEvent {
    seq: u64,
    ts_ns: u64,
    tid: u64,
    cat: String,
    name: String,
    detail: String,
}

/// A wrapped ring dumps valid JSON: schema fields, `recorded - kept ==
/// dropped`, strictly increasing surviving sequence numbers, and only
/// the newest events kept.
#[test]
fn flight_dump_parses_and_keeps_newest() {
    let ring = ppd::obs::FlightRecorder::with_capacity(8);
    for i in 0..20 {
        ring.note_with("test", "event", format!("i={i} \"quoted\""));
    }
    let dump: ParsedDump = serde_json::from_str(&ring.dump_json()).unwrap();
    assert_eq!(dump.format, "ppd-flight");
    assert_eq!(dump.version, 1);
    assert_eq!(dump.recorded, 20);
    assert_eq!(dump.dropped, 12);
    assert_eq!(dump.events.len(), 8);
    assert!(dump.events.windows(2).all(|w| w[0].seq < w[1].seq));
    assert_eq!(dump.events.first().unwrap().seq, 13);
    assert_eq!(dump.events.last().unwrap().seq, 20);
    for (i, e) in dump.events.iter().enumerate() {
        assert_eq!(e.cat, "test");
        assert_eq!(e.name, "event");
        assert_eq!(e.detail, format!("i={} \"quoted\"", i + 12));
        assert!(e.ts_ns > 0);
        assert!(e.tid > 0);
    }
}

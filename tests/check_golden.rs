//! Golden-file tests for `ppd check` — the static type checker CLI.
//!
//! Fixtures under `tests/fixtures/` are deliberately ill-typed, one per
//! error kind plus a five-error program that pins the stable
//! `(file, span, code)` ordering. Run with `PPD_UPDATE_GOLDEN=1` to
//! regenerate after an intentional diagnostic change.

use std::path::Path;
use std::process::Command;

fn run_ppd(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_ppd"))
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("run ppd");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

fn check_golden(name: &str, actual: &str) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(name);
    if std::env::var_os("PPD_UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {}: {e}", path.display()));
    assert_eq!(
        actual, expected,
        "`{name}` drifted from its golden file; \
         re-run with PPD_UPDATE_GOLDEN=1 if the change is intentional"
    );
}

#[test]
fn typ001_mismatch_golden() {
    let (stdout, _, ok) = run_ppd(&["check", "tests/fixtures/typ001_mismatch.ppd"]);
    assert!(!ok, "type errors must fail the check");
    assert!(stdout.contains("error[TYP001]"), "{stdout}");
    check_golden("typ001_mismatch.check.txt", &stdout);
}

#[test]
fn typ002_infinite_type_golden() {
    let (stdout, _, ok) = run_ppd(&["check", "tests/fixtures/typ002_infinite.ppd"]);
    assert!(!ok);
    assert!(stdout.contains("error[TYP002]"), "{stdout}");
    assert!(stdout.contains("infinite type"), "{stdout}");
    check_golden("typ002_infinite.check.txt", &stdout);
}

#[test]
fn typ003_not_scalar_golden() {
    let (stdout, _, ok) = run_ppd(&["check", "tests/fixtures/typ003_not_scalar.ppd"]);
    assert!(!ok);
    assert!(stdout.contains("error[TYP003]"), "{stdout}");
    check_golden("typ003_not_scalar.check.txt", &stdout);
}

#[test]
fn five_errors_stable_order_golden() {
    // The satellite acceptance bar: a deliberately five-error program
    // whose diagnostics come out stable-sorted by (file, span, code)
    // and deduplicated, covering all three error codes.
    let (stdout, _, ok) = run_ppd(&["check", "tests/fixtures/five_errors.ppd"]);
    assert!(!ok);
    assert!(stdout.contains("check: 5 type error(s)"), "{stdout}");
    for code in ["TYP001", "TYP002", "TYP003"] {
        assert!(stdout.contains(code), "missing {code} in:\n{stdout}");
    }
    check_golden("five_errors.check.txt", &stdout);
}

#[derive(serde::Deserialize)]
struct JsonDiag {
    code: String,
    severity: String,
    line: u32,
    col: u32,
}

#[test]
fn five_errors_json_sorted() {
    let (stdout, _, ok) = run_ppd(&["check", "tests/fixtures/five_errors.ppd", "--format", "json"]);
    assert!(!ok);
    check_golden("five_errors.check.json", &stdout);
    let diags: Vec<JsonDiag> = serde_json::from_str(&stdout).expect("json parses");
    assert_eq!(diags.len(), 5);
    let positions: Vec<(u32, u32)> = diags.iter().map(|d| (d.line, d.col)).collect();
    let mut sorted = positions.clone();
    sorted.sort_unstable();
    assert_eq!(positions, sorted, "diagnostics not sorted by source position");
    assert!(diags.iter().all(|d| d.severity == "error"));
    assert!(diags.iter().all(|d| d.code.starts_with("TYP")));
}

#[test]
fn five_errors_sarif_is_valid() {
    let (stdout, _, ok) =
        run_ppd(&["check", "tests/fixtures/five_errors.ppd", "--format", "sarif"]);
    assert!(!ok, "sarif format must preserve the failure exit code");
    check_golden("five_errors.check.sarif", &stdout);
    // Structural sanity: a 2.1.0 doc with one result per diagnostic and
    // rules registered for every emitted code.
    assert!(stdout.contains("\"version\": \"2.1.0\""), "{stdout}");
    assert_eq!(stdout.matches("\"ruleId\"").count(), 5, "{stdout}");
    for code in ["TYP001", "TYP002", "TYP003"] {
        assert!(stdout.contains(&format!("\"id\": \"{code}\"")), "missing rule {code}");
    }
}

#[test]
fn clean_typed_program_summarizes_payloads() {
    let (stdout, _, ok) = run_ppd(&["check", "programs/pipeline.ppd"]);
    assert!(ok, "{stdout}");
    check_golden("pipeline.check.txt", &stdout);
    assert!(stdout.contains("chan raw: carries `int`"), "{stdout}");
    assert!(stdout.contains("chan done: carries `bool`"), "{stdout}");
}

#[test]
fn every_example_program_type_checks() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("programs");
    for entry in std::fs::read_dir(dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "ppd") {
            let (stdout, _, ok) = run_ppd(&["check", path.to_str().unwrap()]);
            assert!(ok, "{} fails ppd check:\n{stdout}", path.display());
        }
    }
}

#[test]
fn lint_is_gated_on_type_check() {
    let (_, stderr, ok) = run_ppd(&["lint", "tests/fixtures/five_errors.ppd"]);
    assert!(!ok, "lint must refuse ill-typed programs");
    assert!(stderr.contains("TYP001"), "{stderr}");
    assert!(stderr.contains("--no-check"), "gate message must name the escape hatch: {stderr}");
}

#[test]
fn no_check_escape_hatch_unlocks_lint() {
    let (stdout, _, _) = run_ppd(&["lint", "tests/fixtures/five_errors.ppd", "--no-check"]);
    assert!(stdout.contains("lint:"), "lint must run under --no-check: {stdout}");
}

#[test]
fn debug_is_gated_on_type_check() {
    let (_, stderr, ok) = run_ppd(&["debug", "tests/fixtures/five_errors.ppd"]);
    assert!(!ok, "debug must refuse ill-typed programs");
    assert!(stderr.contains("type error(s)"), "{stderr}");
}

#[test]
fn unknown_check_format_is_rejected() {
    let (_, stderr, ok) = run_ppd(&["check", "programs/pipeline.ppd", "--format", "yaml"]);
    assert!(!ok);
    assert!(stderr.contains("unknown --format"), "{stderr}");
}

#[test]
fn explain_prints_a_page_for_every_checker_code() {
    for code in ["TYP001", "TYP002", "TYP003"] {
        let (stdout, stderr, ok) = run_ppd(&["check", "--explain", code]);
        assert!(ok, "{code}: {stderr}");
        assert!(stdout.starts_with(&format!("{code}: ")), "{code} page must lead with the code");
    }
}

#[test]
fn explain_rejects_unknown_checker_codes_and_commands() {
    let (_, stderr, ok) = run_ppd(&["check", "--explain", "TYP999"]);
    assert!(!ok);
    assert!(stderr.contains("TYP999"), "{stderr}");
    // Lint codes are not checker codes (and vice versa).
    let (_, _, crossed) = run_ppd(&["check", "--explain", "PPD001"]);
    assert!(!crossed, "PPD codes belong to `ppd lint`");
    // Commands without diagnostic codes reject the flag outright.
    let (_, stderr, ok) = run_ppd(&["races", "--explain", "PPD001"]);
    assert!(!ok);
    assert!(stderr.contains("--explain"), "{stderr}");
}

//! Determinism suite for the parallel debugging backend.
//!
//! Every parallel path — work-stealing e-block replay, the sharded
//! race scan, parallel log decode and index construction — must be
//! bit-identical to its sequential twin: same race sets, same flowback
//! slices, same dynamic-graph fingerprints, at jobs ∈ {1, 2, 8}, over
//! the corpus, the `programs/` directory, and randomized schedules.
//! Plus a thread-stress test of the sharded trace cache's global byte
//! budget (never exceeded, no lost insertions, coherent counters).

use ppd::analysis::EBlockStrategy;
use ppd::core::{Controller, PpdSession, RunConfig, ShardedTraceCache};
use ppd::graph::{
    detect_races_indexed, detect_races_mhp, detect_races_naive, detect_races_par, VectorClocks,
};
use ppd::lang::{corpus, ProcId};
use ppd::log::{IntervalIndex, LogStore};
use ppd::runtime::SchedulerSpec;
use proptest::prelude::*;
use std::sync::Arc;

const JOB_COUNTS: [usize; 3] = [1, 2, 8];

/// The corpus + `programs/` workload sweep.
fn workloads() -> Vec<(String, PpdSession, RunConfig)> {
    let mut out = Vec::new();
    let corpus_set: Vec<(&str, &str, Vec<Vec<i64>>)> = vec![
        ("flowback_demo", corpus::FLOWBACK_DEMO.source, vec![vec![42, 10]]),
        ("producer_consumer", corpus::PRODUCER_CONSUMER.source, vec![]),
        ("fig41", corpus::FIG_4_1.source, vec![vec![5, 3, 2]]),
        ("fig61", corpus::FIG_6_1.source, vec![]),
        ("quicksort", corpus::QUICKSORT.source, vec![]),
    ];
    for (name, source, inputs) in corpus_set {
        let session = PpdSession::prepare(source, EBlockStrategy::per_subroutine())
            .expect("corpus program compiles");
        out.push((name.to_owned(), session, RunConfig { inputs, ..RunConfig::default() }));
    }
    for entry in std::fs::read_dir(concat!(env!("CARGO_MANIFEST_DIR"), "/programs"))
        .expect("programs/ exists")
    {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("ppd") {
            continue;
        }
        let name = path.file_stem().unwrap().to_string_lossy().into_owned();
        let source = std::fs::read_to_string(&path).expect("program reads");
        let session = PpdSession::prepare(&source, EBlockStrategy::per_subroutine())
            .expect("programs/ compiles");
        // overdraw.ppd reads one input (the CLI demos pass `--inputs 95`);
        // bounds.ppd's sampler probes one input (3 stays in bounds, so
        // the run completes and every interval replays cleanly).
        let inputs = match name.as_str() {
            "overdraw" => vec![vec![95]],
            "bounds" => vec![vec![3]],
            _ => vec![],
        };
        out.push((name, session, RunConfig { inputs, ..RunConfig::default() }));
    }
    out
}

/// A total, order-stable description of the dynamic graph.
fn fingerprint(controller: &Controller<'_>) -> String {
    use std::fmt::Write as _;
    let graph = controller.graph();
    let mut out = String::new();
    for n in graph.nodes() {
        let mut preds: Vec<String> =
            graph.dependence_preds(n.id).iter().map(|(p, k)| format!("{}:{k:?}", p.0)).collect();
        preds.sort();
        let _ = writeln!(
            out,
            "#{} {:?} {} proc{} seq{} {:?} <- [{}]",
            n.id.0,
            n.kind,
            n.label,
            n.proc.0,
            n.seq,
            n.value,
            preds.join(", ")
        );
    }
    out
}

/// Expands every expandable node until none remain.
fn expand_all(controller: &mut Controller<'_>) {
    loop {
        let pending = controller.unexpanded();
        let before = controller.graph().len();
        for node in pending {
            let _ = controller.expand(node);
        }
        if controller.graph().len() == before {
            break;
        }
    }
}

/// Full debug transcript at a given thread count: parallel prefetch of
/// every interval, then start + expand everything + flowback + slices
/// + races — all the answers a user could compare across jobs values.
fn transcript(session: &PpdSession, execution: &ppd::core::Execution, jobs: usize) -> Vec<String> {
    let mut c = Controller::new(session, execution);
    c.set_jobs(jobs);
    let prefetched = c.prefetch_all().expect("prefetch succeeds");
    assert!(prefetched > 0, "every workload logs at least one interval");
    let mut out = Vec::new();
    match c.start() {
        Ok(root) => {
            expand_all(&mut c);
            out.push(fingerprint(&c));
            out.push(format!("flowback: {:?}", c.flowback(root)));
            out.push(format!("slice: {:?}", c.backward_slice(root)));
        }
        Err(e) => out.push(format!("start failed: {e}")),
    }
    let races: Vec<String> = c.races().into_iter().map(|r| r.description).collect();
    out.push(format!("races: {races:?}"));
    out
}

#[test]
fn parallel_backend_is_bit_identical_across_corpus_and_programs() {
    for (name, session, config) in workloads() {
        let execution = session.execute(config);
        let baseline = transcript(&session, &execution, 1);
        for jobs in [2, 8] {
            let par = transcript(&session, &execution, jobs);
            assert_eq!(baseline, par, "{name}: jobs=1 vs jobs={jobs} diverged");
        }
    }
}

#[test]
fn parallel_race_scan_matches_every_sequential_detector() {
    for (name, session, config) in workloads() {
        let execution = session.execute(config);
        let g = &execution.pgraph;
        let ord = VectorClocks::compute(g);
        let naive = {
            let mut r = detect_races_naive(g, &ord);
            r.sort();
            r.dedup();
            r
        };
        let indexed = detect_races_indexed(g, &ord);
        let mhp = detect_races_mhp(g, &ord, &session.analyses().mhp_candidates);
        assert_eq!(indexed, mhp, "{name}: MHP pruning changed the race set");
        for jobs in JOB_COUNTS {
            let par = detect_races_par(g, &ord, None, jobs);
            assert_eq!(par, indexed, "{name}: unpruned par scan diverged at jobs={jobs}");
            assert_eq!(par, naive, "{name}: par scan disagrees with naive at jobs={jobs}");
            let par_pruned =
                detect_races_par(g, &ord, Some(&session.analyses().mhp_candidates), jobs);
            assert_eq!(par_pruned, mhp, "{name}: pruned par scan diverged at jobs={jobs}");
        }
    }
}

#[test]
fn parallel_log_decode_and_index_match_sequential() {
    for (name, session, config) in workloads() {
        let execution = session.execute(config);
        let bytes = execution.logs.to_binary();
        let seq = LogStore::from_binary(&bytes).expect("sequential decode");
        for jobs in JOB_COUNTS {
            let par = LogStore::from_binary_par(&bytes, jobs).expect("parallel decode");
            assert_eq!(par.process_count(), seq.process_count(), "{name}");
            for p in 0..seq.process_count() {
                let pid = ProcId(p as u32);
                assert_eq!(par.log(pid).entries, seq.log(pid).entries, "{name} proc {p}");
            }
            assert_eq!(par.to_binary(), bytes, "{name}: parallel decode round-trip");
            // Index construction sharded by process = single-pass build.
            let built = IntervalIndex::build(&seq);
            let built_par = IntervalIndex::build_par(&par, jobs);
            for p in 0..seq.process_count() {
                let pid = ProcId(p as u32);
                assert_eq!(
                    built_par.intervals(pid),
                    built.intervals(pid),
                    "{name}: index intervals diverged for proc {p} at jobs={jobs}"
                );
                assert_eq!(
                    built_par.open_intervals(pid),
                    built.open_intervals(pid),
                    "{name}: open intervals diverged for proc {p} at jobs={jobs}"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Randomized schedules (proptest)
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Under proptest-randomized schedules, every answer the debugger
    /// gives is independent of the worker-thread count.
    #[test]
    fn randomized_schedules_are_jobs_invariant(
        choice in any::<u8>(),
        seed in 0u64..10_000,
    ) {
        let (source, inputs): (&str, Vec<Vec<i64>>) = match choice % 4 {
            0 => (corpus::PRODUCER_CONSUMER.source, vec![]),
            1 => (corpus::FIG_6_1.source, vec![]),
            2 => (corpus::FLOWBACK_DEMO.source, vec![vec![42, 10]]),
            _ => (corpus::QUICKSORT.source, vec![]),
        };
        let session = PpdSession::prepare(source, EBlockStrategy::per_subroutine())
            .expect("corpus program compiles");
        let execution = session.execute(RunConfig {
            scheduler: SchedulerSpec::Random { seed },
            inputs,
            ..RunConfig::default()
        });
        let baseline = transcript(&session, &execution, 1);
        for jobs in [2usize, 8] {
            let par = transcript(&session, &execution, jobs);
            prop_assert_eq!(&baseline, &par, "jobs={} diverged under seed {}", jobs, seed);
        }
    }
}

// ---------------------------------------------------------------------
// Sharded-cache stress (the loom-or-proptest satellite, via threads)
// ---------------------------------------------------------------------

/// Hammers one cache from many threads while a sampler thread checks
/// the global-budget invariant *concurrently* — the gauge is raised
/// only by CAS reservation, so `bytes() <= budget()` must hold at every
/// instant, not just at quiescence.
#[test]
fn sharded_cache_stress_budget_and_counters() {
    use ppd::analysis::EBlockId;
    use std::sync::atomic::{AtomicUsize, Ordering};

    const THREADS: usize = 8;
    const KEYS_PER_THREAD: u64 = 200;
    const ENTRY_BYTES: usize = 64;
    // Room for ~24 entries: far fewer than the 1600 inserted, so the
    // budget is under constant eviction pressure.
    const BUDGET: usize = ENTRY_BYTES * 24;

    let cache = Arc::new(ShardedTraceCache::new(BUDGET));
    let events: Arc<Vec<ppd::runtime::TraceEvent>> = Arc::new(Vec::new());
    let done = Arc::new(AtomicUsize::new(0));
    let violations = Arc::new(AtomicUsize::new(0));
    let lost = Arc::new(AtomicUsize::new(0));

    std::thread::scope(|scope| {
        // The concurrent invariant sampler: runs until every writer is
        // finished, checking the gauge between their operations.
        {
            let cache = Arc::clone(&cache);
            let done = Arc::clone(&done);
            let violations = Arc::clone(&violations);
            scope.spawn(move || {
                while done.load(Ordering::Relaxed) < THREADS {
                    if cache.bytes() > cache.budget() {
                        violations.fetch_add(1, Ordering::Relaxed);
                    }
                    std::thread::yield_now();
                }
            });
        }
        for t in 0..THREADS {
            let cache = Arc::clone(&cache);
            let events = Arc::clone(&events);
            let done = Arc::clone(&done);
            let violations = Arc::clone(&violations);
            let lost = Arc::clone(&lost);
            scope.spawn(move || {
                for i in 0..KEYS_PER_THREAD {
                    // Half the key space is shared across threads, so
                    // racing duplicate inserts happen; half is private.
                    let key = if i % 2 == 0 {
                        (ProcId(0), EBlockId((i % 16) as u32), i % 8)
                    } else {
                        (ProcId(t as u32 + 1), EBlockId(i as u32), i)
                    };
                    let _ = cache.get(&key);
                    if !cache.insert(key, Arc::clone(&events), ENTRY_BYTES) {
                        // Within-budget inserts on an enabled cache
                        // must never be dropped.
                        lost.fetch_add(1, Ordering::Relaxed);
                    }
                    if cache.bytes() > cache.budget() {
                        violations.fetch_add(1, Ordering::Relaxed);
                    }
                    // The just-inserted key may already be evicted by a
                    // sibling — but a get must never error or wedge.
                    let _ = cache.get(&key);
                }
                done.fetch_add(1, Ordering::Relaxed);
            });
        }
    });

    assert_eq!(violations.load(Ordering::SeqCst), 0, "budget exceeded mid-run");
    assert_eq!(lost.load(Ordering::SeqCst), 0, "a within-budget insert was dropped");

    let stats = cache.stats();
    // Gauge coherence at quiescence: the atomic byte gauge equals the
    // sum of what the shards actually hold, and the entry count implied
    // by the uniform entry size matches.
    assert_eq!(stats.bytes, cache.len() * ENTRY_BYTES, "byte gauge out of sync with shards");
    assert!(stats.bytes <= BUDGET);
    assert!(cache.len() <= BUDGET / ENTRY_BYTES);
    assert!(stats.evictions > 0, "budget pressure must evict");
    // Every insert beyond capacity evicted exactly one entry.
    let inserted_new = stats.evictions as usize + cache.len();
    assert!(
        inserted_new <= (THREADS as u64 * KEYS_PER_THREAD) as usize,
        "more evictions+residents than inserts"
    );
    assert_eq!(stats.shard_hits.len(), ppd::core::SHARD_COUNT);
    assert_eq!(stats.shard_misses.len(), ppd::core::SHARD_COUNT);
}

/// Budget shrink under load: `set_budget` must evict down and the new
/// ceiling must hold for subsequent inserts.
#[test]
fn sharded_cache_budget_shrink_holds() {
    use ppd::analysis::EBlockId;
    let cache = ShardedTraceCache::new(4096);
    let events: Arc<Vec<ppd::runtime::TraceEvent>> = Arc::new(Vec::new());
    for i in 0..40u64 {
        assert!(cache.insert((ProcId(0), EBlockId(i as u32), i), Arc::clone(&events), 100));
    }
    assert!(cache.bytes() <= 4096);
    cache.set_budget(500);
    assert!(cache.bytes() <= 500, "shrink evicts down to the new budget");
    assert!(cache.insert((ProcId(9), EBlockId(0), 0), Arc::clone(&events), 100));
    assert!(cache.bytes() <= 500);
    // An entry larger than the whole budget is refused, like the
    // sequential LRU it replaced.
    assert!(!cache.insert((ProcId(9), EBlockId(1), 0), Arc::clone(&events), 501));
}

//! Interval soundness: the abstract interpreter over-approximates every
//! concrete execution. For every corpus program, every example program,
//! and randomized well-typed programs under randomized schedules, each
//! concretely observed fact must lie inside its inferred interval:
//!
//! - a written value inside `value_after` of the written variable (for
//!   arrays and shared variables, the flow-insensitive invariant);
//! - a written array index inside the statement's `write_region`;
//! - a read array index inside the statement's `access_region`;
//! - an evaluated branch condition inside the recorded condition range.
//!
//! This is the property the race-pruning chain leans on: if any
//! concrete index or value could escape its interval, disjoint-region
//! pruning (`detect_races_absint`) could drop a real race.

use ppd::analysis::EBlockStrategy;
use ppd::core::PpdSession;
use ppd::lang::corpus;
use ppd::runtime::{EventKind, ExecConfig, Machine, ReadSource, SchedulerSpec, VecTracer};
use proptest::prelude::*;

/// Executes `source` concretely and checks every trace event against
/// the abstract interpretation. Returns the number of facts checked.
fn check_soundness(name: &str, source: &str, inputs: Vec<Vec<i64>>, seed: Option<u64>) -> usize {
    let session = PpdSession::prepare(source, EBlockStrategy::per_subroutine())
        .unwrap_or_else(|e| panic!("{name}: {e}"));
    let rp = session.rp();
    let absint = &session.analyses().absint;
    let mut cfg = ExecConfig { inputs, ..ExecConfig::default() };
    if let Some(seed) = seed {
        cfg.scheduler = SchedulerSpec::Random { seed };
    }
    let mut tracer = VecTracer::default();
    let _result = Machine::new(rp, session.analyses(), None, cfg).run(&mut tracer);
    let mut checked = 0;
    for e in &tracer.events {
        if let Some((cell, value)) = e.write {
            let iv = absint.value_after(rp, e.stmt, cell.var);
            assert!(
                iv.contains(value),
                "{name}: stmt {:?}: value {value} written to `{}` escapes {iv}",
                e.stmt,
                rp.var_name(cell.var)
            );
            checked += 1;
            if let Some(i) = cell.index {
                let region = absint.write_region(cell.var, e.stmt);
                assert!(
                    region.contains(i as i64),
                    "{name}: stmt {:?}: write index {i} of `{}` escapes {region}",
                    e.stmt,
                    rp.var_name(cell.var)
                );
                checked += 1;
            }
        }
        for r in &e.reads {
            if let ReadSource::Cell(cell) = r {
                if let Some(i) = cell.index {
                    let region = absint.access_region(cell.var, e.stmt);
                    assert!(
                        region.contains(i as i64),
                        "{name}: stmt {:?}: read index {i} of `{}` escapes {region}",
                        e.stmt,
                        rp.var_name(cell.var)
                    );
                    checked += 1;
                }
            }
        }
        if let EventKind::Predicate { taken } = e.kind {
            if let Some(iv) = absint.condition(e.stmt) {
                assert!(
                    iv.contains(taken as i64),
                    "{name}: stmt {:?}: condition evaluated {taken} outside {iv}",
                    e.stmt
                );
                checked += 1;
            }
        }
    }
    checked
}

fn inputs_for(name: &str) -> Vec<Vec<i64>> {
    match name {
        "fig41" => vec![vec![5, 3, 2]],
        "flowback_demo" => vec![vec![42, 10]],
        "overdraw.ppd" => vec![vec![50]],
        "bounds.ppd" => vec![vec![8]],
        _ => Vec::new(),
    }
}

#[test]
fn corpus_is_interval_sound() {
    let mut checked = 0;
    for prog in corpus::terminating() {
        checked += check_soundness(prog.name, prog.source, inputs_for(prog.name), None);
        for seed in 0..3 {
            check_soundness(prog.name, prog.source, inputs_for(prog.name), Some(seed));
        }
    }
    assert!(checked > 0, "the corpus produced no checkable facts");
}

#[test]
fn example_programs_are_interval_sound() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("programs");
    let mut indexed_facts = 0;
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("ppd") {
            continue;
        }
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let source = std::fs::read_to_string(&path).unwrap();
        for seed in [None, Some(1), Some(7)] {
            indexed_facts += check_soundness(&name, &source, inputs_for(&name), seed);
        }
    }
    assert!(indexed_facts > 0, "no example program produced checkable facts");
}

#[test]
fn corpus_generators_are_interval_sound() {
    let generated = [
        ("loop_heavy", corpus::gen_loop_heavy(9)),
        ("deep_calls", corpus::gen_deep_calls(5)),
        ("racy_workers", corpus::gen_racy_workers(3, 4)),
        ("prodcons", corpus::gen_prodcons(6)),
        ("bank", corpus::gen_bank(5)),
        ("token_ring", corpus::gen_token_ring(3)),
        ("quicksort", corpus::gen_quicksort(12)),
    ];
    for (name, source) in &generated {
        for seed in [None, Some(2), Some(5)] {
            check_soundness(name, source, Vec::new(), seed);
        }
    }
}

/// A byte-driven well-typed program generator aimed at the interval
/// domain: constants, bounded loops, refined branches, array sweeps
/// with data-dependent offsets, and unknown inputs.
fn gen_interval_program(bytes: &[u8], nprocs: u32) -> String {
    let mut pos = 0usize;
    let mut next = |d: u8| -> i64 {
        let b = if bytes.is_empty() { 0 } else { bytes[pos % bytes.len()] };
        pos += 1;
        (b % d) as i64
    };
    let len = next(6) + 3; // 3..=8 elements
    let mut src = format!("shared int a[{len}];\nshared int g;\n");
    for p in 0..nprocs {
        let lo = next(3);
        let hi = (lo + 1 + next(5)).min(len); // in-bounds sweep
        let c1 = next(9) + 1;
        let c2 = next(30);
        let c3 = next(7) + 1;
        let div = next(4) + 1;
        src.push_str(&format!(
            "process P{p} {{\n\
             \x20   int x = {c1};\n\
             \x20   int u = input();\n\
             \x20   int i;\n\
             \x20   for (i = {lo}; i < {hi}; i = i + 1) {{\n\
             \x20       x = x + {c1};\n\
             \x20       if (x > {c2}) {{ x = x - {c3}; }} else {{ g = g + 1; }}\n\
             \x20       a[i] = x + u / {div};\n\
             \x20       g = g + a[i];\n\
             \x20   }}\n\
             \x20   if (u > 0) {{ x = u; }}\n\
             \x20   print(x);\n\
             }}\n"
        ));
    }
    src
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Random interval-shaped programs under random schedules and
    /// random inputs: the abstract interpretation stays sound.
    #[test]
    fn random_programs_are_interval_sound(
        bytes in proptest::collection::vec(any::<u8>(), 4..40),
        nprocs in 1u32..4,
        seed in 0u64..64,
        input in -100i64..100,
    ) {
        let src = gen_interval_program(&bytes, nprocs);
        let inputs = (0..nprocs).map(|_| vec![input]).collect();
        check_soundness("generated", &src, inputs, Some(seed));
    }
}

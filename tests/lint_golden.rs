//! Golden-file tests for `ppd lint` output.
//!
//! Each example program's human-readable and JSON lint output is pinned
//! under `tests/golden/`. Run with `PPD_UPDATE_GOLDEN=1` to regenerate
//! after an intentional diagnostic change.

use std::path::Path;
use std::process::Command;

fn run_ppd(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_ppd"))
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("run ppd");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

fn check_golden(name: &str, actual: &str) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(name);
    if std::env::var_os("PPD_UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {}: {e}", path.display()));
    assert_eq!(
        actual, expected,
        "`{name}` drifted from its golden file; \
         re-run with PPD_UPDATE_GOLDEN=1 if the change is intentional"
    );
}

#[test]
fn bank_lint_human() {
    let (stdout, stderr, ok) = run_ppd(&["lint", "programs/bank.ppd"]);
    assert!(ok, "warnings alone must not fail the lint: {stderr}");
    check_golden("bank.lint.txt", &stdout);
}

#[test]
fn bank_lint_deny_fails() {
    let (_, _, ok) = run_ppd(&["lint", "programs/bank.ppd", "--deny"]);
    assert!(!ok, "--deny must fail on warnings");
}

#[test]
fn overdraw_lint_human() {
    let (stdout, _, ok) = run_ppd(&["lint", "programs/overdraw.ppd"]);
    assert!(ok);
    // The acceptance bar: at least one coded static race candidate with
    // an accurate span.
    assert!(stdout.contains("warning[PPD001]"), "{stdout}");
    assert!(stdout.contains("--> programs/overdraw.ppd:13:5"), "{stdout}");
    check_golden("overdraw.lint.txt", &stdout);
}

#[test]
fn overdraw_lint_json() {
    let (stdout, _, ok) = run_ppd(&["lint", "programs/overdraw.ppd", "--format", "json"]);
    assert!(ok);
    check_golden("overdraw.lint.json", &stdout);
}

#[test]
fn phils_lint_human() {
    let (stdout, _, ok) = run_ppd(&["lint", "programs/phils.ppd"]);
    assert!(ok);
    check_golden("phils.lint.txt", &stdout);
}

#[test]
fn lintdemo_exercises_every_pass() {
    let (stdout, _, ok) = run_ppd(&["lint", "programs/lintdemo.ppd"]);
    assert!(!ok, "PPD004 is an error and must fail the lint");
    for code in ["PPD001", "PPD002", "PPD003", "PPD004"] {
        assert!(stdout.contains(code), "missing {code} in:\n{stdout}");
    }
    check_golden("lintdemo.lint.txt", &stdout);
}

#[test]
fn lintdemo_json_parses_back() {
    let (stdout, _, _) = run_ppd(&["lint", "programs/lintdemo.ppd", "--format", "json"]);
    check_golden("lintdemo.lint.json", &stdout);
    // Structural sanity without relying on a JSON parser dev-dependency:
    // one object per diagnostic, each with the required keys.
    assert_eq!(stdout.matches("\"code\"").count(), 7, "{stdout}");
    assert_eq!(stdout.matches("\"severity\"").count(), 7);
    assert_eq!(stdout.matches("\"error\"").count(), 1);
}

#[test]
fn unknown_format_is_rejected() {
    let (_, stderr, ok) = run_ppd(&["lint", "programs/bank.ppd", "--format", "yaml"]);
    assert!(!ok);
    assert!(stderr.contains("unknown --format"), "{stderr}");
}

#[test]
fn compile_errors_carry_an_excerpt() {
    let dir = std::env::temp_dir().join("ppd_lint_golden_bad.ppd");
    std::fs::write(&dir, "process Broken { int x = ; }").unwrap();
    let (_, stderr, ok) = run_ppd(&["lint", dir.to_str().unwrap()]);
    assert!(!ok);
    assert!(stderr.contains("compile error:"), "{stderr}");
    assert!(stderr.contains("int x = ;"), "excerpt missing: {stderr}");
    assert!(stderr.contains('^'), "caret missing: {stderr}");
    let _ = std::fs::remove_file(&dir);
}

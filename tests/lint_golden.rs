//! Golden-file tests for `ppd lint` output.
//!
//! Each example program's human-readable and JSON lint output is pinned
//! under `tests/golden/`. Run with `PPD_UPDATE_GOLDEN=1` to regenerate
//! after an intentional diagnostic change.

use std::path::Path;
use std::process::Command;

fn run_ppd(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_ppd"))
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("run ppd");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

fn check_golden(name: &str, actual: &str) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(name);
    if std::env::var_os("PPD_UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {}: {e}", path.display()));
    assert_eq!(
        actual, expected,
        "`{name}` drifted from its golden file; \
         re-run with PPD_UPDATE_GOLDEN=1 if the change is intentional"
    );
}

#[test]
fn bank_lint_human() {
    let (stdout, stderr, ok) = run_ppd(&["lint", "programs/bank.ppd"]);
    assert!(ok, "warnings alone must not fail the lint: {stderr}");
    check_golden("bank.lint.txt", &stdout);
}

#[test]
fn bank_lint_deny_fails() {
    let (_, _, ok) = run_ppd(&["lint", "programs/bank.ppd", "--deny"]);
    assert!(!ok, "--deny must fail on warnings");
}

#[test]
fn overdraw_lint_human() {
    let (stdout, _, ok) = run_ppd(&["lint", "programs/overdraw.ppd"]);
    assert!(ok);
    // The acceptance bar: at least one coded static race candidate with
    // an accurate span.
    assert!(stdout.contains("warning[PPD001]"), "{stdout}");
    assert!(stdout.contains("--> programs/overdraw.ppd:13:5"), "{stdout}");
    check_golden("overdraw.lint.txt", &stdout);
}

#[test]
fn overdraw_lint_json() {
    let (stdout, _, ok) = run_ppd(&["lint", "programs/overdraw.ppd", "--format", "json"]);
    assert!(ok);
    check_golden("overdraw.lint.json", &stdout);
}

#[test]
fn phils_lint_human() {
    let (stdout, _, ok) = run_ppd(&["lint", "programs/phils.ppd"]);
    assert!(ok);
    check_golden("phils.lint.txt", &stdout);
}

#[test]
fn deadlock_lint_human() {
    // The cross-mailbox wait cycle: PPD008 with the opposing wait as a
    // related location, on a program with no shared-memory diagnostics.
    let (stdout, _, ok) = run_ppd(&["lint", "programs/deadlock.ppd"]);
    assert!(ok, "PPD008 is a warning and must not fail without --deny");
    assert!(stdout.contains("warning[PPD008]"), "{stdout}");
    assert!(stdout.contains("the opposing wait"), "{stdout}");
    check_golden("deadlock.lint.txt", &stdout);
}

#[test]
fn deadlock_lint_json() {
    let (stdout, _, _) = run_ppd(&["lint", "programs/deadlock.ppd", "--format", "json"]);
    check_golden("deadlock.lint.json", &stdout);
}

#[test]
fn deadlock_lint_sarif() {
    let (stdout, _, _) = run_ppd(&["lint", "programs/deadlock.ppd", "--format", "sarif"]);
    assert!(stdout.contains("PPD008"), "{stdout}");
    check_golden("deadlock.lint.sarif", &stdout);
}

#[test]
fn bounds_lint_human() {
    // The off-by-one flush: PPD009 pins the refined index range and the
    // declaration site.
    let (stdout, _, ok) = run_ppd(&["lint", "programs/bounds.ppd"]);
    assert!(ok);
    assert!(stdout.contains("warning[PPD009]"), "{stdout}");
    assert!(stdout.contains("hist[8]"), "{stdout}");
    check_golden("bounds.lint.txt", &stdout);
}

#[test]
fn bounds_lint_json() {
    let (stdout, _, _) = run_ppd(&["lint", "programs/bounds.ppd", "--format", "json"]);
    check_golden("bounds.lint.json", &stdout);
}

#[test]
fn constcond_lint_human() {
    // All three PPD010 shapes: dead else, dead loop body, redundant test.
    let (stdout, _, ok) = run_ppd(&["lint", "tests/fixtures/constcond.ppd"]);
    assert!(ok);
    assert!(stdout.contains("always true"), "{stdout}");
    assert!(stdout.contains("always false"), "{stdout}");
    check_golden("constcond.lint.txt", &stdout);
}

#[test]
fn constcond_lint_json() {
    let (stdout, _, _) = run_ppd(&["lint", "tests/fixtures/constcond.ppd", "--format", "json"]);
    assert_eq!(stdout.matches("\"code\": \"PPD010\"").count(), 3, "{stdout}");
    check_golden("constcond.lint.json", &stdout);
}

#[test]
fn constcond_lint_sarif() {
    let (stdout, _, _) = run_ppd(&["lint", "tests/fixtures/constcond.ppd", "--format", "sarif"]);
    check_golden("constcond.lint.sarif", &stdout);
}

#[test]
fn explain_prints_a_page_for_every_lint_code() {
    for code in [
        "PPD001", "PPD002", "PPD003", "PPD004", "PPD005", "PPD006", "PPD007", "PPD008", "PPD009",
        "PPD010",
    ] {
        let (stdout, stderr, ok) = run_ppd(&["lint", "--explain", code]);
        assert!(ok, "{code}: {stderr}");
        assert!(stdout.starts_with(&format!("{code}: ")), "{code} page must lead with the code");
    }
}

#[test]
fn explain_rejects_unknown_codes() {
    let (_, stderr, ok) = run_ppd(&["lint", "--explain", "PPD999"]);
    assert!(!ok);
    assert!(stderr.contains("PPD999"), "{stderr}");
    assert!(stderr.contains("known:"), "the error must list the known codes: {stderr}");
}

#[test]
fn lintdemo_exercises_every_pass() {
    let (stdout, _, ok) = run_ppd(&["lint", "programs/lintdemo.ppd"]);
    assert!(!ok, "PPD004 is an error and must fail the lint");
    for code in ["PPD001", "PPD002", "PPD003", "PPD004", "PPD005"] {
        assert!(stdout.contains(code), "missing {code} in:\n{stdout}");
    }
    check_golden("lintdemo.lint.txt", &stdout);
}

#[test]
fn lintdemo_json_parses_back() {
    let (stdout, _, _) = run_ppd(&["lint", "programs/lintdemo.ppd", "--format", "json"]);
    check_golden("lintdemo.lint.json", &stdout);
    // Structural sanity without relying on a JSON parser dev-dependency:
    // one object per diagnostic, each with the required keys.
    assert_eq!(stdout.matches("\"code\"").count(), 8, "{stdout}");
    assert_eq!(stdout.matches("\"severity\"").count(), 8);
    assert_eq!(stdout.matches("\"error\"").count(), 1);
}

#[test]
fn lintdemo_sarif_golden() {
    let (stdout, _, _) = run_ppd(&["lint", "programs/lintdemo.ppd", "--format", "sarif"]);
    check_golden("lintdemo.lint.sarif", &stdout);
}

/// SARIF shape mirrored just far enough to compare against the JSON
/// formatter (the vendored deserializer ignores unknown keys).
mod sarif_shape {
    #[derive(serde::Deserialize)]
    pub struct Doc {
        pub version: String,
        pub runs: Vec<Run>,
    }
    #[derive(serde::Deserialize)]
    pub struct Run {
        pub results: Vec<SarifResult>,
    }
    #[allow(non_snake_case)]
    #[derive(serde::Deserialize)]
    pub struct SarifResult {
        pub ruleId: String,
        pub level: String,
        pub message: Message,
        pub locations: Vec<Location>,
    }
    #[derive(serde::Deserialize)]
    pub struct Message {
        pub text: String,
    }
    #[allow(non_snake_case)]
    #[derive(serde::Deserialize)]
    pub struct Location {
        pub physicalLocation: PhysicalLocation,
    }
    #[allow(non_snake_case)]
    #[derive(serde::Deserialize)]
    pub struct PhysicalLocation {
        pub artifactLocation: ArtifactLocation,
        pub region: Region,
    }
    #[derive(serde::Deserialize)]
    pub struct ArtifactLocation {
        pub uri: String,
    }
    #[allow(non_snake_case)]
    #[derive(serde::Deserialize)]
    pub struct Region {
        pub startLine: u32,
        pub startColumn: u32,
    }
}

#[derive(serde::Deserialize)]
struct JsonDiag {
    code: String,
    severity: String,
    message: String,
    file: String,
    line: u32,
    col: u32,
}

#[test]
fn sarif_round_trips_against_json_formatter() {
    // Both formatters must describe the identical diagnostics: same
    // codes, levels, messages and primary locations, in the same order.
    let (json_out, _, _) = run_ppd(&["lint", "programs/lintdemo.ppd", "--format", "json"]);
    let (sarif_out, _, _) = run_ppd(&["lint", "programs/lintdemo.ppd", "--format", "sarif"]);
    let json: Vec<JsonDiag> = serde_json::from_str(&json_out).expect("json parses");
    let sarif: sarif_shape::Doc = serde_json::from_str(&sarif_out).expect("sarif parses");
    assert_eq!(sarif.version, "2.1.0");
    let results = &sarif.runs[0].results;
    assert_eq!(results.len(), json.len());
    for (r, d) in results.iter().zip(&json) {
        assert_eq!(r.ruleId, d.code);
        assert_eq!(r.level, d.severity);
        assert_eq!(r.message.text, d.message);
        let loc = &r.locations[0].physicalLocation;
        assert_eq!(loc.artifactLocation.uri, d.file);
        assert_eq!(loc.region.startLine, d.line);
        assert_eq!(loc.region.startColumn, d.col);
    }
}

#[test]
fn unknown_format_is_rejected() {
    let (_, stderr, ok) = run_ppd(&["lint", "programs/bank.ppd", "--format", "yaml"]);
    assert!(!ok);
    assert!(stderr.contains("unknown --format"), "{stderr}");
}

#[test]
fn compile_errors_carry_an_excerpt() {
    let dir = std::env::temp_dir().join("ppd_lint_golden_bad.ppd");
    std::fs::write(&dir, "process Broken { int x = ; }").unwrap();
    let (_, stderr, ok) = run_ppd(&["lint", dir.to_str().unwrap()]);
    assert!(!ok);
    assert!(stderr.contains("compile error:"), "{stderr}");
    assert!(stderr.contains("int x = ;"), "excerpt missing: {stderr}");
    assert!(stderr.contains('^'), "caret missing: {stderr}");
    let _ = std::fs::remove_file(&dir);
}

//! Cross-layer slicing properties on random programs: the *dynamic*
//! backward slice (actual dependences, §4.2) must project into the
//! *static* backward slice (possible dependences, §4.1 / Weiser) — the
//! fundamental soundness relation between the two graphs.

use ppd::analysis::EBlockStrategy;
use ppd::core::{Controller, PpdSession, RunConfig};
use ppd::graph::DynNodeKind;
use ppd::lang::{ProcId, StmtId};
use proptest::prelude::*;
use std::collections::HashSet;

mod common;
use common::Gen;

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Dynamic ⊆ static: every statement in a dynamic backward slice is
    /// in the static backward slice of the root's statement.
    #[test]
    fn dynamic_slice_projects_into_static_slice(
        bytes in proptest::collection::vec(any::<u8>(), 1..96),
    ) {
        let src = Gen::new(&bytes).program();
        let session = PpdSession::prepare(&src, EBlockStrategy::per_subroutine()).unwrap();
        let exec = session.execute(RunConfig::default());
        prop_assert!(exec.outcome.is_success());
        let mut controller = Controller::new(&session, &exec);
        let root = controller.start_at(ProcId(0)).unwrap();

        let graph = controller.graph();
        let stmt_of = |kind: &DynNodeKind| -> Option<StmtId> {
            match kind {
                DynNodeKind::Singular { stmt }
                | DynNodeKind::SubGraph { stmt, .. }
                | DynNodeKind::LoopGraph { stmt, .. } => Some(*stmt),
                _ => None,
            }
        };
        let Some(root_stmt) = stmt_of(&graph.node(root).kind) else {
            return Ok(()); // entry-only fragment
        };

        let body = ppd::lang::BodyId::Proc(ProcId(0));
        let static_slice: HashSet<StmtId> = session
            .static_graph()
            .body(body)
            .backward_slice(root_stmt)
            .into_iter()
            .collect();

        for node in controller.backward_slice(root) {
            // Only project nodes belonging to the same body (the
            // generated programs are single-body, no calls).
            if let Some(stmt) = stmt_of(&graph.node(node).kind) {
                prop_assert!(
                    static_slice.contains(&stmt),
                    "dynamic slice contains {stmt} ({}), absent from static slice {:?}",
                    graph.node(node).label,
                    static_slice
                );
            }
        }
    }

    /// Every dynamic data dependence instance has a static counterpart:
    /// if node B reads a value A defined, then A's statement is a static
    /// data source of B's statement for some variable.
    #[test]
    fn dynamic_data_edges_have_static_counterparts(
        bytes in proptest::collection::vec(any::<u8>(), 1..80),
    ) {
        use ppd::graph::{DynEdgeKind, StaticEdge, StaticNode};
        let src = Gen::new(&bytes).program();
        let session = PpdSession::prepare(&src, EBlockStrategy::per_subroutine()).unwrap();
        let exec = session.execute(RunConfig::default());
        let mut controller = Controller::new(&session, &exec);
        controller.start_at(ProcId(0)).unwrap();
        let graph = controller.graph();
        let body = ppd::lang::BodyId::Proc(ProcId(0));
        let sgraph = session.static_graph().body(body);

        for &(from, to, kind) in graph.edges() {
            let DynEdgeKind::Data { var } = kind else { continue };
            let (DynNodeKind::Singular { stmt: def_stmt }, DynNodeKind::Singular { stmt: use_stmt }) =
                (&graph.node(from).kind, &graph.node(to).kind)
            else {
                continue;
            };
            let static_sources = sgraph.preds_by(StaticNode::Stmt(*use_stmt), |k| {
                matches!(k, StaticEdge::Data { var: v } if *v == var)
            });
            prop_assert!(
                static_sources
                    .iter()
                    .any(|&(n, _)| n == StaticNode::Stmt(*def_stmt)),
                "dynamic data edge {def_stmt} -> {use_stmt} on {var} has no static counterpart"
            );
        }
    }

    /// The static control-dependence parents cover the dynamic control
    /// edges between singular nodes.
    #[test]
    fn dynamic_control_edges_have_static_counterparts(
        bytes in proptest::collection::vec(any::<u8>(), 1..80),
    ) {
        use ppd::graph::DynEdgeKind;
        let src = Gen::new(&bytes).program();
        let session = PpdSession::prepare(&src, EBlockStrategy::per_subroutine()).unwrap();
        let exec = session.execute(RunConfig::default());
        let mut controller = Controller::new(&session, &exec);
        controller.start_at(ProcId(0)).unwrap();
        let graph = controller.graph();
        let body = ppd::lang::BodyId::Proc(ProcId(0));
        let cds = session.analyses().control_deps(body);

        for &(from, to, kind) in graph.edges() {
            if kind != DynEdgeKind::Control {
                continue;
            }
            let (DynNodeKind::Singular { stmt: pred }, DynNodeKind::Singular { stmt: dep }) =
                (&graph.node(from).kind, &graph.node(to).kind)
            else {
                continue; // entry-anchored control edges have no static stmt parent
            };
            prop_assert!(
                cds.parents(*dep).iter().any(|&(p, _)| p == *pred),
                "dynamic control edge {pred} -> {dep} not in static control deps"
            );
        }
    }
}

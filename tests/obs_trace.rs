//! Trace-sink tests: the Chrome trace-event writer's schema is pinned
//! by golden file, and a property test checks that *every* valid span
//! nesting — randomized open/close/instant sequences across several
//! threads — reconstructs to balanced, properly nested `"B"`/`"E"`
//! pairs with non-decreasing timestamps per track.
//!
//! Run with `PPD_UPDATE_GOLDEN=1` to regenerate the golden file after
//! an intentional format change.

use ppd_obs::chrome::{begin_end_events, complete_events, trace_json, trace_json_begin_end};
use ppd_obs::SpanRecord;
use proptest::prelude::*;
use std::borrow::Cow;
use std::path::Path;

fn rec(
    name: &'static str,
    tid: u64,
    seq: u64,
    depth: u32,
    start_ns: u64,
    dur_ns: u64,
) -> SpanRecord {
    SpanRecord {
        cat: "test",
        name: Cow::Borrowed(name),
        tid,
        seq,
        depth,
        start_ns,
        dur_ns,
        instant: false,
        args: Vec::new(),
    }
}

/// A small deterministic two-track recording: nested spans, a sibling,
/// an instant, and an annotated span on a second thread.
fn fixture() -> (Vec<SpanRecord>, Vec<(u64, String)>) {
    let mut mark = rec("checkpoint", 0, 2, 2, 2_500, 0);
    mark.instant = true;
    let mut task = rec("pool_task", 1, 0, 0, 500, 4_000);
    task.args.push(("stolen", Cow::Borrowed("true")));
    let records = vec![
        rec("query", 0, 0, 0, 1_000, 9_000),
        rec("replay_interval", 0, 1, 1, 2_000, 3_000),
        mark,
        rec("race_scan", 0, 3, 1, 6_000, 2_500),
        task,
    ];
    let names = vec![(0, "main".to_string()), (1, "pool-worker-0".to_string())];
    (records, names)
}

fn check_golden(name: &str, actual: &str) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(name);
    if std::env::var_os("PPD_UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {}: {e}", path.display()));
    assert_eq!(
        actual, expected,
        "`{name}` drifted from its golden file; \
         re-run with PPD_UPDATE_GOLDEN=1 if the change is intentional"
    );
}

/// Pulls `"key":<value>` out of one serialized event object. Good
/// enough for the flat objects the writer emits (values never contain
/// an unescaped comma-brace sequence that would fool it).
fn field<'a>(event: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let at = event.find(&needle)? + needle.len();
    let rest = &event[at..];
    let end = rest
        .char_indices()
        .scan(0i32, |depth, (i, c)| {
            match c {
                '{' => *depth += 1,
                '}' if *depth > 0 => *depth -= 1,
                '}' | ',' if *depth == 0 => return Some(Some(i)),
                _ => {}
            }
            Some(None)
        })
        .flatten()
        .next()
        .unwrap_or(rest.len());
    Some(&rest[..end])
}

/// Splits a trace document into its per-event JSON object lines.
fn event_lines(doc: &str) -> Vec<&str> {
    let body = doc
        .strip_prefix("{\"traceEvents\":[\n")
        .and_then(|b| b.strip_suffix("\n]}\n"))
        .unwrap_or_else(|| panic!("bad envelope: {doc}"));
    body.lines().map(|l| l.trim_end_matches(',')).collect()
}

#[test]
fn trace_json_matches_golden_and_schema() {
    let (records, names) = fixture();
    let doc = trace_json(&records, &names);
    check_golden("trace.chrome.json", &doc);

    // Schema: every event is a flat object carrying ph/pid/tid/ts,
    // with pid fixed at 1 and a fractional-µs ts.
    let lines = event_lines(&doc);
    assert_eq!(lines.len(), records.len() + names.len());
    let mut last_ts: Option<(u64, f64)> = None;
    for line in &lines {
        assert!(line.starts_with('{') && line.ends_with('}'), "not an object: {line}");
        let ph = field(line, "ph").unwrap_or_else(|| panic!("no ph in {line}"));
        assert!(["\"X\"", "\"i\"", "\"M\""].contains(&ph), "unexpected phase {ph}");
        assert_eq!(field(line, "pid"), Some("1"), "{line}");
        let tid: u64 = field(line, "tid").expect("tid").parse().expect("integer tid");
        let ts: f64 = field(line, "ts").expect("ts").parse().expect("numeric ts");
        assert!(field(line, "name").is_some(), "{line}");
        if ph == "\"X\"" {
            let dur: f64 = field(line, "dur").expect("X has dur").parse().unwrap();
            assert!(dur >= 0.0);
        }
        if ph == "\"i\"" {
            assert_eq!(field(line, "s"), Some("\"t\""), "instants are thread-scoped: {line}");
        }
        if ph != "\"M\"" {
            // Timestamps never go backwards within one track.
            if let Some((prev_tid, prev_ts)) = last_ts {
                if prev_tid == tid {
                    assert!(ts >= prev_ts, "ts regressed on tid {tid}: {doc}");
                }
            }
            last_ts = Some((tid, ts));
        }
    }
    // The fixture's annotations survive serialization.
    assert!(doc.contains("\"args\":{\"stolen\":\"true\"}"), "{doc}");
    assert!(doc.contains("\"name\":\"pool-worker-0\""), "{doc}");
}

#[test]
fn begin_end_json_matches_golden_and_balances() {
    let (records, names) = fixture();
    let doc = trace_json_begin_end(&records, &names);
    check_golden("trace.chrome_be.json", &doc);
    let lines = event_lines(&doc);
    let b = lines.iter().filter(|l| field(l, "ph") == Some("\"B\"")).count();
    let e = lines.iter().filter(|l| field(l, "ph") == Some("\"E\"")).count();
    assert_eq!(b, e, "unbalanced begin/end pairs: {doc}");
    assert_eq!(b, 4, "four non-instant spans in the fixture");
}

/// One simulated recording thread, producing records exactly the way
/// the RAII guards do: `seq` at open in start order, the finished
/// record pushed at close (so out of start order until sorted), depth
/// equal to the number of enclosing opens.
struct SimThread {
    tid: u64,
    clock: u64,
    next_seq: u64,
    open: Vec<(u64, u32, u64)>, // (seq, depth, start_ns)
    done: Vec<SpanRecord>,
}

impl SimThread {
    fn new(tid: u64) -> SimThread {
        SimThread { tid, clock: 0, next_seq: 0, open: Vec::new(), done: Vec::new() }
    }

    fn tick(&mut self) -> u64 {
        self.clock += 17; // arbitrary stride; only order matters
        self.clock
    }

    fn open(&mut self) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let depth = self.open.len() as u32;
        let start = self.tick();
        self.open.push((seq, depth, start));
    }

    fn close(&mut self) {
        if let Some((seq, depth, start)) = self.open.pop() {
            let end = self.tick();
            let mut r = rec("span", self.tid, seq, depth, start, end - start);
            r.name = Cow::Owned(format!("s{seq}"));
            self.done.push(r);
        }
    }

    fn instant(&mut self) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let mut r = rec("mark", self.tid, seq, self.open.len() as u32, self.tick(), 0);
        r.instant = true;
        self.done.push(r);
    }

    fn finish(mut self) -> Vec<SpanRecord> {
        while !self.open.is_empty() {
            self.close();
        }
        self.done
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Any valid guard history — arbitrary interleavings of opens,
    /// closes and instants on up to three threads — reconstructs to
    /// balanced `B`/`E` pairs per track, LIFO-nested, with
    /// non-decreasing timestamps.
    #[test]
    fn random_nestings_produce_balanced_begin_end_pairs(
        ops in proptest::collection::vec(any::<u8>(), 0..96)
    ) {
        let mut threads = [SimThread::new(0), SimThread::new(1), SimThread::new(2)];
        for op in &ops {
            let t = &mut threads[(op >> 2) as usize % 3];
            match op % 4 {
                0 | 1 => t.open(), // bias toward nesting
                2 => t.close(),
                _ => t.instant(),
            }
        }
        let mut records: Vec<SpanRecord> = Vec::new();
        for t in threads {
            records.extend(t.finish());
        }
        records.sort_by_key(|r| (r.tid, r.seq));
        let spans = records.iter().filter(|r| !r.instant).count();

        let events = begin_end_events(&records, &[]);
        let b = events.iter().filter(|e| e.ph == 'B').count();
        let e = events.iter().filter(|e| e.ph == 'E').count();
        prop_assert_eq!(b, spans, "every span opens exactly once");
        prop_assert_eq!(b, e, "every B has exactly one E");

        // LIFO nesting: an E always closes the most recent open B on
        // its own track, and no track interleaves with another.
        let mut stack: Vec<u64> = Vec::new();
        let mut last_ts: Option<(u64, u64)> = None;
        for ev in &events {
            match ev.ph {
                'B' => stack.push(ev.tid),
                'E' => {
                    let open_tid = stack.pop().expect("E without open B");
                    prop_assert_eq!(open_tid, ev.tid, "E crossed tracks");
                }
                'i' => prop_assert!(
                    stack.iter().all(|&t| t == ev.tid) ,
                    "instant emitted while another track is open"
                ),
                ph => prop_assert!(false, "unexpected phase {}", ph),
            }
            if let Some((prev_tid, prev_ts)) = last_ts {
                if prev_tid == ev.tid {
                    prop_assert!(ev.ts_ns >= prev_ts, "ts regressed within a track");
                }
            }
            last_ts = Some((ev.tid, ev.ts_ns));
        }
        prop_assert!(stack.is_empty(), "spans left open at end of stream");
    }

    /// Complete-event export preserves one `X` per span, one `i` per
    /// instant, and clamps timestamps monotonically per track.
    #[test]
    fn random_nestings_produce_monotone_complete_events(
        ops in proptest::collection::vec(any::<u8>(), 0..96)
    ) {
        let mut threads = [SimThread::new(0), SimThread::new(1)];
        for op in &ops {
            let t = &mut threads[(op >> 2) as usize % 2];
            match op % 4 {
                0 | 1 => t.open(),
                2 => t.close(),
                _ => t.instant(),
            }
        }
        let mut records: Vec<SpanRecord> = Vec::new();
        for t in threads {
            records.extend(t.finish());
        }
        records.sort_by_key(|r| (r.tid, r.seq));

        let events = complete_events(&records, &[]);
        prop_assert_eq!(events.len(), records.len());
        let x = events.iter().filter(|e| e.ph == 'X').count();
        prop_assert_eq!(x, records.iter().filter(|r| !r.instant).count());
        let mut last_ts: Option<(u64, u64)> = None;
        for ev in &events {
            if let Some((prev_tid, prev_ts)) = last_ts {
                if prev_tid == ev.tid {
                    prop_assert!(ev.ts_ns >= prev_ts, "ts regressed within a track");
                }
            }
            last_ts = Some((ev.tid, ev.ts_ns));
        }
    }
}

//! Property-based tests on the graph algorithms: the two
//! happened-before implementations agree, the two race detectors agree,
//! and the ordering axioms of §6.1 hold on randomized parallel dynamic
//! graphs.

use ppd::analysis::{BitVarSet, ListVarSet, VarSetRepr};
use ppd::graph::{
    candidates_from_graph, detect_races_indexed, detect_races_naive, detect_races_naive_counted,
    detect_races_pruned, detect_races_pruned_counted, Ordering as Hb, ParallelGraph, SyncEdgeLabel,
    SyncNodeKind, TransitiveClosure, VectorClocks,
};
use ppd::lang::{ProcId, VarId};
use proptest::prelude::*;

/// Builds a random — but always acyclic — parallel dynamic graph with
/// shared-variable accesses sprinkled on its internal edges.
fn random_pgraph(script: &[u8], procs: u32, vars: u32) -> ParallelGraph {
    let mut g = ParallelGraph::new(vars as usize);
    let mut t = 0u64;
    let mut nodes_by_proc: Vec<Vec<ppd::graph::SyncNodeId>> = Vec::new();
    for p in 0..procs {
        t += 1;
        let start = g.start_process(ProcId(p), t);
        nodes_by_proc.push(vec![start]);
    }
    let mut i = 0;
    while i + 3 < script.len() {
        let p = (script[i] % procs as u8) as u32;
        let action = script[i + 1] % 4;
        let var = VarId((script[i + 2] % vars as u8) as u32);
        match action {
            0 => g.record_read(ProcId(p), var),
            1 => {
                g.record_write(ProcId(p), var);
                g.record_event(ProcId(p));
            }
            2 => {
                t += 1;
                let n = g.sync_point(ProcId(p), SyncNodeKind::V, None, t);
                nodes_by_proc[p as usize].push(n);
            }
            _ => {
                // A cross-process sync edge that respects time (acyclic).
                let q = (script[i + 3] % procs as u8) as u32;
                if q != p {
                    let from_pool = &nodes_by_proc[p as usize];
                    let from = from_pool[(script[i + 2] as usize) % from_pool.len()];
                    t += 1;
                    let to = g.sync_point(ProcId(q), SyncNodeKind::P, None, t);
                    nodes_by_proc[q as usize].push(to);
                    if g.node(from).time < g.node(to).time {
                        g.add_sync_edge(from, to, SyncEdgeLabel::Semaphore);
                    }
                }
            }
        }
        i += 4;
    }
    for p in 0..procs {
        t += 1;
        g.end_process(ProcId(p), t);
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn closure_equals_vector_clocks(
        script in proptest::collection::vec(any::<u8>(), 8..160),
        procs in 2u32..5,
    ) {
        let g = random_pgraph(&script, procs, 3);
        let tc = TransitiveClosure::compute(&g);
        let vc = VectorClocks::compute(&g);
        for a in g.nodes() {
            for b in g.nodes() {
                prop_assert_eq!(
                    tc.precedes(a.id, b.id),
                    vc.precedes(a.id, b.id),
                    "disagree on {} -> {}", a.id, b.id
                );
            }
        }
    }

    #[test]
    fn ordering_axioms(
        script in proptest::collection::vec(any::<u8>(), 8..120),
        procs in 2u32..4,
    ) {
        let g = random_pgraph(&script, procs, 2);
        let ord = VectorClocks::compute(&g);
        for a in g.nodes() {
            // Irreflexive.
            prop_assert!(!ord.precedes(a.id, a.id));
            for b in g.nodes() {
                // Antisymmetric.
                if ord.precedes(a.id, b.id) {
                    prop_assert!(!ord.precedes(b.id, a.id));
                    // Consistent with the interleaving (a linear extension).
                    prop_assert!(a.time < b.time);
                }
                // Transitive (spot check through every c).
                for c in g.nodes() {
                    if ord.precedes(a.id, b.id) && ord.precedes(b.id, c.id) {
                        prop_assert!(ord.precedes(a.id, c.id));
                    }
                }
            }
        }
    }

    #[test]
    fn race_detectors_agree(
        script in proptest::collection::vec(any::<u8>(), 8..200),
        procs in 2u32..5,
    ) {
        let g = random_pgraph(&script, procs, 3);
        let ord = VectorClocks::compute(&g);
        let naive = detect_races_naive(&g, &ord);
        let indexed = detect_races_indexed(&g, &ord);
        prop_assert_eq!(naive, indexed);
    }

    #[test]
    fn pruned_detector_agrees_with_naive(
        script in proptest::collection::vec(any::<u8>(), 8..200),
        procs in 2u32..5,
    ) {
        // A candidate index covering every (var, process pair) the
        // execution actually produced is the worst case for pruning —
        // nothing may be filtered away, so the race sets must coincide
        // exactly, and pruned never examines more pairs than naive.
        let g = random_pgraph(&script, procs, 3);
        let ord = VectorClocks::compute(&g);
        let cands = candidates_from_graph(&g);
        let (naive, naive_pairs) = detect_races_naive_counted(&g, &ord);
        let (pruned, pruned_pairs) = detect_races_pruned_counted(&g, &ord, &cands);
        prop_assert_eq!(&naive, &pruned);
        prop_assert_eq!(naive, detect_races_pruned(&g, &ord, &cands));
        prop_assert!(pruned_pairs <= naive_pairs);
    }

    #[test]
    fn races_are_between_simultaneous_edges(
        script in proptest::collection::vec(any::<u8>(), 8..160),
    ) {
        let g = random_pgraph(&script, 3, 2);
        let ord = VectorClocks::compute(&g);
        for r in detect_races_indexed(&g, &ord) {
            // Definition 6.1: neither edge precedes the other.
            prop_assert!(!g.edge_precedes(&ord, r.first, r.second));
            prop_assert!(!g.edge_precedes(&ord, r.second, r.first));
            // Different processes.
            prop_assert_ne!(
                g.internal_edge(r.first).proc,
                g.internal_edge(r.second).proc
            );
        }
    }

    #[test]
    fn varset_representations_equivalent(
        ops in proptest::collection::vec((any::<u8>(), 0u32..96), 1..300),
    ) {
        let mut bit = BitVarSet::empty(96);
        let mut list = ListVarSet::empty(96);
        for (op, raw) in ops {
            let v = VarId(raw);
            match op % 3 {
                0 => { prop_assert_eq!(bit.insert(v), list.insert(v)); }
                1 => { prop_assert_eq!(bit.remove(v), list.remove(v)); }
                _ => { prop_assert_eq!(bit.contains(v), list.contains(v)); }
            }
            prop_assert_eq!(bit.len(), list.len());
        }
        prop_assert_eq!(bit.to_vec(), list.to_vec());
    }

    #[test]
    fn varset_union_and_intersection_laws(
        a in proptest::collection::vec(0u32..64, 0..40),
        b in proptest::collection::vec(0u32..64, 0..40),
    ) {
        let sa = BitVarSet::from_iter(64, a.iter().map(|&v| VarId(v)));
        let sb = BitVarSet::from_iter(64, b.iter().map(|&v| VarId(v)));
        // intersects is symmetric.
        prop_assert_eq!(sa.intersects(&sb), sb.intersects(&sa));
        // union is an upper bound of both.
        let mut u = sa.clone();
        u.union_with(&sb);
        for v in sa.to_vec() {
            prop_assert!(u.contains(v));
        }
        for v in sb.to_vec() {
            prop_assert!(u.contains(v));
        }
        prop_assert_eq!(
            u.len(),
            sa.to_vec().iter().chain(sb.to_vec().iter())
                .collect::<std::collections::HashSet<_>>().len()
        );
        // subtract removes exactly the other set.
        let mut d = u.clone();
        d.subtract(&sb);
        prop_assert!(!d.intersects(&sb));
        for v in d.to_vec() {
            prop_assert!(sa.contains(v));
        }
    }
}

//! Shared helpers for the integration-test suite: a deterministic
//! generator of always-valid single-process programs, driven by a byte
//! string (so proptest failures shrink well).
#![allow(dead_code)]

/// Deterministic program generator: interprets `bytes` as a stream of
/// construction decisions for a single-process program over four
/// variables, with nested ifs and bounded loops.
pub struct Gen<'a> {
    bytes: &'a [u8],
    pos: usize,
    counters: usize,
}

impl<'a> Gen<'a> {
    pub fn new(bytes: &'a [u8]) -> Self {
        Gen { bytes, pos: 0, counters: 0 }
    }

    fn next(&mut self) -> u8 {
        if self.bytes.is_empty() {
            return 0;
        }
        let b = self.bytes[self.pos % self.bytes.len()];
        self.pos += 1;
        b
    }

    fn expr(&mut self, depth: u32) -> String {
        if depth == 0 {
            return match self.next() % 2 {
                0 => format!("{}", (self.next() as i64 % 9) - 4),
                _ => format!("v{}", self.next() % 4),
            };
        }
        match self.next() % 6 {
            0 => format!("{}", (self.next() as i64 % 9) - 4),
            1 => format!("v{}", self.next() % 4),
            2 => format!("({} + {})", self.expr(depth - 1), self.expr(depth - 1)),
            3 => format!("({} - {})", self.expr(depth - 1), self.expr(depth - 1)),
            4 => format!("({} * {})", self.expr(depth - 1), self.expr(depth - 1)),
            _ => format!("({} % 97 + 3)", self.expr(depth - 1)),
        }
    }

    fn stmts(&mut self, out: &mut String, indent: usize, budget: &mut u32, depth: u32) {
        let n = self.next() % 4 + 1;
        for _ in 0..n {
            if *budget == 0 {
                return;
            }
            *budget -= 1;
            let pad = "    ".repeat(indent);
            match self.next() % 5 {
                0 | 1 => {
                    let v = self.next() % 4;
                    let e = self.expr(2);
                    out.push_str(&format!("{pad}v{v} = {e};\n"));
                }
                2 if depth > 0 => {
                    let c = self.expr(1);
                    out.push_str(&format!("{pad}if ({c} > 0) {{\n"));
                    self.stmts(out, indent + 1, budget, depth - 1);
                    out.push_str(&format!("{pad}}} else {{\n"));
                    self.stmts(out, indent + 1, budget, depth - 1);
                    out.push_str(&format!("{pad}}}\n"));
                }
                3 if depth > 0 => {
                    let c = self.counters;
                    self.counters += 1;
                    let k = self.next() % 3 + 1;
                    out.push_str(&format!("{pad}int c{c} = 0;\n"));
                    out.push_str(&format!("{pad}while (c{c} < {k}) {{\n"));
                    self.stmts(out, indent + 1, budget, depth - 1);
                    out.push_str(&format!("{pad}    c{c} = c{c} + 1;\n"));
                    out.push_str(&format!("{pad}}}\n"));
                }
                _ => {
                    let e = self.expr(1);
                    out.push_str(&format!("{pad}print({e});\n"));
                }
            }
        }
    }

    pub fn program(mut self) -> String {
        let mut body = String::new();
        for v in 0..4 {
            let init = (self.next() as i64 % 19) - 9;
            body.push_str(&format!("    int v{v} = {init};\n"));
        }
        let mut budget = 24;
        self.stmts(&mut body, 1, &mut budget, 3);
        body.push_str("    out = v0 + v1 + v2 + v3;\n    print(out);\n");
        format!("shared int out;\n\nprocess Main {{\n{body}}}\n")
    }
}

//! Replay-engine cache soundness: memoization must be invisible.
//!
//! Replay of a logged e-block is deterministic, so a Controller with the
//! trace cache enabled must produce node-for-node identical dynamic
//! graphs, slices and race reports as one with the cache disabled — even
//! when a tiny byte budget forces constant LRU eviction. On top of that,
//! repeating a query on a warm Controller must perform zero new
//! replays (the PR's acceptance criterion), observable via `DebugStats`.

use ppd::analysis::EBlockStrategy;
use ppd::core::{Controller, PpdSession, RunConfig};
use ppd::graph::DynNodeId;
use ppd::lang::corpus;
use proptest::prelude::*;

fn flowback_demo() -> (PpdSession, ppd::core::Execution) {
    let session =
        PpdSession::prepare(corpus::FLOWBACK_DEMO.source, EBlockStrategy::per_subroutine())
            .expect("corpus program compiles");
    let config = RunConfig { inputs: vec![vec![42, 10]], ..RunConfig::default() };
    let execution = session.execute(config);
    assert!(execution.outcome.is_failure(), "flowback demo fails by design");
    (session, execution)
}

/// A total, order-stable description of the dynamic graph: every node
/// with its kind, label, value, and dependence predecessors.
fn fingerprint(controller: &Controller<'_>) -> String {
    use std::fmt::Write as _;
    let graph = controller.graph();
    let mut out = String::new();
    for n in graph.nodes() {
        let mut preds: Vec<String> =
            graph.dependence_preds(n.id).iter().map(|(p, k)| format!("{}:{k:?}", p.0)).collect();
        preds.sort();
        let _ = writeln!(
            out,
            "#{} {:?} {} proc{} seq{} {:?} <- [{}]",
            n.id.0,
            n.kind,
            n.label,
            n.proc.0,
            n.seq,
            n.value,
            preds.join(", ")
        );
    }
    out
}

/// Expands every expandable node, breadth-first, until none remain (or
/// expansion stops making progress).
fn expand_all(controller: &mut Controller<'_>) {
    loop {
        let pending = controller.unexpanded();
        let before = controller.graph().len();
        for node in pending {
            let _ = controller.expand(node);
        }
        if controller.graph().len() == before {
            break;
        }
    }
}

/// Acceptance criterion: repeating the same flowback/expansion query on
/// a warm Controller performs zero new e-block replays.
#[test]
fn warm_controller_repeats_queries_with_zero_new_replays() {
    let (session, execution) = flowback_demo();
    let mut controller = Controller::new(&session, &execution);

    let root = controller.start().expect("debugging starts");
    let first_flowback = controller.flowback(root);
    expand_all(&mut controller);
    let warm = controller.stats();
    assert!(warm.replays > 0, "warming performed replays");
    let warm_print = fingerprint(&controller);

    // The same queries again: start at the halt, flow back, re-request
    // the halted interval's materialization.
    let root2 = controller.start().expect("warm start");
    let second_flowback = controller.flowback(root2);
    let after = controller.stats();

    assert_eq!(
        after.replays, warm.replays,
        "a warm Controller must answer repeated queries from the cache"
    );
    assert!(after.cache_hits > warm.cache_hits, "the repeat was served by the cache");
    // Same query, same answer (node ids differ — the graph grew — but
    // the dependence structure the user sees is the same shape).
    assert_eq!(first_flowback.len(), second_flowback.len());
    assert!(fingerprint(&controller).starts_with(&warm_print), "repeat queries only append");
}

#[test]
fn stats_counters_are_coherent() {
    let (session, execution) = flowback_demo();
    let mut controller = Controller::new(&session, &execution);
    controller.start().expect("starts");
    expand_all(&mut controller);
    let s = controller.stats();
    assert_eq!(s.replays, s.cache_misses, "every miss is a replay and vice versa");
    assert!(s.trace_events > 0);
    assert!(s.log_entries_scanned > 0);
    assert!(s.queries > 0);
    assert!(s.cached_traces > 0 && s.cached_bytes > 0);
    assert!(s.hit_rate() >= 0.0 && s.hit_rate() <= 1.0);
    let rendered = s.render();
    assert!(rendered.contains("replays performed"));
    assert!(rendered.contains("hit rate"));
}

#[test]
fn tiny_budget_forces_evictions_but_not_wrong_answers() {
    // Recursive quicksort: many intervals with similar-sized traces, so
    // a fractional budget must keep evicting as expansion proceeds.
    let session = PpdSession::prepare(corpus::QUICKSORT.source, EBlockStrategy::per_subroutine())
        .expect("corpus program compiles");
    let execution = session.execute(RunConfig::default());

    // Reference: unbounded cache, fully expanded.
    let mut reference = Controller::new(&session, &execution);
    reference.start().expect("starts");
    expand_all(&mut reference);
    let total_bytes = reference.stats().cached_bytes;
    let traces = reference.stats().cached_traces;
    assert!(traces >= 3, "workload must span several intervals, got {traces}");

    // A budget that fits any single trace but not all of them together.
    let budget = (total_bytes * 2 / 3).max(1);
    let mut tiny = Controller::new(&session, &execution);
    tiny.set_cache_budget(budget);
    tiny.start().expect("starts");
    expand_all(&mut tiny);
    // Replay again from the halt so evicted entries get re-requested.
    tiny.start().expect("warm start under pressure");

    let s = tiny.stats();
    assert!(s.evictions > 0, "budget {budget} of {total_bytes} must evict");
    assert!(s.cached_bytes <= budget, "cache respects its budget");

    // And the graph the user saw is identical to the unbounded one.
    let mut unbounded = Controller::new(&session, &execution);
    unbounded.start().expect("starts");
    expand_all(&mut unbounded);
    unbounded.start().expect("warm");
    assert_eq!(fingerprint(&tiny), fingerprint(&unbounded));
}

#[test]
fn disabling_the_cache_changes_cost_not_results() {
    let (session, execution) = flowback_demo();

    let mut cached = Controller::new(&session, &execution);
    cached.start().expect("starts");
    expand_all(&mut cached);
    cached.start().expect("warm");

    let mut uncached = Controller::new(&session, &execution);
    uncached.set_cache_enabled(false);
    uncached.start().expect("starts");
    expand_all(&mut uncached);
    uncached.start().expect("cold again");

    assert_eq!(fingerprint(&cached), fingerprint(&uncached));
    let s = uncached.stats();
    assert_eq!(s.cache_hits, 0, "a disabled cache never hits");
    assert_eq!(s.cached_traces, 0);
    assert!(s.replays > cached.stats().replays, "disabling the cache costs extra replays");
}

// ---------------------------------------------------------------------
// Randomized query sequences (the property-test satellite)
// ---------------------------------------------------------------------

fn workload(choice: u8) -> (PpdSession, ppd::core::Execution) {
    let (source, inputs): (&str, Vec<Vec<i64>>) = match choice % 5 {
        0 => (corpus::FLOWBACK_DEMO.source, vec![vec![42, 10]]),
        1 => (corpus::PRODUCER_CONSUMER.source, vec![]),
        2 => (corpus::FIG_4_1.source, vec![vec![5, 3, 2]]),
        3 => (corpus::FIG_6_1.source, vec![]),
        _ => (corpus::QUICKSORT.source, vec![]),
    };
    let session = PpdSession::prepare(source, EBlockStrategy::per_subroutine())
        .expect("corpus program compiles");
    let execution = session.execute(RunConfig { inputs, ..RunConfig::default() });
    (session, execution)
}

/// Runs a deterministic query sequence derived from `ops` and returns a
/// transcript of everything the user would have seen.
fn drive(controller: &mut Controller<'_>, ops: &[u8]) -> Vec<String> {
    let mut transcript = Vec::new();
    let root = match controller.start() {
        Ok(r) => r,
        Err(e) => return vec![format!("start failed: {e}")],
    };
    transcript.push(fingerprint(controller));
    for &op in ops {
        let len = controller.graph().len() as u32;
        let node = DynNodeId(op as u32 * 7 % len.max(1));
        match op % 6 {
            0 => {
                if let Some(n) = controller.unexpanded().first().copied() {
                    match controller.expand(n) {
                        Ok(report) => {
                            transcript.push(format!("expand {}: {:?}", n.0, report.nodes))
                        }
                        Err(e) => transcript.push(format!("expand {}: {e}", n.0)),
                    }
                }
            }
            1 => transcript.push(format!("slice: {:?}", controller.backward_slice(node))),
            2 => transcript.push(format!("back: {:?}", controller.flowback(root))),
            3 => transcript.push(format!("extend: {:?}", controller.auto_extend(node))),
            4 => transcript.push(format!("fwd: {:?}", controller.forward_slice(node))),
            _ => {
                let races: Vec<String> =
                    controller.races().into_iter().map(|r| r.description).collect();
                transcript.push(format!("races: {races:?}"));
            }
        }
        transcript.push(fingerprint(controller));
    }
    transcript
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// The cache-soundness property: over a randomized query sequence,
    /// a cached Controller, an uncached one, and one under a tiny LRU
    /// budget see exactly the same graphs, slices, and race reports.
    #[test]
    fn cache_is_invisible_to_randomized_query_sequences(
        choice in any::<u8>(),
        ops in proptest::collection::vec(any::<u8>(), 0..12),
    ) {
        let (session, execution) = workload(choice);

        let mut cached = Controller::new(&session, &execution);
        let with_cache = drive(&mut cached, &ops);

        let mut uncached = Controller::new(&session, &execution);
        uncached.set_cache_enabled(false);
        let without_cache = drive(&mut uncached, &ops);

        let mut squeezed = Controller::new(&session, &execution);
        squeezed.set_cache_budget(1500); // a trace or two, then evict
        let with_tiny_cache = drive(&mut squeezed, &ops);

        prop_assert_eq!(&with_cache, &without_cache);
        prop_assert_eq!(&with_cache, &with_tiny_cache);
        prop_assert_eq!(uncached.stats().cache_hits, 0);
    }
}

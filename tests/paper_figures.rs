//! Reproductions of the paper's worked figures, asserted structurally:
//! Figure 4.1 (dynamic graph), Figure 5.1/5.2 (log intervals and
//! nesting), Figure 5.3 (simplified static graph / synchronization
//! units), Figure 6.1 (parallel dynamic graph and the §6.3 race).

#![allow(clippy::field_reassign_with_default)]

use ppd::analysis::EBlockStrategy;
use ppd::core::{Controller, PpdSession, RunConfig};
use ppd::graph::{
    ConflictKind, DynEdgeKind, DynNodeKind, SimpleNode, SimplifiedGraph, SyncEdgeLabel,
    SyncNodeKind, VectorClocks,
};
use ppd::lang::{BodyId, ProcId};

// ---------------------------------------------------------------------
// Figure 4.1
// ---------------------------------------------------------------------

#[test]
fn figure_4_1_dynamic_graph() {
    let session =
        PpdSession::prepare(ppd::lang::corpus::FIG_4_1.source, EBlockStrategy::per_subroutine())
            .unwrap();
    let mut config = RunConfig::default();
    config.inputs = vec![vec![5, 3, 2]];
    let execution = session.execute(config);
    assert!(execution.outcome.is_success());

    let mut controller = Controller::new(&session, &execution);
    controller.start_at(ProcId(0)).unwrap();
    let graph = controller.graph();

    // Node inventory mirroring the figure: the six fragment statements
    // appear as singular/sub-graph nodes; the third SubD actual is the
    // fictional %3.
    let find = |needle: &str| {
        graph
            .nodes()
            .iter()
            .find(|n| n.label.contains(needle))
            .unwrap_or_else(|| panic!("missing node labeled `{needle}`"))
    };
    let s4 = find("SubD(a, b, a + b + c)");
    assert!(matches!(s4.kind, DynNodeKind::SubGraph { expanded: false, .. }));
    let p3 = find("%3");
    assert!(matches!(p3.kind, DynNodeKind::Param { index: 3 }));
    // %3's three data sources are the definitions of a, b and c.
    let p3_sources: Vec<String> =
        graph.dependence_preds(p3.id).iter().map(|&(n, _)| graph.node(n).label.clone()).collect();
    assert_eq!(p3_sources.len(), 3, "{p3_sources:?}");
    for v in ["a = input()", "b = input()", "c = input()"] {
        assert!(p3_sources.iter().any(|l| l.contains(v)), "missing {v}");
    }

    // s5 `if (d > 0)` depends on d from SubD; its arms are control
    // dependent on it.
    let s5 = find("d > 0");
    let s5_data: Vec<_> = graph
        .preds_by(s5.id, |k| matches!(k, DynEdgeKind::Data { .. }))
        .iter()
        .map(|&(n, _)| graph.node(n).label.clone())
        .collect();
    assert!(s5_data.iter().any(|l| l.contains("d = SubD")), "{s5_data:?}");
    let sqrt_arm = find("sq = sqrt(0 - d)");
    assert!(graph
        .preds_by(sqrt_arm.id, |k| matches!(k, DynEdgeKind::Control))
        .iter()
        .any(|&(n, _)| n == s5.id));

    // s6 `a = a + sq` = 7 given inputs (5, 3, 2).
    let s6 = find("a = a + sq");
    assert_eq!(s6.value, Some(ppd::lang::Value::Int(7)));
}

// ---------------------------------------------------------------------
// Figures 5.1 / 5.2: logging points, log intervals and their nesting
// ---------------------------------------------------------------------

#[test]
fn figure_5_2_nested_log_intervals() {
    // SubJ calls SubK: prelog(j) < prelog(j+1) < postlog(j+1) < postlog(j).
    let session = PpdSession::prepare(
        "shared int out; \
         int SubK(int x) { return x + 1; } \
         int SubJ(int x) { int k = SubK(x * 2); return k; } \
         process Main { out = SubJ(5); print(out); }",
        EBlockStrategy::per_subroutine(),
    )
    .unwrap();
    let execution = session.execute(RunConfig::default());
    assert!(execution.outcome.is_success());

    let rp = session.rp();
    let eb_of = |name: &str| {
        session.plan().body_eblock(BodyId::Func(rp.func_by_name(name).unwrap())).unwrap()
    };
    let intervals = execution.logs.intervals(ProcId(0));
    let subj = intervals.iter().find(|iv| iv.eblock == eb_of("SubJ")).unwrap();
    let subk = intervals.iter().find(|iv| iv.eblock == eb_of("SubK")).unwrap();
    // Figure 5.2's ordering t1 < t2 < t3 < t4.
    assert!(subj.prelog_pos < subk.prelog_pos);
    assert!(subk.postlog_pos.unwrap() < subj.postlog_pos.unwrap());

    // The Controller resolves the nesting: SubK is SubJ's direct child.
    let controller = Controller::new(&session, &execution);
    let children = controller.direct_children(*subj);
    assert_eq!(children.len(), 1);
    assert_eq!(children[0].eblock, eb_of("SubK"));
}

#[test]
fn figure_5_1_loops_create_repeated_intervals() {
    // "Programs usually contain loops, so a given e-block of a program
    // may have several corresponding log intervals during execution."
    let session = PpdSession::prepare(
        "shared int out; \
         int step(int x) { return x + 1; } \
         process Main { int a = 0; int i; \
           for (i = 0; i < 4; i = i + 1) { a = step(a); } \
           out = a; print(out); }",
        EBlockStrategy::per_subroutine(),
    )
    .unwrap();
    let execution = session.execute(RunConfig::default());
    let rp = session.rp();
    let step_eb =
        session.plan().body_eblock(BodyId::Func(rp.func_by_name("step").unwrap())).unwrap();
    let step_intervals: Vec<_> =
        execution.logs.intervals(ProcId(0)).into_iter().filter(|iv| iv.eblock == step_eb).collect();
    assert_eq!(step_intervals.len(), 4, "one interval per call");
    // Instances are numbered consecutively.
    let instances: Vec<u64> = step_intervals.iter().map(|iv| iv.instance).collect();
    assert_eq!(instances, vec![0, 1, 2, 3]);
}

// ---------------------------------------------------------------------
// Figure 5.3: simplified static graph and synchronization units
// ---------------------------------------------------------------------

#[test]
fn figure_5_3_simplified_graph_shape() {
    let rp = ppd::lang::corpus::FIG_5_3.compile();
    let analyses = ppd::analysis::Analyses::run(&rp);
    let foo3 = BodyId::Func(rp.func_by_name("foo3").unwrap());
    let g = SimplifiedGraph::build(&rp, &analyses, foo3);

    // ENTRY, two branching predicates (p and q), EXIT.
    assert_eq!(g.nodes.len(), 4);
    let branching = g.nodes.iter().filter(|n| !n.is_non_branching()).count();
    assert_eq!(branching, 2);
    assert!(g.index_of(SimpleNode::Entry).is_some());
    assert!(g.index_of(SimpleNode::Exit).is_some());
}

#[test]
fn figure_5_3_three_synchronization_units_with_calls() {
    // The figure's three units arise when the elided "..." sections hold
    // subroutine calls (non-branching nodes). Definition 5.1 then gives
    // units from ENTRY and from each call node.
    let rp = ppd::lang::compile(
        "shared int SV; \
         void work1() { } void work2() { } \
         int foo3(int p, int q) { \
            int a = 1; int b = 2; int c = 3; \
            if (p == 1) { \
                if (q == 1) { c = a + b; } else { work1(); c = a - b; } \
            } else { SV = a + b + SV; work2(); } \
            return c; } \
         process P1 { print(foo3(1, 1)); }",
    )
    .unwrap();
    let analyses = ppd::analysis::Analyses::run(&rp);
    let foo3 = BodyId::Func(rp.func_by_name("foo3").unwrap());
    let g = SimplifiedGraph::build(&rp, &analyses, foo3);
    let units = g.sync_units();
    assert_eq!(units.len(), 3);
    // Every edge of the graph belongs to at least one unit.
    let covered: std::collections::HashSet<_> =
        units.iter().flat_map(|u| u.edges.iter().copied()).collect();
    assert_eq!(covered.len(), g.edges.len());
}

#[test]
fn figure_5_3_shared_prelog_covers_sv() {
    // §5.5: the object code must snapshot SV for units that may read it.
    let rp = ppd::lang::corpus::FIG_5_3.compile();
    let analyses = ppd::analysis::Analyses::run(&rp);
    let p1 = BodyId::Proc(rp.proc_by_name("P1").unwrap());
    let units = analyses.sync_units.of(p1);
    // P1's call to foo3 (a unit boundary) may read SV through the callee.
    let sv = rp.shared_vars().find(|v| rp.var_name(*v) == "SV").unwrap();
    let any_unit_reads_sv = units.units.iter().any(|u| {
        use ppd::analysis::VarSetRepr;
        u.reads.contains(sv)
    });
    assert!(any_unit_reads_sv);
}

// ---------------------------------------------------------------------
// Figure 6.1: parallel dynamic graph and the §6.3 race
// ---------------------------------------------------------------------

#[test]
fn figure_6_1_parallel_graph_and_race() {
    let session =
        PpdSession::prepare(ppd::lang::corpus::FIG_6_1.source, EBlockStrategy::per_subroutine())
            .unwrap();
    let execution = session.execute(RunConfig::default());
    assert!(execution.outcome.is_success());
    let g = &execution.pgraph;

    // The blocking send produced the figure's n3 -> n4 (message) and
    // n4 -> n5 (unblock) synchronization edges.
    let labels: Vec<SyncEdgeLabel> = g.sync_edges().iter().map(|e| e.label).collect();
    assert!(labels.contains(&SyncEdgeLabel::Message));
    assert!(labels.contains(&SyncEdgeLabel::SendUnblock));

    // The figure's e4 — the caller suspended between send and unblock —
    // contains zero events.
    let send_node = g.nodes().iter().find(|n| n.kind == SyncNodeKind::Send).unwrap().id;
    let e4 =
        g.internal_edges().iter().find(|e| e.from == send_node).expect("edge out of the send node");
    assert_eq!(e4.events, 0);
    assert_eq!(g.node(e4.to).kind, SyncNodeKind::Unblock);

    // §6.3's analysis: P1's write is ordered before P3's read through
    // the message; P2's write is simultaneous with both.
    let ord = VectorClocks::compute(g);
    let races = ppd::graph::detect_races_indexed(g, &ord);
    assert_eq!(races.len(), 2);
    let kinds: Vec<ConflictKind> = races.iter().map(|r| r.kind).collect();
    assert!(kinds.contains(&ConflictKind::WriteWrite)); // e1 vs e2
    assert!(kinds.contains(&ConflictKind::ReadWrite)); // e2 vs e3
                                                       // Both races involve P2.
    for r in &races {
        let p_first = g.internal_edge(r.first).proc;
        let p_second = g.internal_edge(r.second).proc;
        assert!(
            p_first == ProcId(1) || p_second == ProcId(1),
            "P2 must be part of every race: {r:?}"
        );
    }
}

#[test]
fn figure_6_1_ordered_pair_is_not_a_race() {
    // e1 (P1's write) -> e3 (P3's read) is ordered by the message chain,
    // so that specific pair must NOT be reported.
    let session =
        PpdSession::prepare(ppd::lang::corpus::FIG_6_1.source, EBlockStrategy::per_subroutine())
            .unwrap();
    let execution = session.execute(RunConfig::default());
    let g = &execution.pgraph;
    let ord = VectorClocks::compute(g);
    for r in ppd::graph::detect_races_indexed(g, &ord) {
        let procs = (g.internal_edge(r.first).proc, g.internal_edge(r.second).proc);
        assert_ne!(
            procs,
            (ProcId(0), ProcId(2)),
            "P1/P3 pair is ordered by the message and must not race"
        );
    }
}

#[test]
fn rendezvous_caller_edge_has_zero_events() {
    // §6.2.3: "The internal edge (on the caller) between the event of
    // calling the rendezvous and the event of returning from the call
    // contains zero number of events since the caller is suspended."
    let session = PpdSession::prepare(
        ppd::lang::corpus::RENDEZVOUS_SERVER.source,
        EBlockStrategy::per_subroutine(),
    )
    .unwrap();
    let execution = session.execute(RunConfig::default());
    assert!(execution.outcome.is_success());
    let g = &execution.pgraph;
    // Both callers have a RendezvousCall -> RendezvousReturn edge with
    // zero events.
    let mut suspended_edges = 0;
    for e in g.internal_edges() {
        if g.node(e.from).kind == SyncNodeKind::RendezvousCall {
            assert_eq!(g.node(e.to).kind, SyncNodeKind::RendezvousReturn);
            assert_eq!(e.events, 0, "caller suspended during the call");
            suspended_edges += 1;
        }
    }
    assert_eq!(suspended_edges, 2);
    // Two sync-edge pairs per rendezvous: entry and exit.
    let entries =
        g.sync_edges().iter().filter(|e| e.label == SyncEdgeLabel::RendezvousEntry).count();
    let exits = g.sync_edges().iter().filter(|e| e.label == SyncEdgeLabel::RendezvousExit).count();
    assert_eq!((entries, exits), (2, 2));
}

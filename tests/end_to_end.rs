//! End-to-end sweep over the whole program corpus: every terminating
//! program executes correctly under several schedulers, its logs are
//! well-formed, the race detector matches the corpus's expectation, and
//! the debugging phase can start and materialize fragments.

use ppd::analysis::EBlockStrategy;
use ppd::core::{Controller, PpdSession, RunConfig};
use ppd::lang::corpus;
use ppd::lang::ProcId;
use ppd::runtime::SchedulerSpec;

fn inputs_for(name: &str) -> Vec<Vec<i64>> {
    match name {
        "fig41" => vec![vec![5, 3, 2]],
        "flowback_demo" => vec![vec![42, 10]],
        _ => Vec::new(),
    }
}

fn strategies() -> Vec<(&'static str, EBlockStrategy)> {
    vec![
        ("per-subroutine", EBlockStrategy::per_subroutine()),
        ("with-loops(4)", EBlockStrategy::with_loops(4)),
        ("split(3)", EBlockStrategy::with_split(3)),
        ("leaf-merge(6)", EBlockStrategy::with_leaf_merge(6)),
    ]
}

#[test]
fn corpus_executes_under_all_strategies() {
    for prog in corpus::terminating() {
        for (sname, strategy) in strategies() {
            let session = PpdSession::prepare(prog.source, strategy)
                .unwrap_or_else(|e| panic!("{}: {e}", prog.name));
            let config = RunConfig { inputs: inputs_for(prog.name), ..RunConfig::default() };
            let execution = session.execute(config.clone());
            // flowback_demo is *supposed* to fail; everything else in
            // the terminating corpus completes.
            if prog.name == "flowback_demo" {
                assert!(execution.outcome.is_failure(), "{} [{sname}]", prog.name);
            } else {
                assert!(
                    execution.outcome.is_success(),
                    "{} [{sname}]: {:?}",
                    prog.name,
                    execution.outcome
                );
            }
            // Instrumentation must not perturb results: baseline agrees.
            let (b_outcome, b_output, _) = session.execute_baseline(config);
            assert_eq!(execution.outcome, b_outcome, "{} [{sname}]", prog.name);
            assert_eq!(execution.output, b_output, "{} [{sname}]", prog.name);
        }
    }
}

#[test]
fn corpus_logs_are_well_formed() {
    for prog in corpus::terminating() {
        let session = PpdSession::prepare(prog.source, EBlockStrategy::per_subroutine()).unwrap();
        let config = RunConfig { inputs: inputs_for(prog.name), ..RunConfig::default() };
        let execution = session.execute(config);
        for p in 0..session.rp().procs.len() {
            let pid = ProcId(p as u32);
            let intervals = execution.logs.intervals(pid);
            for iv in &intervals {
                if let Some(post) = iv.postlog_pos {
                    assert!(post > iv.prelog_pos, "{}: inverted interval", prog.name);
                }
            }
            if execution.outcome.is_success() {
                assert!(
                    execution.logs.open_intervals(pid).is_empty(),
                    "{}: dangling prelogs after success",
                    prog.name
                );
            }
        }
        // Logs survive a serialization round trip.
        let json = execution.logs.to_json().unwrap();
        let back = ppd::log::LogStore::from_json(&json).unwrap();
        assert_eq!(back.total_entries(), execution.logs.total_entries());
    }
}

#[test]
fn corpus_race_expectations_hold() {
    // has_race means: at least one of the probed schedules exhibits a
    // race. Race-free programs must be clean under EVERY probed schedule.
    let schedules = [
        SchedulerSpec::RoundRobin,
        SchedulerSpec::Random { seed: 1 },
        SchedulerSpec::Random { seed: 7 },
        SchedulerSpec::Random { seed: 23 },
        SchedulerSpec::RunToBlock,
    ];
    for prog in corpus::terminating() {
        let session = PpdSession::prepare(prog.source, EBlockStrategy::per_subroutine()).unwrap();
        let mut any_race = false;
        for sched in schedules {
            let config = RunConfig {
                scheduler: sched,
                inputs: inputs_for(prog.name),
                ..RunConfig::default()
            };
            let execution = session.execute(config);
            let controller = Controller::new(&session, &execution);
            let races = controller.races();
            if prog.has_race {
                any_race |= !races.is_empty();
            } else {
                assert!(
                    races.is_empty(),
                    "{} should be race-free under {sched:?}: {:?}",
                    prog.name,
                    races.iter().map(|r| &r.description).collect::<Vec<_>>()
                );
            }
        }
        if prog.has_race {
            assert!(any_race, "{} should race under some probed schedule", prog.name);
        }
    }
}

#[test]
fn debugging_phase_starts_on_every_corpus_program() {
    for prog in corpus::terminating() {
        let session = PpdSession::prepare(prog.source, EBlockStrategy::per_subroutine()).unwrap();
        let config = RunConfig { inputs: inputs_for(prog.name), ..RunConfig::default() };
        let execution = session.execute(config);
        let mut controller = Controller::new(&session, &execution);
        let root = controller.start().unwrap_or_else(|e| panic!("{}: {e}", prog.name));
        assert!(!controller.graph().is_empty());
        // Flowback from the root never panics and stays inside the graph.
        let slice = controller.backward_slice(root);
        assert!(!slice.is_empty());
        // Expanding every unexpanded node (one round) works.
        for node in controller.unexpanded() {
            controller
                .expand(node)
                .unwrap_or_else(|e| panic!("{}: expansion failed: {e}", prog.name));
        }
    }
}

#[test]
fn deadlock_prone_program_both_ways() {
    let prog = corpus::DINING_PHILOSOPHERS;
    let session = PpdSession::prepare(prog.source, EBlockStrategy::per_subroutine()).unwrap();
    let dead = session.execute(RunConfig::default());
    assert!(dead.outcome.is_deadlock());
    let controller = Controller::new(&session, &dead);
    assert_eq!(controller.deadlock_report().unwrap().len(), 2);

    let ok =
        session.execute(RunConfig { scheduler: SchedulerSpec::RunToBlock, ..RunConfig::default() });
    assert!(ok.outcome.is_success());
}

#[test]
fn determinism_across_identical_runs() {
    for prog in corpus::terminating() {
        let session = PpdSession::prepare(prog.source, EBlockStrategy::per_subroutine()).unwrap();
        let config = RunConfig {
            scheduler: SchedulerSpec::Random { seed: 11 },
            inputs: inputs_for(prog.name),
            ..RunConfig::default()
        };
        let a = session.execute(config.clone());
        let b = session.execute(config);
        assert_eq!(a.output, b.output, "{}", prog.name);
        assert_eq!(a.steps, b.steps, "{}", prog.name);
        assert_eq!(a.logs.total_entries(), b.logs.total_entries(), "{}", prog.name);
    }
}

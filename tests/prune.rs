//! Candidate-pruned race detection is *correctness-preserving*: on every
//! corpus program and every on-disk example program, `detect_races_pruned`
//! (fed by the GMOD/GREF-derived candidate index) returns exactly the
//! race set of `detect_races_naive`, while examining fewer edge pairs.

use ppd::analysis::EBlockStrategy;
use ppd::core::{PpdSession, RunConfig};
use ppd::graph::{
    detect_races_naive, detect_races_naive_counted, detect_races_pruned,
    detect_races_pruned_counted, VectorClocks,
};
use ppd::lang::corpus;

/// Runs `source`, then checks naive/pruned agreement and returns
/// `(naive_pairs, pruned_pairs)` for the caller's shrinkage assertions.
fn check(name: &str, source: &str) -> (usize, usize) {
    let session = PpdSession::prepare(source, EBlockStrategy::per_subroutine())
        .unwrap_or_else(|e| panic!("{name}: {e}"));
    let candidates = &session.analyses().race_candidates;
    let execution = session.execute(RunConfig { inputs: inputs_for(name), ..RunConfig::default() });
    let g = &execution.pgraph;
    let ord = VectorClocks::compute(g);

    let naive = detect_races_naive(g, &ord);
    let pruned = detect_races_pruned(g, &ord, candidates);
    assert_eq!(naive, pruned, "{name}: pruning changed the race set");

    let (_, naive_pairs) = detect_races_naive_counted(g, &ord);
    let (also_pruned, pruned_pairs) = detect_races_pruned_counted(g, &ord, candidates);
    assert_eq!(also_pruned, naive, "{name}: counted variant disagrees");
    assert!(
        pruned_pairs <= naive_pairs,
        "{name}: pruned examined more pairs ({pruned_pairs} > {naive_pairs})"
    );
    (naive_pairs, pruned_pairs)
}

fn inputs_for(name: &str) -> Vec<Vec<i64>> {
    match name {
        "fig41" => vec![vec![5, 3, 2]],
        "flowback_demo" => vec![vec![42, 10]],
        "overdraw.ppd" => vec![vec![50]],
        _ => Vec::new(),
    }
}

#[test]
fn corpus_pruned_equals_naive() {
    for prog in corpus::terminating() {
        check(prog.name, prog.source);
    }
}

#[test]
fn example_programs_pruned_equals_naive_and_shrinks() {
    // Multi-process example programs where at least two processes touch
    // shared state: the candidate index must cut the comparison count.
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("programs");
    let mut shrank_somewhere = false;
    for file in ["bank.ppd", "overdraw.ppd", "phils.ppd", "lintdemo.ppd"] {
        let source = std::fs::read_to_string(dir.join(file)).unwrap();
        let (naive_pairs, pruned_pairs) = check(file, &source);
        assert!(naive_pairs > 0, "{file}: expected cross-process pairs to compare");
        if pruned_pairs < naive_pairs {
            shrank_somewhere = true;
        }
    }
    assert!(shrank_somewhere, "pruning never reduced the pair count on any example program");
}

#[test]
fn overdraw_pruning_strictly_shrinks() {
    // The flagship demo: the teller/auditor race survives pruning while
    // strictly fewer edge pairs reach a Definition 6.4 comparison.
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("programs");
    let source = std::fs::read_to_string(dir.join("overdraw.ppd")).unwrap();
    let (naive_pairs, pruned_pairs) = check("overdraw.ppd", &source);
    assert!(
        pruned_pairs < naive_pairs,
        "expected strict shrink, got {pruned_pairs} vs {naive_pairs}"
    );
}

//! Candidate-pruned race detection is *correctness-preserving*: on every
//! corpus program, every on-disk example program, and randomized
//! schedules, each stage of the static prune chain
//! `absint ⊆ typed ⊆ mhp ⊆ gmod/gref ⊆ naive` returns exactly the race
//! set of `detect_races_naive` while examining no more edge pairs than
//! the stage before it — and the parallel backend at 8 jobs agrees
//! bit-for-bit with the sequential scan at 1 job.

use ppd::analysis::EBlockStrategy;
use ppd::core::{PpdSession, RunConfig};
use ppd::graph::{
    detect_races_absint_counted, detect_races_mhp_counted, detect_races_naive_counted,
    detect_races_par_counted, detect_races_pruned_counted, detect_races_typed_counted,
    VectorClocks,
};
use ppd::lang::corpus;
use ppd::runtime::SchedulerSpec;

/// Per-stage examined-pair counts for one execution, after asserting
/// that every stage found the identical race set.
struct StagePairs {
    naive: usize,
    pruned: usize,
    mhp: usize,
    typed: usize,
    absint: usize,
}

/// Runs `source` under `scheduler`, checks that all five detector
/// stages agree on the race set (sequentially and at 8 jobs), and that
/// the examined-pair counts never grow along the chain.
fn check_schedule(name: &str, source: &str, scheduler: SchedulerSpec) -> StagePairs {
    let session = PpdSession::prepare(source, EBlockStrategy::per_subroutine())
        .unwrap_or_else(|e| panic!("{name}: {e}"));
    let a = session.analyses();
    let execution =
        session.execute(RunConfig { scheduler, inputs: inputs_for(name), ..RunConfig::default() });
    let g = &execution.pgraph;
    let ord = VectorClocks::compute(g);

    let (naive, naive_pairs) = detect_races_naive_counted(g, &ord);
    let (pruned, pruned_pairs) = detect_races_pruned_counted(g, &ord, &a.race_candidates);
    let (mhp, mhp_pairs) = detect_races_mhp_counted(g, &ord, &a.mhp_candidates);
    let (typed, typed_pairs) = detect_races_typed_counted(g, &ord, &a.typed_candidates);
    let (absint, absint_pairs) = detect_races_absint_counted(g, &ord, &a.absint_candidates);

    assert_eq!(naive, pruned, "{name}: gmod/gref pruning changed the race set");
    assert_eq!(naive, mhp, "{name}: MHP pruning changed the race set");
    assert_eq!(naive, typed, "{name}: typed pruning changed the race set");
    assert_eq!(naive, absint, "{name}: interval pruning changed the race set");
    assert!(
        pruned_pairs <= naive_pairs,
        "{name}: pruned examined more pairs ({pruned_pairs} > {naive_pairs})"
    );
    assert!(mhp_pairs <= pruned_pairs, "{name}: mhp examined more pairs than gmod/gref");
    assert!(typed_pairs <= mhp_pairs, "{name}: typed examined more pairs than mhp");
    assert!(absint_pairs <= typed_pairs, "{name}: absint examined more pairs than typed");

    // The parallel backend over the final (absint) candidate index must
    // agree bit-for-bit at 1 and 8 jobs — same races, same pair count.
    for jobs in [1, 8] {
        let (par, par_pairs) = detect_races_par_counted(g, &ord, Some(&a.absint_candidates), jobs);
        assert_eq!(par, naive, "{name}: parallel scan at {jobs} jobs disagrees");
        assert_eq!(par_pairs, absint_pairs, "{name}: parallel pair count at {jobs} jobs drifted");
    }

    StagePairs {
        naive: naive_pairs,
        pruned: pruned_pairs,
        mhp: mhp_pairs,
        typed: typed_pairs,
        absint: absint_pairs,
    }
}

fn check(name: &str, source: &str) -> StagePairs {
    check_schedule(name, source, SchedulerSpec::RoundRobin)
}

fn inputs_for(name: &str) -> Vec<Vec<i64>> {
    match name {
        "fig41" => vec![vec![5, 3, 2]],
        "flowback_demo" => vec![vec![42, 10]],
        "overdraw.ppd" => vec![vec![50]],
        "bounds.ppd" => vec![vec![3]],
        _ => Vec::new(),
    }
}

#[test]
fn corpus_prune_chain_preserves_races() {
    for prog in corpus::terminating() {
        check(prog.name, prog.source);
    }
}

#[test]
fn corpus_prune_chain_preserves_races_on_random_schedules() {
    for prog in corpus::terminating() {
        for seed in 0..4 {
            check_schedule(prog.name, prog.source, SchedulerSpec::Random { seed });
        }
    }
}

#[test]
fn example_programs_prune_chain_preserves_races_and_shrinks() {
    // Multi-process example programs where at least two processes touch
    // shared state: the candidate index must cut the comparison count.
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("programs");
    let mut shrank_somewhere = false;
    for file in ["bank.ppd", "overdraw.ppd", "phils.ppd", "lintdemo.ppd", "bounds.ppd"] {
        let source = std::fs::read_to_string(dir.join(file)).unwrap();
        let p = check(file, &source);
        assert!(p.naive > 0, "{file}: expected cross-process pairs to compare");
        if p.absint < p.naive {
            shrank_somewhere = true;
        }
        for seed in [3, 11] {
            check_schedule(file, &source, SchedulerSpec::Random { seed });
        }
    }
    assert!(shrank_somewhere, "pruning never reduced the pair count on any example program");
}

#[test]
fn overdraw_pruning_strictly_shrinks() {
    // The flagship demo: the teller/auditor race survives pruning while
    // strictly fewer edge pairs reach a Definition 6.4 comparison.
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("programs");
    let source = std::fs::read_to_string(dir.join("overdraw.ppd")).unwrap();
    let p = check("overdraw.ppd", &source);
    assert!(p.pruned < p.naive, "expected strict shrink, got {} vs {}", p.pruned, p.naive);
}

#[test]
fn element_granular_intervals_prune_disjoint_array_halves() {
    // Two processes sweep provably disjoint halves of one array. The
    // GMOD/GREF, MHP and typed stages must keep the `(a, Lo, Hi)`
    // candidate (both processes write `a` concurrently), but the
    // interval stage proves the written regions disjoint and drops it —
    // while the dynamic race set (empty: the cell-granular graph never
    // sees two processes on one element) is preserved by every stage.
    use ppd::lang::{ProcId, VarId};
    let src = "shared int a[8]; \
               process Lo { int i; for (i = 0; i < 4; i = i + 1) { a[i] = i; } } \
               process Hi { int i; for (i = 4; i < 8; i = i + 1) { a[i] = i; } }";
    let p = check("disjoint_halves", src);
    assert_eq!(p.absint, 0, "no pair survives to a Definition 6.4 comparison");
    // The cell-granular dynamic scan already sees the halves as
    // separate cells, so the earlier candidate-filtered stages examine
    // no pairs either — absint's contribution here is static (below).
    assert_eq!(p.mhp, 0, "disjoint cells share no dynamic group at the MHP stage");
    assert_eq!(p.typed, 0, "disjoint cells share no dynamic group at the typed stage");

    let session = PpdSession::prepare(src, EBlockStrategy::per_subroutine()).unwrap();
    let rp = session.rp();
    let a = session.analyses();
    let arr =
        (0..rp.var_count() as u32).map(VarId).find(|&v| rp.var_name(v) == "a").expect("array `a`");
    let (lo, hi) = (ProcId(0), ProcId(1));
    assert!(a.race_candidates.allows(arr, lo, hi), "GMOD/GREF keeps the candidate");
    assert!(a.mhp_candidates.allows(arr, lo, hi), "the sweeps are MHP-concurrent");
    assert!(a.typed_candidates.allows(arr, lo, hi), "no channel typing orders them");
    assert!(
        !a.absint_candidates.allows(arr, lo, hi),
        "interval analysis must prove the halves disjoint"
    );
}

//! Property suite for the vendored `lzb` block compressor that segment
//! format v2 frames its payloads with.
//!
//! Round-trip fidelity over adversarial input shapes (random,
//! all-zero, repetitive, incompressible), the framing overhead bound,
//! and rejection of damaged frames: every truncation and every
//! single-byte corruption must fail with a *positioned* error — the
//! store's recovery scan depends on a damaged frame never decoding to
//! plausible garbage.

use lzb::{compress, decompress, decompress_into, frame_sizes, LzbError, MAX_FRAME_OVERHEAD};
use proptest::prelude::*;

/// Deterministic xorshift bytes: effectively incompressible input.
fn noise(seed: u64, len: usize) -> Vec<u8> {
    let mut s = seed | 1;
    (0..len)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 24) as u8
        })
        .collect()
}

fn assert_round_trip(input: &[u8]) {
    let frame = compress(input);
    assert!(
        frame.len() <= input.len() + MAX_FRAME_OVERHEAD,
        "frame for {} bytes expanded to {} (> input + MAX_FRAME_OVERHEAD)",
        input.len(),
        frame.len()
    );
    let (uncomp, total) = frame_sizes(&frame).expect("well-formed frame");
    assert_eq!(total, frame.len(), "frame_sizes sees the whole frame");
    assert_eq!(uncomp, input.len());
    let back = decompress(&frame).expect("round trip decodes");
    assert_eq!(back, input, "round trip must be lossless");
}

#[test]
fn fixed_shapes_round_trip() {
    assert_round_trip(b"");
    assert_round_trip(b"a");
    assert_round_trip(b"abcd");
    assert_round_trip(&[0u8; 100_000]);
    assert_round_trip(&b"the quick brown fox ".repeat(5_000));
    assert_round_trip(&noise(42, 100_000));
    // Compressible shapes actually compress.
    assert!(compress(&[0u8; 100_000]).len() < 1_000, "zeros compress hard");
    assert!(compress(&b"abcabcabc".repeat(10_000)).len() < 10_000, "repeats compress");
}

#[test]
fn decompress_into_appends_and_reports_consumed_bytes() {
    let a = b"first block first block first block".to_vec();
    let b = noise(7, 300);
    let mut frames = compress(&a);
    frames.extend_from_slice(&compress(&b));
    let mut out = Vec::new();
    let used = decompress_into(&frames, &mut out).expect("first frame decodes");
    assert_eq!(out, a);
    let used2 = decompress_into(&frames[used..], &mut out).expect("second frame decodes");
    assert_eq!(used + used2, frames.len());
    assert_eq!(&out[a.len()..], &b[..], "second frame appended after the first");
}

/// Every proper prefix of a frame is rejected, and the reported offset
/// points inside (or just past) the prefix we handed in.
fn assert_truncations_rejected(input: &[u8]) {
    let frame = compress(input);
    // Sample prefixes densely at the edges, sparsely in the middle.
    let len = frame.len();
    let cuts: Vec<usize> = (0..len.min(8))
        .chain((8..len).step_by((len / 37).max(1)))
        .chain(len.saturating_sub(6)..len)
        .collect();
    for cut in cuts {
        let mut out = Vec::new();
        let e: LzbError =
            decompress_into(&frame[..cut], &mut out).expect_err("truncated frame must not decode");
        assert!(e.offset <= cut, "error offset {} beyond the {cut}-byte prefix", e.offset);
        assert!(out.is_empty(), "failed decode must not leave partial output");
    }
}

/// Every single-byte corruption is rejected: the CRC trailer (over the
/// *decoded* bytes) backstops whatever the token stream fails to catch.
fn assert_corruptions_rejected(input: &[u8]) {
    let frame = compress(input);
    let step = (frame.len() / 61).max(1);
    for pos in (0..frame.len()).step_by(step) {
        for flip in [0x01u8, 0x80] {
            let mut bad = frame.clone();
            bad[pos] ^= flip;
            let mut out = Vec::new();
            match decompress_into(&bad, &mut out) {
                Err(e) => {
                    assert!(
                        e.offset <= bad.len(),
                        "error offset {} beyond frame length {}",
                        e.offset,
                        bad.len()
                    );
                    assert!(out.is_empty(), "failed decode must truncate its output");
                }
                Ok(_) => panic!(
                    "flip of bit {flip:#04x} at byte {pos} decoded successfully \
                     ({}-byte frame)",
                    frame.len()
                ),
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Random bytes of random length round-trip losslessly.
    #[test]
    fn random_input_round_trips(bytes in proptest::collection::vec(any::<u8>(), 0..4096)) {
        assert_round_trip(&bytes);
    }

    /// All-zero, repetitive and incompressible shapes round-trip at
    /// every length.
    #[test]
    fn shaped_input_round_trips(len in 0usize..8192, seed in any::<u64>()) {
        assert_round_trip(&vec![0u8; len]);
        let unit = [(seed as u8), (seed >> 8) as u8, (seed >> 16) as u8];
        let repetitive: Vec<u8> =
            unit.iter().copied().cycle().take(len).collect();
        assert_round_trip(&repetitive);
        assert_round_trip(&noise(seed, len));
    }

    /// Truncated frames are rejected with positioned errors, whatever
    /// the payload looked like.
    #[test]
    fn truncated_frames_rejected(bytes in proptest::collection::vec(any::<u8>(), 1..2048), seed in any::<u64>()) {
        assert_truncations_rejected(&bytes);
        assert_truncations_rejected(&vec![7u8; bytes.len()]);
        assert_truncations_rejected(&noise(seed, bytes.len()));
    }

    /// Bit-flipped frames are rejected with positioned errors.
    #[test]
    fn corrupted_frames_rejected(bytes in proptest::collection::vec(any::<u8>(), 1..1024), seed in any::<u64>()) {
        assert_corruptions_rejected(&bytes);
        assert_corruptions_rejected(&b"ppd ppd ppd ppd ".repeat(1 + bytes.len() / 16));
        assert_corruptions_rejected(&noise(seed, bytes.len()));
    }
}

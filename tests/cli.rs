//! Integration tests for the `ppd` command-line tool, exercising the
//! binary end to end on the sample programs in `programs/`.

use std::process::{Command, Stdio};

fn ppd() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ppd"))
}

fn run_ppd(args: &[&str]) -> (String, String, bool) {
    let out = ppd().args(args).stdin(Stdio::null()).output().expect("ppd binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn check_summarizes_a_program() {
    let (stdout, _, ok) = run_ppd(&["check", "programs/bank.ppd"]);
    assert!(ok);
    assert!(stdout.contains("2 process(es)"), "{stdout}");
    assert!(stdout.contains("e-blocks"), "{stdout}");
}

#[test]
fn run_reports_failure_with_line() {
    let (stdout, _, ok) = run_ppd(&["run", "programs/overdraw.ppd", "--inputs", "95"]);
    assert!(!ok, "failing program exits nonzero");
    assert!(stdout.contains("FAILED in Teller"), "{stdout}");
    assert!(stdout.contains("assertion failed"), "{stdout}");
    assert!(stdout.contains("(line"), "{stdout}");
}

#[test]
fn run_succeeds_with_good_input() {
    let (stdout, _, ok) = run_ppd(&["run", "programs/overdraw.ppd", "--inputs", "50"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("completed"), "{stdout}");
    assert!(stdout.contains("[Teller] 44"), "balance 100-50-6: {stdout}");
}

#[test]
fn races_detects_the_bank_race_and_exits_nonzero() {
    let (stdout, _, ok) = run_ppd(&["races", "programs/bank.ppd", "--schedules", "3"]);
    assert!(!ok);
    assert!(stdout.contains("write/write race on `accounts[0]`"), "{stdout}");
}

#[test]
fn races_clean_program_exits_zero() {
    let (stdout, _, ok) =
        run_ppd(&["races", "programs/overdraw.ppd", "--inputs", "50", "--schedules", "3"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("race-free"), "{stdout}");
}

#[test]
fn deadlock_is_reported_with_semaphore_names() {
    let (stdout, _, ok) = run_ppd(&["run", "programs/phils.ppd"]);
    assert!(!ok);
    assert!(stdout.contains("DEADLOCK"), "{stdout}");
    assert!(stdout.contains("fork0") && stdout.contains("fork1"), "{stdout}");
}

#[test]
fn dot_outputs_digraphs() {
    for what in ["static", "parallel", "dynamic"] {
        let (stdout, stderr, ok) = run_ppd(&["dot", "programs/bank.ppd", "--what", what]);
        assert!(ok, "{what}: {stderr}");
        assert!(stdout.contains("digraph"), "{what}: {stdout}");
    }
}

#[test]
fn breakpoint_halts_run() {
    // Line 8: the unprotected increment in TellerB... (line numbers are
    // 1-based in programs/bank.ppd; pick the lock line in TellerA).
    let (stdout, _, ok) = run_ppd(&["run", "programs/bank.ppd", "--break", "8"]);
    assert!(ok, "breakpoint halt exits zero: {stdout}");
    assert!(stdout.contains("breakpoint in"), "{stdout}");
}

#[test]
fn debug_repl_flows_back_from_failure() {
    let mut child = ppd()
        .args(["debug", "programs/overdraw.ppd", "--inputs", "95"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn");
    use std::io::Write;
    child.stdin.as_mut().unwrap().write_all(b"graph\nback 7\nquit\n").unwrap();
    let out = child.wait_with_output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("debugging from: assert"), "{stdout}");
    assert!(stdout.contains("balance = balance - amount - charge"), "{stdout}");
}

#[test]
fn debug_stats_flag_reports_replay_engine_counters() {
    // Non-interactive (stdin closed): stats print after the initial
    // query and again at exit.
    let (stdout, _, ok) = run_ppd(&["debug", "programs/bank.ppd", "--stats"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("replay-engine stats after initial query"), "{stdout}");
    assert!(stdout.contains("replays performed"), "{stdout}");
    assert!(stdout.contains("hit rate"), "{stdout}");
    assert!(stdout.contains("log entries scanned"), "{stdout}");
}

#[test]
fn debug_repl_stats_command_prints_counters() {
    let mut child = ppd()
        .args(["debug", "programs/overdraw.ppd", "--inputs", "95"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn");
    use std::io::Write;
    child.stdin.as_mut().unwrap().write_all(b"back 7\nstats\nquit\n").unwrap();
    let out = child.wait_with_output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("replays performed"), "{stdout}");
    assert!(stdout.contains("cache hits"), "{stdout}");
}

#[test]
fn lint_allowlist_script_stays_in_sync() {
    // The CI gate: every example program's diagnostic codes must match
    // programs/lint-allow.txt exactly, so lint changes are forced to
    // update the allowlist (and reviewers see the drift).
    let out = Command::new("bash")
        .arg("scripts/lint_programs.sh")
        .env("PPD", env!("CARGO_BIN_EXE_ppd"))
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("bash runs");
    assert!(
        out.status.success(),
        "lint_programs.sh failed:\n{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn unknown_command_prints_usage() {
    let (_, stderr, ok) = run_ppd(&["frobnicate", "programs/bank.ppd"]);
    assert!(!ok);
    assert!(stderr.contains("usage:"), "{stderr}");
}

#[test]
fn missing_file_is_an_error() {
    let (_, stderr, ok) = run_ppd(&["check", "programs/nope.ppd"]);
    assert!(!ok);
    assert!(stderr.contains("cannot read"), "{stderr}");
}

#[test]
fn compile_error_is_reported() {
    let dir = std::env::temp_dir().join("ppd_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("bad.ppd");
    std::fs::write(&bad, "process M { undeclared = 1; }").unwrap();
    let (_, stderr, ok) = run_ppd(&["check", bad.to_str().unwrap()]);
    assert!(!ok);
    assert!(stderr.contains("compile error"), "{stderr}");
    assert!(stderr.contains("undeclared"), "{stderr}");
}

#[test]
fn save_and_load_execution_record() {
    let dir = std::env::temp_dir().join("ppd_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("exec.json");
    let path_s = path.to_str().unwrap();
    let (stdout, _, ok) =
        run_ppd(&["run", "programs/overdraw.ppd", "--inputs", "95", "--save", path_s]);
    assert!(!ok, "program failed (that's the point)");
    assert!(stdout.contains("execution saved"), "{stdout}");

    // Offline debugging from the saved record, without re-running.
    let mut child = ppd()
        .args(["debug", "programs/overdraw.ppd", "--load", path_s])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .unwrap();
    use std::io::Write;
    child.stdin.as_mut().unwrap().write_all(b"graph\nquit\n").unwrap();
    let out = child.wait_with_output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("loaded execution"), "{stdout}");
    assert!(stdout.contains("debugging from: assert"), "{stdout}");
}

#[test]
fn log_pack_inspect_verify_round_trip() {
    let dir = std::env::temp_dir().join("ppd_cli_test").join("log-pack");
    let _ = std::fs::remove_dir_all(&dir);
    let dir_s = dir.to_str().unwrap().to_owned();
    let (stdout, stderr, ok) = run_ppd(&["log", "pack", "programs/bank.ppd", &dir_s]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("packed"), "{stdout}");
    let (stdout, _, ok) = run_ppd(&["log", "inspect", &dir_s]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("entries decoded while inspecting: 0 (footers only)"), "{stdout}");
    let (stdout, _, ok) = run_ppd(&["log", "verify", &dir_s]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("ok:"), "{stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn log_verify_flags_payload_corruption() {
    let dir = std::env::temp_dir().join("ppd_cli_test").join("log-corrupt");
    let _ = std::fs::remove_dir_all(&dir);
    let dir_s = dir.to_str().unwrap().to_owned();
    let (_, stderr, ok) = run_ppd(&["log", "pack", "programs/bank.ppd", &dir_s]);
    assert!(ok, "{stderr}");
    // Flip a payload byte in the first segment of process 0.
    let victim = dir.join("p0000-s000000.seg");
    let mut bytes = std::fs::read(&victim).expect("segment exists");
    bytes[12] ^= 0x40;
    std::fs::write(&victim, &bytes).unwrap();
    let (_, stderr, ok) = run_ppd(&["log", "verify", &dir_s]);
    assert!(!ok, "corrupt store must fail verification");
    assert!(stderr.contains("payload crc mismatch"), "{stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn races_over_log_dir_match_in_memory() {
    // The CI smoke check in test form: probing schedules through
    // on-disk stores must print byte-identical findings.
    let dir = std::env::temp_dir().join("ppd_cli_test").join("races-dir");
    let _ = std::fs::remove_dir_all(&dir);
    let dir_s = dir.to_str().unwrap().to_owned();
    let (baseline, _, ok1) = run_ppd(&["races", "programs/bank.ppd", "--schedules", "3"]);
    let (via_disk, _, ok2) =
        run_ppd(&["races", "programs/bank.ppd", "--schedules", "3", "--log-dir", &dir_s]);
    assert_eq!(ok1, ok2);
    assert_eq!(baseline, via_disk, "race findings diverged between memory and disk");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn run_log_dir_streams_then_reloads() {
    let dir = std::env::temp_dir().join("ppd_cli_test").join("run-dir");
    let _ = std::fs::remove_dir_all(&dir);
    let dir_s = dir.to_str().unwrap().to_owned();
    let (stdout, _, ok) =
        run_ppd(&["run", "programs/overdraw.ppd", "--inputs", "50", "--log-dir", &dir_s]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("logs streamed to"), "{stdout}");
    // Same command again: the store exists, so the run is replayed from
    // disk instead of re-executed.
    let (stdout, _, ok) =
        run_ppd(&["run", "programs/overdraw.ppd", "--inputs", "50", "--log-dir", &dir_s]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("loaded segmented log store from"), "{stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn dot_pdg_outputs_full_static_graph() {
    let (stdout, _, ok) = run_ppd(&["dot", "programs/bank.ppd", "--what", "pdg"]);
    assert!(ok);
    assert!(stdout.contains("digraph static_TellerA"), "{stdout}");
    assert!(stdout.contains("style=dashed"), "{stdout}");
}

#[test]
fn debug_trace_out_writes_chrome_trace_with_all_layers() {
    let dir = std::env::temp_dir().join("ppd_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("trace.json");
    let path_s = path.to_str().unwrap();
    let (_, stderr, ok) = run_ppd(&["debug", "programs/lintdemo.ppd", "--trace-out", path_s]);
    assert!(ok, "{stderr}");
    assert!(stderr.contains("span(s) written to"), "{stderr}");
    let trace = std::fs::read_to_string(&path).expect("trace file written");
    assert!(trace.starts_with("{\"traceEvents\":[\n"), "bad envelope: {trace}");
    assert!(trace.trim_end().ends_with("]}"), "unterminated envelope");
    // The timeline must show every debugging-phase subsystem: the
    // runtime's logging, replay (cold replays miss the cache, so both
    // layers appear), and the race scan --trace-out triggers.
    for cat in ["runtime", "replay", "cache", "race"] {
        assert!(trace.contains(&format!("\"cat\":\"{cat}\"")), "layer {cat} missing:\n{trace}");
    }
    assert!(trace.contains("\"pid\":1"), "{trace}");
    assert!(trace.contains("\"ph\":\"X\""), "{trace}");
}

#[test]
fn debug_stats_json_emits_metrics_snapshot() {
    let (stdout, _, ok) = run_ppd(&["debug", "programs/bank.ppd", "--stats", "--format", "json"]);
    assert!(ok, "{stdout}");
    // The snapshot is one JSON object per `--stats` print, exposing the
    // raw metrics registry sections and the core counters by name.
    let line = stdout.lines().find(|l| l.starts_with('{')).expect("json snapshot line");
    for key in ["\"counters\"", "\"gauges\"", "\"histograms\""] {
        assert!(line.contains(key), "missing {key}: {line}");
    }
    for metric in ["\"replay.replays\"", "\"cache.hits\"", "\"query.latency_ns\""] {
        assert!(line.contains(metric), "missing {metric}: {line}");
    }
}

#[test]
fn debug_repl_stats_reset_zeroes_counters_but_keeps_cache_warm() {
    let mut child = ppd()
        .args(["debug", "programs/overdraw.ppd", "--inputs", "95"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .unwrap();
    use std::io::Write;
    child.stdin.as_mut().unwrap().write_all(b"back 7\nstats reset\nstats\nquit\n").unwrap();
    let out = child.wait_with_output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("stats reset (cached traces kept warm)"), "{stdout}");
    // The post-reset `stats` print starts from zero queries/replays…
    let after = stdout.split("stats reset").nth(1).expect("output after reset");
    assert!(after.contains("replays performed     0"), "{after}");
    // …while the memoized traces stay resident for warm re-queries.
    assert!(!after.contains("cached traces         0 (0 bytes)"), "cache was dropped: {after}");
}

#[test]
fn debug_journal_feeds_obs_report_bit_for_bit() {
    let dir = std::env::temp_dir().join("ppd_cli_test").join("journal");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let journal = dir.join("j.jsonl");
    let journal_s = journal.to_str().unwrap();
    let (stdout, stderr, ok) =
        run_ppd(&["debug", "programs/bank.ppd", "--stats", "--journal", journal_s]);
    assert!(ok, "{stderr}");
    assert!(stderr.contains("journal: 1 record(s) appended"), "{stderr}");
    let (report, rerr, rok) = run_ppd(&["obs", "report", journal_s]);
    assert!(rok, "{rerr}");
    // The acceptance invariant: the report's aggregate block reproduces
    // the session's own `--stats` lines bit-for-bit (every counted site
    // fires inside a journaled query on this deterministic run).
    for prefix in [
        "replays performed     ",
        "cache hits / misses   ",
        "evictions             ",
        "trace events          ",
        "log entries scanned   ",
        "queries               ",
    ] {
        let stats_line = stdout
            .lines()
            .find(|l| l.starts_with(prefix))
            .unwrap_or_else(|| panic!("missing `{prefix}` in --stats: {stdout}"));
        assert!(
            report.lines().any(|l| l == stats_line),
            "report does not reproduce `{stats_line}`:\n{report}"
        );
    }
    // And the JSON form parses as one object with the same totals.
    let (json_report, _, jok) = run_ppd(&["obs", "report", journal_s, "--format", "json"]);
    assert!(jok);
    assert!(json_report.trim().starts_with('{'), "{json_report}");
    assert!(json_report.contains("\"queries\":1"), "{json_report}");
    assert!(json_report.contains("\"by_kind\":[{\"kind\":\"start_at\""), "{json_report}");
}

#[test]
fn metrics_out_writes_openmetrics_families() {
    let dir = std::env::temp_dir().join("ppd_cli_test").join("metrics");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let store = dir.join("store");
    let metrics = dir.join("m.txt");
    let (_, stderr, ok) = run_ppd(&[
        "debug",
        "programs/bank.ppd",
        "--log-dir",
        store.to_str().unwrap(),
        "--compress",
        "--metrics-out",
        metrics.to_str().unwrap(),
    ]);
    assert!(ok, "{stderr}");
    let text = std::fs::read_to_string(&metrics).unwrap();
    assert!(text.ends_with("# EOF\n"), "missing EOF terminator: {text}");
    // Global log counters, engine registry families, histogram pieces,
    // and the per-segment heatmap (with file/proc/seq labels) all land
    // in one exposition.
    for needle in [
        "# TYPE ppd_log_segment_entries_decoded counter",
        "ppd_log_segment_entries_decoded_total ",
        "# TYPE ppd_query_latency_ns histogram",
        "ppd_query_latency_ns_bucket{le=\"+Inf\"} ",
        "ppd_query_latency_ns_approx{quantile=\"0.95\"} ",
        "# TYPE ppd_replay_replays counter",
        "ppd_log_segment_heat_entries_decoded_total{file=\"p0000-s000000.seg\",proc=\"0\",seq=\"0\"} ",
    ] {
        assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
    }
}

#[test]
fn flight_out_dumps_and_pretty_prints() {
    let dir = std::env::temp_dir().join("ppd_cli_test").join("flight");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let dump = dir.join("f.json");
    let dump_s = dump.to_str().unwrap();
    let (_, stderr, ok) = run_ppd(&["run", "programs/bank.ppd", "--flight-out", dump_s]);
    assert!(ok, "{stderr}");
    assert!(stderr.contains("flight:"), "{stderr}");
    let text = std::fs::read_to_string(&dump).unwrap();
    assert!(text.starts_with("{\"format\":\"ppd-flight\",\"version\":1"), "{text}");
    let (pretty, perr, pok) = run_ppd(&["obs", "flight", dump_s]);
    assert!(pok, "{perr}");
    assert!(pretty.contains("flight dump"), "{pretty}");
    // The always-on ring saw the CLI command and the runtime finishing.
    assert!(pretty.contains("[cli     ] command"), "{pretty}");
    assert!(pretty.contains("execute_done"), "{pretty}");
}

#[test]
fn log_inspect_format_json_reports_per_segment_stats() {
    let dir = std::env::temp_dir().join("ppd_cli_test").join("inspect-json");
    let _ = std::fs::remove_dir_all(&dir);
    let dir_s = dir.to_str().unwrap().to_owned();
    let (_, stderr, ok) = run_ppd(&[
        "log",
        "pack",
        "programs/bank.ppd",
        &dir_s,
        "--compress",
        "--segment-bytes",
        "4096",
    ]);
    assert!(ok, "{stderr}");
    let (stdout, _, ok) = run_ppd(&["log", "inspect", &dir_s, "--format", "json"]);
    assert!(ok, "{stdout}");
    let line = stdout.trim();
    assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
    for needle in [
        "\"processes\":2",
        "\"compression_ratio\":",
        "\"entries_by_kind\":{\"prelog\":",
        "\"segments\":[{\"file\":\"p0000-s000000.seg\",\"proc\":0,\"seq\":0,\"version\":2",
        "\"blocks\":",
        "\"recovered_tails\":[]",
        "\"entries_decoded_while_inspecting\":0",
    ] {
        assert!(line.contains(needle), "missing `{needle}` in: {line}");
    }
}

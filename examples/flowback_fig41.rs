//! The paper's Figure 4.1, reproduced end to end.
//!
//! Builds the dynamic program dependence graph of the six-statement
//! fragment (with the fictional `%3` parameter node and the `SubD`
//! sub-graph node), prints it, then expands the sub-graph node the way
//! the paper's user would ask for "more execution detail" (§4.2, §5.2).
//!
//! Run with: `cargo run --example flowback_fig41`

#![allow(clippy::field_reassign_with_default)]

use ppd::analysis::EBlockStrategy;
use ppd::core::{Controller, PpdSession, RunConfig};
use ppd::graph::{dot, DynNodeKind};
use ppd::lang::ProcId;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let prog = ppd::lang::corpus::FIG_4_1;
    println!("=== {} ===\n{}", prog.description, prog.source);

    let session = PpdSession::prepare(prog.source, EBlockStrategy::per_subroutine())?;
    let mut config = RunConfig::default();
    config.inputs = vec![vec![5, 3, 2]]; // a, b, c
    let execution = session.execute(config);
    println!("program output: {:?}", execution.output);

    let mut controller = Controller::new(&session, &execution);
    controller.start_at(ProcId(0))?;

    println!("\n=== dynamic graph (Main's interval) ===");
    print_graph(controller.graph());

    // Expand SubD: "When the user wants to know more execution detail
    // about the sub-graph node, the debugger presents the user a
    // detailed graph corresponding to the sub-graph node."
    let subd = controller
        .graph()
        .nodes()
        .iter()
        .find(|n| n.label.contains("SubD(") && matches!(n.kind, DynNodeKind::SubGraph { .. }))
        .map(|n| n.id)
        .expect("SubD call node");
    println!("\n=== expanding the SubD sub-graph node ===");
    let report = controller.expand(subd)?;
    println!("added {} nodes:", report.nodes.len());
    for &n in &report.nodes {
        let node = controller.graph().node(n);
        let value = node.value.as_ref().map(|v| format!("  = {v}")).unwrap_or_default();
        println!("  {}{}", node.label, value);
    }

    println!("\n=== Graphviz DOT ===");
    println!("{}", dot::dynamic_to_dot(controller.graph()));
    Ok(())
}

fn print_graph(graph: &ppd::graph::DynamicGraph) {
    for n in graph.nodes() {
        let kind = match &n.kind {
            DynNodeKind::Entry => "entry   ",
            DynNodeKind::Exit => "exit    ",
            DynNodeKind::Singular { .. } => "singular",
            DynNodeKind::SubGraph { expanded: false, .. } => "subgraph",
            DynNodeKind::SubGraph { expanded: true, .. } => "expanded",
            DynNodeKind::Param { .. } => "param   ",
            DynNodeKind::LoopGraph { .. } => "loop    ",
        };
        let value = n.value.as_ref().map(|v| format!("  = {v}")).unwrap_or_default();
        println!("  [{kind}] {}{}", n.label, value);
        for (p, k) in graph.dependence_preds(n.id) {
            println!("        <-[{k:?}]- {}", graph.node(p).label);
        }
    }
}

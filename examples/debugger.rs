//! An interactive PPD debugger — the "easy-to-use interface" the paper's
//! §7 names as the long-range goal.
//!
//! Reads commands from stdin, so it works both interactively and piped:
//!
//! ```text
//! cargo run --example debugger                       # demo program
//! echo 'run
//! root
//! back 0
//! races
//! quit' | cargo run --example debugger
//! ```
//!
//! Commands: `help`, `source`, `break <line>`, `run [seed]`, `root`,
//! `graph`, `back <node>`, `slice <node>`, `expand <node>`, `races`,
//! `deadlock`, `state`, `intervals`, `dot`, `quit`.

use ppd::analysis::EBlockStrategy;
use ppd::core::{shared_state_at, Controller, Execution, PpdSession, RunConfig};
use ppd::graph::{dot, DynNodeId, DynNodeKind};
use ppd::lang::ProcId;
use ppd::runtime::SchedulerSpec;
use std::io::{self, BufRead, Write};

const DEMO: &str = "\
shared int balance = 100;
sem guard = 1;

int fee(int amount) {
    int pct = amount / 10;
    return pct + 1;
}

process Teller {
    p(guard);
    int amount = input();
    int charge = fee(amount);
    balance = balance - amount - charge;
    int result = balance;
    v(guard);
    assert(result >= 0);
    print(result);
}

process Auditor {
    p(guard);
    balance = balance + 0;
    v(guard);
}
";

struct Debugger {
    session: PpdSession,
    execution: Option<Execution>,
    breakpoints: Vec<ppd::lang::StmtId>,
}

fn main() -> io::Result<()> {
    println!("PPD interactive debugger — type `help` for commands.\n");
    let session =
        PpdSession::prepare(DEMO, EBlockStrategy::per_subroutine()).expect("demo compiles");
    let mut dbg = Debugger { session, execution: None, breakpoints: Vec::new() };
    println!("loaded demo program ({} processes). `source` to view.", dbg.session.rp().procs.len());

    let stdin = io::stdin();
    print!("ppd> ");
    io::stdout().flush()?;
    for line in stdin.lock().lines() {
        let line = line?;
        let mut parts = line.split_whitespace();
        let cmd = parts.next().unwrap_or("");
        let arg = parts.next();
        match cmd {
            "" => {}
            "help" => help(),
            "quit" | "exit" => break,
            "source" => println!("{DEMO}"),
            "break" => dbg.cmd_break(arg),
            "run" => dbg.cmd_run(arg),
            "root" | "graph" | "back" | "slice" | "expand" | "races" | "deadlock" | "state"
            | "intervals" | "dot" => dbg.with_execution(cmd, arg),
            other => println!("unknown command `{other}`; try `help`"),
        }
        print!("ppd> ");
        io::stdout().flush()?;
    }
    println!("bye");
    Ok(())
}

fn help() {
    println!(
        "\
  source          show the program
  break <line>    set a breakpoint on a source line
  run [seed]      execute (round-robin, or Random{{seed}})
  root            show the halt node and its immediate causes
  graph           list the dynamic-graph fragment built so far
  back <node>     one flowback step from node #n
  slice <node>    full backward slice from node #n
  expand <node>   expand an unexpanded sub-graph/loop node
  races           race report for this execution instance
  deadlock        deadlock report, if deadlocked
  state           restored shared state at the halt
  intervals       log intervals of the halted process
  dot             Graphviz DOT of the dynamic graph
  quit            exit"
    );
}

impl Debugger {
    fn cmd_break(&mut self, arg: Option<&str>) {
        let Some(line) = arg.and_then(|a| a.parse::<u32>().ok()) else {
            println!("usage: break <line>");
            return;
        };
        let stmts = self.session.analyses().database.stmts_at_line(line);
        if stmts.is_empty() {
            println!("no statement starts on line {line}");
            return;
        }
        self.breakpoints.extend(&stmts);
        println!("breakpoint at line {line} ({} statement(s))", stmts.len());
    }

    fn cmd_run(&mut self, arg: Option<&str>) {
        let scheduler = match arg.and_then(|a| a.parse::<u64>().ok()) {
            Some(seed) => SchedulerSpec::Random { seed },
            None => SchedulerSpec::RoundRobin,
        };
        let config = RunConfig {
            scheduler,
            inputs: vec![vec![95], vec![]], // Teller withdraws 95: fee makes it overdraw
            breakpoints: self.breakpoints.clone(),
            ..RunConfig::default()
        };
        let execution = self.session.execute(config);
        println!("outcome: {:?}", execution.outcome);
        for &(p, v) in &execution.output {
            println!("  output[{}]: {v}", self.session.rp().proc_name(p));
        }
        println!(
            "logs: {} entries / {} bytes; parallel graph: {} nodes",
            execution.logs.total_entries(),
            execution.logs.total_bytes(),
            execution.pgraph.nodes().len()
        );
        self.execution = Some(execution);
    }

    fn with_execution(&mut self, cmd: &str, arg: Option<&str>) {
        let Some(execution) = self.execution.as_ref() else {
            println!("no execution yet — `run` first");
            return;
        };
        let mut controller = Controller::new(&self.session, execution);
        let root = match controller.start() {
            Ok(r) => r,
            Err(e) => {
                println!("cannot start debugging: {e}");
                return;
            }
        };
        let parse_node = |a: Option<&str>| a.and_then(|s| s.parse::<u32>().ok()).map(DynNodeId);
        match cmd {
            "root" => {
                print_node(&controller, root);
                println!("immediate causes:");
                for (n, k) in controller.flowback(root) {
                    println!("  <-[{k:?}]- #{} {}", n.0, controller.graph().node(n).label);
                }
            }
            "graph" => {
                for n in controller.graph().nodes() {
                    print_node(&controller, n.id);
                }
            }
            "back" => match parse_node(arg) {
                Some(n) if (n.index()) < controller.graph().len() => {
                    for (p, k) in controller.flowback(n) {
                        println!("  <-[{k:?}]- #{} {}", p.0, controller.graph().node(p).label);
                    }
                }
                _ => println!("usage: back <node#>"),
            },
            "slice" => match parse_node(arg) {
                Some(n) if (n.index()) < controller.graph().len() => {
                    for s in controller.backward_slice(n) {
                        print_node(&controller, s);
                    }
                }
                _ => println!("usage: slice <node#>"),
            },
            "expand" => match parse_node(arg) {
                Some(n) if (n.index()) < controller.graph().len() => match controller.expand(n) {
                    Ok(report) => {
                        println!("expanded into {} nodes:", report.nodes.len());
                        for added in report.nodes {
                            print_node(&controller, added);
                        }
                    }
                    Err(e) => println!("{e}"),
                },
                _ => println!("usage: expand <node#> (see unexpanded boxes in `graph`)"),
            },
            "races" => {
                let races = controller.races();
                if races.is_empty() {
                    println!("this execution instance is race-free (Definition 6.4)");
                } else {
                    for r in races {
                        println!("  {}", r.description);
                    }
                }
            }
            "deadlock" => match controller.deadlock_report() {
                Some(report) => {
                    for e in report {
                        println!("  {} is {}", e.proc_name, e.waiting_for);
                    }
                }
                None => println!("not deadlocked"),
            },
            "state" => {
                let state = shared_state_at(&self.session, execution, u64::MAX);
                for v in self.session.rp().shared_vars() {
                    println!("  {} = {}", self.session.rp().var_name(v), state[v.index()]);
                }
                println!("  (last logged values; replay regenerates in-interval updates)");
            }
            "intervals" => {
                let proc = controller.graph().node(root).proc;
                for iv in execution.logs.intervals(proc) {
                    println!(
                        "  {} instance {} prelog#{} postlog{:?}",
                        iv.eblock, iv.instance, iv.prelog_pos, iv.postlog_pos
                    );
                }
            }
            "dot" => println!("{}", dot::dynamic_to_dot(controller.graph())),
            _ => unreachable!(),
        }
        let _ = ProcId(0);
    }
}

fn print_node(controller: &Controller<'_>, id: DynNodeId) {
    let n = controller.graph().node(id);
    let tag = match &n.kind {
        DynNodeKind::Entry => "entry",
        DynNodeKind::Exit => "exit",
        DynNodeKind::Singular { .. } => "stmt",
        DynNodeKind::SubGraph { expanded: false, .. } => "call*", // expandable
        DynNodeKind::SubGraph { .. } => "call",
        DynNodeKind::Param { .. } => "param",
        DynNodeKind::LoopGraph { expanded: false, .. } => "loop*",
        DynNodeKind::LoopGraph { .. } => "loop",
    };
    let value = n.value.as_ref().map(|v| format!(" = {v}")).unwrap_or_default();
    println!("  #{:<3} [{tag:<5}] {}{value}", id.0, n.label);
}

//! Deadlock detection and analysis (§6's "help the user analyze the
//! causes of deadlocks").
//!
//! Two dining philosophers grab their forks in opposite orders. Under a
//! fine-grained interleaving they deadlock; the debugger reports who is
//! blocked on what, and the parallel dynamic graph shows how far each
//! process got. A coarse schedule completes — the non-determinism that
//! makes cyclic debugging useless for these bugs (§2).
//!
//! Run with: `cargo run --example deadlock`

use ppd::analysis::EBlockStrategy;
use ppd::core::{Controller, PpdSession, RunConfig};
use ppd::runtime::SchedulerSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let prog = ppd::lang::corpus::DINING_PHILOSOPHERS;
    println!("=== {} ===\n{}", prog.description, prog.source);
    let session = PpdSession::prepare(prog.source, EBlockStrategy::per_subroutine())?;

    // Fine-grained round-robin: deadlock.
    let execution = session.execute(RunConfig::default());
    println!("round-robin schedule: {:?}", execution.outcome);
    let controller = Controller::new(&session, &execution);
    if let Some(report) = controller.deadlock_report() {
        println!("\ndeadlock report:");
        for entry in &report {
            println!("  {} is {}", entry.proc_name, entry.waiting_for);
        }
        if let Some(cycle) = controller.deadlock_cycle() {
            let names: Vec<&str> = cycle.iter().map(|&p| session.rp().proc_name(p)).collect();
            println!("  wait-for cycle: {} -> (back to start)", names.join(" -> "));
        }
        println!("\nprogress before the deadlock (internal edges per process):");
        for p in 0..session.rp().procs.len() {
            let pid = ppd::lang::ProcId(p as u32);
            let edges = execution.pgraph.edges_of_proc(pid);
            println!(
                "  {}: {} synchronization intervals completed",
                session.rp().proc_name(pid),
                edges.len()
            );
        }
    }

    // Coarse schedule: completes. Same program, different timing — the
    // bug is real but latent.
    let ok =
        session.execute(RunConfig { scheduler: SchedulerSpec::RunToBlock, ..RunConfig::default() });
    println!("\nrun-to-block schedule: {:?}", ok.outcome);
    println!(
        "output: {:?} (both philosophers ate — the deadlock is schedule-dependent)",
        ok.output
    );

    // How often does it deadlock across random seeds?
    let mut deadlocks = 0;
    let trials = 20;
    for seed in 0..trials {
        let e = session.execute(RunConfig {
            scheduler: SchedulerSpec::Random { seed },
            ..RunConfig::default()
        });
        if e.outcome.is_deadlock() {
            deadlocks += 1;
        }
    }
    println!("\nrandom schedules: {deadlocks}/{trials} deadlocked");
    Ok(())
}

//! Race detection over the parallel dynamic graph (§6).
//!
//! Runs the paper's Figure 6.1 program (two unsynchronized writes and a
//! message-ordered read of a shared variable) plus a racy bank, detects
//! the races from the execution instance's parallel dynamic graph, and
//! shows that a properly locked variant is race-free under many
//! schedules. Finishes with the static side: `ppd lint`'s race-candidate
//! pass flags the same conflict before any execution, and its candidate
//! index prunes the dynamic detector without changing its answer.
//!
//! Run with: `cargo run --example race_detection`

use ppd::analysis::{lint, EBlockStrategy};
use ppd::core::{Controller, PpdSession, RunConfig};
use ppd::graph::{detect_races_naive_counted, detect_races_pruned_counted, dot, VectorClocks};
use ppd::runtime::SchedulerSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ----- Figure 6.1 -----
    let fig61 = ppd::lang::corpus::FIG_6_1;
    println!("=== {} ===\n{}", fig61.description, fig61.source);
    let session = PpdSession::prepare(fig61.source, EBlockStrategy::per_subroutine())?;
    let execution = session.execute(RunConfig::default());
    let controller = Controller::new(&session, &execution);

    println!("parallel dynamic graph:");
    println!(
        "  {} sync nodes, {} internal edges, {} sync edges",
        execution.pgraph.nodes().len(),
        execution.pgraph.internal_edges().len(),
        execution.pgraph.sync_edges().len(),
    );
    println!("\nraces detected:");
    for r in controller.races() {
        println!("  {}", r.description);
    }
    println!(
        "\nNote: P1's write IS ordered against P3's read (through the message\n\
         sync edge), so only the P2 pairs race — exactly the paper's §6.3."
    );

    // DOT export for visual inspection.
    let dot_text = dot::parallel_to_dot(&execution.pgraph, session.rp());
    println!("\nGraphviz (first lines):");
    for line in dot_text.lines().take(8) {
        println!("  {line}");
    }

    // ----- Racy vs locked bank under many schedules -----
    println!("\n=== bank with a missing lock, 10 random schedules ===");
    let racy =
        PpdSession::prepare(ppd::lang::corpus::BANK_RACY.source, EBlockStrategy::per_subroutine())?;
    let mut racy_hits = 0;
    for seed in 0..10 {
        let execution = racy.execute(RunConfig {
            scheduler: SchedulerSpec::Random { seed },
            ..RunConfig::default()
        });
        let controller = Controller::new(&racy, &execution);
        let n = controller.races().len();
        if n > 0 {
            racy_hits += 1;
        }
        println!("  seed {seed}: {n} race pair(s)");
    }
    println!("  -> {racy_hits}/10 schedules exhibited the race");

    println!("\n=== correctly locked bank, 10 random schedules ===");
    let locked =
        PpdSession::prepare(ppd::lang::corpus::BANK.source, EBlockStrategy::per_subroutine())?;
    for seed in 0..10 {
        let execution = locked.execute(RunConfig {
            scheduler: SchedulerSpec::Random { seed },
            ..RunConfig::default()
        });
        let controller = Controller::new(&locked, &execution);
        assert!(controller.is_race_free(), "seed {seed} raced!");
    }
    println!("  all 10 race-free (Definition 6.4)");

    // ----- The static side: lint finds the candidate before running -----
    println!("\n=== static race candidates (ppd lint) on the racy bank ===");
    let file = ppd::lang::SourceFile::new("bank_racy.ppd", ppd::lang::corpus::BANK_RACY.source);
    for d in lint::run_default(racy.rp(), racy.analyses()) {
        if d.code == "PPD001" {
            println!("{}", d.render(&file));
        }
    }

    // The same (variable, process pair) index prunes the dynamic
    // detector: identical races, fewer Definition 6.4 comparisons.
    println!("=== pruning the dynamic detector with the static index ===");
    let execution = racy.execute(RunConfig {
        scheduler: SchedulerSpec::Random { seed: 0 },
        ..RunConfig::default()
    });
    let ord = VectorClocks::compute(&execution.pgraph);
    let (naive, naive_pairs) = detect_races_naive_counted(&execution.pgraph, &ord);
    let (pruned, pruned_pairs) =
        detect_races_pruned_counted(&execution.pgraph, &ord, &racy.analyses().race_candidates);
    assert_eq!(naive, pruned, "pruning must not change the race set");
    println!(
        "  naive examined {naive_pairs} edge pair(s); pruned examined {pruned_pairs}\n  \
         both report {} race pair(s) — the GMOD/GREF index is correctness-preserving",
        naive.len()
    );
    Ok(())
}

//! Incremental tracing in numbers (§3.1, §5).
//!
//! Shows the need-to-generate idea concretely: the execution phase logs
//! a few hundred bytes while a trace-everything debugger would record
//! orders of magnitude more; the debugging phase then regenerates only
//! the trace fragments the user actually asks about.
//!
//! Run with: `cargo run --example incremental_tracing`

use ppd::analysis::EBlockStrategy;
use ppd::core::{Controller, PpdSession, RunConfig};
use ppd::lang::ProcId;
use ppd::runtime::{CountingTracer, ExecConfig, Machine};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = ppd::lang::corpus::QUICKSORT.source;
    let session = PpdSession::prepare(source, EBlockStrategy::per_subroutine())?;

    // What would tracing EVERY event cost? Run the emulation behaviour
    // over the whole program once, counting.
    let mut full_trace = CountingTracer::default();
    let machine =
        Machine::new(session.rp(), session.analyses(), Some(session.plan()), ExecConfig::default());
    let result = machine.run(&mut full_trace);
    let logs = result.logs.expect("logging enabled");

    println!("=== quicksort(16 elements), per-subroutine e-blocks ===");
    println!("full trace (what EXDAMS-style tracing would write):");
    println!("    {} events, {} bytes", full_trace.events, full_trace.bytes);
    println!("PPD log (what the object code actually wrote):");
    println!("    {} entries, {} bytes", logs.total_entries(), logs.total_bytes());
    println!(
        "    ratio: {:.1}x less data at execution time",
        full_trace.bytes as f64 / logs.total_bytes() as f64
    );
    println!("\nlog entry mix:");
    for (kind, count) in logs.counts_by_kind() {
        println!("    {kind:<8} {count}");
    }

    // Log intervals: Figure 5.1/5.2's structure.
    let intervals = logs.intervals(ProcId(0));
    println!("\n{} log intervals recorded for Main; first few:", intervals.len());
    for iv in intervals.iter().take(6) {
        println!(
            "    {} instance {} (prelog at #{}, postlog at {:?})",
            iv.eblock, iv.instance, iv.prelog_pos, iv.postlog_pos
        );
    }

    // Debugging phase: materialize only what is needed.
    let execution = session.execute(RunConfig::default());
    let mut controller = Controller::new(&session, &execution);
    controller.start_at(ProcId(0))?;
    println!(
        "\ndebugging phase materialized 1 of {} intervals -> {} graph nodes",
        execution.logs.intervals(ProcId(0)).len(),
        controller.graph().len()
    );

    // Expand twice, as a user drilling into qsort_range would.
    for round in 1..=2 {
        let Some(&node) = controller.unexpanded().first() else { break };
        let label = controller.graph().node(node).label.clone();
        controller.expand(node)?;
        println!("expansion {round}: `{label}` -> {} graph nodes total", controller.graph().len());
    }
    println!("\nEach expansion replayed exactly one e-block from its prelog —");
    println!("the rest of the execution was never re-run.");

    // Generate-once: asking the same question again hits the replay
    // engine's memoized trace instead of re-running the e-block.
    let before = controller.stats();
    controller.start_at(ProcId(0))?;
    let after = controller.stats();
    println!(
        "\nrepeating the first query: {} new replays (served from cache,",
        after.replays - before.replays
    );
    println!("{} hit(s) so far); engine counters:", after.cache_hits);
    for line in after.render().lines() {
        println!("    {line}");
    }
    Ok(())
}

//! State restoration and what-if replay (§5.7).
//!
//! "Restoration of the program state … can allow the user to experiment
//! by changing the values of variables to see the effect of such changes
//! on program behavior." We restore shared state at several points of a
//! failed run, then replay the failing e-block with a variable
//! overridden and watch the failure disappear.
//!
//! Run with: `cargo run --example what_if`

#![allow(clippy::field_reassign_with_default)]

use ppd::analysis::EBlockStrategy;
use ppd::core::{shared_state_at, what_if_replay, PpdSession, RunConfig};
use ppd::lang::{BodyId, ProcId, Value};

const SOURCE: &str = "
shared int out;
shared int attempts;

int divide(int num, int den) {
    return num / den;
}

process Main {
    int d = input();
    attempts = attempts + 1;
    out = divide(100, d);
    print(out);
}
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== Source ===\n{SOURCE}");
    let session = PpdSession::prepare(SOURCE, EBlockStrategy::per_subroutine())?;
    let mut config = RunConfig::default();
    config.inputs = vec![vec![0]]; // d = 0 -> divide fails
    let execution = session.execute(config);
    println!("execution: {:?}\n", execution.outcome);

    // §5.7 restoration: shared state at the start vs at the halt.
    let rp = session.rp();
    println!("restored shared state:");
    for (label, t) in [("t = 0", 0), ("at halt", u64::MAX)] {
        let state = shared_state_at(&session, &execution, t);
        let rendered: Vec<String> = rp
            .shared_vars()
            .map(|v| format!("{} = {}", rp.var_name(v), state[v.index()]))
            .collect();
        println!("  {label}: {}", rendered.join(", "));
    }

    // Locate divide's open interval (it was running when the failure hit).
    let divide = rp.func_by_name("divide").unwrap();
    let interval = execution
        .logs
        .open_intervals(ProcId(0))
        .into_iter()
        .find(|iv| session.plan().eblock(iv.eblock).region.body() == BodyId::Func(divide))
        .expect("divide was executing at the halt");
    println!("\nreplaying divide's interval {:?}", interval.eblock);

    // Faithful replay reproduces the failure.
    let faithful = what_if_replay(&session, &execution, interval, &[])?;
    println!("  faithful replay: {:?}", faithful.result.outcome);

    // What-if: override the denominator.
    let den = rp.var_by_name(BodyId::Func(divide), "den").unwrap();
    for try_den in [4, 10, 25] {
        let modified =
            what_if_replay(&session, &execution, interval, &[(den, Value::Int(try_den))])?;
        let ret = modified.events.iter().rev().find_map(|e| match e.kind {
            ppd::runtime::EventKind::Return => e.value,
            _ => None,
        });
        println!("  what-if den = {try_den}: {:?}, returns {:?}", modified.result.outcome, ret);
    }
    println!("\nThe failure is confirmed to be the zero denominator, without");
    println!("ever re-executing the rest of the program.");
    Ok(())
}

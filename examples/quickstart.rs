//! Quickstart: debug a failure with flowback analysis.
//!
//! A sensor-processing program divides by a "gain" that a planted bug
//! makes always zero. We run it under the instrumented object code,
//! watch it fail, then use the PPD Controller to walk the causal chain
//! backwards from the failure to the bug — without re-executing the
//! whole program.
//!
//! Run with: `cargo run --example quickstart`

#![allow(clippy::field_reassign_with_default)]

use ppd::analysis::EBlockStrategy;
use ppd::core::{Controller, PpdSession, RunConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = ppd::lang::corpus::FLOWBACK_DEMO.source;
    println!("=== Source ===\n{source}");

    // Preparatory phase (§3.2.1): compile + semantic analyses + e-blocks.
    let session = PpdSession::prepare(source, EBlockStrategy::per_subroutine())?;
    println!(
        "preparatory phase: {} e-blocks, {} static-graph edges\n",
        session.plan().eblocks().len(),
        session.static_graph().edge_count(),
    );

    // Execution phase (§3.2.2): run as instrumented object code.
    let mut config = RunConfig::default();
    config.inputs = vec![vec![42, 10]];
    let execution = session.execute(config);
    println!("execution phase: outcome = {:?}", execution.outcome);
    println!(
        "logs: {} entries, {} bytes across {} processes\n",
        execution.logs.total_entries(),
        execution.logs.total_bytes(),
        execution.logs.process_count(),
    );

    // Debugging phase (§3.2.3): flowback analysis from the failure.
    let mut controller = Controller::new(&session, &execution);
    let root = controller.start()?;
    println!("=== Flowback from the failure ===");
    println!("root: {}", controller.graph().node(root).label);

    // Walk the full backward slice — the causal history of the failure.
    println!("\ncausal history (oldest first):");
    for node in controller.backward_slice(root) {
        let n = controller.graph().node(node);
        let value = n.value.as_ref().map(|v| format!("  = {v}")).unwrap_or_default();
        println!("  {}{}", n.label, value);
    }

    println!("\nThe slice pins the bug: `calibration = reading - reading` is always 0,");
    println!("so `gain` is 0, so `out = work / gain` divides by zero.");
    Ok(())
}
